#!/usr/bin/env python
"""End-to-end smoke test of the HTTP job service (`make serve-smoke`).

Starts ``python -m repro serve --http`` as a real subprocess, walks the
whole job lifecycle from outside, and tears the service down the way an
operator would:

1. start the server on a free port with a 2-worker fleet and a fresh
   queue directory;
2. wait for ``GET /v1/healthz``;
3. ``POST`` two jobs — a plain analysis and one with a per-job budget;
4. poll ``GET /v1/jobs/<id>`` to completion and check the responses;
5. fetch each receipt and validate it with
   ``repro.service.receipts.validate_receipt`` (schema + the receipt
   must reproduce its own inputs hash);
6. ``POST /v1/batch`` with three jobs and walk every returned id to a
   valid per-job receipt — the batched path must be indistinguishable
   past admission;
7. check ``GET /v1/stats`` saw the traffic;
8. send SIGTERM and require a clean, graceful exit.

Exit status 0 on success; any failure prints a diagnostic and exits 1.
Stdlib only — run as ``python scripts/serve_smoke.py``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.receipts import validate_receipt  # noqa: E402

SOURCE = (
    "program smoke\n"
    "  integer n, k\n"
    "  real a(100)\n"
    "  read n, k\n"
    "  do i = 1, n\n"
    "    a(i + k) = a(i) + 1.0\n"
    "  enddo\n"
    "  print a(n)\n"
    "end\n"
)

START_TIMEOUT_S = 30.0
JOB_TIMEOUT_S = 60.0
EXIT_TIMEOUT_S = 30.0


def fail(msg):
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def http(method, url, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=10.0) as resp:
        return resp.status, json.loads(resp.read().decode())


def wait_healthy(base):
    deadline = time.monotonic() + START_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            status, payload = http("GET", base + "/v1/healthz")
            if status == 200 and payload.get("ok"):
                return
        except (urllib.error.URLError, OSError, ConnectionError):
            pass
        time.sleep(0.2)
    fail(f"server not healthy within {START_TIMEOUT_S}s")


def poll_done(base, job_id):
    deadline = time.monotonic() + JOB_TIMEOUT_S
    while time.monotonic() < deadline:
        _, payload = http("GET", f"{base}/v1/jobs/{job_id}")
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.2)
    fail(f"job {job_id} not terminal within {JOB_TIMEOUT_S}s")


def main():
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http",
                f"127.0.0.1:{port}",
                "--workers",
                "2",
                "--queue-dir",
                os.path.join(tmp, "queue"),
                "--cache",
                os.path.join(tmp, "cache"),
            ],
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src")
                + (
                    os.pathsep + os.environ["PYTHONPATH"]
                    if os.environ.get("PYTHONPATH")
                    else ""
                ),
            },
        )
        try:
            wait_healthy(base)

            status, accepted = http(
                "POST",
                base + "/v1/jobs",
                {"kind": "analyze", "id": 1, "source": SOURCE},
            )
            if status != 202 or not accepted.get("ok"):
                fail(f"submit #1 rejected: {status} {accepted}")
            status, budgeted = http(
                "POST",
                base + "/v1/jobs",
                {
                    "id": 2,
                    "source": SOURCE,
                    "budget": {"max_fm_constraints": 50000},
                },
            )
            if status != 202 or not budgeted.get("ok"):
                fail(f"submit #2 rejected: {status} {budgeted}")
            ids = [accepted["id"], budgeted["id"]]
            print(f"serve-smoke: submitted {ids} on {base}")

            for job_id in ids:
                payload = poll_done(base, job_id)
                resp = payload.get("response") or {}
                if payload["state"] != "done" or not resp.get("ok"):
                    fail(f"job {job_id} did not succeed: {payload}")
                if not resp.get("loops"):
                    fail(f"job {job_id} reported no loops: {resp}")
                _, receipt = http("GET", f"{base}/v1/jobs/{job_id}/receipt")
                problems = validate_receipt(receipt)
                if problems:
                    fail(f"receipt {job_id} invalid: {problems}")
                print(
                    f"serve-smoke: {job_id} done, receipt valid "
                    f"(inputs {receipt['inputs']['combined'][:12]}…)"
                )

            status, batch = http(
                "POST",
                base + "/v1/batch",
                {
                    "kind": "analyze",
                    "jobs": [
                        {"id": i, "source": SOURCE} for i in range(3)
                    ],
                },
            )
            if status != 202 or not batch.get("ok"):
                fail(f"batch submit rejected: {status} {batch}")
            if len(batch.get("ids", [])) != 3:
                fail(f"batch admitted wrong count: {batch}")
            for i, job_id in enumerate(batch["ids"]):
                payload = poll_done(base, job_id)
                resp = payload.get("response") or {}
                if payload["state"] != "done" or not resp.get("ok"):
                    fail(f"batch job {job_id} did not succeed: {payload}")
                if resp.get("id") != i:
                    fail(f"batch job {job_id} lost input order: {resp}")
                _, receipt = http("GET", f"{base}/v1/jobs/{job_id}/receipt")
                problems = validate_receipt(receipt)
                if problems:
                    fail(f"batch receipt {job_id} invalid: {problems}")
            print(f"serve-smoke: batch {batch['ids']} done, receipts valid")

            _, stats = http("GET", base + "/v1/stats")
            counters = stats.get("counters", {})
            if counters.get("queue.submitted", 0) < 5:
                fail(f"stats lost the traffic: {counters}")
            if counters.get("queue.batches", 0) < 1:
                fail(f"stats lost the batch submit: {counters}")

            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=EXIT_TIMEOUT_S)
            if code != 0:
                fail(f"server exited {code} on SIGTERM")
            print("serve-smoke: graceful drain, exit 0 — PASS")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)


if __name__ == "__main__":
    main()
