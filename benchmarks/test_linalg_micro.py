"""Micro-benchmarks of the linalg elimination kernels, packed vs legacy.

Each workload is timed twice — once with the packed integer-matrix
kernel (``REPRO_PACKED_KERNEL``, the default) and once on the legacy
symbolic path — from cold caches on the *same* deterministic constraint
corpus, so the pair of benchmarks isolates exactly the kernel cost.  The
packed variant of each pair must be strictly faster (gated by
``--max-ratio`` in ``make perfgate``), and the deterministic ``fm.*``
counters recorded in ``extra_info`` must be *equal* across modes — the
packed kernel does the same eliminations and pair combinations, it just
runs them on plain integer tuples (``check_parity_pairs`` in
``benchmarks/check_regression.py`` gates that equality).

Compare runs against the committed recordings with
``benchmarks/check_regression.py`` (which runs this file alongside the
other micro files).
"""

import random
import warnings

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

PARITY_COUNTERS = ("fm.eliminate", "fm.pair_combine", "fm.fallback_drop")


def _corpus(seed=7, count=120):
    """Deterministic mixed corpus: the shapes FM sees from region algebra
    (mostly small inequality systems, some equalities, occasional
    contradictions)."""
    rng = random.Random(seed)
    systems = []
    for _ in range(count):
        nv = rng.randint(3, 6)
        vars_ = [f"v{i}" for i in range(nv)]
        cons = []
        for _ in range(rng.randint(4, 10)):
            coeffs = {
                v: rng.randint(-5, 5) for v in vars_ if rng.random() < 0.7
            }
            coeffs = {v: c for v, c in coeffs.items() if c}
            rel = Rel.EQ if rng.random() < 0.25 else Rel.LE
            cons.append(
                Constraint(AffineExpr(coeffs, rng.randint(-10, 10)), rel)
            )
        systems.append(LinearSystem(tuple(cons)))
    return systems


def _measure(enabled, workload):
    """Cold-cache deterministic counter deltas for one kernel mode."""
    perf.set_packed_kernel(enabled)
    perf.reset_all_caches()
    perf.reset_counters()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            workload()
        return {c: perf.counter(c) for c in PARITY_COUNTERS}
    finally:
        perf.set_packed_kernel(None)


def _bench_pair(benchmark, enabled, workload):
    """Record parity counters for both modes, then time one of them."""
    counts_on = _measure(True, workload)
    counts_off = _measure(False, workload)
    for key in PARITY_COUNTERS:
        benchmark.extra_info[f"{key}[packed=on]"] = counts_on[key]
        benchmark.extra_info[f"{key}[packed=off]"] = counts_off[key]

    def probe():
        perf.set_packed_kernel(enabled)
        perf.reset_all_caches()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                return workload()
        finally:
            perf.set_packed_kernel(None)

    return benchmark(probe)


def _eliminate_workload():
    systems = _corpus(seed=7)

    def run():
        acc = 0
        for s in systems:
            acc += len(eliminate_all(s, s.variables()))
        return acc

    return run


def _feasibility_workload():
    systems = _corpus(seed=11)

    def run():
        return sum(1 for s in systems if is_feasible(s))

    return run


def test_linalg_eliminate_packed(benchmark):
    _bench_pair(benchmark, True, _eliminate_workload())


def test_linalg_eliminate_legacy(benchmark):
    _bench_pair(benchmark, False, _eliminate_workload())


def test_linalg_feasibility_packed(benchmark):
    feasible = _bench_pair(benchmark, True, _feasibility_workload())
    assert 0 < feasible <= 120


def test_linalg_feasibility_legacy(benchmark):
    feasible = _bench_pair(benchmark, False, _feasibility_workload())
    assert 0 < feasible <= 120
