"""TAB1 bench — regenerate the per-program loop statistics table."""

from conftest import emit

from repro.experiments import table1_loops
from repro.experiments.common import analyzed


def test_table1(benchmark, printed):
    analyzed.cache_clear()
    table = benchmark.pedantic(table1_loops.run, rounds=1, iterations=1)
    emit(printed, "tab1", table.format())
    total = table.totals()
    # the paper's headline claims, asserted on the regenerated table
    assert total.base_parallel / total.candidates > 0.5
    assert (
        total.pred_additional / total.elpd_parallel > 0.40
    ), "predicated analysis must recover >40% of inherently parallel loops"
    assert total.pred_runtime > 0 and total.pred_compile_time > 0
