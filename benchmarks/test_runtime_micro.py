"""Micro-benchmarks of the runtime interpreter, bytecode vs tree.

Each workload is timed twice — once on the compile-once bytecode engine
(``REPRO_BYTECODE``, the default) and once on the legacy tree walker —
on the *same* deterministic program and inputs, so each pair isolates
exactly the execution-engine cost.  The bytecode variant of each pair
must be faster by the ``--max-ratio`` margins in ``make perfgate``, and
the deterministic run facts recorded in ``extra_info`` (step counts,
loop-event counts, ELPD verdict tallies) must be *equal* across modes —
the engines execute identical semantics, one just dispatches less
(``check_bytecode_pairs`` in ``benchmarks/check_regression.py`` gates
that equality).

The exec workload mixes a vectorizable inner loop with a recurrence the
vectorizer must reject (``b(i) = ... b(i-1)``), so both the NumPy fast
path and the scalar instruction loop are on the clock.  The ELPD
workload runs fully hooked — the packed shadow state and the
compiled-in access hooks are what is being measured there.
"""

from repro import perf
from repro.lang.parser import parse_program
from repro.runtime.elpd import run_elpd
from repro.runtime.interp import run_program

EXEC_SRC = (
    "program t\n"
    "integer n\n"
    "real a(2000)\n"
    "real b(2000)\n"
    "read n\n"
    "do r = 1, 10\n"
    " do i = 1, n\n"
    "  a(i) = a(i) * 0.5 + b(i) + 1.0\n"
    " enddo\n"
    " do i = 2, n\n"
    "  b(i) = a(i) - b(i - 1) * 0.25\n"
    " enddo\n"
    "enddo\n"
    "end\n"
)
EXEC_INPUTS = [2000]

ELPD_SRC = (
    "program t\n"
    "integer n\n"
    "real a(600)\n"
    "real w(600)\n"
    "read n\n"
    "do r = 1, 3\n"
    " do i = 1, n\n"
    "  w(i) = a(i) + 1.0\n"
    "  a(i) = w(i) * 0.5\n"
    " enddo\n"
    " do i = 2, n\n"
    "  a(i) = a(i - 1) + 1.0\n"
    " enddo\n"
    "enddo\n"
    "end\n"
)
ELPD_INPUTS = [600]


def _exec_facts():
    """Deterministic facts of one exec run (must be mode-independent)."""
    program = parse_program(EXEC_SRC)
    result = run_program(program, EXEC_INPUTS)
    return {
        "steps": result.steps,
        "loop_events": len(result.loop_events),
        "outputs": len(result.outputs),
    }


def _elpd_facts():
    """Deterministic facts of one ELPD run (must be mode-independent)."""
    report = run_elpd(parse_program(ELPD_SRC), ELPD_INPUTS)
    classes = [o.classification for o in report.observations.values()]
    return {
        "elpd.steps": report.steps,
        "elpd.observed": len(report.observations),
        "elpd.dependent": sum(1 for c in classes if c == "dependent"),
        "elpd.parallel": len(report.parallelizable_labels()),
    }


def _measure(enabled, facts_fn):
    """Cold-cache deterministic run facts for one engine mode."""
    perf.set_bytecode(enabled)
    perf.reset_all_caches()
    try:
        return facts_fn()
    finally:
        perf.set_bytecode(None)


def _bench_pair(benchmark, enabled, facts_fn):
    """Record run facts for both modes, then time one of them."""
    facts_on = _measure(True, facts_fn)
    facts_off = _measure(False, facts_fn)
    for key in sorted(facts_on):
        benchmark.extra_info[f"{key}[bytecode=on]"] = facts_on[key]
        benchmark.extra_info[f"{key}[bytecode=off]"] = facts_off[key]

    def probe():
        perf.set_bytecode(enabled)
        perf.reset_all_caches()
        try:
            return facts_fn()
        finally:
            perf.set_bytecode(None)

    return benchmark(probe)


def test_runtime_exec_bytecode(benchmark):
    facts = _bench_pair(benchmark, True, _exec_facts)
    assert facts["steps"] > 20000


def test_runtime_exec_tree(benchmark):
    facts = _bench_pair(benchmark, False, _exec_facts)
    assert facts["steps"] > 20000


def test_runtime_elpd_bytecode(benchmark):
    facts = _bench_pair(benchmark, True, _elpd_facts)
    assert facts["elpd.dependent"] >= 1


def test_runtime_elpd_tree(benchmark):
    facts = _bench_pair(benchmark, False, _elpd_facts)
    assert facts["elpd.dependent"] >= 1
