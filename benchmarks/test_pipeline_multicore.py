"""Multicore benchmarks: whole-suite analysis, serial vs process pool.

The schedulable grain inside one program is the call-graph subtree, and
most suite programs have a single procedure — so true multicore pays
off at the *batch* grain: :func:`repro.pipeline.run_pipeline_batch`
fans independent programs over a pool of forked worker processes and
rebinds their decision payloads in input order (`docs/PERF.md` §9).

* ``test_suite_serial`` — the whole suite analyzed one program at a
  time, cold caches each round.  The reference cost; runs everywhere.
* ``test_suite_process_pool`` — the same suite through
  ``run_pipeline_batch(jobs=4, executor="process")``, cold caches each
  round, with byte-identical per-loop decisions asserted in the body.
  On a single-core runner this measures pool overhead only, so the
  live speedup gate (``check_regression.py --multicore``) skips there
  with a notice instead of comparing these recordings.
"""

import os

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline import run_pipeline_batch
from repro.suites import all_programs

JOBS = 4


def _programs():
    return [b.fresh_program() for b in all_programs()]


def _rows(results):
    return [
        [(l.label, l.status, str(l.condition)) for l in r.loops]
        for r in results
    ]


def _run(jobs, executor):
    perf.reset_all_caches()
    return run_pipeline_batch(
        _programs(),
        AnalysisOptions.predicated(),
        jobs=jobs,
        executor=executor,
    )


def test_suite_serial(benchmark):
    results = benchmark(_run, 1, "thread")
    assert len(results) == len(all_programs())
    benchmark.extra_info["programs"] = len(results)


def test_suite_process_pool(benchmark):
    results = benchmark(_run, JOBS, "process")
    assert _rows(results) == _rows(_run(1, "thread"))
    benchmark.extra_info["programs"] = len(results)
    benchmark.extra_info["cpus"] = os.cpu_count()
