"""Micro-benchmarks of the tier-0 dependence screen.

Three questions, matching the PR's optimization claims:

* what does the screen itself cost (pure syntax, no analysis)?
* what does a screened whole-program analysis cost against the
  screen-off analysis on the same program (``test_whole_program_analysis``
  in ``test_core_micro.py`` is the screened default; the ``_unscreened``
  variant here pins the switch off)?
* how much summarization work does the suite skip on the screen's word?

Compare runs against the recorded baselines with
``benchmarks/check_regression.py``.
"""

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.screen import screen_unit
from repro.ir.symboltable import SymbolTable
from repro.partests.driver import analyze_program
from repro.suites import all_programs, get_program


def test_screen_unit_syntax_only(benchmark):
    """The raw screen walk over the biggest suite unit: no analysis."""
    bench_prog = get_program("hydro2d")

    def probe():
        program = bench_prog.fresh_program()
        unit = program.units[program.main]
        return screen_unit(unit, SymbolTable(unit))

    screen = benchmark(probe)
    assert screen.independent_labels  # the screen finds work to skip


def _analyze_suite():
    total = 0
    for bench_prog in all_programs():
        result = analyze_program(
            bench_prog.fresh_program(), AnalysisOptions.predicated()
        )
        total += result.total_loops
    return total


def test_whole_suite_screened(benchmark):
    """All 30 programs, screen on (the shipping default)."""

    def probe():
        perf.set_dep_screen(True)
        try:
            return _analyze_suite()
        finally:
            perf.set_dep_screen(None)

    assert benchmark(probe) > 0


def test_whole_suite_unscreened(benchmark):
    """The same sweep with the screen pinned off, for the ratio."""

    def probe():
        perf.set_dep_screen(False)
        try:
            return _analyze_suite()
        finally:
            perf.set_dep_screen(None)

    assert benchmark(probe) > 0


def test_whole_program_analysis_unscreened(benchmark):
    """hydro2d with the screen pinned off — the pre-screen baseline of
    ``test_whole_program_analysis``."""
    bench_prog = get_program("hydro2d")

    def probe():
        perf.set_dep_screen(False)
        try:
            return analyze_program(
                bench_prog.fresh_program(), AnalysisOptions.predicated()
            )
        finally:
            perf.set_dep_screen(None)

    result = benchmark(probe)
    assert result.total_loops > 0


def test_screen_saves_projection_work():
    """Not a timing: the screen's saved-work counter must fire on the
    suite (elided loop projections and skipped unit walks)."""
    perf.set_dep_screen(True)
    try:
        perf.reset_all_caches()
        perf.reset_counters()
        _analyze_suite()
        counters = perf.snapshot()["counters"]
    finally:
        perf.set_dep_screen(None)
        perf.reset_all_caches()
    assert counters["screen.saved_units"] > 0
    assert counters["screen.independent"] > 0
    assert counters["screen.disagree"] == 0
