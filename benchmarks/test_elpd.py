"""ELPD bench — run the dynamic oracle over every suite program."""

from conftest import emit

from repro.experiments.common import format_table
from repro.runtime.elpd import run_oracle
from repro.suites import all_programs


def _run_all():
    rows = []
    for bench in all_programs():
        rep = run_oracle(bench.fresh_program(), bench.inputs)
        counts = {"independent": 0, "privatizable": 0, "dependent": 0, "not_executed": 0}
        for obs in rep.observations.values():
            counts[obs.classification] += 1
        rows.append(
            [
                bench.name,
                counts["independent"],
                counts["privatizable"],
                counts["dependent"],
                counts["not_executed"],
            ]
        )
    return rows


def test_elpd_oracle(benchmark, printed):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        printed,
        "elpd",
        format_table(
            ["program", "independent", "privatizable", "dependent", "not run"],
            rows,
            title="ELPD: dynamic classification per program",
        ),
    )
    assert len(rows) == 30
    # every program executes at least one loop dynamically
    for r in rows:
        assert r[1] + r[2] + r[3] > 0, r[0]
