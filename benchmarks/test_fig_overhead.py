"""FIGO bench — analysis cost and run-time-test overhead."""

from conftest import emit

from repro.experiments import fig_overhead


def test_fig_overhead(benchmark, printed):
    result = benchmark.pedantic(fig_overhead.run, rounds=1, iterations=1)
    emit(printed, "figo", result.format())
    # the predicated analysis pays a modest compile-time premium
    # (measured in deterministic substrate ops, not wall-clock)
    total_base = sum(c.base_ops for c in result.suite_costs)
    total_pred = sum(c.predicated_ops for c in result.suite_costs)
    assert total_pred < 6 * total_base
    # derived tests are low-cost: a handful of atoms each, and far
    # cheaper than an inspector over the loop's array accesses
    assert result.test_costs
    for row in result.test_costs:
        assert row.test_atoms <= 12
    advantages = [
        r.inspector_cost / max(r.test_atoms, 1) for r in result.test_costs
    ]
    assert max(advantages) >= 10
