"""Micro-benchmarks of the predicate oracle hot paths.

Three workloads mirror how the analysis exercises the oracle —
unsatisfiability of extracted guard conjunctions, implication chains
between guards, and semantic guarded-list compaction — plus one
whole-pipeline probe that analyzes a predicated (tab2) configuration
and records the deterministic op counts with the oracle enabled vs
disabled in ``extra_info``, asserting the enabled path does strictly
less ground feasibility work.

Compare runs against the committed recordings with
``benchmarks/check_regression.py`` (which runs this file alongside
``test_core_micro.py``).
"""

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.values import GuardedSummary, _dedup_guarded
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates import oracle
from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.formula import p_and, p_atom, p_not, p_or
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
N = AffineExpr.var("n")
D = AffineExpr.var("d")
X = AffineExpr.var("x")
D0 = AffineExpr.var("__d0")


def _guard_family():
    """Predicates shaped like extracted guards: affine bounds over a few
    scalars, opaque flags, and their boolean combinations."""
    lin = [
        p_atom(LinAtom.ge(N, C(k))) for k in range(0, 8)
    ] + [
        p_atom(LinAtom.le(D, C(k))) for k in range(0, 4)
    ] + [
        p_atom(LinAtom.eq(X, C(k))) for k in range(0, 3)
    ]
    flags = [p_atom(OpaqueAtom(f"t{k}", ())) for k in range(3)]
    preds = []
    for i, a in enumerate(lin):
        preds.append(a)
        b = lin[(i * 5 + 3) % len(lin)]
        f = flags[i % len(flags)]
        preds.append(p_and(a, b))
        preds.append(p_or(p_and(a, f), p_and(b, p_not(f))))
        preds.append(p_and(a, p_not(b)))
    return preds


def test_oracle_unsat_throughput(benchmark):
    preds = _guard_family()
    perf.reset_all_caches()

    def probe():
        return sum(1 for p in preds if oracle.is_unsat(p))

    unsat = benchmark(probe)
    assert 0 <= unsat < len(preds)


def test_oracle_implies_chain(benchmark):
    """Pairwise implication over the guard family (steady state)."""
    preds = _guard_family()[:24]
    perf.reset_all_caches()

    def probe():
        return sum(
            1 for p in preds for q in preds if oracle.implies(p, q)
        )

    proven = benchmark(probe)
    assert proven >= len(preds)  # reflexive implications at minimum


def _interval_summary(lo, hi):
    return SummarySet.of(
        ArrayRegion(
            "a",
            1,
            LinearSystem(
                [Constraint.ge(D0, C(lo)), Constraint.le(D0, C(hi))]
            ),
        )
    )


def test_dedup_guarded_semantic(benchmark):
    """Semantic compaction of an inflated guarded list (cross-product
    shaped: duplicated, equivalent and dominated guards)."""
    ge = [p_atom(LinAtom.ge(N, C(k))) for k in range(6)]
    items = []
    for i in range(6):
        for j in range(6):
            pred = p_and(ge[i], ge[j])  # implies-chains: n>=max(i,j)
            items.append(GuardedSummary(pred, _interval_summary(0, 10 + i)))
            items.append(GuardedSummary(pred, _interval_summary(0, 10 + j)))
    perf.reset_all_caches()

    def probe():
        return _dedup_guarded(items, 6, keep="min")

    out = benchmark(probe)
    assert 0 < len(out) <= 6


def test_predicated_analysis_ops(benchmark):
    """Whole predicated (tab2-config) analysis of a branchy program.

    Times the oracle-enabled run and records the deterministic op
    counters for both oracle modes in ``extra_info`` — the enabled path
    must do strictly less ground feasibility work while producing the
    same decisions (byte-identity is asserted by the integration suite).
    """
    from repro.partests.driver import analyze_program
    from repro.suites import get_program

    prog = get_program("hydro2d")

    def measure(enabled):
        perf.set_pred_oracle(enabled)
        perf.reset_all_caches()
        perf.reset_counters()
        analyze_program(prog.fresh_program(), AnalysisOptions.predicated())
        snap = perf.snapshot()
        return (
            snap["counters"].get("feasibility.ground", 0),
            snap["total_ops"],
        )

    try:
        ground_on, ops_on = measure(True)
        ground_off, ops_off = measure(False)
    finally:
        perf.set_pred_oracle(None)

    assert ground_on < ground_off, (
        f"oracle must reduce ground feasibility work: "
        f"{ground_on} !< {ground_off}"
    )
    assert ops_on < ops_off
    benchmark.extra_info["feasibility.ground[oracle=on]"] = ground_on
    benchmark.extra_info["feasibility.ground[oracle=off]"] = ground_off
    benchmark.extra_info["total_ops[oracle=on]"] = ops_on
    benchmark.extra_info["total_ops[oracle=off]"] = ops_off

    def analyze():
        return analyze_program(
            prog.fresh_program(), AnalysisOptions.predicated()
        )

    result = benchmark(analyze)
    assert result.total_loops > 0
