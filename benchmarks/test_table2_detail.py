"""TAB2 bench — regenerate the newly-parallelized-loop detail table."""

from conftest import emit

from repro.experiments import table2_programs


def test_table2(benchmark, printed):
    table = benchmark.pedantic(table2_programs.run, rounds=1, iterations=1)
    emit(printed, "tab2", table.format())
    # nine programs gain additional outer parallel loops (abstract claim)
    assert len(table.outer_win_programs()) == 9
    # every mechanism the paper describes appears among the wins
    mechanisms = {r.mechanism for r in table.rows}
    assert "extraction" in mechanisms
    assert "embedding" in mechanisms
    assert "interprocedural" in mechanisms or "extraction" in mechanisms
    assert any(r.status == "runtime" for r in table.rows)
    assert any(r.status != "runtime" for r in table.rows)
