"""TAB3 bench — regenerate the category × mechanism breakdown."""

from conftest import emit

from repro.experiments import table3_categories


def test_table3(benchmark, printed):
    table = benchmark.pedantic(table3_categories.run, rounds=1, iterations=1)
    emit(printed, "tab3", table.format())
    ct, rt = table.total()
    assert ct > 0 and rt > 0
    assert table.uncategorized == 0
    # run-time tests dominate the symbolic categories, compile-time wins
    # the control-flow categories — the paper's qualitative split
    assert table.counts.get("offset-symbolic", [0, 0])[1] > 0
    assert table.counts.get("conditional-def", [0, 0])[0] > 0
