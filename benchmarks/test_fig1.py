"""FIG1 bench — regenerate the four motivating examples."""

from conftest import emit

from repro.experiments import fig1_examples


def test_fig1(benchmark, printed):
    result = benchmark.pedantic(fig1_examples.run, rounds=1, iterations=1)
    emit(printed, "fig1", result.format())
    for name, statuses in result.statuses.items():
        assert statuses["base"] == "serial", name
        assert statuses["predicated"] in (
            "parallel",
            "parallel_private",
            "runtime",
        ), name
    # each example's key mechanism is load-bearing: ablation loses the
    # win outright or degrades a compile-time proof to a run-time test
    assert result.statuses["fig1a"]["ablated"] == "serial"
    assert result.statuses["fig1b"]["ablated"] == "serial"
    assert result.statuses["fig1c"]["ablated"] in ("serial", "runtime")
    assert result.statuses["fig1d"]["ablated"] == "serial"
    assert "k" in result.runtime_tests["fig1b"]
    assert "==" in result.runtime_tests["fig1d"]
