"""Serve-path latency benchmarks: what the job system costs per job.

The job-system refactor put a persistent queue, a worker fleet and a
receipt writer between a request and its analysis.  That machinery buys
crash-safety and concurrency, but it must stay *cheap*: submitting a
job through the full stack may not cost more than a bounded factor over
calling the pipeline directly.

* ``test_serve_job_direct`` — every suite program through
  ``run_analyze`` (the exact execution core the workers call), one
  request at a time, cold caches each round.  The reference cost.
* ``test_serve_job_fleet`` — the same requests submitted closed-loop
  (submit, wait for the result, then the next) to a persistent
  ``JobQueue`` drained by a 4-worker ``WorkerFleet``, cold caches each
  round.  End-to-end latency includes the job record, claim, receipt
  and result filesystem round-trips.

Both tests record the p50 of their per-request latencies across all
rounds in ``extra_info["p50_ms"]`` (``_ms`` keys are informational —
the extra-info parity gate skips them).  The perf gate enforces
``fleet <= 1.3 * direct`` two ways: statically on the recorded batch
means in ``BENCH_pr9.json`` (``--max-ratio``) and live on every
``make check`` (``check_regression.py --serve``, which runs ``main()``
below: direct and fleet requests timed in interleaved cold pairs, so
runner drift cancels out of the p50 ratio instead of landing on
whichever side ran during the bad stretch).
"""

import json
import statistics
import tempfile
import time

from repro import perf
from repro.service.jobs import run_analyze
from repro.service.queue import JobQueue
from repro.service.workers import WorkerFleet
from repro.suites import all_programs

WORKERS = 4
ROUNDS = 5


def _requests():
    return [
        {"id": i, "source": bench.source}
        for i, bench in enumerate(all_programs())
    ]


def _decisions(responses):
    return [
        [(l["label"], l["status"], l["condition"]) for l in r["loops"]]
        for r in responses
    ]


def _run_direct(latencies=None):
    perf.reset_all_caches()
    responses = []
    for req in _requests():
        start = time.perf_counter()
        responses.append(run_analyze(dict(req))[0])
        if latencies is not None:
            latencies.append(time.perf_counter() - start)
    return responses


def _run_fleet(latencies):
    perf.reset_all_caches()
    responses = []
    with tempfile.TemporaryDirectory() as tmp:
        queue = JobQueue(tmp, capacity=64)
        with WorkerFleet(queue, workers=WORKERS):
            for req in _requests():
                start = time.perf_counter()
                job_id = queue.submit("analyze", dict(req))
                resp = queue.wait(job_id, timeout=300.0)
                latencies.append(time.perf_counter() - start)
                assert resp is not None, job_id
                responses.append(resp)
    return responses


def test_serve_job_direct(benchmark):
    latencies = []
    responses = benchmark.pedantic(
        lambda: _run_direct(latencies),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(responses) == len(all_programs())
    assert all(r["ok"] for r in responses)
    benchmark.extra_info["programs"] = len(responses)
    benchmark.extra_info["p50_ms"] = round(
        statistics.median(latencies) * 1e3, 3
    )


def test_serve_job_fleet(benchmark):
    latencies = []
    responses = benchmark.pedantic(
        lambda: _run_fleet(latencies),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    # the fleet answers exactly what the direct core answers
    assert _decisions(responses) == _decisions(_run_direct())
    benchmark.extra_info["programs"] = len(responses)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["p50_ms"] = round(
        statistics.median(latencies) * 1e3, 3
    )


def main() -> None:
    """Request-interleaved gate driver for ``check_regression.py --serve``.

    Times the two sides *request by request*: for every suite program,
    one cold direct ``run_analyze`` and one cold submit→wait through
    the queue + fleet, back to back (order alternating by round).
    Machine drift — frequency scaling, a noisy neighbour on a shared
    runner — moves on a much coarser timescale than one ~10ms request,
    so it hits both sides of each pair equally and cancels out of the
    ratio; block-at-a-time timing puts all of it into whichever side
    ran during the bad stretch.  Caches are reset before *every*
    request (not once per round) so neither side inherits warmth from
    the other's identical program a few milliseconds earlier.  Prints
    one JSON line with the pooled per-request p50s.
    """
    direct_lat: list = []
    fleet_lat: list = []

    def _direct_one(req) -> None:
        perf.reset_all_caches()
        start = time.perf_counter()
        run_analyze(dict(req))
        direct_lat.append(time.perf_counter() - start)

    def _fleet_one(queue, req) -> None:
        perf.reset_all_caches()
        start = time.perf_counter()
        job_id = queue.submit("analyze", dict(req))
        resp = queue.wait(job_id, timeout=300.0)
        fleet_lat.append(time.perf_counter() - start)
        assert resp is not None, job_id

    _run_direct()  # warmup (imports, bytecode compiles)
    _run_fleet([])
    with tempfile.TemporaryDirectory() as tmp:
        queue = JobQueue(tmp, capacity=64)
        with WorkerFleet(queue, workers=WORKERS):
            for rnd in range(ROUNDS):
                for req in _requests():
                    if rnd % 2:
                        _fleet_one(queue, req)
                        _direct_one(req)
                    else:
                        _direct_one(req)
                        _fleet_one(queue, req)
    print(
        json.dumps(
            {
                "rounds": ROUNDS,
                "programs": len(_requests()),
                "workers": WORKERS,
                "direct_p50_ms": round(
                    statistics.median(direct_lat) * 1e3, 3
                ),
                "fleet_p50_ms": round(
                    statistics.median(fleet_lat) * 1e3, 3
                ),
            }
        )
    )


if __name__ == "__main__":
    main()
