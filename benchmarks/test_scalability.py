"""Scalability micro-bench: analysis time versus program size.

The paper reports its analysis scales to full benchmark suites; this
bench tracks our wall-clock growth on generated programs of increasing
loop counts (roughly linear per loop nest, thanks to the feasibility
memo table and the guarded-list beams).
"""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program


def synth_program(nests: int) -> str:
    """A program with `nests` independent work-array loop nests."""
    lines = ["program scale", "  integer n"]
    for k in range(nests):
        lines.append(f"  real a{k}(32, 32), w{k}(32)")
    lines.append("  read n")
    for k in range(nests):
        lines.extend(
            [
                f"  do j = 1, n",
                f"    do i = 1, n",
                f"      w{k}(i) = a{k}(i, j) * 2.0",
                f"    enddo",
                f"    do i = 1, n",
                f"      a{k}(i, j) = w{k}(i) + 1.0",
                f"    enddo",
                f"  enddo",
            ]
        )
    lines.append("end")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("nests", [2, 8])
def test_analysis_scaling(benchmark, nests):
    source = synth_program(nests)

    def run():
        return analyze_program(
            parse_program(source), AnalysisOptions.predicated()
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.total_loops == 3 * nests
    assert all(
        l.status in ("parallel", "parallel_private") for l in result.loops
    )
