"""Warm-fleet throughput: programs/sec through the batched job path.

The ROADMAP's fuzz-farm north star is throughput-bound: thousands of
*small* programs, each too cheap to amortize a per-(worker, run)
substrate rebuild, cold oracle/FM memos, or a per-program pickle/queue
round trip.  PR 10 makes the warm fleet the fast path: content-keyed
engines and memo tables survive across runs within a fleet epoch, and
``run_pipeline_batch`` coalesces programs into chunked pool tasks
(`docs/PERF.md` §9.3, `docs/EXECUTION.md` §7).

The stream here is the suite's single-unit programs, repeated — the
fuzz-farm shape: many tiny independent jobs.

* ``test_batch_cold`` — every round resets all caches first, so it
  pays pool teardown/refork, per-worker substrate builds and cold
  memos: the pre-warm-fleet cost of a stream of one-shot runs.
* ``test_batch_warm`` — identical workload, caches and pool left warm
  between rounds: the steady-state fleet.  Byte-identical decision
  rows against the cold path and a serial loop are asserted in the
  body.
* ``test_batch_fleet`` — the same stream pushed through the *service*
  batch path: one ``submit_batch`` into a persistent queue, a warm
  worker fleet draining it with chunked claims, per-job receipts.

``check_regression.py --throughput`` compares the warm and cold
recordings live (warm ≥ 2× cold at 4+ cores, ≥ 1.2× at 2–3,
skip-with-notice on single-core runners).
"""

import os

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline import run_pipeline_batch
from repro.suites import all_programs

JOBS = 4
#: repeats of the single-unit sub-suite per round — a stream long
#: enough that chunking matters, short enough to benchmark honestly
REPEATS = 3


def _stream():
    singles = [
        b for b in all_programs() if len(b.fresh_program().units) == 1
    ]
    return [b.fresh_program() for _ in range(REPEATS) for b in singles]


def _rows(results):
    return [
        [(l.label, l.status, str(l.condition)) for l in r.loops]
        for r in results
    ]


def _run_batch():
    return run_pipeline_batch(
        _stream(), AnalysisOptions.predicated(), jobs=JOBS, executor="process"
    )


def _run_cold():
    perf.reset_all_caches()  # also tears the pool down: truly cold
    return _run_batch()


def test_batch_cold(benchmark):
    results = benchmark(_run_cold)
    assert len(results) == len(_stream())
    benchmark.extra_info["programs"] = len(results)
    benchmark.extra_info["cpus"] = os.cpu_count()


def test_batch_warm(benchmark):
    perf.reset_all_caches()
    _run_batch()  # warm the fleet once; every measured round reuses it
    results = benchmark(_run_batch)
    # byte-identity: warm vs cold vs a serial local loop
    warm = _rows(results)
    assert warm == _rows(_run_cold())
    perf.reset_all_caches()
    assert warm == _rows(
        run_pipeline_batch(
            _stream(), AnalysisOptions.predicated(), jobs=1, executor="thread"
        )
    )
    benchmark.extra_info["programs"] = len(results)
    benchmark.extra_info["cpus"] = os.cpu_count()


def test_batch_fleet(benchmark, tmp_path_factory):
    from repro.service.queue import JobQueue
    from repro.service.workers import WorkerFleet

    from repro.lang.prettyprint import pretty

    sources = [pretty(p) for p in _stream()]
    bodies = [{"source": s} for s in sources]

    perf.reset_all_caches()
    state = {"n": 0}

    def drain_batch():
        state["n"] += 1
        root = tmp_path_factory.mktemp(f"fleetq{state['n']}")
        queue = JobQueue(root, capacity=len(bodies) + 8)
        with WorkerFleet(queue, workers=JOBS) as fleet:
            ids = queue.submit_batch("analyze", bodies)
            responses = [queue.wait(jid, timeout=120.0) for jid in ids]
        assert all(r is not None and r.get("ok") for r in responses)
        return responses

    responses = benchmark(drain_batch)
    assert len(responses) == len(bodies)
    benchmark.extra_info["programs"] = len(responses)
    benchmark.extra_info["cpus"] = os.cpu_count()
