"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper table/figure (printing its rows on
the first run) while pytest-benchmark times the regeneration.
"""

import pytest


@pytest.fixture(scope="session")
def printed():
    """Tracks which experiment outputs were already printed."""
    return set()


def emit(printed, key: str, text: str) -> None:
    if key not in printed:
        printed.add(key)
        print()
        print(text)
