#!/usr/bin/env python
"""Benchmark regression gate.

Compares a pytest-benchmark JSON result file against the committed
baseline (``BENCH_baseline.json`` at the repo root) and fails when any
benchmark present in **both** files is more than ``--threshold`` slower
(by mean time).  New or removed benchmarks are reported but never fail
the check.

Usage::

    # run the micro-benchmarks and compare in one step
    python benchmarks/check_regression.py

    # compare a pre-recorded run
    python benchmarks/check_regression.py --current /tmp/bench_now.json

    # stricter gate
    python benchmarks/check_regression.py --threshold 0.10

Exit status: 0 when no gated regression, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_baseline.json")
MICRO_BENCH = os.path.join(REPO_ROOT, "benchmarks", "test_core_micro.py")


def _load_means(path: str) -> dict:
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b["stats"]["mean"] for b in data.get("benchmarks", [])
    }


def _run_benchmarks(json_out: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        MICRO_BENCH,
        "-q",
        "--benchmark-json",
        json_out,
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def compare(baseline: dict, current: dict, threshold: float):
    """Returns (regressions, improvements, only_in_one) summaries."""
    regressions = []
    rows = []
    for name in sorted(set(baseline) & set(current)):
        old, new = baseline[name], current[name]
        ratio = new / old if old else float("inf")
        rows.append((name, old, new, ratio))
        if ratio > 1.0 + threshold:
            regressions.append((name, old, new, ratio))
    skipped = sorted(set(baseline) ^ set(current))
    return regressions, rows, skipped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline pytest-benchmark JSON (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="pytest-benchmark JSON to check; omitted = run the "
        "micro-benchmarks now",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = _load_means(args.baseline)
    if args.current is not None:
        current = _load_means(args.current)
    else:
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as tmp:
            json_out = tmp.name
        try:
            _run_benchmarks(json_out)
            current = _load_means(json_out)
        finally:
            os.unlink(json_out)

    regressions, rows, skipped = compare(
        baseline, current, args.threshold
    )
    print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name, old, new, ratio in rows:
        flag = "  << REGRESSION" if (name, old, new, ratio) in regressions else ""
        print(
            f"{name:<40} {old * 1e3:>10.3f}ms {new * 1e3:>10.3f}ms "
            f"{ratio:>7.2f}x{flag}"
        )
    for name in skipped:
        print(f"{name:<40} (present in only one file; not gated)")
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than "
            f"{args.threshold:.0%} over baseline"
        )
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
