#!/usr/bin/env python
"""Benchmark regression gate.

Compares a pytest-benchmark JSON result file against the committed
baseline (``BENCH_baseline.json`` at the repo root) and fails when any
benchmark present in **both** files is more than ``--threshold`` slower
(by mean time).  New or removed benchmarks are reported but never fail
the check.

Usage::

    # run the micro-benchmarks and compare in one step
    python benchmarks/check_regression.py

    # compare a pre-recorded run
    python benchmarks/check_regression.py --current /tmp/bench_now.json

    # stricter gate
    python benchmarks/check_regression.py --threshold 0.10

Exit status: 0 when no gated regression, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_baseline.json")
#: the timed micro-benchmark files the gate runs (wall-clock + the
#: deterministic op counters some of them record in extra_info)
MICRO_BENCH = [
    os.path.join(REPO_ROOT, "benchmarks", "test_core_micro.py"),
    os.path.join(REPO_ROOT, "benchmarks", "test_predicates_micro.py"),
    os.path.join(REPO_ROOT, "benchmarks", "test_pipeline_micro.py"),
    os.path.join(REPO_ROOT, "benchmarks", "test_linalg_micro.py"),
    os.path.join(REPO_ROOT, "benchmarks", "test_runtime_micro.py"),
    os.path.join(REPO_ROOT, "benchmarks", "test_screen_micro.py"),
]


def _load_means(path: str) -> dict:
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b["stats"]["mean"] for b in data.get("benchmarks", [])
    }


def _load_extra_info(path: str) -> dict:
    """name -> {key: numeric value} for benchmarks with extra_info.

    Keys ending in ``_ms`` / ``_s`` are wall-clock readings recorded for
    information (e.g. the serve benchmarks' per-job p50); they are
    timing noise, not deterministic op counters, so the monotone
    not-above-baseline gate must not see them.
    """
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        info = {
            k: v
            for k, v in (b.get("extra_info") or {}).items()
            if isinstance(v, (int, float))
            and not isinstance(v, bool)
            and not k.endswith(("_ms", "_s"))
        }
        if info:
            out[b["name"]] = info
    return out


def _run_benchmarks(json_out: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *MICRO_BENCH,
        "-q",
        "--benchmark-json",
        json_out,
    ]
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def compare(baseline: dict, current: dict, threshold: float):
    """Returns (regressions, improvements, only_in_one) summaries."""
    regressions = []
    rows = []
    for name in sorted(set(baseline) & set(current)):
        old, new = baseline[name], current[name]
        ratio = new / old if old else float("inf")
        rows.append((name, old, new, ratio))
        if ratio > 1.0 + threshold:
            regressions.append((name, old, new, ratio))
    skipped = sorted(set(baseline) ^ set(current))
    return regressions, rows, skipped


def compare_extra_info(baseline: dict, current: dict):
    """Gate the deterministic op counters recorded in ``extra_info``.

    For every (benchmark, numeric key) pair present in both files the
    current count must not exceed the baseline's — these counters are
    deterministic given cold caches, so any increase is a real cost
    regression, not timing noise.
    """
    regressions = []
    rows = []
    for name in sorted(set(baseline) & set(current)):
        for key in sorted(set(baseline[name]) & set(current[name])):
            old, new = baseline[name][key], current[name][key]
            rows.append((name, key, old, new))
            if new > old:
                regressions.append((name, key, old, new))
    return regressions, rows


def check_oracle_pairs(info: dict):
    """Enforce paired ``<key>[oracle=on]`` < ``<key>[oracle=off]`` counters.

    The predicate micro-benchmarks record deterministic op counts for
    both oracle modes; the enabled mode must do strictly less work or
    the oracle is not earning its keep.
    """
    failures = []
    for name in sorted(info):
        for key in sorted(info[name]):
            if not key.endswith("[oracle=on]"):
                continue
            off_key = key[: -len("[oracle=on]")] + "[oracle=off]"
            if off_key not in info[name]:
                continue
            on, off = info[name][key], info[name][off_key]
            if on >= off:
                failures.append((name, key, on, off))
    return failures


def check_parity_pairs(info: dict):
    """Enforce paired ``<key>[packed=on]`` == ``<key>[packed=off]`` counters.

    The linalg micro-benchmarks record the deterministic ``fm.*``
    counters for both kernel modes; the packed kernel must do *exactly*
    the same eliminations and pair combinations as the legacy one — any
    difference means the identical-results contract is broken, not that
    one mode is cheaper.
    """
    failures = []
    for name in sorted(info):
        for key in sorted(info[name]):
            if not key.endswith("[packed=on]"):
                continue
            off_key = key[: -len("[packed=on]")] + "[packed=off]"
            if off_key not in info[name]:
                continue
            on, off = info[name][key], info[name][off_key]
            if on != off:
                failures.append((name, key, on, off))
    return failures


def check_bytecode_pairs(info: dict):
    """Enforce paired ``<key>[bytecode=on]`` == ``<key>[bytecode=off]``.

    The runtime micro-benchmarks record deterministic run facts (step
    counts, loop-event counts, ELPD verdict tallies) for both
    interpreter engines; the bytecode engine must produce *exactly* the
    tree walker's results — any difference means the identical-execution
    contract is broken, not that one engine is cheaper.
    """
    failures = []
    for name in sorted(info):
        for key in sorted(info[name]):
            if not key.endswith("[bytecode=on]"):
                continue
            off_key = key[: -len("[bytecode=on]")] + "[bytecode=off]"
            if off_key not in info[name]:
                continue
            on, off = info[name][key], info[name][off_key]
            if on != off:
                failures.append((name, key, on, off))
    return failures


def check_max_ratios(current: dict, specs):
    """Enforce ``NUM:DEN:R`` pairs on the *current* means.

    Fails when ``mean(NUM) > mean(DEN) * R``.  Used for benchmarks whose
    relationship — not absolute time — is the invariant: e.g. the
    parallel pipeline schedule may not cost more than a constant factor
    over the serial one, even on a single-core runner where it cannot
    be faster.
    """
    failures = []
    rows = []
    for spec in specs:
        try:
            num, den, ratio_s = spec.split(":")
            limit = float(ratio_s)
        except ValueError:
            failures.append((spec, "malformed; expected NUM:DEN:RATIO"))
            continue
        if num not in current or den not in current:
            failures.append((spec, "benchmark missing from current file"))
            continue
        ratio = current[num] / current[den] if current[den] else float("inf")
        rows.append((num, den, ratio, limit))
        if ratio > limit:
            failures.append(
                (spec, f"ratio {ratio:.2f}x exceeds limit {limit:.2f}x")
            )
    return failures, rows


def check_multicore() -> int:
    """Live multicore gate: the process pool must beat the serial loop.

    Runs ``benchmarks/test_pipeline_multicore.py`` (whole suite, serial
    vs ``run_pipeline_batch`` at 4 process workers) and enforces a
    cpu-aware speedup floor: >= 2x with 4+ cores, >= 1.2x with 2-3.
    On a single-core runner there is no true parallelism to measure —
    the gate skips with an explicit notice and exit 0.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"multicore gate: SKIPPED — os.cpu_count() = {cpus}; a "
            "process pool cannot beat the serial loop without a second "
            "core, so there is nothing to gate on this runner"
        )
        return 0
    floor = 2.0 if cpus >= 4 else 1.2
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_out = tmp.name
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                os.path.join(
                    REPO_ROOT, "benchmarks", "test_pipeline_multicore.py"
                ),
                "-q",
                "--benchmark-json",
                json_out,
            ],
            check=True,
            cwd=REPO_ROOT,
            env=env,
        )
        means = _load_means(json_out)
    finally:
        os.unlink(json_out)
    serial = means.get("test_suite_serial")
    pooled = means.get("test_suite_process_pool")
    if not serial or not pooled:
        print("FAIL: multicore benchmarks missing from the recorded run")
        return 1
    speedup = serial / pooled
    print(
        f"multicore gate: serial {serial * 1e3:.1f}ms / "
        f"process-pool {pooled * 1e3:.1f}ms = {speedup:.2f}x speedup "
        f"({cpus} cpus; floor {floor:.1f}x)"
    )
    if speedup < floor:
        print(
            f"FAIL: whole-suite process-pool speedup {speedup:.2f}x "
            f"below the {floor:.1f}x floor for {cpus} cpus"
        )
        return 1
    return 0


def check_throughput() -> int:
    """Live warm-fleet gate: warm batch rounds must beat cold ones.

    Runs ``benchmarks/test_batch_throughput.py`` (the single-unit suite
    programs streamed through ``run_pipeline_batch`` at 4 process
    workers, cold-per-round vs warm fleet) and enforces a cpu-aware
    speedup floor: >= 2x with 4+ cores, >= 1.2x with 2-3.  On a
    single-core runner the process pool serializes anyway and the
    cold/warm delta is dominated by noise — the gate skips with an
    explicit notice and exit 0.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"throughput gate: SKIPPED — os.cpu_count() = {cpus}; the "
            "warm fleet cannot demonstrate its speedup without a second "
            "core, so there is nothing to gate on this runner"
        )
        return 0
    floor = 2.0 if cpus >= 4 else 1.2
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_out = tmp.name
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                os.path.join(
                    REPO_ROOT, "benchmarks", "test_batch_throughput.py"
                ),
                "-q",
                "--benchmark-json",
                json_out,
            ],
            check=True,
            cwd=REPO_ROOT,
            env=env,
        )
        with open(json_out) as f:
            data = json.load(f)
        means = {
            b["name"]: b["stats"]["mean"] for b in data.get("benchmarks", [])
        }
        programs = {
            b["name"]: (b.get("extra_info") or {}).get("programs")
            for b in data.get("benchmarks", [])
        }
    finally:
        os.unlink(json_out)
    cold = means.get("test_batch_cold")
    warm = means.get("test_batch_warm")
    if not cold or not warm:
        print("FAIL: throughput benchmarks missing from the recorded run")
        return 1
    n = programs.get("test_batch_warm") or 0
    speedup = cold / warm
    print(
        f"throughput gate: cold {cold * 1e3:.1f}ms / warm "
        f"{warm * 1e3:.1f}ms per round = {speedup:.2f}x speedup"
        + (
            f" ({n / warm:.1f} programs/sec warm, {n / cold:.1f} cold)"
            if n
            else ""
        )
        + f" ({cpus} cpus; floor {floor:.1f}x)"
    )
    if speedup < floor:
        print(
            f"FAIL: warm-fleet batch speedup {speedup:.2f}x below the "
            f"{floor:.1f}x floor for {cpus} cpus"
        )
        return 1
    return 0


#: allowed end-to-end overhead of the job system (queue + fleet +
#: receipts) over calling the execution core directly
SERVE_OVERHEAD_LIMIT = 1.3


def check_serve() -> int:
    """Live serve-latency gate: the job system must stay cheap.

    Runs the paired-round driver in ``benchmarks/test_serve_latency.py``
    (every suite program as a closed-loop job through a persistent
    queue + 4-worker fleet, alternating round-for-round with the same
    requests through ``run_analyze`` directly) and enforces that the
    fleet path stays within ``SERVE_OVERHEAD_LIMIT`` of the direct
    path.  The fleet uses threads, so — unlike the multicore gate —
    this runs on any machine, single-core included.  The comparison is
    p50-to-p50 over the pooled per-request latencies (~150 samples a
    side), and the rounds interleave so machine drift on a shared
    runner cancels out of the ratio instead of landing on one side.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "benchmarks", "test_serve_latency.py"),
        ],
        check=True,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    stats = json.loads(proc.stdout.strip().splitlines()[-1])
    direct = stats.get("direct_p50_ms")
    fleet = stats.get("fleet_p50_ms")
    if not direct or not fleet:
        print("FAIL: serve latencies missing from the driver output")
        return 1
    overhead = fleet / direct
    print(
        f"serve gate: per-job p50 direct {direct:.2f}ms / "
        f"fleet {fleet:.2f}ms = {overhead:.2f}x overhead "
        f"(limit {SERVE_OVERHEAD_LIMIT:.1f}x)"
    )
    if overhead > SERVE_OVERHEAD_LIMIT:
        print(
            f"FAIL: job-system overhead {overhead:.2f}x exceeds the "
            f"{SERVE_OVERHEAD_LIMIT:.1f}x limit over direct invocation"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline pytest-benchmark JSON (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="pytest-benchmark JSON to check; omitted = run the "
        "micro-benchmarks now",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--require-faster",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this benchmark's current mean is strictly "
        "below the baseline's (repeatable); used to enforce that a PR "
        "actually improves its headline benchmark",
    )
    parser.add_argument(
        "--max-ratio",
        action="append",
        default=[],
        metavar="NUM:DEN:RATIO",
        help="fail unless current mean(NUM) <= mean(DEN) * RATIO "
        "(repeatable); gates relative cost between two benchmarks of "
        "the same run",
    )
    parser.add_argument(
        "--multicore",
        action="store_true",
        help="run only the live multicore gate (whole suite serial vs "
        "process pool); skips with a notice on single-core runners",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run only the live serve-latency gate (suite jobs through "
        "the queue + worker fleet vs direct invocation); thread-based, "
        "so it runs on any machine",
    )
    parser.add_argument(
        "--throughput",
        action="store_true",
        help="run only the live warm-fleet throughput gate (batched "
        "single-unit stream, warm vs cold rounds); skips with a notice "
        "on single-core runners",
    )
    args = parser.parse_args(argv)

    if args.multicore:
        return check_multicore()
    if args.serve:
        return check_serve()
    if args.throughput:
        return check_throughput()

    baseline = _load_means(args.baseline)
    baseline_info = _load_extra_info(args.baseline)
    if args.current is not None:
        current = _load_means(args.current)
        current_info = _load_extra_info(args.current)
    else:
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as tmp:
            json_out = tmp.name
        try:
            _run_benchmarks(json_out)
            current = _load_means(json_out)
            current_info = _load_extra_info(json_out)
        finally:
            os.unlink(json_out)

    failures = 0

    regressions, rows, skipped = compare(
        baseline, current, args.threshold
    )
    print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name, old, new, ratio in rows:
        flag = "  << REGRESSION" if (name, old, new, ratio) in regressions else ""
        print(
            f"{name:<40} {old * 1e3:>10.3f}ms {new * 1e3:>10.3f}ms "
            f"{ratio:>7.2f}x{flag}"
        )
    for name in skipped:
        print(f"{name:<40} (present in only one file; not gated)")
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) slower than "
            f"{args.threshold:.0%} over baseline"
        )
        failures += 1

    info_regressions, info_rows = compare_extra_info(
        baseline_info, current_info
    )
    if info_rows:
        print(f"\n{'op counter':<58} {'baseline':>10} {'current':>10}")
        for name, key, old, new in info_rows:
            flag = (
                "  << REGRESSION"
                if (name, key, old, new) in info_regressions
                else ""
            )
            print(f"{name + ': ' + key:<58} {old:>10} {new:>10}{flag}")
    if info_regressions:
        print(
            f"\nFAIL: {len(info_regressions)} op counter(s) above baseline"
        )
        failures += 1

    for name, key, on, off in check_oracle_pairs(current_info):
        print(
            f"\nFAIL: {name}: {key} = {on} must be strictly below "
            f"its [oracle=off] pair = {off}"
        )
        failures += 1

    for name, key, on, off in check_parity_pairs(current_info):
        print(
            f"\nFAIL: {name}: {key} = {on} must equal its "
            f"[packed=off] pair = {off} (kernel parity broken)"
        )
        failures += 1

    for name, key, on, off in check_bytecode_pairs(current_info):
        print(
            f"\nFAIL: {name}: {key} = {on} must equal its "
            f"[bytecode=off] pair = {off} (runtime parity broken)"
        )
        failures += 1

    for name in args.require_faster:
        if name not in baseline or name not in current:
            print(f"\nFAIL: --require-faster {name}: not in both files")
            failures += 1
        elif current[name] >= baseline[name]:
            print(
                f"\nFAIL: --require-faster {name}: "
                f"{current[name] * 1e3:.3f}ms !< "
                f"{baseline[name] * 1e3:.3f}ms baseline"
            )
            failures += 1
        else:
            print(
                f"\nrequired-faster {name}: "
                f"{current[name] * 1e3:.3f}ms < "
                f"{baseline[name] * 1e3:.3f}ms baseline"
            )

    ratio_failures, ratio_rows = check_max_ratios(current, args.max_ratio)
    for num, den, ratio, limit in ratio_rows:
        print(
            f"\nmax-ratio {num} / {den}: {ratio:.2f}x "
            f"(limit {limit:.2f}x)"
        )
    for spec, reason in ratio_failures:
        print(f"\nFAIL: --max-ratio {spec}: {reason}")
        failures += 1

    if failures:
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
