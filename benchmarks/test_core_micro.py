"""Micro-benchmarks of the analysis substrate hot paths.

These time the kernels the whole-program analyses are built from —
useful for profiling-guided work on the Fourier–Motzkin and feasibility
layers (per the optimization-workflow guidance: measure first).

The ``*_warm`` / ``*_cold`` variants isolate the effect of the interning
and memoization layer: warm benchmarks repeat an operation the memo
tables have already seen (steady-state analysis behaviour), cold ones
call :func:`repro.perf.reset_all_caches` each round to time the
construction path itself.  Compare runs against ``BENCH_baseline.json``
with ``benchmarks/check_regression.py``.
"""

import pytest

from repro import perf
from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import clear_cache, is_feasible
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion
from repro.regions.subtract import subtract_region
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const


def _chain_system(n=8):
    vs = [AffineExpr.var(f"x{i}") for i in range(n)]
    cons = [Constraint.ge(vs[0], C(0)), Constraint.le(vs[-1], C(100))]
    for a, b in zip(vs, vs[1:]):
        cons.append(Constraint.le(a, b))
        cons.append(Constraint.le(b, a + 3))
    return LinearSystem(cons)


def test_fourier_motzkin_chain(benchmark):
    system = _chain_system()
    variables = [f"x{i}" for i in range(1, 7)]
    result = benchmark(eliminate_all, system, variables)
    assert not result.is_trivially_empty()


def test_feasibility_uncached(benchmark):
    system = _chain_system()

    def probe():
        clear_cache()
        return is_feasible(system)

    assert benchmark(probe)


def test_region_subtraction(benchmark):
    d = AffineExpr.var("__d0")
    n = AffineExpr.var("n")
    a = ArrayRegion(
        "a", 1, LinearSystem([Constraint.ge(d, C(1)), Constraint.le(d, n)])
    )
    b = ArrayRegion(
        "a", 1, LinearSystem([Constraint.ge(d, C(5)), Constraint.le(d, n - 5)])
    )
    pieces = benchmark(subtract_region, a, b)
    assert len(pieces) == 2


def test_whole_program_analysis(benchmark):
    from repro.arraydf.options import AnalysisOptions
    from repro.partests.driver import analyze_program
    from repro.suites import get_program

    bench_prog = get_program("hydro2d")

    def analyze():
        return analyze_program(
            bench_prog.fresh_program(), AnalysisOptions.predicated()
        )

    result = benchmark(analyze)
    assert result.total_loops > 0


def test_fourier_motzkin_chain_cold(benchmark):
    """The elimination itself, without memo hits (reset every round)."""
    variables = [f"x{i}" for i in range(1, 7)]

    def probe():
        perf.reset_all_caches()
        return eliminate_all(_chain_system(), variables)

    result = benchmark(probe)
    assert not result.is_trivially_empty()


def test_region_subtraction_warm(benchmark):
    """Steady-state subtraction: interned keys, memoized result."""
    d = AffineExpr.var("__d0")
    n = AffineExpr.var("n")
    a = ArrayRegion(
        "a", 1, LinearSystem([Constraint.ge(d, C(1)), Constraint.le(d, n)])
    )
    b = ArrayRegion(
        "a", 1, LinearSystem([Constraint.ge(d, C(5)), Constraint.le(d, n - 5)])
    )
    subtract_region(a, b)  # prime the memo
    pieces = benchmark(subtract_region, a, b)
    assert len(pieces) == 2


def test_interned_expr_arithmetic(benchmark):
    """Hot-path affine arithmetic over interned all-int expressions."""
    x = AffineExpr.var("x")
    y = AffineExpr.var("y")

    def probe():
        e = x * 3 + y - 7
        e = e + x
        e = -e
        e = e / 2  # falls back to exact rational path
        return e * 2 + e

    assert not benchmark(probe).is_constant()


def test_interpreter_throughput(benchmark):
    from repro.lang.parser import parse_program
    from repro.runtime.interp import run_program

    program = parse_program(
        "program t\ninteger n\nreal a(5000)\nread n\n"
        "do r = 1, 5\n do i = 1, n\n  a(i) = a(i) * 0.5 + 1.0\n enddo\nenddo\n"
        "end\n"
    )
    result = benchmark(run_program, program, [4000])
    assert result.steps > 20000
