"""FIGS bench — regenerate the speedup comparison figures."""

from conftest import emit

from repro.experiments import fig_speedups


def test_fig_speedups(benchmark, printed):
    result = benchmark.pedantic(fig_speedups.run, rounds=1, iterations=1)
    emit(printed, "figs", result.format())
    improved = result.improved_programs()
    # the paper's claim: improved speedups for 5 programs
    assert len(improved) == 5
    assert set(improved) == {"tomcatv", "su2cor", "appbt", "adm", "trfd"}
    for r in result.results:
        # predicated code is never catastrophically worse than base:
        # the run-time tests are low-cost
        assert r.predicated.at(8) > 0.75 * r.base.at(8), r.program
        # speedups never exceed the processor count (sanity)
        for p in (1, 2, 4, 8):
            assert r.predicated.at(p) <= p + 0.5
            assert r.base.at(p) <= p + 0.5
