"""Pipeline scheduling benchmarks: serial vs intra-program parallel.

Times the full pass pipeline (cold caches each round) on the largest
multi-procedure program in the suite, once with the serial pass-major
schedule (``jobs=1``) and once with the dependency-driven thread
schedule (``jobs=4``).  Results are byte-identical by construction (the
integration suite pins that); these benchmarks gate the *cost* of the
scheduler instead:

* ``test_pipeline_serial`` keeps the pipeline no slower than the legacy
  monolithic driver (``test_pipeline_legacy_driver``), and
* ``test_pipeline_parallel`` bounds scheduling overhead — on a
  single-core runner threads cannot win, so ``make perfgate`` checks
  the parallel mean stays within a constant factor of the serial one
  (``--max-ratio``) rather than demanding a speedup.
"""

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline import run_pipeline, set_pipeline
from repro.suites import get_program

#: largest multi-procedure program in the suite (by statement count)
PROGRAM = "applu"


def _pipeline_run(jobs):
    perf.reset_all_caches()
    ctx = run_pipeline(
        get_program(PROGRAM).fresh_program(),
        AnalysisOptions.predicated(),
        jobs=jobs,
    )
    return ctx.get("result")


def test_pipeline_serial(benchmark):
    result = benchmark(_pipeline_run, 1)
    assert result.total_loops > 0
    perf.reset_all_caches()
    perf.reset_counters()
    _pipeline_run(1)
    benchmark.extra_info["total_ops[jobs=1]"] = perf.total_ops()


def test_pipeline_parallel(benchmark):
    result = benchmark(_pipeline_run, 4)
    assert result.total_loops > 0


def test_pipeline_legacy_driver(benchmark):
    from repro.partests.driver import analyze_program

    def run():
        perf.reset_all_caches()
        try:
            set_pipeline(False)
            return analyze_program(
                get_program(PROGRAM).fresh_program(),
                AnalysisOptions.predicated(),
            )
        finally:
            set_pipeline(None)

    result = benchmark(run)
    assert result.total_loops > 0
