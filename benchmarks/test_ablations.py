"""Ablation benches — the design choices DESIGN.md calls out.

Each ablation disables one mechanism and measures how many of the
predicated analysis's wins survive; the deltas quantify what each
mechanism contributes to the TAB1 totals.
"""

from conftest import emit

from repro.arraydf.options import AnalysisOptions
from repro.experiments.common import WIN_STATUSES, format_table
from repro.partests.driver import analyze_program
from repro.suites import all_programs

CONFIGS = {
    "full": AnalysisOptions.predicated(),
    "no-embedding": AnalysisOptions.predicated().without(embedding=False),
    "no-extraction": AnalysisOptions.predicated().without(extraction=False),
    "no-runtime-tests": AnalysisOptions.compile_time_only(),
    "no-interprocedural": AnalysisOptions.predicated().without(
        interprocedural=False
    ),
    "base": AnalysisOptions.base(),
}


def _wins(opts):
    count = 0
    for bench in all_programs():
        res = analyze_program(bench.fresh_program(), opts)
        base = analyze_program(bench.fresh_program(), AnalysisOptions.base())
        base_status = {l.label: l.status for l in base.loops}
        for l in res.loops:
            if (
                l.status in WIN_STATUSES
                and base_status.get(l.label)
                not in WIN_STATUSES + ("not_candidate",)
            ):
                count += 1
    return count


def _run_all():
    return {name: _wins(opts) for name, opts in CONFIGS.items()}


def test_ablations(benchmark, printed):
    wins = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [[name, count] for name, count in wins.items()]
    emit(
        printed,
        "ablations",
        format_table(
            ["configuration", "wins over base"], rows, title="Ablations"
        ),
    )
    full = wins["full"]
    assert full > 0
    assert wins["base"] == 0
    # every mechanism contributes: each ablation loses at least one win
    for name in ("no-embedding", "no-extraction", "no-runtime-tests"):
        assert wins[name] < full, name
    # compile-time-only mode is the Gu/Li/Lee-style comparator: it keeps
    # the correlation wins but loses every run-time test
    assert wins["no-runtime-tests"] >= 1
