"""Byte-identity of the pass pipeline against the legacy path.

The pipeline refactor is a pure restructuring: the same code runs in
the same data-dependence order, so

* the formatted experiment outputs (the paper's tables) must match the
  legacy monolithic driver byte for byte, and
* a parallel schedule (``jobs > 1``) must match the serial one byte for
  byte — wall-clock timing lines excluded, everything else pinned.

Budget exhaustion inside any pass must keep the legacy sound-degradation
semantics: decisions only ever demote to serial and nothing degraded is
cached.
"""

import re
import warnings

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.codegen.report import format_report
from repro.experiments import fig1_examples, table2_programs
from repro.lang.prettyprint import pretty
from repro.pipeline import run_pipeline, run_pipeline_batch, set_pipeline
from repro.service import Budget, budget_scope
from repro.service.cache import SummaryCache
from repro.suites import all_programs, get_program

_TIMING = re.compile(r"analysis: [0-9.]+ ms")


def _formatted(pipeline_on):
    set_pipeline(pipeline_on)
    perf.reset_all_caches()
    perf.reset_counters()
    return (
        table2_programs.run().format(),
        fig1_examples.run().format(),
    )


class TestPipelineVsLegacy:
    def test_experiment_outputs_byte_identical(self):
        try:
            with_pipeline = _formatted(True)
            legacy = _formatted(False)
        finally:
            set_pipeline(None)
            perf.reset_all_caches()
        assert with_pipeline[0] == legacy[0]  # Table 2 (predicated)
        assert with_pipeline[1] == legacy[1]  # Figure 1 examples


class TestParallelVsSerial:
    def _outputs(self, program, jobs):
        ctx = run_pipeline(
            program,
            AnalysisOptions.predicated(),
            jobs=jobs,
            goals=("result", "transformed"),
        )
        report = _TIMING.sub(
            "analysis: - ms", format_report(ctx.get("result"), title="t")
        )
        return report, pretty(ctx.get("transformed"))

    def test_every_suite_program_identical_any_job_count(self):
        for bench in all_programs():
            serial = self._outputs(bench.fresh_program(), jobs=1)
            parallel = self._outputs(bench.fresh_program(), jobs=4)
            assert serial == parallel, bench.name


class TestProcessExecutorIdentity:
    """``--executor process`` is invisible in every artifact.

    Workers rebuild the substrate per process and ship payloads back as
    pickled projections; the parent rebinds them in deterministic parse
    order, so the report and the transformed source must match the
    serial schedule byte for byte — for every suite program and any job
    count.
    """

    def _outputs(self, program, jobs, executor="thread"):
        ctx = run_pipeline(
            program,
            AnalysisOptions.predicated(),
            jobs=jobs,
            executor=executor,
            goals=("result", "transformed"),
        )
        report = _TIMING.sub(
            "analysis: - ms", format_report(ctx.get("result"), title="t")
        )
        return report, pretty(ctx.get("transformed"))

    def test_every_suite_program_identical_under_process_pool(self):
        for bench in all_programs():
            serial = self._outputs(bench.fresh_program(), jobs=1)
            pooled = self._outputs(
                bench.fresh_program(), jobs=2, executor="process"
            )
            assert serial == pooled, bench.name

    def test_multi_unit_programs_identical_at_any_job_count(self):
        for name in ("applu", "turb3d"):
            bench = get_program(name)
            serial = self._outputs(bench.fresh_program(), jobs=1)
            for jobs in (2, 4):
                pooled = self._outputs(
                    bench.fresh_program(), jobs=jobs, executor="process"
                )
                assert serial == pooled, (name, jobs)

    def test_batch_matches_serial_loop_for_both_executors(self):
        benches = all_programs()[:8]
        programs = [b.fresh_program() for b in benches]
        serial = run_pipeline_batch(programs, jobs=1)

        def rows(results):
            return [
                [
                    (l.label, l.status, str(l.condition), l.enclosed)
                    for l in r.loops
                ]
                for r in results
            ]

        base = rows(serial)
        for executor in ("thread", "process"):
            got = run_pipeline_batch(
                [b.fresh_program() for b in benches],
                jobs=4,
                executor=executor,
            )
            assert rows(got) == base, executor


class TestBudgetDegradationThroughPipeline:
    def _statuses(self, result):
        return {l.label: l.status for l in result.loops}

    def _run(self, program, budget=None, cache=None, jobs=1):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with budget_scope(budget):
                ctx = run_pipeline(
                    program,
                    AnalysisOptions.predicated(),
                    cache=cache,
                    jobs=jobs,
                )
        return ctx

    def test_exhaustion_demotes_soundly_and_marks_context(self):
        perf.reset_all_caches()
        bench = all_programs()[0]
        before = perf.counter("budget.degraded_unit") + perf.counter(
            "budget.degraded_loop"
        )
        ctx = self._run(
            bench.fresh_program(), Budget(max_fm_constraints=1), jobs=2
        )
        tripped = (
            perf.counter("budget.degraded_unit")
            + perf.counter("budget.degraded_loop")
        ) - before
        assert tripped > 0, "budget never tripped — test is vacuous"
        assert ctx.degraded or ctx.engine.tainted_units
        degraded = self._statuses(ctx.get("result"))
        precise = self._statuses(
            self._run(bench.fresh_program()).get("result")
        )
        assert degraded.keys() == precise.keys()
        for label, status in precise.items():
            if degraded[label] != status:
                assert degraded[label] == "serial"
                assert status != "not_candidate"

    def test_degraded_pass_results_never_cached(self, tmp_path):
        perf.reset_all_caches()
        cache = SummaryCache(tmp_path / "c")
        bench = all_programs()[0]
        self._run(
            bench.fresh_program(),
            Budget(max_fm_constraints=1),
            cache=cache,
            jobs=2,
        )
        # the budget-independent screen rows may be stored; the degraded
        # analysis artifacts (summaries, decisions) must not be
        degradable = [
            p
            for p in cache.root.glob("*/*.pkl")
            if not p.name.endswith(".screen.pkl")
        ]
        assert degradable == []
        # an unbudgeted run then stores the precise artifacts
        ctx = self._run(bench.fresh_program(), cache=cache)
        assert [
            p
            for p in cache.root.glob("*/*.pkl")
            if not p.name.endswith(".screen.pkl")
        ]
        assert not ctx.degraded


class TestProgramCacheFastPath:
    def test_warm_pipeline_run_rebinds_whole_program(self, tmp_path):
        perf.reset_all_caches()
        cache = SummaryCache(tmp_path / "c")
        bench = get_program("turb3d")
        cold = run_pipeline(
            bench.fresh_program(), AnalysisOptions.predicated(), cache=cache
        )
        hits = perf.counter("cache.program_hit")
        warm = run_pipeline(
            bench.fresh_program(), AnalysisOptions.predicated(), cache=cache
        )
        assert perf.counter("cache.program_hit") > hits
        assert not warm.has("engine")  # nothing upstream was scheduled
        cold_rows = [
            (l.label, l.status, str(l.condition), l.enclosed)
            for l in cold.get("result").loops
        ]
        warm_rows = [
            (l.label, l.status, str(l.condition), l.enclosed)
            for l in warm.get("result").loops
        ]
        assert cold_rows == warm_rows
