"""Byte-identity of experiment outputs with the packed kernel on vs. off.

The packed integer-matrix FM kernel is a pure cost optimization: every
projection, feasibility verdict and entailment must be unchanged, so the
formatted experiment outputs — the paper's tables — must match byte for
byte between the two kernels, from cold caches *and* on a warm re-run
(the memo layers differ between modes: ``fm.eliminate`` vs
``fm.packed.reuse``).  (Cost figures like the fig_overhead op counts
legitimately differ; identity is asserted on the result tables.)
"""

from repro import perf
from repro.experiments import fig1_examples, table1_loops, table2_programs


def _formatted(enabled):
    perf.set_packed_kernel(enabled)
    perf.reset_all_caches()
    perf.reset_counters()
    cold = (
        table1_loops.run().format(),
        table2_programs.run().format(),
        fig1_examples.run().format(),
    )
    warm = (
        table1_loops.run().format(),
        table2_programs.run().format(),
        fig1_examples.run().format(),
    )
    return cold, warm


def test_experiment_outputs_identical_both_kernels():
    try:
        packed_cold, packed_warm = _formatted(True)
        legacy_cold, legacy_warm = _formatted(False)
    finally:
        perf.set_packed_kernel(None)
        perf.reset_all_caches()
    assert packed_cold == legacy_cold  # Table 1 / Table 2 / Figure 1
    assert packed_warm == legacy_warm
    assert packed_cold == packed_warm  # warm replay is stable per mode
