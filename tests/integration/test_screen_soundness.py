"""The tier-0 dependence screen is sound: screened ⊆ proven parallel.

A loop the screen marks *independent* must be one the full predicated
analysis proves parallel with a trivially-true condition — the screen
may only ever skip work, never flip a decision.  The sweep runs the
whole benchmark suite under every analysis-options set, then the same
seeded random structured programs the end-to-end fuzzer generates,
comparing the screen's verdicts against the screen-off analysis.
"""

from hypothesis import HealthCheck, given, settings

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.screen import screen_unit
from repro.ir.symboltable import SymbolTable
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.suites import all_programs

from tests.integration.test_fuzz_soundness import programs

OPTION_SETS = [
    ("base", AnalysisOptions.base()),
    ("predicated", AnalysisOptions.predicated()),
    ("no-embedding", AnalysisOptions.predicated().without(embedding=False)),
]

#: statuses an independently-screened loop may legitimately carry
PROVEN = ("parallel", "parallel_private")


def _screen_labels(program):
    """Labels every unit's screen marks independent, program-wide."""
    labels = set()
    for name, unit in program.units.items():
        screen = screen_unit(unit, SymbolTable(unit))
        labels.update(screen.independent_labels)
    return labels


def _check_program(source_or_program, opts, context):
    program = (
        parse_program(source_or_program)
        if isinstance(source_or_program, str)
        else source_or_program
    )
    screened = _screen_labels(program)
    perf.set_dep_screen(False)
    try:
        perf.reset_all_caches()
        result = analyze_program(program, opts)
    finally:
        perf.set_dep_screen(None)
        perf.reset_all_caches()
    status = {l.label: (l.status, str(l.condition)) for l in result.loops}
    for label in screened:
        st, cond = status[label]
        assert st in PROVEN, (
            f"{context}: screen marked {label} independent but the "
            f"analysis says {st}"
        )
        assert cond == "TRUE", (
            f"{context}: screened loop {label} carries a non-trivial "
            f"condition {cond}"
        )


class TestSuiteSweep:
    def test_screen_never_beats_the_analysis(self):
        checked = 0
        for bench in all_programs():
            for tag, opts in OPTION_SETS:
                program = bench.fresh_program()
                checked += len(_screen_labels(program))
                _check_program(program, opts, f"{bench.name}/{tag}")
        assert checked > 0, "screen never fired — sweep is vacuous"


class TestFuzzSweep:
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,  # a fixed seeded corpus: deterministic in CI
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )
    @given(programs())
    def test_screen_never_beats_the_analysis(self, case):
        source, _ = case
        _check_program(
            source, AnalysisOptions.predicated(), "fuzz\n" + source
        )
