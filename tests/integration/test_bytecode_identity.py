"""Bit-identity of every suite program under both interpreter engines.

The bytecode engine is a pure cost optimization: for each of the suite
programs (the paper's benchmark set) the full ``ExecutionResult`` —
printed output, step count, final scalar and array state down to the
IEEE-754 bit pattern, and the loop-event stream including two-version
dispatch outcomes under a real ``ParallelPlan`` — must match the tree
walker exactly, and the ELPD / combined-oracle reports (the dynamic
ground truth the paper's tables compare against) must be identical too.
Any divergence here would mean the experiment figures depend on which
engine happened to run them.
"""

import struct

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.partests.driver import analyze_program
from repro.runtime.elpd import run_elpd, run_oracle
from repro.runtime.interp import Interpreter
from repro.suites import all_programs

PROGRAMS = [b.name for b in all_programs()]


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return ("i", value)


def _facts(result):
    return {
        "outputs": result.outputs,
        "steps": result.steps,
        "scalars": {n: _bits(v) for n, v in result.main_scalars.items()},
        "scalar_order": list(result.main_scalars),
        "arrays": {
            name: sorted((off, _bits(v)) for off, v in cells.items())
            for name, cells in result.main_arrays.items()
        },
        "loop_events": [
            (e.label, e.nid, e.iterations, e.ran_parallel_version)
            for e in result.loop_events
        ],
    }


def _in_mode(enabled, fn):
    perf.set_bytecode(enabled)
    perf.reset_all_caches()
    try:
        return fn()
    finally:
        perf.set_bytecode(None)


def _report_facts(report):
    return {
        "steps": report.steps,
        "observations": {
            label: (
                obs.classification,
                obs.instances,
                obs.total_iterations,
                sorted(obs.conflict_arrays),
                sorted(obs.flow_arrays),
            )
            for label, obs in report.observations.items()
        },
    }


@pytest.mark.parametrize("name", PROGRAMS)
def test_execution_identity(name):
    bench = next(b for b in all_programs() if b.name == name)
    program = bench.fresh_program()
    plan = build_plan(analyze_program(program, AnalysisOptions.predicated()))

    plain = [
        _in_mode(m, lambda: _facts(Interpreter(program, bench.inputs).run()))
        for m in (True, False)
    ]
    assert plain[0] == plain[1], f"{name}: plain run diverged"

    planned = [
        _in_mode(
            m,
            lambda: _facts(
                Interpreter(program, bench.inputs, plan=plan).run()
            ),
        )
        for m in (True, False)
    ]
    assert planned[0] == planned[1], f"{name}: planned run diverged"


@pytest.mark.parametrize("name", PROGRAMS)
def test_oracle_identity(name):
    bench = next(b for b in all_programs() if b.name == name)
    elpd = [
        _in_mode(
            m,
            lambda: _report_facts(
                run_elpd(bench.fresh_program(), bench.inputs)
            ),
        )
        for m in (True, False)
    ]
    assert elpd[0] == elpd[1], f"{name}: ELPD report diverged"

    oracle = [
        _in_mode(
            m,
            lambda: _report_facts(
                run_oracle(bench.fresh_program(), bench.inputs)
            ),
        )
        for m in (True, False)
    ]
    assert oracle[0] == oracle[1], f"{name}: oracle report diverged"
