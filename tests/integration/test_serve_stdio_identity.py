"""``serve --stdio`` is byte-identical to the pre-queue JSON-lines server.

The job-system refactor rebuilt the stdio loop on the persistent queue +
worker fleet.  Its wire contract did not move: for every program of the
full benchmark suite, the emitted line must equal
``json.dumps(handle_request(req), sort_keys=True)`` — the exact
serialization the pre-refactor server produced — and a multi-worker
fleet must emit the same bytes in the same (request) order as a
single worker.
"""

import io
import json

from repro.service.server import handle_request, serve
from repro.suites import all_programs


def _serve_bytes(requests, **kwargs):
    stdin = io.StringIO(
        "".join(json.dumps(r) + "\n" for r in requests)
    )
    stdout = io.StringIO()
    count = serve(stdin, stdout, **kwargs)
    assert count == len(requests)
    return stdout.getvalue().splitlines()


class TestStdioIdentity:
    def test_full_suite_byte_identical_to_direct_handler(self):
        requests = [
            {"id": i, "source": bench.source}
            for i, bench in enumerate(all_programs())
        ]
        expected = [
            json.dumps(handle_request(dict(r)), sort_keys=True)
            for r in requests
        ]
        served = _serve_bytes(requests)
        assert served == expected

    def test_fleet_size_does_not_change_bytes(self):
        requests = [
            {"id": i, "source": bench.source}
            for i, bench in enumerate(all_programs())
        ]
        serial = _serve_bytes(requests, jobs=1)
        fleet = _serve_bytes(requests, jobs=4)
        assert fleet == serial

    def test_mixed_good_and_bad_lines_keep_order(self):
        bench = all_programs()[0]
        stdin = io.StringIO(
            json.dumps({"id": 0, "source": bench.source}) + "\n"
            + "not json\n"
            + json.dumps({"id": 2, "source": bench.source}) + "\n"
        )
        stdout = io.StringIO()
        assert serve(stdin, stdout, jobs=2) == 3
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert lines[0]["id"] == 0 and lines[0]["ok"]
        assert lines[1]["id"] is None and "bad JSON" in lines[1]["error"]
        assert lines[2]["id"] == 2 and lines[2]["ok"]

    def test_experiment_kind_over_stdio(self):
        stdin = io.StringIO(
            json.dumps({"id": 0, "kind": "experiment", "which": "fig1"})
            + "\n"
        )
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 1
        (line,) = stdout.getvalue().splitlines()
        resp = json.loads(line)
        assert resp["ok"] and resp["which"] == "fig1"
        assert "output" in resp

    def test_unknown_kind_is_a_local_error_line(self):
        stdin = io.StringIO(json.dumps({"id": 3, "kind": "bogus"}) + "\n")
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 1
        (line,) = stdout.getvalue().splitlines()
        resp = json.loads(line)
        assert resp["id"] == 3 and not resp["ok"] and "bogus" in resp["error"]

    def test_queue_dir_keeps_journal_and_receipts(self, tmp_path):
        bench = all_programs()[0]
        qdir = tmp_path / "q"
        _serve_bytes(
            [{"id": 0, "source": bench.source}], queue_dir=str(qdir)
        )
        from repro.service.queue import JobQueue
        from repro.service.receipts import validate_receipt

        q = JobQueue(qdir, recover=False)
        assert q.state("j00000001") == "done"
        assert validate_receipt(q.receipt("j00000001")) == []
