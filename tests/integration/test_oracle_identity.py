"""Byte-identity of experiment outputs with the oracle on vs. off.

The tiered oracle is a pure cost optimization: every `is_unsat` /
`implies` / `equivalent` answer must be unchanged, so the formatted
experiment outputs — the paper's tables — must match byte for byte
between the two modes.  (Cost figures like the fig_overhead op counts
legitimately differ; identity is asserted on the result tables.)
"""

from repro import perf
from repro.experiments import fig1_examples, table2_programs


def _formatted(enabled):
    perf.set_pred_oracle(enabled)
    perf.reset_all_caches()
    perf.reset_counters()
    return (
        table2_programs.run().format(),
        fig1_examples.run().format(),
    )


def test_experiment_outputs_identical_both_modes():
    try:
        with_oracle = _formatted(True)
        without_oracle = _formatted(False)
    finally:
        perf.set_pred_oracle(None)
        perf.reset_all_caches()
    assert with_oracle[0] == without_oracle[0]  # Table 2 (predicated)
    assert with_oracle[1] == without_oracle[1]  # Figure 1 examples
