"""Integration: two-version codegen over every benchmark program.

For each of the 30 suite programs: build the plan, transform, pretty-
print, re-parse, and execute both versions — the transformed program
must compute exactly the same final state as the original on the suite
inputs.
"""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.codegen.twoversion import transform_program
from repro.lang.parser import parse_program
from repro.lang.prettyprint import pretty
from repro.partests.driver import analyze_program
from repro.runtime.interp import run_program
from repro.suites import all_programs

PROGRAMS = all_programs()


@pytest.mark.parametrize("bench", PROGRAMS, ids=lambda p: p.name)
class TestSuiteCodegen:
    def test_two_version_semantics(self, bench):
        program = bench.fresh_program()
        result = analyze_program(program, AnalysisOptions.predicated())
        plan = build_plan(result)
        transformed = transform_program(program, plan)
        ref = run_program(bench.fresh_program(), bench.inputs)
        got = run_program(transformed, bench.inputs)
        assert got.main_arrays == ref.main_arrays
        assert got.outputs == ref.outputs

    def test_transformed_source_reparses(self, bench):
        program = bench.fresh_program()
        result = analyze_program(program, AnalysisOptions.predicated())
        plan = build_plan(result)
        transformed = transform_program(program, plan)
        text = pretty(transformed)
        reparsed = parse_program(text)
        assert set(reparsed.units) == set(transformed.units)
