"""Byte-identity of experiment outputs with the dependence screen on vs. off.

The tier-0 screen is a pure cost optimization: a loop it marks
independent must get exactly the decision the full predicated analysis
would have produced, so the formatted experiment outputs — the paper's
tables and figure — must match byte for byte between the two modes,
from cold caches *and* on a warm re-run (the warm path differs: screen
rows are cache entries of their own kind and screened units skip
summarization outright).
"""

from repro import perf
from repro.experiments import (
    fig1_examples,
    table1_loops,
    table2_programs,
    table3_categories,
)


def _formatted(enabled):
    perf.set_dep_screen(enabled)
    perf.reset_all_caches()
    perf.reset_counters()
    cold = (
        table1_loops.run().format(),
        table2_programs.run().format(),
        table3_categories.run().format(),
        fig1_examples.run().format(),
    )
    warm = (
        table1_loops.run().format(),
        table2_programs.run().format(),
        table3_categories.run().format(),
        fig1_examples.run().format(),
    )
    return cold, warm


def test_experiment_outputs_identical_screen_on_and_off():
    try:
        on_cold, on_warm = _formatted(True)
        off_cold, off_warm = _formatted(False)
    finally:
        perf.set_dep_screen(None)
        perf.reset_all_caches()
    assert on_cold == off_cold  # Table 1 / Table 2 / Table 3 / Figure 1
    assert on_warm == off_warm
    assert on_cold == on_warm  # warm replay is stable per mode


def test_screen_counters_fire_during_experiments():
    try:
        perf.set_dep_screen(True)
        perf.reset_all_caches()
        perf.reset_counters()
        table2_programs.run()
        counters = perf.snapshot()["counters"]
    finally:
        perf.set_dep_screen(None)
        perf.reset_all_caches()
    assert counters.get("screen.independent", 0) > 0
    assert counters.get("screen.saved_units", 0) > 0
    assert counters.get("screen.disagree", 0) == 0
