"""Concurrent traffic through the HTTP front door.

N client threads POST a mixed analyze/experiment workload at a live
server with a 4-worker fleet.  Every job must complete, every analyze
response must equal the single-threaded ground truth (the direct
handler), and the shared summary cache must warm monotonically across
waves of identical jobs.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import perf
from repro.service.cache import set_default_cache_dir
from repro.service.http import ServiceServer
from repro.service.jobs import run_experiment
from repro.service.queue import JobQueue
from repro.service.server import handle_request
from repro.service.workers import WorkerFleet
from repro.suites import all_programs

CLIENTS = 4
PROGRAMS = 6  # suite programs in the mix (each submitted by every client)


@pytest.fixture
def service(tmp_path):
    set_default_cache_dir(str(tmp_path / "cache"))
    queue = JobQueue(tmp_path / "q", capacity=512)
    fleet = WorkerFleet(queue, workers=4).start()
    server = ServiceServer(("127.0.0.1", 0), queue, fleet)
    t = threading.Thread(target=server.serve_forever, daemon=True)
    t.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", queue
    finally:
        server.shutdown()
        server.server_close()
        fleet.drain(timeout=60.0)
        set_default_cache_dir(None)


def _post_job(base, body):
    req = urllib.request.Request(
        base + "/v1/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as r:
        assert r.status == 202
        return json.loads(r.read())["id"]

def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as r:
        return json.loads(r.read())


def _wait_done(base, jid, timeout_s=300.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        payload = _get(base, f"/v1/jobs/{jid}")
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {jid} never finished")


def test_concurrent_mixed_traffic_matches_serial_ground_truth(service):
    base, _queue = service
    suite = all_programs()[:PROGRAMS]
    analyze_reqs = [
        {"id": i, "source": bench.source} for i, bench in enumerate(suite)
    ]
    # single-threaded ground truth through the direct handler (shares
    # the cache; responses are byte-identical warm or cold)
    truth = {
        r["id"]: handle_request(dict(r)) for r in analyze_reqs
    }
    experiment_truth = run_experiment({"id": "x", "which": "fig1"})[0]

    results = {}
    errors = []
    lock = threading.Lock()

    def client(cid):
        try:
            ids = []
            for r in analyze_reqs:
                ids.append((_post_job(base, dict(r)), r["id"]))
            if cid == 0:  # one experiment rides along with the flood
                ids.append(
                    (
                        _post_job(
                            base,
                            {"id": "x", "kind": "experiment", "which": "fig1"},
                        ),
                        "experiment",
                    )
                )
            for jid, rid in ids:
                payload = _wait_done(base, jid)
                with lock:
                    results[(cid, jid)] = (rid, payload)
        except Exception as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append((cid, repr(exc)))

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors
    assert len(results) == CLIENTS * PROGRAMS + 1
    for (cid, jid), (rid, payload) in results.items():
        assert payload["state"] == "done", (cid, jid, payload)
        if rid == "experiment":
            assert payload["response"] == experiment_truth
        else:
            assert payload["response"] == truth[rid], (cid, jid)

    # every completed job left a valid receipt behind
    from repro.service.receipts import validate_receipt

    for (_cid, jid), _ in results.items():
        receipt = _get(base, f"/v1/jobs/{jid}/receipt")
        assert validate_receipt(receipt) == []


def test_shared_cache_warms_monotonically(service):
    base, _queue = service
    bench = all_programs()[0]
    req = {"id": 0, "source": bench.source}

    jid = _post_job(base, dict(req))
    assert _wait_done(base, jid)["state"] == "done"
    stats_after_first = _get(base, "/v1/stats")
    base_hits = perf.counter("cache.program_hit")

    # a second wave of the identical job: pure program-cache hits
    ids = [_post_job(base, dict(req)) for _ in range(3)]
    for jid in ids:
        assert _wait_done(base, jid)["state"] == "done"
    stats_after_second = _get(base, "/v1/stats")

    assert perf.counter("cache.program_hit") >= base_hits + 3
    first = stats_after_first["counters"].get("cache.program_hit", 0)
    second = stats_after_second["counters"].get("cache.program_hit", 0)
    assert second >= first + 3  # monotone, and visible through /v1/stats
