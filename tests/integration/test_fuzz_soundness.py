"""Property-based end-to-end soundness fuzzing.

Random structured programs (loops, guarded conditionals, affine and
offset subscripts) are pushed through the whole pipeline, checking the
system-level invariants from DESIGN.md §6:

* a loop the predicated analysis parallelizes at compile time is never
  classified *dependent* by the ELPD oracle on any generated input;
* a run-time-tested loop whose test passes at execution time is never
  ELPD-dependent either (the derived predicate is correct);
* the two-version transform preserves program semantics exactly;
* the base analysis never parallelizes a loop the predicated analysis
  rejects (monotonicity of precision).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.codegen.twoversion import transform_program
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.runtime.elpd import run_oracle
from repro.runtime.interp import Interpreter, run_program

ARRAYS = ["fa", "fb", "fc"]
SIZE = 96

# subscript forms, all ≥ 1 for index values in [1, 12] and k in [0, 4]
SUBSCRIPTS = [
    "{i}",
    "{i} + 1",
    "{i} + 2",
    "{i} + k",
    "2 * {i}",
    "3",
    "7",
]

CONDS = [
    "x > 0",
    "x > 2",
    "{i} > 2",
    "{i} <= k + 3",
    "mod(x, 2) == 0",
    "n > 5",
]


@st.composite
def statements(draw, depth, index_vars):
    """A list of statements at the given nesting depth."""
    n_stmts = draw(st.integers(min_value=1, max_value=2))
    out = []
    for _ in range(n_stmts):
        kind = draw(
            st.sampled_from(
                ["assign", "assign", "if", "loop"]
                if depth < 2
                else ["assign", "assign", "if"]
            )
        )
        i = index_vars[-1] if index_vars else None
        if kind == "assign" and i is not None:
            target_arr = draw(st.sampled_from(ARRAYS))
            tsub = draw(st.sampled_from(SUBSCRIPTS)).format(i=i)
            src_arr = draw(st.sampled_from(ARRAYS))
            ssub = draw(st.sampled_from(SUBSCRIPTS)).format(i=i)
            op = draw(st.sampled_from(["+ 1.0", "* 0.5", "+ 2.0"]))
            out.append(f"{target_arr}({tsub}) = {src_arr}({ssub}) {op}")
        elif kind == "assign":
            arr = draw(st.sampled_from(ARRAYS))
            c = draw(st.integers(min_value=1, max_value=9))
            out.append(f"{arr}({c}) = {c} * 1.0")
        elif kind == "if" and i is not None:
            cond = draw(st.sampled_from(CONDS)).format(i=i)
            then_body = draw(statements(depth + 1, index_vars))
            out.append(f"if ({cond}) then")
            out.extend(f"  {s}" for s in then_body)
            if draw(st.booleans()):
                else_body = draw(statements(depth + 1, index_vars))
                out.append("else")
                out.extend(f"  {s}" for s in else_body)
            out.append("endif")
        elif kind == "loop":
            var = f"i{len(index_vars) + 1}"
            lo = draw(st.sampled_from(["1", "2"]))
            hi = draw(st.sampled_from(["n", "n - 1", "8"]))
            body = draw(statements(depth + 1, index_vars + [var]))
            out.append(f"do {var} = {lo}, {hi}")
            out.extend(f"  {s}" for s in body)
            out.append("enddo")
        else:  # if/assign at top level without an index: skip
            out.append("x = x")
    return out


@st.composite
def programs(draw):
    body = draw(statements(0, []))
    # guarantee at least one loop at top level
    loop_body = draw(statements(1, ["i1"]))
    lines = [
        "program fuzz",
        "  integer n, k, x",
        f"  real {', '.join(f'{a}({SIZE})' for a in ARRAYS)}",
        "  read n, k, x",
    ]
    lines.extend(f"  {s}" for s in body)
    lines.append("  do i1 = 1, n")
    lines.extend(f"    {s}" for s in loop_body)
    lines.append("  enddo")
    lines.append("end")
    source = "\n".join(lines) + "\n"
    n = draw(st.integers(min_value=3, max_value=12))
    k = draw(st.integers(min_value=0, max_value=4))
    x = draw(st.integers(min_value=-3, max_value=6))
    return source, [n, k, x]


FUZZ_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestFuzzSoundness:
    @FUZZ_SETTINGS
    @given(programs())
    def test_parallel_decisions_sound_vs_oracle(self, case):
        source, inputs = case
        program = parse_program(source)
        result = analyze_program(program, AnalysisOptions.predicated())
        plan = build_plan(result)

        oracle = run_oracle(parse_program(source), inputs)
        interp = Interpreter(parse_program(source), inputs, plan=plan)
        execution = interp.run()
        ran_parallel = {
            e.nid: e.ran_parallel_version for e in execution.loop_events
        }

        for l in result.loops:
            obs = oracle.observations.get(l.label)
            if obs is None or obs.classification == "not_executed":
                continue
            if l.status in ("parallel", "parallel_private"):
                assert obs.classification != "dependent", (
                    f"{l.label} parallelized but dynamically dependent\n"
                    f"{source}"
                )
            elif l.status == "runtime":
                if ran_parallel.get(l.loop.nid):
                    assert obs.classification != "dependent", (
                        f"{l.label} run-time test passed but loop is "
                        f"dependent\n{source}"
                    )

    @FUZZ_SETTINGS
    @given(programs())
    def test_two_version_transform_preserves_semantics(self, case):
        source, inputs = case
        program = parse_program(source)
        result = analyze_program(program, AnalysisOptions.predicated())
        plan = build_plan(result)
        transformed = transform_program(program, plan)
        ref = run_program(parse_program(source), inputs)
        got = run_program(transformed, inputs)
        assert got.main_arrays == ref.main_arrays
        assert got.outputs == ref.outputs

    @FUZZ_SETTINGS
    @given(programs())
    def test_base_never_beats_predicated(self, case):
        source, _ = case
        base = analyze_program(
            parse_program(source), AnalysisOptions.base()
        )
        pred = analyze_program(
            parse_program(source), AnalysisOptions.predicated()
        )
        pred_status = {l.label: l.status for l in pred.loops}
        for l in base.loops:
            if l.status in ("parallel", "parallel_private"):
                assert pred_status[l.label] in (
                    "parallel",
                    "parallel_private",
                    "runtime",
                ), f"{l.label}: base={l.status}, predicated lost it\n{source}"
