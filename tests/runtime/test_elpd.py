"""Unit tests for the ELPD dynamic parallelization oracle."""

from repro.lang.parser import parse_program
from repro.runtime.elpd import run_elpd


def elpd(src, inputs=(), targets=None):
    return run_elpd(parse_program(src), inputs, target_labels=targets)


class TestClassification:
    def test_independent(self):
        rep = elpd(
            "program t\nreal a(20)\ndo i = 1, 10\na(i) = i * 1.0\nenddo\nend\n"
        )
        assert rep.observations["t:L1"].classification == "independent"

    def test_dependent_flow(self):
        rep = elpd(
            "program t\nreal a(20)\na(1) = 1.0\n"
            "do i = 2, 10\na(i) = a(i - 1)\nenddo\nend\n"
        )
        obs = rep.observations["t:L1"]
        assert obs.classification == "dependent"
        assert obs.flow_arrays == {"a"}

    def test_privatizable(self):
        rep = elpd(
            "program t\nreal w(10), b(10, 10)\n"
            "do j = 1, 10\n"
            " do i = 1, 10\n  w(i) = b(i, j) + 1.0\n enddo\n"
            " do i = 1, 10\n  b(i, j) = w(i)\n enddo\n"
            "enddo\nend\n"
        )
        obs = rep.observations["t:L1"]
        assert obs.classification == "privatizable"
        assert obs.conflict_arrays == {"w"}

    def test_read_only_shared_is_independent(self):
        rep = elpd(
            "program t\nreal a(10), b(10)\nx = 0.0\n"
            "do i = 1, 10\nb(i) = a(1) + a(2)\nenddo\nend\n"
        )
        assert rep.observations["t:L1"].classification == "independent"

    def test_output_dependence_privatizable(self):
        # all iterations write a(1); no iteration reads it first
        rep = elpd(
            "program t\nreal a(10)\ndo i = 1, 10\na(1) = i * 1.0\nenddo\nend\n"
        )
        assert rep.observations["t:L1"].classification == "privatizable"

    def test_write_then_read_same_iteration_ok(self):
        rep = elpd(
            "program t\nreal a(10)\ndo i = 1, 10\na(1) = i * 1.0\n"
            "x = a(1)\nenddo\nend\n"
        )
        assert rep.observations["t:L1"].classification == "privatizable"

    def test_exposed_read_of_preloop_value_ok(self):
        # every iteration reads a(11): written before the loop only
        rep = elpd(
            "program t\nreal a(20), b(20)\na(11) = 3.0\n"
            "do i = 1, 10\nb(i) = a(11)\nenddo\nend\n"
        )
        assert rep.observations["t:L1"].classification == "independent"


class TestDynamicity:
    def test_input_dependent_verdict(self):
        # a(i+k) = a(i): dependent iff 1 <= k < n
        src = (
            "program t\ninteger n, k\nreal a(100)\nread n, k\n"
            "do i = 1, n\na(i + k) = a(i) + 1.0\nenddo\nend\n"
        )
        dep = elpd(src, [10, 1])
        assert dep.observations["t:L1"].classification == "dependent"
        ok = elpd(src, [10, 50])
        assert ok.observations["t:L1"].classification == "independent"
        zero = elpd(src, [10, 0])
        # k == 0: each iteration reads and writes only its own element
        assert zero.observations["t:L1"].classification == "independent"

    def test_aggregation_worst_case(self):
        # inner loop is independent on the first outer iteration (j = 20,
        # reads land outside the write range) and dependent on the second
        # (j = 1): the aggregate verdict must be the worst case
        src = (
            "program t\ninteger n, j\nreal a(100)\nread n\n"
            "j = 20\n"
            "do r = 1, 2\n"
            " do i = 21, n\n  a(i) = a(i - j) + 1.0\n enddo\n"
            " j = 1\n"
            "enddo\nend\n"
        )
        rep = elpd(src, [40])
        assert rep.observations["t:L2"].classification == "dependent"

    def test_multiple_instances_counted(self):
        src = (
            "program t\nreal a(10)\n"
            "do j = 1, 3\n do i = 1, 5\n  a(i) = i * 1.0\n enddo\nenddo\nend\n"
        )
        rep = elpd(src)
        assert rep.observations["t:L2"].instances == 3
        assert rep.observations["t:L2"].total_iterations == 15


class TestTargeting:
    SRC = (
        "program t\nreal a(10)\n"
        "do i = 1, 5\n a(i) = 1.0\nenddo\n"
        "do i = 2, 5\n a(i) = a(i - 1)\nenddo\nend\n"
    )

    def test_target_subset(self):
        rep = elpd(self.SRC, targets=["t:L2"])
        assert "t:L1" not in rep.observations
        assert rep.observations["t:L2"].classification == "dependent"

    def test_unexecuted_target_reported(self):
        rep = elpd(self.SRC, targets=["t:L2", "nope:L9"])
        assert rep.observations["nope:L9"].classification == "not_executed"

    def test_parallelizable_labels(self):
        rep = elpd(self.SRC)
        assert rep.parallelizable_labels() == ["t:L1"]
        assert rep.dependent_labels() == ["t:L2"]


class TestReshapeAliasing:
    def test_write_then_read_through_view_is_privatizable(self):
        # each iteration writes a(1,1) through a flat view, then reads it:
        # cross-iteration conflicts but no exposed-read flow
        src = """
program t
  real a(3, 4)
  do i = 1, 3
    call poke(a, i)
    x = a(1, 1)
  enddo
end
subroutine poke(v, i)
  real v(12)
  integer i
  v(1) = i * 1.0
end
"""
        rep = run_elpd(parse_program(src))
        assert rep.observations["t:L1"].classification == "privatizable"

    def test_cross_view_flow_detected(self):
        # the callee accumulates into v(1) (read before write through the
        # flat view): iteration i reads the value iteration i-1 wrote
        src = """
program t
  real a(3, 4)
  a(1, 1) = 1.0
  do i = 1, 3
    call accum(a, i)
  enddo
end
subroutine accum(v, i)
  real v(12)
  integer i
  v(1) = v(1) * 2.0 + i
end
"""
        rep = run_elpd(parse_program(src))
        assert rep.observations["t:L1"].classification == "dependent"
        assert "v" in rep.observations["t:L1"].flow_arrays
