"""Differential fuzzing: bytecode engine vs tree walker.

Seeded random mini-Fortran programs are executed on both interpreter
engines and every observable must match *bit for bit*: printed output,
step counts, loop events (including iteration counts), final scalar and
array state (compared through their IEEE-754 bit patterns, so ``-0.0``
vs ``0.0`` or any least-significant-bit drift in the vectorized path
would fail), and — when a program faults — the exception type and
message.  A second sweep runs the same programs under ELPD
instrumentation and pins the shadow-state verdicts (the packed column
representation rides the same switch as the bytecode engine).

The generator leans on the constructs where the engines genuinely
differ: straight-line affine loops the vectorizer takes, recurrences
and conditionals it must reject, intrinsics with NumPy equivalents
(``mod``/``min``/``max``/``abs``), negative steps, nested loops,
subroutine calls (separately compiled units), and prints interleaved
with computation.  Values stay modest so every arithmetic result is
exact in binary64 — any mismatch is an engine bug, never float noise.
"""

import random
import struct

import pytest

from repro import perf
from repro.lang.parser import parse_program
from repro.runtime.elpd import run_elpd
from repro.runtime.interp import Interpreter, RuntimeError_

SIZE = 48
ARRAYS = ["fa", "fb", "fw"]
SUBSCRIPTS = ["{i}", "{i} + 1", "{i} + 2", "{i} + k", "2 * {i}", "3", "9"]
EXPRS = [
    "{a}({s}) * 0.5 + 1.0",
    "{a}({s}) + {b}({t})",
    "{a}({s}) - {b}({t}) * 0.25",
    "min({a}({s}), {b}({t}))",
    "max({a}({s}), 2.0)",
    "abs({a}({s}) - 3.0)",
    "mod({i}, 5) * 1.0",
    "mod({a}({s}), 4.0)",
    "{i} * 2.0 + x",
]
CONDS = ["x > 1", "{i} > 3", "mod({i}, 2) == 0", "{i} <= k + 4", "n > 6"]


def _stmts(rng, depth, index_vars):
    out = []
    for _ in range(rng.randint(1, 3)):
        i = index_vars[-1] if index_vars else None
        kinds = ["assign", "assign", "assign", "print", "scalar"]
        if i is not None:
            kinds += ["recur"]
        if depth < 2:
            kinds += ["loop", "if"]
        kind = rng.choice(kinds)
        if kind == "assign" and i is not None:
            tgt = rng.choice(ARRAYS)
            expr = rng.choice(EXPRS).format(
                a=rng.choice(ARRAYS),
                b=rng.choice(ARRAYS),
                s=rng.choice(SUBSCRIPTS).format(i=i),
                t=rng.choice(SUBSCRIPTS).format(i=i),
                i=i,
            )
            out.append(f"{tgt}({rng.choice(SUBSCRIPTS).format(i=i)}) = {expr}")
        elif kind == "assign":
            out.append(f"{rng.choice(ARRAYS)}({rng.randint(1, 9)}) = 2.5")
        elif kind == "recur":
            a = rng.choice(ARRAYS)
            out.append(f"{a}({i} + 1) = {a}({i}) + 1.0")
        elif kind == "scalar":
            rhs = f"x + {i} * 1.0" if i is not None else "x + 1.0"
            out.append(f"x = {rhs}")
        elif kind == "print":
            parts = [f"{rng.choice(ARRAYS)}({rng.randint(1, 9)})", "x"]
            out.append(f"print {', '.join(rng.sample(parts, rng.randint(1, 2)))}")
        elif kind == "if" and i is not None:
            body = _stmts(rng, depth + 1, index_vars)
            out.append(f"if ({rng.choice(CONDS).format(i=i)}) then")
            out.extend(f"  {s}" for s in body)
            if rng.random() < 0.4:
                out.append("else")
                out.extend(f"  {s}" for s in _stmts(rng, depth + 1, index_vars))
            out.append("endif")
        elif kind == "loop":
            var = f"i{len(index_vars) + 1}"
            if rng.random() < 0.2:
                header = f"do {var} = {rng.randint(8, 14)}, 1, -1"
            else:
                hi = rng.choice(["n", "n - 1", str(rng.randint(6, 14))])
                header = f"do {var} = {rng.randint(1, 2)}, {hi}"
            out.append(header)
            out.extend(f"  {s}" for s in _stmts(rng, depth + 1, index_vars + [var]))
            out.append("enddo")
        else:
            out.append("x = x")
    return out


def generate(seed, size=SIZE):
    rng = random.Random(seed)
    lines = [
        "program fz",
        "  integer n, k",
        f"  real {', '.join(f'{a}({size})' for a in ARRAYS)}",
        "  read n, k",
    ]
    lines.extend(f"  {s}" for s in _stmts(rng, 0, []))
    # guarantee at least one loop, long enough for the vectorized path
    lines.append("  do i1 = 1, n")
    lines.extend(f"    {s}" for s in _stmts(rng, 1, ["i1"]))
    if rng.random() < 0.5:
        lines.append(f"    call tweak({rng.choice(ARRAYS)}, i1)")
    lines.append("  enddo")
    lines.append("  print x, fa(3), fw(9)")
    lines.append("end")
    lines += [
        "subroutine tweak(v, m)",
        f"  real v({SIZE})",
        "  integer m",
        "  v(m) = v(m) * 0.5 + m",
        "end",
    ]
    inputs = [rng.randint(8, 14), rng.randint(0, 3)]
    return "\n".join(lines) + "\n", inputs


def _bits(value):
    """Bit-exact token for a numeric value (type- and sign-preserving)."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return ("i", value)


def _observe(enabled, src, inputs):
    """Everything observable from one run under one engine."""
    perf.set_bytecode(enabled)
    perf.reset_all_caches()
    try:
        interp = Interpreter(parse_program(src), inputs, max_steps=200_000)
        error = None
        try:
            result = interp.run()
        except (RuntimeError_, ValueError, KeyError) as exc:
            error = (type(exc).__name__, str(exc))
            return {
                "error": error,
                "outputs": list(interp.outputs),
                "steps": interp.steps,
            }
        return {
            "error": None,
            "outputs": result.outputs,
            "steps": result.steps,
            "scalars": {
                name: _bits(v) for name, v in result.main_scalars.items()
            },
            "scalar_order": list(result.main_scalars),
            "arrays": {
                name: sorted(
                    (off, _bits(v)) for off, v in cells.items()
                )
                for name, cells in result.main_arrays.items()
            },
            "loop_events": [
                (e.label, e.nid, e.iterations, e.ran_parallel_version)
                for e in result.loop_events
            ],
        }
    finally:
        perf.set_bytecode(None)


def _observe_elpd(enabled, src, inputs):
    perf.set_bytecode(enabled)
    perf.reset_all_caches()
    try:
        report = run_elpd(parse_program(src), inputs, max_steps=200_000)
        return {
            "steps": report.steps,
            "observations": {
                label: (
                    obs.classification,
                    obs.instances,
                    obs.total_iterations,
                    sorted(obs.conflict_arrays),
                    sorted(obs.flow_arrays),
                )
                for label, obs in report.observations.items()
            },
        }
    finally:
        perf.set_bytecode(None)


@pytest.mark.parametrize("seed", range(40))
def test_execution_identical(seed):
    src, inputs = generate(seed)
    bc = _observe(True, src, inputs)
    tree = _observe(False, src, inputs)
    assert bc == tree, f"engines diverged (seed {seed})\n{src}"


@pytest.mark.parametrize("seed", range(40))
def test_fault_parity(seed):
    # undersized arrays: many programs now run out of bounds mid-loop;
    # both engines must fault with the identical message after the
    # identical number of steps and prints (the vectorized path does its
    # bounds pre-flight exactly so it can fall back and fault in-order)
    src, inputs = generate(seed, size=16)
    bc = _observe(True, src, inputs)
    tree = _observe(False, src, inputs)
    assert bc == tree, f"engines diverged (seed {seed}, size 16)\n{src}"


@pytest.mark.parametrize("seed", range(0, 40, 2))
def test_elpd_verdicts_identical(seed):
    src, inputs = generate(seed)
    bc = _observe_elpd(True, src, inputs)
    tree = _observe_elpd(False, src, inputs)
    assert bc == tree, f"ELPD verdicts diverged (seed {seed})\n{src}"
