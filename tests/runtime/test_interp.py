"""Unit tests for the interpreter."""

import pytest

from repro.lang.parser import parse_program
from repro.runtime.interp import Interpreter, run_program
from repro.runtime.values import ArrayStorage, RuntimeError_


def run(src, inputs=()):
    return run_program(parse_program(src), inputs)


class TestArrayStorage:
    def test_offset_1d(self):
        a = ArrayStorage("a", (10,))
        assert a.offset((1,)) == 0
        assert a.offset((10,)) == 9

    def test_offset_column_major(self):
        a = ArrayStorage("a", (3, 4))
        assert a.offset((1, 1)) == 0
        assert a.offset((2, 1)) == 1
        assert a.offset((1, 2)) == 3
        assert a.offset((3, 4)) == 11

    def test_bounds_check(self):
        a = ArrayStorage("a", (3,))
        with pytest.raises(RuntimeError_):
            a.offset((0,))
        with pytest.raises(RuntimeError_):
            a.offset((4,))

    def test_assumed_size_unchecked_above(self):
        a = ArrayStorage("a", (3, None))
        assert a.offset((2, 100)) == 1 + 3 * 99
        with pytest.raises(RuntimeError_):
            a.offset((2, 0))

    def test_view_aliases(self):
        a = ArrayStorage("a", (3, 4))
        v = a.view("x", (12,))
        a.store((2, 1), 7.5)
        assert v.load((2,)) == 7.5

    def test_unset_reads_zero(self):
        a = ArrayStorage("a", (5,))
        assert a.load((3,)) == 0.0


class TestBasicExecution:
    def test_arithmetic_and_print(self):
        r = run("program t\nx = 2 + 3 * 4\nprint x\nend\n")
        assert r.outputs == ["14"]

    def test_integer_division_truncates(self):
        r = run("program t\ni = 7 / 2\nj = -7 / 2\nprint i, j\nend\n")
        assert r.outputs == ["3 -3"]

    def test_mod(self):
        r = run("program t\ni = mod(7, 3)\nj = mod(-7, 3)\nprint i, j\nend\n")
        assert r.outputs == ["1 -1"]

    def test_min_max_abs(self):
        r = run("program t\nprint min(3, 1), max(3, 1), abs(-4)\nend\n")
        assert r.outputs == ["1 3 4"]

    def test_power(self):
        r = run("program t\nprint 2 ** 10\nend\n")
        assert r.outputs == ["1024"]

    def test_read_inputs(self):
        r = run("program t\nread n, m\nprint n + m\nend\n", [3, 4])
        assert r.outputs == ["7"]

    def test_read_exhausted(self):
        with pytest.raises(RuntimeError_):
            run("program t\nread n\nend\n", [])

    def test_integer_scalar_coercion(self):
        r = run("program t\ninteger i\ni = 7 / 2\nprint i\nend\n")
        assert r.outputs == ["3"]


class TestControlFlow:
    def test_if_else(self):
        src = "program t\nread x\nif (x > 0) then\nprint 1\nelse\nprint 2\nendif\nend\n"
        assert run(src, [5]).outputs == ["1"]
        assert run(src, [-5]).outputs == ["2"]

    def test_loop_basic(self):
        r = run("program t\ns = 0\ndo i = 1, 5\ns = s + i\nenddo\nprint s\nend\n")
        assert r.outputs == ["15"]

    def test_loop_step(self):
        r = run("program t\ns = 0\ndo i = 1, 10, 3\ns = s + 1\nenddo\nprint s\nend\n")
        assert r.outputs == ["4"]

    def test_loop_negative_step(self):
        r = run("program t\ns = 0\ndo i = 5, 1, -1\ns = s * 10 + i\nenddo\nprint s\nend\n")
        assert r.outputs == ["54321"]

    def test_zero_trip_loop(self):
        r = run("program t\ns = 99\ndo i = 5, 1\ns = 0\nenddo\nprint s\nend\n")
        assert r.outputs == ["99"]

    def test_index_after_loop(self):
        r = run("program t\ndo i = 1, 3\nx = i\nenddo\nprint i\nend\n")
        assert r.outputs == ["4"]

    def test_loop_events_recorded(self):
        r = run("program t\ndo i = 1, 3\nx = i\nenddo\nend\n")
        assert len(r.loop_events) == 1
        assert r.loop_events[0].iterations == 3

    def test_step_budget(self):
        with pytest.raises(RuntimeError_):
            Interpreter(
                parse_program(
                    "program t\ndo i = 1, 100000\nx = i\nenddo\nend\n"
                ),
                max_steps=100,
            ).run()


class TestArraysAndCalls:
    def test_array_roundtrip(self):
        r = run(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = i * 2.0\nenddo\n"
            "print a(7)\nend\n"
        )
        assert r.outputs == ["14"]

    def test_2d_array(self):
        r = run(
            "program t\nreal b(3, 3)\ndo j = 1, 3\ndo i = 1, 3\n"
            "b(i, j) = i * 10.0 + j\nenddo\nenddo\nprint b(2, 3)\nend\n"
        )
        assert r.outputs == ["23"]

    def test_call_by_reference_arrays(self):
        src = """
program t
  real a(5)
  call fill(a, 5)
  print a(3)
end
subroutine fill(x, n)
  real x(*)
  integer n
  do i = 1, n
    x(i) = i * 1.0
  enddo
end
"""
        assert run(src).outputs == ["3"]

    def test_scalars_by_value(self):
        src = """
program t
  n = 5
  call bump(n)
  print n
end
subroutine bump(k)
  k = k + 1
end
"""
        assert run(src).outputs == ["5"]

    def test_sequence_association_reshape(self):
        # callee sees the 3x4 array as a flat 12-vector
        src = """
program t
  real a(3, 4)
  call flat(a)
  print a(2, 1), a(1, 2)
end
subroutine flat(x)
  real x(12)
  x(2) = 5.0
  x(4) = 7.0
end
"""
        assert run(src).outputs == ["5 7"]

    def test_return_statement(self):
        src = """
program t
  call f(1)
  print 9
end
subroutine f(k)
  if (k > 0) then
    return
  endif
  x = 1 / 0
end
"""
        assert run(src).outputs == ["9"]

    def test_bad_call_arg(self):
        src = """
program t
  real a(5)
  call f(a(1))
  a(1) = 0.0
end
subroutine f(x)
  real x(*)
  x(1) = 1.0
end
"""
        with pytest.raises(RuntimeError_):
            run(src)
