"""The interpreter's hook protocol (what ELPD and the cost model build on)."""

from repro.lang.parser import parse_program
from repro.runtime.interp import Interpreter


class RecordingHook:
    def __init__(self):
        self.events = []

    def enter_loop(self, stmt, frame, ran_parallel):
        self.events.append(("enter", stmt.label, ran_parallel))
        return len(self.events) - 1

    def iter_start(self, token, ivalue):
        self.events.append(("iter", token, ivalue))

    def exit_loop(self, token):
        self.events.append(("exit",))


class TestLoopHook:
    def test_enter_iter_exit_ordering(self):
        src = "program t\ndo i = 1, 3\nx = i\nenddo\nend\n"
        hook = RecordingHook()
        Interpreter(parse_program(src), loop_hook=hook).run()
        kinds = [e[0] for e in hook.events]
        assert kinds == ["enter", "iter", "iter", "iter", "exit"]

    def test_iteration_values_passed(self):
        src = "program t\ndo i = 2, 8, 3\nx = i\nenddo\nend\n"
        hook = RecordingHook()
        Interpreter(parse_program(src), loop_hook=hook).run()
        values = [e[2] for e in hook.events if e[0] == "iter"]
        assert values == [2, 5, 8]

    def test_nested_loops_stack(self):
        src = (
            "program t\ndo i = 1, 2\n do j = 1, 2\n  x = j\n enddo\nenddo\nend\n"
        )
        hook = RecordingHook()
        Interpreter(parse_program(src), loop_hook=hook).run()
        labels = [e[1] for e in hook.events if e[0] == "enter"]
        assert labels == ["t:L1", "t:L2", "t:L2"]
        # balanced enters and exits
        assert sum(1 for e in hook.events if e[0] == "enter") == sum(
            1 for e in hook.events if e[0] == "exit"
        )

    def test_zero_trip_loop_enters_and_exits(self):
        src = "program t\ndo i = 5, 1\nx = i\nenddo\nend\n"
        hook = RecordingHook()
        Interpreter(parse_program(src), loop_hook=hook).run()
        kinds = [e[0] for e in hook.events]
        assert kinds == ["enter", "exit"]

    def test_loops_in_subroutines_hooked(self):
        src = (
            "program t\ncall f(2)\nend\n"
            "subroutine f(n)\ndo i = 1, n\nx = i\nenddo\nend\n"
        )
        hook = RecordingHook()
        Interpreter(parse_program(src), loop_hook=hook).run()
        labels = [e[1] for e in hook.events if e[0] == "enter"]
        assert labels == ["f:L1"]


class AccessRecorder:
    def __init__(self):
        self.events = []

    def __call__(self, kind, storage, offset):
        self.events.append((kind, storage.name, offset))


class TestAccessHook:
    def test_reads_and_writes_reported(self):
        src = (
            "program t\nreal a(10)\na(3) = 1.0\nx = a(3)\nend\n"
        )
        rec = AccessRecorder()
        Interpreter(parse_program(src), access_hook=rec).run()
        assert ("w", "a", 2) in rec.events
        assert ("r", "a", 2) in rec.events

    def test_rhs_reads_before_lhs_write(self):
        src = "program t\nreal a(10)\na(1) = 5.0\na(2) = a(1)\nend\n"
        rec = AccessRecorder()
        Interpreter(parse_program(src), access_hook=rec).run()
        read_idx = rec.events.index(("r", "a", 0))
        write_idx = rec.events.index(("w", "a", 1))
        assert read_idx < write_idx

    def test_subscript_expression_reads_hooked(self):
        src = (
            "program t\nreal a(10)\ninteger ix(10)\nix(1) = 4\n"
            "a(ix(1)) = 1.0\nend\n"
        )
        rec = AccessRecorder()
        Interpreter(parse_program(src), access_hook=rec).run()
        assert ("r", "ix", 0) in rec.events
        assert ("w", "a", 3) in rec.events

    def test_view_reports_underlying_offsets(self):
        src = (
            "program t\nreal a(3, 4)\ncall f(a)\nend\n"
            "subroutine f(x)\nreal x(12)\nx(5) = 1.0\nend\n"
        )
        rec = AccessRecorder()
        Interpreter(parse_program(src), access_hook=rec).run()
        assert ("w", "x", 4) in rec.events
