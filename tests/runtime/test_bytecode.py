"""Targeted parity tests: bytecode engine vs the tree walker.

Every test here runs the *same* program through both engines and
asserts the observable behaviour is identical — results, step counts,
loop events, hook call sequences, and (for failing programs) the exact
exception type and message.  The broad suite-wide sweep lives in
``tests/integration/test_bytecode_identity.py``; these are the narrow
pins on the corners where the engines could legitimately diverge:
error paths, the step budget, loop-variable endpoints, integer
coercion, the two-version dispatch, and the conditions under which the
NumPy fast path must fall back to the scalar instruction loop.
"""

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.runtime.interp import Interpreter, RuntimeError_, run_program


def _run_mode(enabled, src, inputs=(), plan=None, max_steps=10_000_000):
    perf.set_bytecode(enabled)
    perf.reset_all_caches()
    try:
        return Interpreter(
            parse_program(src), inputs, plan=plan, max_steps=max_steps
        ).run()
    finally:
        perf.set_bytecode(None)


def both(src, inputs=(), max_steps=10_000_000):
    """Run in both modes; assert full ExecutionResult equality."""
    bc = _run_mode(True, src, inputs, max_steps=max_steps)
    tree = _run_mode(False, src, inputs, max_steps=max_steps)
    assert bc.outputs == tree.outputs
    assert bc.steps == tree.steps
    assert bc.main_scalars == tree.main_scalars
    assert bc.main_arrays == tree.main_arrays
    assert bc.loop_events == tree.loop_events
    return bc


def both_raise(src, inputs=(), max_steps=10_000_000):
    """Both modes must raise the same exception type and message."""
    errs = []
    for enabled in (True, False):
        with pytest.raises((RuntimeError_, KeyError, ValueError)) as ei:
            _run_mode(enabled, src, inputs, max_steps=max_steps)
        errs.append((type(ei.value), str(ei.value)))
    assert errs[0] == errs[1]
    return errs[0]


class TestErrorParity:
    def test_subscript_out_of_bounds(self):
        typ, msg = both_raise(
            "program t\nreal a(5)\ndo i = 1, 6\na(i) = 1.0\nenddo\nend\n"
        )
        assert typ is RuntimeError_
        assert msg == "array a: subscript 6 out of bounds 1..5 in dimension 1"

    def test_subscript_below_one_assumed_dim(self):
        typ, msg = both_raise(
            "program t\n  real a(12)\n  call f(a)\nend\n"
            "subroutine f(v)\n  real v(*)\n  v(0) = 1.0\nend\n"
        )
        assert typ is RuntimeError_
        assert msg == "array v: subscript 0 < 1 in assumed dimension 1"

    def test_division_by_zero(self):
        typ, msg = both_raise("program t\nx = 1.0 / (2.0 - 2.0)\nend\n")
        assert typ is RuntimeError_
        assert msg == "division by zero"

    def test_mod_zero_divisor(self):
        typ, msg = both_raise("program t\ninteger k\nx = mod(5, k)\nend\n")
        assert typ is RuntimeError_
        assert msg == "mod with zero divisor"

    def test_input_exhausted(self):
        typ, msg = both_raise("program t\ninteger n, m\nread n, m\nend\n", [7])
        assert typ is RuntimeError_
        assert msg == "read m: input exhausted at position 1"

    def test_zero_step_loop(self):
        typ, msg = both_raise(
            "program t\ninteger k\ndo i = 1, 5, k\nx = 1.0\nenddo\nend\n"
        )
        assert typ is RuntimeError_
        assert msg == "loop t:L1: zero step"

    def test_formal_array_needs_whole_array_actual(self):
        typ, msg = both_raise(
            "program t\n  call f(3.0)\nend\n"
            "subroutine f(v)\n  real v(10)\n  v(1) = 1.0\nend\n"
        )
        assert typ is RuntimeError_
        assert msg == "call f: formal array 'v' needs a whole-array actual"

    def test_error_inside_vectorization_candidate(self):
        # a straight-line affine body the vectorizer would take — the
        # out-of-range write must still surface with the tree's message
        typ, msg = both_raise(
            "program t\ninteger n\nreal a(50)\nread n\n"
            "do i = 1, n\na(i + 20) = 1.0\nenddo\nend\n",
            [40],
        )
        assert typ is RuntimeError_
        assert msg == "array a: subscript 51 out of bounds 1..50 in dimension 1"


class TestStepBudget:
    SRC = (
        "program t\nreal a(100)\n"
        "do i = 1, 100\na(i) = i * 1.0\nenddo\nend\n"
    )

    def test_budget_exceeded_same_message(self):
        typ, msg = both_raise(self.SRC, max_steps=50)
        assert typ is RuntimeError_
        assert msg == "step budget exceeded (50)"

    def test_budget_boundary_exact(self):
        # exactly enough steps: 1 loop tick + 100 body ticks
        result = both(self.SRC, max_steps=101)
        assert result.steps == 101

    def test_budget_forces_scalar_fallback_mid_loop(self):
        # the vectorized path may not batch past the budget: the loop
        # would need 1 + 40 steps but only 30 are allowed, so both
        # engines must die at the same per-iteration step count
        src = (
            "program t\ninteger n\nreal a(50)\nread n\n"
            "do i = 1, n\na(i) = 1.0\nenddo\nend\n"
        )
        typ, msg = both_raise(src, [40], max_steps=30)
        assert typ is RuntimeError_
        assert msg == "step budget exceeded (30)"


class TestLoopVariableEndpoints:
    def test_past_the_end_value(self):
        result = both(
            "program t\ndo i = 1, 10, 3\nx = i * 1.0\nenddo\nend\n"
        )
        # trips = 4 (1,4,7,10); var holds lo + trips*step
        assert result.main_scalars["i"] == 13

    def test_zero_trip_var_holds_lo(self):
        result = both("program t\ndo i = 5, 2\nx = 1.0\nenddo\nend\n")
        assert result.main_scalars["i"] == 5
        assert result.loop_events[0].iterations == 0

    def test_negative_step(self):
        result = both(
            "program t\nreal a(10)\ndo i = 10, 1, -2\na(i) = i * 1.0\nenddo\nend\n"
        )
        assert result.main_scalars["i"] == 0
        assert result.loop_events[0].iterations == 5


class TestCoercionParity:
    def test_integer_array_reads_truncate(self):
        # array elements store floats; the integer coercion applies on
        # the *read* side of an integer-typed name in both engines
        result = both(
            "program t\ninteger a(5)\ndo i = 1, 5\na(i) = i * 1.5\nenddo\n"
            "print a(2), a(3)\nend\n"
        )
        assert result.outputs == ["3 4.5"]

    def test_integer_scalar_read_and_div(self):
        result = both(
            "program t\ninteger n\nread n\nx = n / 4\n"
            "y = n / 4.0\nprint x, y\nend\n",
            [7],
        )
        # int/int truncates toward zero; int/float does not
        assert result.outputs == ["1 1.75"]

    def test_unset_values_default(self):
        result = both(
            "program t\nreal a(5)\nprint x, a(3)\nend\n"
        )
        assert result.outputs == ["0 0"]


class TestTwoVersionParity:
    SRC = (
        "program t\n"
        "  integer n, k\n"
        "  real a(5000)\n"
        "  read n, k\n"
        "  do i = 1, n\n"
        "    a(i + k) = a(i) + 1.0\n"
        "  enddo\n"
        "end\n"
    )

    def _run(self, enabled, inputs):
        program = parse_program(self.SRC)
        plan = build_plan(
            analyze_program(program, AnalysisOptions.predicated())
        )
        assert plan.two_version_count() >= 1
        perf.set_bytecode(enabled)
        perf.reset_all_caches()
        try:
            return Interpreter(program, inputs, plan=plan).run()
        finally:
            perf.set_bytecode(None)

    @pytest.mark.parametrize("inputs", [[200, 3000], [200, 3], [200, 0]])
    def test_two_version_outcome_identical(self, inputs):
        bc = self._run(True, inputs)
        tree = self._run(False, inputs)
        assert bc.loop_events == tree.loop_events
        assert bc.main_arrays == tree.main_arrays
        assert bc.steps == tree.steps
        # the runtime test actually dispatched (not left undecided)
        assert bc.loop_events[0].ran_parallel_version is not None

    def test_dispatch_matches_dependence(self):
        # k >= n: disjoint ranges, test passes; 1 <= k < n: test fails
        assert self._run(True, [200, 3000]).loop_events[0].ran_parallel_version
        assert not self._run(True, [200, 3]).loop_events[0].ran_parallel_version


class TestHookSequenceParity:
    SRC = (
        "program t\ninteger n\nreal a(40), b(40)\nread n\n"
        "do i = 1, n\n a(i) = b(i) + 1.0\nenddo\n"
        "do i = 2, n\n b(i) = a(i) - b(i - 1)\nenddo\nend\n"
    )

    class _TraceHook:
        def __init__(self):
            self.events = []

        def enter_loop(self, stmt, frame, ran_parallel):
            # the frame handed to hooks must resolve program state
            assert frame.unit.name == "t"
            assert "a" in frame.arrays
            self.events.append(("enter", stmt.label, ran_parallel))
            return len(self.events)

        def iter_start(self, token, ivalue):
            self.events.append(("iter", token, ivalue))

        def exit_loop(self, token):
            self.events.append(("exit", token))

    def _trace(self, enabled):
        hook = self._TraceHook()
        accesses = []

        def access(kind, storage, offset):
            accesses.append((kind, storage.name, offset))

        perf.set_bytecode(enabled)
        perf.reset_all_caches()
        try:
            result = Interpreter(
                parse_program(self.SRC),
                [20],
                access_hook=access,
                loop_hook=hook,
            ).run()
        finally:
            perf.set_bytecode(None)
        return result, hook.events, accesses

    def test_identical_hook_streams(self):
        bc_result, bc_loops, bc_access = self._trace(True)
        tr_result, tr_loops, tr_access = self._trace(False)
        assert bc_loops == tr_loops
        assert bc_access == tr_access
        assert bc_result.steps == tr_result.steps
        assert bc_result.main_arrays == tr_result.main_arrays
        # reads precede the write within each first-loop iteration
        first = [e for e in bc_access if e[1] in ("a", "b")][:2]
        assert first == [("r", "b", 0), ("w", "a", 0)]


class TestVectorizedPath:
    VEC_SRC = (
        "program t\ninteger n\nreal a(200), b(200)\nread n\n"
        "do i = 1, n\na(i) = b(i) * 0.5 + 1.0\nenddo\nend\n"
    )

    def _vec_count(self, src, inputs):
        """Run on the bytecode engine; return the rt.vec_loop delta."""
        perf.set_bytecode(True)
        perf.reset_all_caches()
        perf.reset_counters()
        try:
            run_program(parse_program(src), inputs)
            return perf.counter("rt.vec_loop")
        finally:
            perf.set_bytecode(None)

    def test_affine_body_vectorizes(self):
        assert self._vec_count(self.VEC_SRC, [200]) == 1
        both(self.VEC_SRC, [200])

    def test_small_trip_counts_stay_scalar(self):
        # below _VEC_MIN_TRIPS the batch setup is not worth it
        assert self._vec_count(self.VEC_SRC, [4]) == 0
        both(self.VEC_SRC, [4])

    def test_recurrence_falls_back(self):
        src = (
            "program t\ninteger n\nreal a(200)\nread n\n"
            "do i = 2, n\na(i) = a(i - 1) + 1.0\nenddo\nend\n"
        )
        assert self._vec_count(src, [200]) == 0
        result = both(src, [200])
        assert result.main_arrays["a"][199] == 199.0

    def test_aliased_actuals_fall_back(self):
        # both formals are views of the same buffer: the per-statement
        # gather/scatter ordering is only safe without cross-name
        # aliasing, so the callee loop must run scalar
        src = (
            "program t\n  integer n\n  real a(200)\n  read n\n"
            "  call f(a, a, n)\nend\n"
            "subroutine f(u, v, n)\n  real u(200)\n  real v(200)\n"
            "  integer n\n  do i = 2, n\n    u(i) = v(i - 1) + 1.0\n"
            "  enddo\nend\n"
        )
        assert self._vec_count(src, [200]) == 0
        result = both(src, [200])
        # sequential semantics: each write feeds the next read
        assert result.main_arrays["a"][199] == 199.0

    def test_hooked_runs_never_vectorize(self):
        # access hooks observe every element access in order; the
        # batched path is compiled out of the hooked variants entirely
        perf.set_bytecode(True)
        perf.reset_all_caches()
        perf.reset_counters()
        seen = []
        try:
            Interpreter(
                parse_program(self.VEC_SRC),
                [200],
                access_hook=lambda k, s, o: seen.append((k, s.name, o)),
            ).run()
            assert perf.counter("rt.vec_loop") == 0
        finally:
            perf.set_bytecode(None)
        assert len(seen) == 400  # one read + one write per iteration

    def test_min_max_first_on_ties(self):
        # min/max pick the first argument on ties in the tree walker;
        # the vectorized np.where must preserve that
        src = (
            "program t\ninteger n\nreal a(100), b(100)\nread n\n"
            "do i = 1, n\nb(i) = 2.0\nenddo\n"
            "do i = 1, n\na(i) = max(b(i), 2.0) + min(1.0 * i, b(i))\nenddo\n"
            "end\n"
        )
        both(src, [100])

    def test_mod_intrinsic_vectorizes(self):
        src = (
            "program t\ninteger n, a(100)\nread n\n"
            "do i = 1, n\na(i) = mod(i * 7, 5)\nenddo\nend\n"
        )
        assert self._vec_count(src, [100]) == 1
        result = both(src, [100])
        assert result.main_arrays["a"][0] == 2  # mod(7, 5)


class TestCompileCache:
    def test_unit_code_memoized_across_runs(self):
        program = parse_program(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\nend\n"
        )
        perf.set_bytecode(True)
        perf.reset_all_caches()
        perf.reset_counters()
        try:
            Interpreter(program).run()
            first = perf.counter("rt.compile_unit")
            Interpreter(program).run()
            second = perf.counter("rt.compile_unit")
        finally:
            perf.set_bytecode(None)
        assert first >= 1
        assert second == first  # second run reused the compiled code
