"""Property-based tests for the predicate layer (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.evaluate import evaluate
from repro.predicates.formula import (
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.predicates.simplify import implies, is_unsat, simplify, to_dnf
from repro.symbolic.affine import AffineExpr

VARS = ["x", "y"]
OPAQUE_KEYS = ["p", "q"]


@st.composite
def lin_atoms(draw):
    coeffs = {v: draw(st.integers(min_value=-2, max_value=2)) for v in VARS}
    const = draw(st.integers(min_value=-4, max_value=4))
    from repro.linalg.constraint import Constraint, Rel

    return p_atom(LinAtom(Constraint(AffineExpr(coeffs, const), Rel.LE)))


@st.composite
def formulas(draw, depth=0):
    if depth >= 3:
        choice = "atom"
    else:
        choice = draw(st.sampled_from(["atom", "opaque", "not", "and", "or"]))
    if choice == "atom":
        return draw(lin_atoms())
    if choice == "opaque":
        return p_atom(OpaqueAtom(draw(st.sampled_from(OPAQUE_KEYS)), ()))
    if choice == "not":
        return p_not(draw(formulas(depth=depth + 1)))
    op = p_and if choice == "and" else p_or
    return op(
        draw(formulas(depth=depth + 1)), draw(formulas(depth=depth + 1))
    )


ENVS = [
    {"x": x, "y": y} for x in (-3, 0, 2) for y in (-2, 1, 4)
]
OPAQUE_TABLES = [
    {"p": a, "q": b} for a in (False, True) for b in (False, True)
]


def eval_with(f, env, table):
    return evaluate(f, env, lambda atom, _e: table[atom.key])


class TestFormulaSemantics:
    @settings(max_examples=80, deadline=None)
    @given(formulas())
    def test_double_negation_preserves_semantics(self, f):
        g = p_not(p_not(f))
        for env in ENVS[:4]:
            for table in OPAQUE_TABLES:
                assert eval_with(f, env, table) == eval_with(g, env, table)

    @settings(max_examples=80, deadline=None)
    @given(formulas(), formulas())
    def test_demorgan(self, a, b):
        lhs = p_not(p_and(a, b))
        rhs = p_or(p_not(a), p_not(b))
        for env in ENVS[:3]:
            for table in OPAQUE_TABLES:
                assert eval_with(lhs, env, table) == eval_with(rhs, env, table)

    @settings(max_examples=60, deadline=None)
    @given(formulas())
    def test_simplify_preserves_semantics(self, f):
        s = simplify(f)
        for env in ENVS:
            for table in OPAQUE_TABLES:
                assert eval_with(f, env, table) == eval_with(s, env, table)

    @settings(max_examples=60, deadline=None)
    @given(formulas())
    def test_unsat_is_sound(self, f):
        """is_unsat == True must mean no sampled model satisfies f."""
        if is_unsat(f):
            for env in ENVS:
                for table in OPAQUE_TABLES:
                    assert not eval_with(f, env, table)

    @settings(max_examples=60, deadline=None)
    @given(formulas(), formulas())
    def test_implies_is_sound(self, a, b):
        """implies(a, b) must hold on every sampled model of a."""
        if implies(a, b):
            for env in ENVS:
                for table in OPAQUE_TABLES:
                    if eval_with(a, env, table):
                        assert eval_with(b, env, table)

    @settings(max_examples=60, deadline=None)
    @given(formulas())
    def test_dnf_preserves_semantics(self, f):
        dnf = to_dnf(f)
        if dnf is None:
            return
        for env in ENVS[:4]:
            for table in OPAQUE_TABLES:
                expected = eval_with(f, env, table)
                got = any(
                    all(eval_with(lit, env, table) for lit in conj)
                    for conj in dnf
                )
                assert got == expected
