"""Unit tests for semantic predicate operations."""

from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.formula import (
    FALSE,
    TRUE,
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.predicates.simplify import (
    conjunct_infeasible,
    equivalent,
    implies,
    is_unsat,
    simplify,
    to_dnf,
)
from repro.symbolic.affine import AffineExpr

X = AffineExpr.var("x")
Y = AffineExpr.var("y")
C = AffineExpr.const

GT5 = p_atom(LinAtom.gt(X, C(5)))
LE0 = p_atom(LinAtom.le(X, C(0)))
GT3 = p_atom(LinAtom.gt(X, C(3)))
P = p_atom(OpaqueAtom("p", ()))
Q = p_atom(OpaqueAtom("q", ()))


class TestDNF:
    def test_constants(self):
        assert to_dnf(FALSE) == []
        assert to_dnf(TRUE) == [frozenset()]

    def test_literal(self):
        assert to_dnf(P) == [frozenset([P])]

    def test_or_of_ands(self):
        f = p_or(p_and(P, Q), GT5)
        dnf = to_dnf(f)
        assert len(dnf) == 2

    def test_distribution(self):
        f = p_and(p_or(P, Q), GT5)
        dnf = to_dnf(f)
        assert len(dnf) == 2
        assert all(any(lit == GT5 for lit in conj) for conj in dnf)

    def test_limit_gives_none(self):
        big = p_and(
            *[p_or(p_atom(OpaqueAtom(f"a{i}", ())), p_atom(OpaqueAtom(f"b{i}", ())))
              for i in range(12)]
        )
        assert to_dnf(big, limit=16) is None


class TestUnsat:
    def test_linear_contradiction(self):
        assert is_unsat(p_and(GT5, LE0))

    def test_linear_satisfiable(self):
        assert not is_unsat(p_and(GT5, GT3))

    def test_opaque_complement(self):
        assert is_unsat(p_and(P, p_not(P)))

    def test_mixed_disjunction(self):
        # (x>5 ∧ x<=0) ∨ (p ∧ ¬p) — both arms contradictory
        f = p_or(p_and(GT5, LE0), p_and(P, p_not(P)))
        assert is_unsat(f)

    def test_opaque_relaxation_conservative(self):
        # p ∧ q is satisfiable as free booleans
        assert not is_unsat(p_and(P, Q))

    def test_conjunct_infeasible_direct(self):
        conj = frozenset([GT5, LE0])
        assert conjunct_infeasible(conj)


class TestImplies:
    def test_linear_strengthening(self):
        assert implies(GT5, GT3)
        assert not implies(GT3, GT5)

    def test_reflexive(self):
        for f in (GT5, P, p_and(GT5, P)):
            assert implies(f, f)

    def test_conjunction_implies_conjunct(self):
        assert implies(p_and(P, GT5), P)
        assert implies(p_and(P, GT5), GT5)

    def test_disjunct_implies_disjunction(self):
        assert implies(P, p_or(P, Q))

    def test_false_implies_anything(self):
        assert implies(FALSE, P)

    def test_anything_implies_true(self):
        assert implies(P, TRUE)

    def test_equivalent_after_normalization(self):
        a = p_atom(LinAtom.gt(X, C(5)))
        b = p_atom(LinAtom.ge(X, C(6)))
        assert equivalent(a, b)

    def test_demorgan_equivalence(self):
        assert equivalent(p_not(p_and(P, Q)), p_or(p_not(P), p_not(Q)))


class TestSimplify:
    def test_unsat_collapses(self):
        assert simplify(p_and(GT5, LE0)) is FALSE

    def test_valid_collapses(self):
        assert simplify(p_or(GT5, p_not(GT5))) is TRUE

    def test_entailed_linear_dropped(self):
        # x > 5 ∧ x > 3 simplifies to x > 5
        s = simplify(p_and(GT5, GT3))
        assert s == GT5

    def test_or_absorption(self):
        # (x>5) ∨ (x>3) simplifies to x>3
        s = simplify(p_or(GT5, GT3))
        assert s == GT3

    def test_opaque_preserved(self):
        s = simplify(p_and(P, GT5))
        assert implies(s, P) and implies(s, GT5)

    def test_simplify_keeps_semantics(self):
        from repro.predicates.evaluate import evaluate

        f = p_or(p_and(GT5, GT3), p_and(LE0, GT3))
        s = simplify(f)
        for x in range(-2, 10):
            assert evaluate(f, {"x": x}) == evaluate(s, {"x": x})
