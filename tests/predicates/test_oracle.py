"""Soundness tests for the tiered predicate oracle.

The oracle's contract is *byte-identity*: with the oracle enabled, every
``is_unsat`` / ``implies`` / ``equivalent`` answer must equal the ground
(untiered, unmemoized) path's answer.  These tests drive a seeded random
corpus of guard-shaped predicates through both paths and through the
interval tier directly, so any tier that over-claims is caught against
the exact Fourier–Motzkin ground truth.
"""

import random

import pytest

from repro import perf
from repro.linalg import intervals
from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import is_feasible
from repro.linalg.system import LinearSystem
from repro.predicates import oracle
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import FALSE, TRUE, p_and, p_atom, p_not, p_or
from repro.predicates.simplify import equivalent, simplify
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
V = [AffineExpr.var(n) for n in ("x", "y", "z")]


@pytest.fixture(autouse=True)
def _fresh_oracle():
    """Each test starts with the oracle on and every cache cold, and
    leaves the process-wide toggle back on its environment default."""
    perf.set_pred_oracle(True)
    perf.reset_all_caches()
    perf.reset_counters()
    yield
    perf.set_pred_oracle(None)
    perf.reset_all_caches()


def _random_atom(rng: random.Random):
    kind = rng.randrange(6)
    v = V[rng.randrange(len(V))]
    c = C(rng.randrange(-4, 5))
    if kind == 0:
        return p_atom(LinAtom.ge(v, c))
    if kind == 1:
        return p_atom(LinAtom.le(v, c))
    if kind == 2:
        return p_atom(LinAtom.eq(v, c))
    if kind == 3:  # a two-variable row, to force tier-2 work
        w = V[rng.randrange(len(V))]
        return p_atom(LinAtom.le(v - w, c))
    if kind == 4:
        return p_atom(DivAtom(v, 2))
    return p_atom(OpaqueAtom(f"f{rng.randrange(3)}", ()))


def _random_pred(rng: random.Random, depth: int = 3):
    if depth == 0 or rng.random() < 0.3:
        atom = _random_atom(rng)
        return p_not(atom) if rng.random() < 0.3 else atom
    op = p_and if rng.random() < 0.5 else p_or
    return op(_random_pred(rng, depth - 1), _random_pred(rng, depth - 1))


def _corpus(seed: int, n: int):
    rng = random.Random(seed)
    return [_random_pred(rng) for _ in range(n)]


def test_unsat_matches_ground():
    preds = _corpus(seed=7, n=300) + [TRUE, FALSE]
    for p in preds:
        assert oracle.is_unsat(p) == oracle.ground_is_unsat(p), p


def test_unsat_memo_is_stable():
    """A memoized answer equals the freshly computed one."""
    preds = _corpus(seed=11, n=100)
    first = [oracle.is_unsat(p) for p in preds]
    second = [oracle.is_unsat(p) for p in preds]  # all memo hits
    assert first == second


def test_implies_and_equivalent_match_disabled_mode():
    preds = _corpus(seed=13, n=40)
    pairs = [(p, q) for p in preds[:20] for q in preds[20:]]
    pairs += [(p, p) for p in preds]

    with_oracle = [
        (oracle.implies(p, q), oracle.equivalent(p, q)) for p, q in pairs
    ]

    perf.set_pred_oracle(False)
    perf.reset_all_caches()
    without = [
        (oracle.implies(p, q), oracle.equivalent(p, q)) for p, q in pairs
    ]
    assert with_oracle == without


def test_simplify_preserves_meaning():
    preds = _corpus(seed=17, n=200)
    for p in preds:
        s = simplify(p)
        assert equivalent(p, s), (p, s)


def test_intervals_classifier_agrees_with_fm():
    """Every definitive interval verdict must match exact feasibility."""
    rng = random.Random(23)
    definitive = 0
    for _ in range(400):
        constraints = []
        for _ in range(rng.randrange(1, 5)):
            v = V[rng.randrange(len(V))]
            c = C(rng.randrange(-4, 5))
            kind = rng.randrange(4)
            if kind == 0:
                constraints.append(Constraint.ge(v, c))
            elif kind == 1:
                constraints.append(Constraint.le(v, c))
            elif kind == 2:
                constraints.append(Constraint.eq(v, c))
            else:
                w = V[rng.randrange(len(V))]
                constraints.append(Constraint.le(v - w, c))
        verdict = intervals.classify_constraints(constraints)
        rows = sorted(constraints, key=Constraint.sort_key)
        exact = is_feasible(LinearSystem(rows))
        if verdict == intervals.INFEASIBLE:
            definitive += 1
            assert not exact, constraints
        elif verdict == intervals.FEASIBLE:
            definitive += 1
            assert exact, constraints
    assert definitive > 100  # the fast tier must actually fire


def test_structural_complement_skips_fm():
    """Complementary literals that only meet after DNF distribution
    settle in tier 0, without any ground feasibility call.  (Direct
    ``p ∧ ¬p`` never reaches the oracle — ``p_and`` folds it to FALSE.)"""
    x_le = p_atom(LinAtom.le(V[0], C(5)))
    flag = p_atom(OpaqueAtom("t", ()))
    div = p_atom(DivAtom(V[0], 2))
    assert p_and(flag, p_not(flag)).is_false()  # folded pre-oracle
    for p in (
        p_and(p_or(div, flag), p_not(div), p_not(flag)),
        p_and(p_or(x_le, flag), p_not(x_le), p_not(flag)),
    ):
        assert oracle.is_unsat(p)
    snap = perf.snapshot()["counters"]
    assert snap.get("pred.oracle.tier0", 0) >= 4
    assert snap.get("feasibility.ground", 0) == 0


def test_tier_counters_cover_all_tiers():
    preds = _corpus(seed=29, n=300)
    for p in preds:
        oracle.is_unsat(p)
    snap = perf.snapshot()["counters"]
    assert snap.get("pred.oracle.tier0", 0) > 0
    assert snap.get("pred.oracle.tier1", 0) > 0
    assert snap.get("pred.oracle.tier2", 0) > 0
    # cheap tiers must settle a meaningful share of the conjuncts
    cheap = snap["pred.oracle.tier0"] + snap["pred.oracle.tier1"]
    assert cheap > snap["pred.oracle.tier2"] / 4


def test_memo_tables_reset_with_perf_caches():
    # x <= 0 ∧ x >= 2: infeasible but not a structural complement, so it
    # survives `p_and` folding and actually populates the memo tables
    oracle.is_unsat(p_and(p_atom(LinAtom.le(V[0], C(0))),
                          p_atom(LinAtom.ge(V[0], C(2)))))
    snap = perf.snapshot()["caches"]
    assert any(
        name.startswith("pred.oracle.") and stats["size"] > 0
        for name, stats in snap.items()
    )
    perf.reset_all_caches()
    snap = perf.snapshot()["caches"]
    assert all(
        stats["size"] == 0
        for name, stats in snap.items()
        if name.startswith("pred.oracle.")
    )
