"""Unit tests for predicate formula construction and NNF negation."""

from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    FALSE,
    NotPred,
    OrPred,
    TRUE,
    literals,
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.symbolic.affine import AffineExpr

X = AffineExpr.var("x")
C = AffineExpr.const

A = p_atom(LinAtom.gt(X, C(5)))
B = p_atom(LinAtom.le(X, C(0)))
P = p_atom(OpaqueAtom("p", ()))
Q = p_atom(OpaqueAtom("q", ()))


class TestSmartConstructors:
    def test_atom_folding(self):
        assert p_atom(LinAtom.le(C(0), C(1))) is TRUE
        assert p_atom(LinAtom.le(C(1), C(0))) is FALSE

    def test_and_identity(self):
        assert p_and() is TRUE
        assert p_and(A) == A
        assert p_and(A, TRUE) == A

    def test_and_annihilator(self):
        assert p_and(A, FALSE) is FALSE

    def test_and_flattens(self):
        inner = p_and(A, P)
        flat = p_and(inner, Q)
        assert isinstance(flat, AndPred)
        assert len(flat.operands) == 3

    def test_and_dedup(self):
        assert p_and(A, A) == A

    def test_and_complement_opaque(self):
        assert p_and(P, p_not(P)) is FALSE

    def test_and_complement_linear(self):
        assert p_and(A, p_not(A)) is FALSE

    def test_or_identity(self):
        assert p_or() is FALSE
        assert p_or(A) == A
        assert p_or(A, FALSE) == A

    def test_or_annihilator(self):
        assert p_or(A, TRUE) is TRUE

    def test_or_complement(self):
        assert p_or(P, p_not(P)) is TRUE

    def test_commutativity_structural(self):
        assert p_and(A, P) == p_and(P, A)
        assert p_or(A, P) == p_or(P, A)


class TestNegation:
    def test_not_constants(self):
        assert p_not(TRUE) is FALSE
        assert p_not(FALSE) is TRUE

    def test_double_negation_opaque(self):
        assert p_not(p_not(P)) == P

    def test_linear_negation_is_atom(self):
        n = p_not(A)  # ¬(x > 5) = x <= 5
        assert isinstance(n, Atom)
        assert n == p_atom(LinAtom.le(X, C(5)))

    def test_equality_negation_splits(self):
        eq = p_atom(LinAtom.eq(X, C(3)))
        n = p_not(eq)
        assert isinstance(n, OrPred)
        # x <= 2 or x >= 4
        assert p_atom(LinAtom.le(X, C(2))) in n.operands
        assert p_atom(LinAtom.ge(X, C(4))) in n.operands

    def test_demorgan(self):
        n = p_not(p_and(P, Q))
        assert n == p_or(p_not(P), p_not(Q))
        n2 = p_not(p_or(P, Q))
        assert n2 == p_and(p_not(P), p_not(Q))

    def test_opaque_negation_stays_literal(self):
        n = p_not(P)
        assert isinstance(n, NotPred)


class TestUtilities:
    def test_literals_iteration(self):
        f = p_and(A, p_or(P, p_not(Q)))
        lits = list(literals(f))
        assert len(lits) == 3

    def test_variables(self):
        f = p_and(A, P)
        assert f.variables() == frozenset({"x"})

    def test_sugar_operators(self):
        assert (A & P) == p_and(A, P)
        assert (A | P) == p_or(A, P)
        assert (~P) == p_not(P)

    def test_substitute_folds(self):
        f = p_atom(LinAtom.gt(X, C(5))).substitute({"x": C(10)})
        assert f is TRUE
