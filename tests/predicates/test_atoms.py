"""Unit tests for predicate atoms."""

import pytest

from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.symbolic.affine import AffineExpr

X = AffineExpr.var("x")
N = AffineExpr.var("n")
C = AffineExpr.const


class TestLinAtom:
    def test_constructors(self):
        assert LinAtom.gt(X, C(5)).evaluate({"x": 6})
        assert not LinAtom.gt(X, C(5)).evaluate({"x": 5})
        assert LinAtom.lt(X, C(5)).evaluate({"x": 4})
        assert LinAtom.ge(X, C(5)).evaluate({"x": 5})
        assert LinAtom.le(X, C(5)).evaluate({"x": 5})
        assert LinAtom.eq(X, C(5)).evaluate({"x": 5})
        assert not LinAtom.eq(X, C(5)).evaluate({"x": 4})

    def test_equality_via_normalization(self):
        assert LinAtom.gt(X, C(5)) == LinAtom.ge(X, C(6))

    def test_substitute(self):
        a = LinAtom.le(X, N).substitute({"n": C(3)})
        assert a == LinAtom.le(X, C(3))

    def test_rename(self):
        a = LinAtom.le(X, N).rename({"x": "y"})
        assert "y" in a.variables()

    def test_immutable(self):
        with pytest.raises(AttributeError):
            LinAtom.le(X, N).constraint = None

    def test_hashable(self):
        assert len({LinAtom.le(X, N), LinAtom.le(X, N)}) == 1


class TestDivAtom:
    def test_evaluate(self):
        a = DivAtom(N, 4)
        assert a.evaluate({"n": 8})
        assert not a.evaluate({"n": 9})

    def test_modulus_validation(self):
        with pytest.raises(ValueError):
            DivAtom(N, 1)

    def test_integral_required(self):
        from fractions import Fraction

        with pytest.raises(ValueError):
            DivAtom(AffineExpr.var("n", Fraction(1, 2)), 2)

    def test_substitute(self):
        a = DivAtom(N, 4).substitute({"n": AffineExpr.var("m") * 2})
        assert a.evaluate({"m": 2})
        assert not a.evaluate({"m": 1})

    def test_equality(self):
        assert DivAtom(N, 4) == DivAtom(N, 4)
        assert DivAtom(N, 4) != DivAtom(N, 2)


class TestOpaqueAtom:
    def test_identity_is_key(self):
        a = OpaqueAtom("a(k) > 0", ("k",))
        b = OpaqueAtom("a(k) > 0", ("k",))
        assert a == b and hash(a) == hash(b)

    def test_reads_sorted_unique(self):
        a = OpaqueAtom("f(x,y)", ("y", "x", "y"))
        assert a.reads == ("x", "y")

    def test_evaluate_requires_callback(self):
        a = OpaqueAtom("weird", ())
        with pytest.raises(ValueError):
            a.evaluate({})

    def test_evaluate_with_callback(self):
        a = OpaqueAtom("x*y > 0", ("x", "y"))
        result = a.evaluate(
            {"x": 2, "y": 3}, lambda atom, env: env["x"] * env["y"] > 0
        )
        assert result

    def test_substitute_noop(self):
        a = OpaqueAtom("x*y > 0", ("x", "y"))
        assert a.substitute({"x": AffineExpr.const(1)}) is a

    def test_rename(self):
        a = OpaqueAtom("x > 0", ("x",)).rename({"x": "z"})
        assert a.reads == ("z",)
        assert "z" in a.key
