"""Unit tests for concrete predicate evaluation."""

import pytest

from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.evaluate import evaluate
from repro.predicates.formula import FALSE, TRUE, p_and, p_atom, p_not, p_or
from repro.symbolic.affine import AffineExpr

X = AffineExpr.var("x")
C = AffineExpr.const


class TestEvaluate:
    def test_constants(self):
        assert evaluate(TRUE, {})
        assert not evaluate(FALSE, {})

    def test_linear(self):
        f = p_atom(LinAtom.gt(X, C(5)))
        assert evaluate(f, {"x": 6})
        assert not evaluate(f, {"x": 5})

    def test_divisibility(self):
        f = p_atom(DivAtom(X, 3))
        assert evaluate(f, {"x": 9})
        assert not evaluate(f, {"x": 10})

    def test_opaque_with_callback(self):
        f = p_atom(OpaqueAtom("x*x > 10", ("x",)))
        ev = lambda atom, env: env["x"] ** 2 > 10
        assert evaluate(f, {"x": 4}, ev)
        assert not evaluate(f, {"x": 3}, ev)

    def test_opaque_without_callback_raises(self):
        f = p_atom(OpaqueAtom("mystery", ()))
        with pytest.raises(ValueError):
            evaluate(f, {})

    def test_connectives(self):
        a = p_atom(LinAtom.gt(X, C(0)))
        b = p_atom(LinAtom.lt(X, C(10)))
        assert evaluate(p_and(a, b), {"x": 5})
        assert not evaluate(p_and(a, b), {"x": 10})
        assert evaluate(p_or(a, b), {"x": 10})
        assert evaluate(p_not(a), {"x": 0})

    def test_short_circuit_not_required_semantics(self):
        # And/Or evaluate every operand type correctly regardless of order
        a = p_atom(LinAtom.gt(X, C(0)))
        f = p_or(a, p_not(a))
        for x in (-1, 0, 1):
            assert evaluate(f, {"x": x})


class TestTruthTableAgreement:
    """Structural constructors agree with brute-force truth tables."""

    def test_three_opaque_vars(self):
        import itertools

        from repro.predicates.formula import p_and, p_not, p_or

        p = p_atom(OpaqueAtom("p", ()))
        q = p_atom(OpaqueAtom("q", ()))
        r = p_atom(OpaqueAtom("r", ()))
        formula = p_or(p_and(p, q), p_and(p_not(p), r))

        def ev(vals):
            table = {"p": vals[0], "q": vals[1], "r": vals[2]}
            cb = lambda atom, env: table[atom.key]
            return evaluate(formula, {}, cb)

        for vals in itertools.product([False, True], repeat=3):
            expected = (vals[0] and vals[1]) or ((not vals[0]) and vals[2])
            assert ev(vals) == expected
