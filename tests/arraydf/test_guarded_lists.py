"""Unit tests for guarded-list plumbing: dedup modes, guarded_value,
and the split_guard_cases iteration-covering decomposition."""

from repro.arraydf.embedding import split_guard_cases
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.values import GuardedSummary, _dedup_guarded, guarded_value
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.formula import FALSE, TRUE, p_and, p_atom
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
I = AffineExpr.var("i")
X = AffineExpr.var("x")
C = AffineExpr.const

OPTS = AnalysisOptions.predicated()


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array, 1,
        LinearSystem([Constraint.ge(D0, C(lo)), Constraint.le(D0, C(hi))]),
    )


def sset(lo, hi):
    return SummarySet.of(interval(lo, hi))


P = p_atom(LinAtom.gt(X, C(5)))


class TestDedupModes:
    def make(self, *pairs):
        return [GuardedSummary(p, s) for p, s in pairs]

    def test_min_keeps_tightest_default(self):
        items = self.make((TRUE, sset(1, 10)), (TRUE, sset(2, 5)))
        out = _dedup_guarded(items, 6, keep="min")
        defaults = [g for g in out if g.is_default()]
        assert len(defaults) == 1
        assert defaults[0].summary == sset(2, 5)

    def test_max_keeps_largest_default(self):
        items = self.make((TRUE, sset(2, 5)), (TRUE, sset(1, 10)))
        out = _dedup_guarded(items, 6, keep="max")
        defaults = [g for g in out if g.is_default()]
        assert defaults[0].summary == sset(1, 10)

    def test_first_keeps_first(self):
        items = self.make((TRUE, sset(1, 3)), (TRUE, sset(5, 9)))
        out = _dedup_guarded(items, 6, keep="first")
        assert [g for g in out if g.is_default()][0].summary == sset(1, 3)

    def test_false_guards_dropped(self):
        items = self.make((FALSE, sset(1, 3)), (TRUE, sset(1, 3)))
        assert len(_dedup_guarded(items, 6)) == 1

    def test_unsat_guards_dropped(self):
        contradiction = p_and(
            p_atom(LinAtom.gt(X, C(5))), p_atom(LinAtom.le(X, C(0)))
        )
        items = self.make((contradiction, sset(1, 3)), (TRUE, sset(1, 3)))
        assert len(_dedup_guarded(items, 6)) == 1

    def test_cap_preserves_default(self):
        items = self.make(
            *[
                (p_atom(OpaqueAtom(f"c{k}", ())), sset(k, k + 1))
                for k in range(10)
            ],
            (TRUE, sset(1, 20)),
        )
        out = _dedup_guarded(items, 4)
        assert len(out) == 4
        assert out[-1].is_default()


class TestGuardedValue:
    def test_must_default_empty(self):
        alts = [(P, sset(1, 5))]
        out = guarded_value(alts, sset(1, 9), "must", OPTS)
        defaults = [g for g in out if g.is_default()]
        assert defaults and defaults[0].summary.is_empty()

    def test_exposed_default_is_may(self):
        alts = [(P, sset(1, 5))]
        out = guarded_value(alts, sset(1, 9), "exposed", OPTS)
        defaults = [g for g in out if g.is_default()]
        assert defaults[0].summary == sset(1, 9)

    def test_base_options_strip_guards(self):
        alts = [(P, sset(1, 5)), (TRUE, sset(1, 9))]
        out = guarded_value(alts, sset(1, 9), "exposed", AnalysisOptions.base())
        assert all(g.is_default() for g in out)


class TestSplitGuardCases:
    def region_at_i(self):
        return SummarySet.of(ArrayRegion.from_subscripts("a", [I]))

    def test_invariant_guard_single_case(self):
        split = split_guard_cases(
            P, sset(1, 5), sset(1, 9), frozenset({"i"}), True
        )
        assert split is not None
        pred, cases = split
        assert pred == P and len(cases) == 1

    def test_index_guard_produces_complement_cases(self):
        guard = p_atom(LinAtom.gt(I, C(5)))
        split = split_guard_cases(
            guard, self.region_at_i(), self.region_at_i(),
            frozenset({"i"}), True,
        )
        assert split is not None
        pred, cases = split
        assert pred.is_true()
        assert len(cases) == 2  # refined + one complement piece
        refined, complement = cases[0][0], cases[1][0]
        # refined covers i > 5 only
        r = refined.regions("a")[0]
        assert r.contains_point((7,), {"i": 7})
        assert not r.contains_point((3,), {"i": 3})
        c = complement.regions("a")[0]
        assert c.contains_point((3,), {"i": 3})
        assert not c.contains_point((7,), {"i": 7})

    def test_cases_cover_every_iteration(self):
        guard = p_atom(LinAtom.gt(I, C(5)))
        split = split_guard_cases(
            guard, self.region_at_i(), self.region_at_i(),
            frozenset({"i"}), True,
        )
        _, cases = split
        for i in range(1, 11):
            assert any(
                s.regions("a")
                and s.regions("a")[0].contains_point((i,), {"i": i})
                for s, _sys in cases
            ), i

    def test_volatile_opaque_unusable(self):
        guard = p_atom(OpaqueAtom("t(i) > 0", ("t", "i")))
        split = split_guard_cases(
            guard, sset(1, 5), sset(1, 9), frozenset({"i"}), True
        )
        assert split is None

    def test_embedding_disabled_unusable(self):
        guard = p_atom(LinAtom.gt(I, C(5)))
        split = split_guard_cases(
            guard, sset(1, 5), sset(1, 9), frozenset({"i"}), False
        )
        assert split is None
