"""Unit tests for the tier-0 dependence screen's classification rules."""

import pytest

from repro.arraydf.screen import (
    MAX_ACCESSES,
    ScreenedUnit,
    empty_screen,
    rebind_screen,
    screen_payload,
    screen_unit,
)
from repro.ir.symboltable import SymbolTable
from repro.lang.parser import parse_program


def _screen(src, unit=None):
    program = parse_program(src)
    u = program.units[unit] if unit else program.main_unit
    return screen_unit(u, SymbolTable(u))


def _wrap(body, decls="  integer n, m\n  real a(100), b(10, 10)\n"):
    return (
        "program p\n" + decls + "  read n, m\n" + body + "end\n"
    )


class TestVerdicts:
    def test_disjoint_writes_are_independent(self):
        s = _screen(_wrap("  do i = 1, n\n    a(i) = 0.0\n  enddo\n"))
        assert s.verdicts == {"p:L1": "independent"}
        assert s.independent_labels == ["p:L1"]
        assert s.full_cover

    def test_offset_read_conflicts_are_unknown(self):
        s = _screen(
            _wrap("  do i = 1, n\n    a(i) = a(i + 1)\n  enddo\n")
        )
        assert s.verdicts == {"p:L1": "unknown"}
        assert not s.full_cover
        assert "p:L1" not in s.rows

    def test_witness_in_second_dimension(self):
        s = _screen(
            _wrap("  do i = 1, n\n    b(1, i) = b(2, i)\n  enddo\n")
        )
        assert s.verdicts == {"p:L1": "independent"}

    def test_loop_variant_subscript_var_is_unknown(self):
        # m moves inside the loop: a(m)'s witness argument breaks even
        # though each subscript is affine
        s = _screen(
            _wrap(
                "  do i = 1, n\n"
                "    m = i + 1\n"
                "    a(i + m) = 0.0\n"
                "  enddo\n"
            )
        )
        assert s.verdicts == {"p:L1": "unknown"}

    def test_calls_are_unknown(self):
        s = _screen(
            "program p\n"
            "  integer n\n"
            "  real a(100)\n"
            "  read n\n"
            "  do i = 1, n\n"
            "    call f(a, i)\n"
            "  enddo\n"
            "end\n"
            "subroutine f(x, j)\n"
            "  integer j\n"
            "  real x(*)\n"
            "  x(j) = 0.0\n"
            "end\n"
        )
        assert s.verdicts == {"p:L1": "unknown"}

    def test_io_loop_is_not_candidate_with_row(self):
        s = _screen(
            _wrap("  do i = 1, n\n    print a(i)\n  enddo\n")
        )
        assert s.verdicts == {"p:L1": "not_candidate"}
        assert s.rows["p:L1"]["status"] == "not_candidate"
        assert s.rows["p:L1"]["reason"] == "io"
        assert s.full_cover  # not_candidate rows still cover the loop

    def test_access_cap_defers_to_the_analysis(self):
        reads = " + ".join(f"a(i + {k})" for k in range(MAX_ACCESSES))
        # every subscript shares the same witness shape except the
        # count: past the cap the screen must refuse to reason
        body = (
            "  do i = 1, n\n"
            + "".join(f"    a(i) = a(i)\n" for _ in range(MAX_ACCESSES + 1))
            + "  enddo\n"
        )
        s = _screen(_wrap(body))
        assert s.verdicts == {"p:L1": "unknown"}

    def test_empty_constant_inner_loop_is_unknown(self):
        # the inner loop never runs: the analysis never sees b's write,
        # so the screen must not predict a verdict for this nest
        s = _screen(
            _wrap(
                "  do i = 1, n\n"
                "    a(i) = 0.0\n"
                "    do j = 5, 2\n"
                "      b(j, i) = 0.0\n"
                "    enddo\n"
                "  enddo\n"
            )
        )
        assert s.verdicts["p:L1"] == "unknown"

    def test_private_scalar_survives_screening(self):
        s = _screen(
            _wrap(
                "  do i = 1, n\n"
                "    m = i * 2\n"
                "    a(i) = m * 1.0\n"
                "  enddo\n",
            )
        )
        assert s.verdicts == {"p:L1": "independent"}
        assert s.rows["p:L1"]["private_scalars"] == ["m"]

    def test_exposed_scalar_read_is_unknown(self):
        # m is read before written each iteration: a loop-carried
        # scalar obstacle the screen refuses
        s = _screen(
            _wrap(
                "  do i = 1, n\n"
                "    a(i) = m * 1.0\n"
                "    m = i\n"
                "  enddo\n"
            )
        )
        assert s.verdicts == {"p:L1": "unknown"}


class TestPayload:
    SRC = _wrap(
        "  do i = 1, n\n"
        "    a(i) = 0.0\n"
        "  enddo\n"
        "  do i = 1, n\n"
        "    a(i) = a(i + 1)\n"
        "  enddo\n"
    )

    def test_round_trip(self):
        s = _screen(self.SRC)
        back = rebind_screen(screen_payload(s), "p")
        assert back is not None
        assert back.verdicts == s.verdicts
        assert back.order == s.order
        assert back.full_cover == s.full_cover
        assert back.rows.keys() == s.rows.keys()

    def test_skip_summary_is_not_part_of_the_payload(self):
        s = _screen(self.SRC)
        s.skip_summary = True
        back = rebind_screen(screen_payload(s), "p")
        assert back.skip_summary is False  # derived by the parent

    def test_rebind_rejects_malformed_payload(self):
        s = _screen(self.SRC)
        payload = screen_payload(s)
        del payload["verdicts"]
        assert rebind_screen(payload, "p") is None
        assert rebind_screen(None, "p") is None

    def test_empty_screen_never_claims_cover(self):
        s = empty_screen("p")
        assert not s.full_cover
        assert s.verdicts == {}
        assert s.independent_labels == []

    def test_sentinel_carries_unit_name(self):
        assert ScreenedUnit("p").unit_name == "p"
