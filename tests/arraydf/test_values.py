"""Unit tests for predicated data-flow values and composition."""

from repro.arraydf.options import AnalysisOptions
from repro.arraydf.values import (
    AccessValue,
    GuardedSummary,
    branch_join,
    seq_compose,
    seq_compose_all,
)
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.formula import TRUE, p_atom, p_not
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

OPTS = AnalysisOptions.predicated()
BASE = AnalysisOptions.base()

D0 = AffineExpr.var("__d0")
C = AffineExpr.const
X = AffineExpr.var("x")
P = p_atom(LinAtom.gt(X, C(5)))


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array, 1,
        LinearSystem([Constraint.ge(D0, C(lo)), Constraint.le(D0, C(hi))]),
    )


def sset(lo, hi, array="a"):
    return SummarySet.of(interval(lo, hi, array))


def leaf_write(lo, hi, array="a"):
    return AccessValue.leaf(SummarySet.empty(), sset(lo, hi, array))


def leaf_read(lo, hi, array="a"):
    return AccessValue.leaf(sset(lo, hi, array), SummarySet.empty())


class TestLeafAndEmpty:
    def test_empty(self):
        v = AccessValue.empty()
        assert v.r.is_empty() and v.w.is_empty()
        assert v.must_default().is_empty()
        assert v.exposed_default().is_empty()

    def test_leaf_exposes_reads(self):
        v = leaf_read(1, 5)
        assert v.exposed_default() == sset(1, 5)

    def test_leaf_writes_are_must(self):
        v = leaf_write(1, 5)
        assert v.must_default() == sset(1, 5)

    def test_leaf_walts_default(self):
        v = leaf_write(1, 5)
        assert len(v.w_alts) == 1
        assert v.w_alts[0].is_default()
        assert v.w_alts[0].summary == v.w


class TestSeqCompose:
    def test_write_then_read_not_exposed(self):
        v = seq_compose(leaf_write(1, 10), leaf_read(2, 5), OPTS)
        assert v.exposed_default().is_empty()

    def test_read_then_write_exposed(self):
        v = seq_compose(leaf_read(2, 5), leaf_write(1, 10), OPTS)
        assert v.exposed_default() == sset(2, 5)

    def test_partial_coverage(self):
        v = seq_compose(leaf_write(1, 3), leaf_read(1, 6), OPTS)
        exposed = v.exposed_default()
        pts = {
            d for r in exposed.regions("a") for d in range(0, 10)
            if r.contains_point((d,), {})
        }
        assert pts == {4, 5, 6}

    def test_must_union(self):
        v = seq_compose(leaf_write(1, 3), leaf_write(5, 8), OPTS)
        assert v.must_default().covers(sset(1, 3))
        assert v.must_default().covers(sset(5, 8))

    def test_may_union(self):
        v = seq_compose(leaf_write(1, 3), leaf_read(5, 8), OPTS)
        assert v.w == sset(1, 3)
        assert v.r == sset(5, 8)

    def test_scalar_writes_accumulate(self):
        v1 = AccessValue.leaf(
            SummarySet.empty(), SummarySet.empty(), frozenset(["x"])
        )
        v2 = AccessValue.leaf(
            SummarySet.empty(), SummarySet.empty(), frozenset(["y"])
        )
        assert seq_compose(v1, v2, OPTS).scalar_writes == {"x", "y"}

    def test_seq_compose_all(self):
        v = seq_compose_all(
            [leaf_write(1, 3), leaf_write(4, 6), leaf_read(1, 6)], OPTS
        )
        assert v.exposed_default().is_empty()

    def test_guard_dropped_when_clobbered(self):
        # v2's guard reads x; v1 writes x → the guarded must is weakened
        v1 = AccessValue.leaf(
            SummarySet.empty(), SummarySet.empty(), frozenset(["x"])
        )
        guarded = AccessValue(
            r=SummarySet.empty(),
            w=sset(1, 5),
            m=(
                GuardedSummary(P, sset(1, 5)),
                GuardedSummary(TRUE, SummarySet.empty()),
            ),
            e=(GuardedSummary(TRUE, SummarySet.empty()),),
        )
        v = seq_compose(v1, guarded, OPTS)
        for g in v.m:
            if not g.is_default():
                assert "x" not in g.pred.variables() or g.summary.is_empty()


class TestBranchJoin:
    def test_may_unions(self):
        v = branch_join(P, leaf_write(1, 3), leaf_write(5, 8), OPTS)
        assert v.w.covers(sset(1, 3)) and v.w.covers(sset(5, 8))

    def test_must_default_is_intersection(self):
        v = branch_join(P, leaf_write(1, 6), leaf_write(4, 9), OPTS)
        d = v.must_default()
        pts = {
            x for r in d.regions("a") for x in range(0, 12)
            if r.contains_point((x,), {})
        }
        assert pts == {4, 5, 6}

    def test_guarded_must_alternatives(self):
        v = branch_join(P, leaf_write(1, 6), AccessValue.empty(), OPTS)
        guarded = [g for g in v.m if not g.is_default()]
        assert any(g.pred == P and g.summary == sset(1, 6) for g in guarded)

    def test_base_options_produce_no_guards(self):
        v = branch_join(P, leaf_write(1, 6), AccessValue.empty(), BASE)
        assert all(g.is_default() for g in v.m)
        assert all(g.is_default() for g in v.e)
        assert all(g.is_default() for g in v.w_alts)

    def test_guarded_exposed_alternatives(self):
        v = branch_join(P, leaf_read(1, 5), AccessValue.empty(), OPTS)
        guarded = [g for g in v.e if not g.is_default()]
        # under ¬P nothing is exposed
        notp = p_not(P)
        assert any(g.pred == notp and g.summary.is_empty() for g in guarded)

    def test_guarded_writes(self):
        v = branch_join(P, leaf_write(1, 5), AccessValue.empty(), OPTS)
        notp = p_not(P)
        assert any(
            g.pred == notp and g.summary.is_empty() for g in v.w_alts
        )

    def test_predicated_equals_base_when_cond_true(self):
        vp = branch_join(TRUE, leaf_write(1, 5), leaf_write(1, 5), OPTS)
        vb = branch_join(TRUE, leaf_write(1, 5), leaf_write(1, 5), BASE)
        assert vp.must_default() == vb.must_default()
        assert vp.exposed_default() == vb.exposed_default()


class TestGuardedInvariants:
    def test_e_always_has_default(self):
        v = branch_join(P, leaf_read(1, 5), leaf_read(3, 8), OPTS)
        assert any(g.is_default() for g in v.e)
        v2 = seq_compose(v, leaf_write(1, 10), OPTS)
        assert any(g.is_default() for g in v2.e)

    def test_m_always_has_default(self):
        v = branch_join(P, leaf_write(1, 5), leaf_write(3, 8), OPTS)
        assert any(g.is_default() for g in v.m)

    def test_beam_capped(self):
        v = AccessValue.empty()
        for k in range(10):
            q = p_atom(OpaqueAtom(f"c{k}", ()))
            v = seq_compose(
                v,
                branch_join(q, leaf_write(k * 2, k * 2 + 1), AccessValue.empty(), OPTS),
                OPTS,
            )
        assert len(v.m) <= OPTS.max_guarded
        assert len(v.e) <= OPTS.max_guarded
        assert len(v.w_alts) <= OPTS.max_guarded
