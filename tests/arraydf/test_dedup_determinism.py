"""Determinism and semantics of guarded-list compaction.

The semantic dedup modes (``keep="min"`` / ``keep="max"``) must produce
the *same* kept list for every permutation of the input: equivalence
merging, dominance dropping and the cap all work on a strength-ranked
ordering, never on arrival order.  (``keep="first"`` is the legacy
arrival-order mode and is exempt by design.)
"""

import itertools

from repro.arraydf.values import GuardedSummary, _dedup_guarded
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom
from repro.predicates.formula import TRUE, p_and, p_atom
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
X = AffineExpr.var("x")
C = AffineExpr.const


def sset(lo, hi):
    return SummarySet.of(
        ArrayRegion(
            "a",
            1,
            LinearSystem(
                [Constraint.ge(D0, C(lo)), Constraint.le(D0, C(hi))]
            ),
        )
    )


def ge(k):
    return p_atom(LinAtom.ge(X, C(k)))


def shape(out):
    """Order-insensitive but content-exact fingerprint of a kept list."""
    return tuple((str(g.pred), str(g.summary)) for g in out)


class TestPermutationIndependence:
    def entries(self):
        return [
            GuardedSummary(ge(2), sset(0, 10)),
            # equivalent to ge(2) (x>=2 subsumes x>=0), tighter summary
            GuardedSummary(p_and(ge(2), ge(0)), sset(0, 8)),
            # implies ge(2) with a looser summary: dominated under "min"
            GuardedSummary(ge(5), sset(0, 10)),
            GuardedSummary(ge(1), sset(0, 20)),
            GuardedSummary(TRUE, sset(0, 30)),
        ]

    def test_min_mode_is_input_order_independent(self):
        base = None
        for perm in itertools.permutations(self.entries()):
            out = shape(_dedup_guarded(list(perm), 6, keep="min"))
            if base is None:
                base = out
            assert out == base, perm

    def test_max_mode_is_input_order_independent(self):
        base = None
        for perm in itertools.permutations(self.entries()):
            out = shape(_dedup_guarded(list(perm), 6, keep="max"))
            if base is None:
                base = out
            assert out == base, perm

    def test_cap_is_input_order_independent(self):
        base = None
        for perm in itertools.permutations(self.entries()):
            out = shape(_dedup_guarded(list(perm), 3, keep="min"))
            if base is None:
                base = out
            assert len(_dedup_guarded(list(perm), 3, keep="min")) <= 3
            assert out == base, perm


class TestSemanticCompaction:
    def test_equivalent_guards_merge_min(self):
        """Provably-equivalent guards collapse to one pair carrying the
        tighter summary under ``min``."""
        items = [
            GuardedSummary(ge(2), sset(0, 10)),
            GuardedSummary(p_and(ge(2), ge(0)), sset(0, 8)),
        ]
        out = _dedup_guarded(items, 6, keep="min")
        assert len(out) == 1
        assert str(out[0].summary) == str(sset(0, 8))

    def test_equivalent_guards_merge_max(self):
        """... and the larger summary under ``max``."""
        items = [
            GuardedSummary(ge(2), sset(0, 10)),
            GuardedSummary(p_and(ge(2), ge(0)), sset(0, 8)),
        ]
        out = _dedup_guarded(items, 6, keep="max")
        assert len(out) == 1
        assert str(out[0].summary) == str(sset(0, 10))

    def test_dominated_pair_dropped_min(self):
        """A strictly stronger guard promising nothing tighter is noise
        under ``min`` (its claim is already made on a weaker guard)."""
        items = [
            GuardedSummary(ge(2), sset(0, 8)),
            GuardedSummary(ge(5), sset(0, 10)),
        ]
        out = _dedup_guarded(items, 6, keep="min")
        assert shape(out) == ((str(ge(2)), str(sset(0, 8))),)

    def test_incomparable_pairs_survive(self):
        """Guards with genuinely different summaries both stay."""
        items = [
            GuardedSummary(ge(2), sset(0, 8)),
            GuardedSummary(ge(5), sset(0, 4)),  # stronger guard, tighter
        ]
        out = _dedup_guarded(items, 6, keep="min")
        assert len(out) == 2

    def test_cap_keeps_strongest_and_default(self):
        """Under a cap, the kept pairs are the strength-ranked prefix
        and the default (TRUE-guard) pair always survives."""

        def half_set(lo):  # half-open: one constraint, hence weaker rank
            return SummarySet.of(
                ArrayRegion(
                    "a", 1, LinearSystem([Constraint.ge(D0, C(lo))])
                )
            )

        items = [
            GuardedSummary(ge(3), half_set(0)),
            GuardedSummary(ge(5), sset(0, 4)),
            GuardedSummary(ge(2), half_set(1)),
            GuardedSummary(ge(4), sset(0, 5)),
            GuardedSummary(TRUE, sset(0, 30)),
        ]
        out = _dedup_guarded(items, 3, keep="min")
        assert len(out) == 3
        assert out[-1].is_default()
        kept = {str(g.summary) for g in out if not g.is_default()}
        # the two fully-bounded (strongest-ranked) summaries win the
        # two capped slots, regardless of arrival order
        assert kept == {str(sset(0, 4)), str(sset(0, 5))}
