"""Summary rebinding and the conservative call value.

``ArrayDataflow._rebind_summary`` reattaches a cached per-unit payload
to the current parse; the conservative call value is the sound fallback
for call sites without a usable callee summary.  Both paths feed the
parallelization decisions, so these tests pin them structurally — on
the legacy monolithic path and through the pass pipeline.
"""

import pytest

from repro import perf
from repro.arraydf.analysis import ArrayDataflow, _UnitWalker, _summary_payload
from repro.arraydf.options import AnalysisOptions
from repro.ir.regiongraph import CallRegion, build_region_tree
from repro.lang.astnodes import walk_stmts
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.pipeline import set_pipeline
from repro.service.cache import SummaryCache

SRC = """
program main
  integer n
  real a(100), b(100)
  read n
  call fill(a, n)
  call fill(b, n)
  do i = 1, n
    a(i) = a(i) + b(i)
  enddo
  print a(n)
end
subroutine fill(x, m)
  integer m
  real x(100)
  do j = 1, m
    x(j) = 0.0
  enddo
end
"""


@pytest.fixture(autouse=True)
def _cold():
    perf.reset_all_caches()
    yield
    perf.reset_all_caches()


def _loops_by_label(summary):
    return {ls.label: ls for ls in summary.loops.values()}


class TestRebindSummary:
    def test_roundtrip_is_structurally_identical(self):
        """payload → rebind on a fresh parse == a fresh walk."""
        opts = AnalysisOptions.predicated()
        fresh = ArrayDataflow(parse_program(SRC), opts).run()
        other = ArrayDataflow(parse_program(SRC), opts)
        for name in other.callgraph.bottom_up_order():
            payload = _summary_payload(fresh.units[name])
            rebound = other._rebind_summary(
                payload, other.program.units[name]
            )
            assert rebound is not None
            other.units[name] = rebound  # callees for later units
            reference = fresh.units[name]
            assert rebound.unit_name == reference.unit_name
            assert rebound.proc_value == reference.proc_value
            ref_loops = _loops_by_label(reference)
            reb_loops = _loops_by_label(rebound)
            assert reb_loops.keys() == ref_loops.keys()
            for label, ls in reb_loops.items():
                ref = ref_loops[label]
                assert ls.body_value == ref.body_value
                assert ls.loop_value == ref.loop_value
                assert ls.path_pred == ref.path_pred
                # the rebind must point at *this* parse's AST, not the
                # one the payload came from
                assert ls.loop is not ref.loop

    def test_rejects_malformed_payload(self):
        df = ArrayDataflow(parse_program(SRC), AnalysisOptions.predicated())
        unit = df.program.units["fill"]
        assert df._rebind_summary(None, unit) is None
        assert df._rebind_summary(42, unit) is None
        assert df._rebind_summary((None,), unit) is None

    def test_rejects_unknown_loop_label(self):
        opts = AnalysisOptions.predicated()
        fresh = ArrayDataflow(parse_program(SRC), opts).run()
        proc_value, loop_rows = _summary_payload(fresh.units["fill"])
        bad_rows = [("fill:L99", *row[1:]) for row in loop_rows]
        df = ArrayDataflow(parse_program(SRC), opts)
        assert (
            df._rebind_summary(
                (proc_value, bad_rows), df.program.units["fill"]
            )
            is None
        )

    def test_cache_hit_goes_through_rebind(self, tmp_path):
        """A warm cache run must equal the cold run structurally."""
        opts = AnalysisOptions.predicated()
        cache = SummaryCache(tmp_path)
        cold = ArrayDataflow(parse_program(SRC), opts, cache=cache).run()
        hits_before = perf.counter("cache.summary_hit")
        warm = ArrayDataflow(parse_program(SRC), opts, cache=cache).run()
        assert perf.counter("cache.summary_hit") > hits_before
        for name in cold.program.units:
            assert (
                _loops_by_label(warm.units[name]).keys()
                == _loops_by_label(cold.units[name]).keys()
            )
            assert warm.units[name].proc_value == cold.units[name].proc_value


class TestConservativeCallValue:
    def _call_region(self, df, unit_name):
        proc = build_region_tree(df.program.units[unit_name])
        calls = [
            r for r in _walk_regions(proc) if isinstance(r, CallRegion)
        ]
        assert calls
        return calls[0]

    def test_whole_array_may_access_nothing_must(self):
        opts = AnalysisOptions.predicated().without(interprocedural=False)
        df = ArrayDataflow(parse_program(SRC), opts)
        walker = _UnitWalker(df)
        region = self._call_region(df, "main")
        value = walker._conservative_call_value(
            region.stmt, df.symtabs["main"], []
        )
        # the passed array may be read and written anywhere...
        from repro.regions.region import ArrayRegion

        symtab = df.symtabs["main"]
        (r_reg,) = value.r.regions("a")
        assert r_reg == ArrayRegion.whole(
            "a", symtab.rank("a"), symtab.affine_extents("a")
        )
        assert value.r == value.w
        # ...but nothing is definitely written, everything may be exposed
        assert len(value.m) == 1 and value.m[0].summary.is_empty()
        assert len(value.e) == 1 and value.e[0].summary == value.r
        assert value.scalar_writes == frozenset()

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_no_interproc_decisions_are_conservative(self, pipeline):
        """With summaries unusable, the caller loop over filled arrays
        must not be proven parallel from callee facts (legacy path and
        pipeline agree)."""
        try:
            set_pipeline(pipeline)
            opts = AnalysisOptions.predicated().without(interprocedural=False)
            conservative = analyze_program(parse_program(SRC), opts)
            precise = analyze_program(
                parse_program(SRC), AnalysisOptions.predicated()
            )
        finally:
            set_pipeline(None)
        by_label_cons = conservative.by_label()
        by_label_prec = precise.by_label()
        assert by_label_cons.keys() == by_label_prec.keys()
        # the callee's own loop is independent either way
        assert by_label_prec["fill:L1"].is_parallelized
        assert by_label_cons["fill:L1"].is_parallelized

    def test_pipeline_and_legacy_agree_without_interproc(self):
        opts = AnalysisOptions.predicated().without(interprocedural=False)
        rows = {}
        try:
            for pipeline in (True, False):
                set_pipeline(pipeline)
                result = analyze_program(parse_program(SRC), opts)
                rows[pipeline] = [
                    (l.label, l.status, l.reason, str(l.condition))
                    for l in result.loops
                ]
        finally:
            set_pipeline(None)
        assert rows[True] == rows[False]


def _walk_regions(region):
    yield region
    for child in region.children():
        yield from _walk_regions(child)
