"""Integration tests for the array data-flow walker on whole programs."""

import pytest

from repro.arraydf.analysis import ArrayDataflow
from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program

OPTS = AnalysisOptions.predicated()
BASE = AnalysisOptions.base()


def analyze(src, opts=OPTS):
    return ArrayDataflow(parse_program(src), opts).run()


def loop_by_label(df, label):
    for s in df.all_loop_summaries():
        if s.label == label:
            return s
    raise KeyError(label)


def pts(summary, array, env, rng=range(0, 30)):
    out = set()
    for r in summary.regions(array):
        out |= {d for d in rng if r.contains_point((d,), env)}
    return out


class TestLeafToLoop:
    SRC = """
program t
  integer n
  real a(100), b(100)
  read n
  do i = 1, n
    a(i) = b(i) + 1.0
  enddo
end
"""

    def test_loop_summaries_recorded(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        assert s.unit_name == "t"

    def test_body_value_per_iteration(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        assert pts(s.body_value.w, "a", {"i": 4}) == {4}
        assert pts(s.body_value.r, "b", {"i": 4}) == {4}

    def test_loop_value_projected(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        assert pts(s.loop_value.w, "a", {"n": 6}) == {1, 2, 3, 4, 5, 6}
        assert pts(s.loop_value.must_default(), "a", {"n": 6}) == {1, 2, 3, 4, 5, 6}

    def test_loop_exposed_reads(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        assert pts(s.loop_value.exposed_default(), "b", {"n": 4}) == {1, 2, 3, 4}


class TestKillWithinIteration:
    SRC = """
program t
  integer n
  real a(100), t1(100)
  read n
  do i = 1, n
    t1(i) = a(i)
    a(i) = t1(i) * 2.0
  enddo
end
"""

    def test_t1_read_not_exposed(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        exposed = s.body_value.exposed_default()
        assert pts(exposed, "t1", {"i": 3}) == set()
        assert pts(exposed, "a", {"i": 3}) == {3}


class TestConditionalValues:
    SRC = """
program t
  integer n, x
  real a(100)
  read n, x
  do i = 1, n
    if (x > 5) then
      a(i) = 1.0
    endif
  enddo
end
"""

    def test_conditional_write_not_must_by_default(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        assert s.body_value.must_default().is_empty()

    def test_guarded_must_present_with_predicates(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        guarded = [g for g in s.body_value.m if not g.is_default()]
        assert guarded and not guarded[0].summary.is_empty()

    def test_base_has_no_guards(self):
        df = analyze(self.SRC, BASE)
        s = loop_by_label(df, "t:L1")
        assert all(g.is_default() for g in s.body_value.m)


class TestIndexGuardEmbedding:
    SRC = """
program t
  integer n
  real a(100)
  read n
  do i = 1, n
    if (i > 5) then
      a(i) = 1.0
    endif
  enddo
end
"""

    def test_embedded_must_write(self):
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        # the loop-level must-write covers exactly [6, n]
        must = s.loop_value.must_default()
        assert pts(must, "a", {"n": 10}) == {6, 7, 8, 9, 10}

    def test_without_embedding_must_is_empty(self):
        df = analyze(self.SRC, OPTS.without(embedding=False))
        s = loop_by_label(df, "t:L1")
        assert pts(s.loop_value.must_default(), "a", {"n": 10}) == set()


class TestPriorIterationSubtraction:
    SRC = """
program t
  integer n
  real a(100)
  read n
  a(1) = 0.0
  do i = 2, n
    a(i) = a(i - 1) + 1.0
  enddo
end
"""

    def test_exposed_is_first_read_only(self):
        # iteration i reads a(i-1); all but a(1) were written by prior
        # iterations, so only a(1) is exposed at loop level
        df = analyze(self.SRC)
        s = loop_by_label(df, "t:L1")
        exposed = s.loop_value.exposed_default()
        assert pts(exposed, "a", {"n": 9}) == {1}


class TestInterprocedural:
    # `driver` takes the array as a formal so its proc summary keeps it
    SRC = """
program t
  integer n
  real a(100)
  read n
  call driver(a, n)
end
subroutine driver(a, n)
  real a(*)
  integer n
  call fill(a, n)
  do i = 1, n
    a(i) = a(i) + 1.0
  enddo
end
subroutine fill(x, n)
  real x(*)
  integer n
  do i = 1, n
    x(i) = 0.0
  enddo
end
"""

    def test_callee_summary_translated(self):
        df = analyze(self.SRC)
        drv = df.units["driver"]
        # driver's exposed reads are empty: fill writes a(1..n) first
        assert pts(drv.proc_value.exposed_default(), "a", {"n": 8}) == set()

    def test_no_interproc_is_conservative(self):
        df = analyze(self.SRC, OPTS.without(interprocedural=False))
        drv = df.units["driver"]
        exposed = drv.proc_value.exposed_default()
        assert pts(exposed, "a", {"n": 8}) != set()

    def test_main_proc_value_hides_locals(self):
        df = analyze(self.SRC)
        assert "a" not in df.units["t"].proc_value.w.arrays()

    def test_local_arrays_hidden(self):
        src = """
program t
  real a(10)
  call work(a)
  a(1) = 0.0
end
subroutine work(x)
  real x(*), scratch(10)
  do i = 1, 10
    scratch(i) = 1.0
    x(i) = scratch(i)
  enddo
end
"""
        df = analyze(src)
        callee = df.units["work"]
        assert "scratch" not in callee.proc_value.w.arrays()
        assert "x" in callee.proc_value.w.arrays()


class TestPredicatedDegeneratesToBase:
    """With no conditionals, both analyses must agree exactly."""

    SRC = """
program t
  integer n
  real a(100), b(100)
  read n
  do i = 1, n
    b(i) = a(i)
  enddo
  do i = 1, n
    a(i) = b(i) * 2.0
  enddo
end
"""

    def test_same_defaults(self):
        dfp = analyze(self.SRC, OPTS)
        dfb = analyze(self.SRC, BASE)
        for label in ("t:L1", "t:L2"):
            sp = loop_by_label(dfp, label)
            sb = loop_by_label(dfb, label)
            assert sp.loop_value.w == sb.loop_value.w
            assert sp.loop_value.r == sb.loop_value.r
            assert sp.loop_value.must_default() == sb.loop_value.must_default()
            assert (
                sp.loop_value.exposed_default()
                == sb.loop_value.exposed_default()
            )
