"""Unit tests for predicate embedding and extraction."""

from repro.arraydf.embedding import embed_into_summary, split_linear_conjuncts
from repro.arraydf.extraction import (
    breaking_condition,
    coverage_condition,
    pred_subtract,
)
from repro.arraydf.options import AnalysisOptions
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom, OpaqueAtom
from repro.predicates.evaluate import evaluate
from repro.predicates.formula import TRUE, p_and, p_atom, p_not, p_or
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
I = AffineExpr.var("i")
N = AffineExpr.var("n")
D = AffineExpr.var("d")
C = AffineExpr.const

OPTS = AnalysisOptions.predicated()


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array, 1,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


class TestSplitLinearConjuncts:
    def test_true(self):
        sys, residue = split_linear_conjuncts(TRUE)
        assert sys.is_universe() and residue.is_true()

    def test_single_linear_atom(self):
        p = p_atom(LinAtom.gt(I, C(5)))
        sys, residue = split_linear_conjuncts(p)
        assert len(sys) == 1 and residue.is_true()

    def test_opaque_stays_residue(self):
        p = p_atom(OpaqueAtom("f(x)", ("x",)))
        sys, residue = split_linear_conjuncts(p)
        assert sys.is_universe() and residue == p

    def test_mixed_conjunction(self):
        lin = p_atom(LinAtom.gt(I, C(5)))
        opq = p_atom(OpaqueAtom("f(x)", ("x",)))
        sys, residue = split_linear_conjuncts(p_and(lin, opq))
        assert len(sys) == 1 and residue == opq

    def test_disjunction_not_embeddable(self):
        a = p_atom(OpaqueAtom("p", ()))
        b = p_atom(OpaqueAtom("q", ()))
        disj = p_or(a, b)
        sys, residue = split_linear_conjuncts(disj)
        assert sys.is_universe() and residue == disj


class TestEmbedding:
    def test_embed_restricts_regions(self):
        # guard i > 5 embedded into region {d == i}
        summary = SummarySet.of(ArrayRegion.from_subscripts("a", [I]))
        pred = p_atom(LinAtom.gt(I, C(5)))
        residue, embedded = embed_into_summary(pred, summary)
        assert residue.is_true()
        region = embedded.regions("a")[0]
        assert region.contains_point((7,), {"i": 7})
        assert not region.contains_point((3,), {"i": 3})

    def test_embed_keeps_opaque_residue(self):
        summary = SummarySet.of(interval(C(1), N))
        opq = p_atom(OpaqueAtom("f(x)", ("x",)))
        pred = p_and(opq, p_atom(LinAtom.ge(N, C(1))))
        residue, embedded = embed_into_summary(pred, summary)
        assert residue == opq
        assert len(embedded.regions("a")[0].system) > 1


class TestBreakingCondition:
    def test_boundary_piece(self):
        # residual piece {d == n} exists only when n >= 1 given bounds;
        # projecting dims yields the piece's parameter condition
        piece = ArrayRegion(
            "a", 1,
            LinearSystem(
                [
                    Constraint.eq(D0, N),
                    Constraint.ge(D0, C(1)),
                    Constraint.le(D0, C(100)),
                ]
            ),
        )
        cond = breaking_condition([piece])
        assert cond is not None
        # under n == 0 the piece is empty: breaking condition holds
        assert evaluate(cond, {"n": 0})
        assert not evaluate(cond, {"n": 50})

    def test_unconditional_piece_fails(self):
        piece = interval(C(1), C(5))
        assert breaking_condition([piece]) is None

    def test_too_many_pieces(self):
        pieces = [interval(N + k, N + k) for k in range(20)]
        assert breaking_condition(pieces) is None


class TestPredSubtract:
    def test_full_coverage_single_alt(self):
        exposed = SummarySet.of(interval(C(2), C(5)))
        writes = SummarySet.of(interval(C(1), C(10)))
        alts = pred_subtract(exposed, writes, OPTS)
        assert len(alts) == 1
        assert alts[0][0].is_true() and alts[0][1].is_empty()

    def test_extraction_produces_guarded_empty(self):
        # exposed [1..m] minus writes [1..d]: empty iff m <= d
        M = AffineExpr.var("m")
        exposed = SummarySet.of(interval(C(1), M))
        writes = SummarySet.of(interval(C(1), D))
        alts = pred_subtract(exposed, writes, OPTS)
        guarded = [a for a in alts if not a[0].is_true()]
        assert guarded, "extraction should produce a guarded alternative"
        pred, summary = guarded[0]
        assert summary.is_empty()
        assert evaluate(pred, {"m": 3, "d": 5})
        assert not evaluate(pred, {"m": 7, "d": 5})

    def test_extraction_off(self):
        M = AffineExpr.var("m")
        exposed = SummarySet.of(interval(C(1), M))
        writes = SummarySet.of(interval(C(1), D))
        alts = pred_subtract(exposed, writes, AnalysisOptions.base())
        assert all(p.is_true() for p, _ in alts)

    def test_default_always_present(self):
        exposed = SummarySet.of(interval(C(1), N))
        writes = SummarySet.of(interval(C(1), D))
        alts = pred_subtract(exposed, writes, OPTS)
        assert any(p.is_true() for p, _ in alts)


class TestCoverageCondition:
    def test_outright_coverage(self):
        exposed = SummarySet.of(interval(C(2), C(5)))
        writes = SummarySet.of(interval(C(1), C(10)))
        assert coverage_condition(exposed, writes) is TRUE

    def test_conditional_coverage(self):
        exposed = SummarySet.of(interval(C(1), N))
        writes = SummarySet.of(interval(C(1), D))
        cond = coverage_condition(exposed, writes)
        assert cond is not None
        assert evaluate(cond, {"n": 3, "d": 5})
        assert not evaluate(cond, {"n": 9, "d": 5})
