"""The PERF.md counter-namespace table stays true to the live registry.

`docs/PERF.md` §1.4 enumerates every dotted prefix a perf registry name
may live under.  This test imports every ``repro`` module, runs
representative work so lazily-registered names (phase timers, runtime
counters) exist, and checks both directions:

* every registered name falls under a documented prefix, and
* every documented prefix matches at least one registered name
  (no stale rows).
"""

import importlib
import pkgutil
import re
import warnings
from pathlib import Path

import pytest

import repro
from repro import perf

PERF_MD = Path(__file__).resolve().parents[2] / "docs" / "PERF.md"


def _documented_prefixes():
    text = PERF_MD.read_text()
    m = re.search(r"### 1\.4[^\n]*\n(.*?)(?=\n## )", text, re.S)
    assert m, "PERF.md lost its counter-namespace table (section 1.4)"
    prefixes = re.findall(r"^\| `([a-z0-9_.]+?)(?:\.\*)?` \|", m.group(1), re.M)
    assert len(prefixes) >= 17, f"namespace table parsed oddly: {prefixes}"
    return prefixes


@pytest.fixture(scope="module")
def registry():
    for mod in pkgutil.walk_packages(repro.__path__, "repro."):
        importlib.import_module(mod.name)

    # representative work, so phase timers and runtime counters that
    # register on first use all exist
    from repro.arraydf.options import AnalysisOptions
    from repro.pipeline import run_pipeline
    from repro.runtime.elpd import run_oracle
    from repro.runtime.interp import run_program
    from repro.service.cache import SummaryCache
    from repro.suites import all_programs

    bench = all_programs()[0]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            cache = SummaryCache(d)
            opts = AnalysisOptions.predicated()
            run_pipeline(
                bench.fresh_program(),
                opts,
                cache=cache,
                goals=("result", "transformed"),
            )
            run_pipeline(bench.fresh_program(), opts, cache=cache)  # rebind
        run_program(bench.fresh_program(), bench.inputs)
        run_oracle(bench.fresh_program(), bench.inputs)
    return perf.registered_names()


def _covered(name, prefixes):
    base = name.split("[", 1)[0].strip()
    return any(base == p or base.startswith(p + ".") for p in prefixes)


def test_every_registered_name_is_documented(registry):
    prefixes = _documented_prefixes()
    undocumented = sorted(
        n for n in registry if not _covered(n, prefixes)
    )
    assert not undocumented, (
        "perf names missing from the PERF.md section 1.4 namespace "
        f"table: {undocumented}"
    )


def test_every_documented_prefix_is_live(registry):
    names = [n.split("[", 1)[0].strip() for n in registry]
    stale = sorted(
        p
        for p in _documented_prefixes()
        if not any(n == p or n.startswith(p + ".") for n in names)
    )
    assert not stale, (
        f"PERF.md section 1.4 documents prefixes with no registered "
        f"name behind them: {stale}"
    )


def test_dataflow_and_screen_namespaces_are_documented(registry):
    """The PR-8 namespaces: the worklist engine and the tier-0 screen."""
    prefixes = _documented_prefixes()
    assert "dataflow" in prefixes
    assert "screen" in prefixes
    for name in (
        "dataflow.engine.runs",
        "dataflow.engine.nodes",
        "dataflow.iterations",
        "screen.independent",
        "screen.unknown",
        "screen.agree",
        "screen.disagree",
        "screen.saved_units",
    ):
        assert registry.get(name) == "counter", name


def test_job_system_namespaces_are_documented(registry):
    """The PR-9 namespaces: the job queue, execution core and fleet."""
    prefixes = _documented_prefixes()
    for prefix in ("job", "queue", "worker", "http"):
        assert prefix in prefixes, prefix
    for name in (
        "job.analyze",
        "job.experiment",
        "job.done",
        "job.failed",
        "job.degraded",
        "job.receipt",
        "queue.submitted",
        "queue.claimed",
        "queue.finished",
        "queue.recovered",
        "queue.rejected",
        "worker.jobs",
        "worker.idle_waits",
        "http.requests",
        "http.rejected",
    ):
        assert registry.get(name) == "counter", name


def test_warm_fleet_namespaces_are_documented(registry):
    """The PR-10 names: warm-fleet lifecycle counters, batch chunking,
    queue batch submits and the perf layer's own events."""
    prefixes = _documented_prefixes()
    assert "perf" in prefixes
    for name in (
        "pipeline.executor.builds",
        "pipeline.executor.rebuilds",
        "pipeline.executor.reuses",
        "pipeline.executor.epoch_syncs",
        "pipeline.executor.chunks",
        "pipeline.executor.batch_programs",
        "queue.batches",
        "perf.epoch_bumps",
        "perf.memo_trims",
    ):
        assert registry.get(name) == "counter", name


def test_registered_names_report_their_kind(registry):
    assert registry.get("pipeline.executor.tasks") == "counter"
    assert registry.get("affine.intern") == "memo"
    assert registry.get("suites.all_programs") == "exempt"
    assert set(registry.values()) <= {
        "memo",
        "external",
        "exempt",
        "counter",
        "phase",
    }
