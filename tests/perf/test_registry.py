"""Registry completeness: every cache-like object must be registered.

A memo table created without going through ``perf.memo_table`` /
``perf.register_cache`` / ``perf.exempt_cache`` silently escapes
``perf.reset_all_caches()`` — benchmarks then measure a warm path while
claiming a cold one.  This test walks every module of the ``repro``
package, finds module-level cache-like objects (``perf.Memo`` instances
and ``functools.lru_cache`` wrappers) and fails on any the registry has
never seen, so adding a table without registering it breaks the build.
"""

import functools
import importlib
import pkgutil

import repro
from repro import perf


def _iter_repro_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _module_caches(mod):
    """Module-level (name, obj) pairs that look like caches."""
    for attr, obj in vars(mod).items():
        if isinstance(obj, perf.Memo):
            yield attr, obj
        elif isinstance(obj, functools._lru_cache_wrapper):
            yield attr, obj


class TestCacheRegistryCompleteness:
    def test_every_cache_is_registered(self):
        unregistered = []
        seen = set()
        for mod in _iter_repro_modules():
            for attr, obj in _module_caches(mod):
                if id(obj) in seen:
                    continue  # re-exported
                seen.add(id(obj))
                if perf.tracked_cache(obj) is None:
                    unregistered.append(f"{mod.__name__}.{attr}")
        assert not unregistered, (
            "cache-like objects unknown to the perf registry (register "
            "via perf.memo_table / perf.register_cache, or declare them "
            f"deliberately uncleared via perf.exempt_cache): {unregistered}"
        )

    def test_detects_unregistered_memo(self):
        """The scan actually catches a rogue table (meta-test)."""
        rogue = perf.Memo("rogue")  # deliberately bypasses memo_table
        assert perf.tracked_cache(rogue) is None
        assert perf.tracked_cache(perf.memo_table("pipeline.schedule")) == (
            "pipeline.schedule",
            "memo",
        )

    def test_exempt_caches_are_tracked_with_reason(self):
        from repro.suites.registry import all_programs

        tracked = perf.tracked_cache(all_programs)
        assert tracked is not None
        name, kind = tracked
        assert kind == "exempt"
        assert "exempt:" in name

    def test_registered_lru_caches_clear_on_reset(self):
        from repro.experiments.common import analyzed

        assert perf.tracked_cache(analyzed) == (
            "experiments.analyzed",
            "external",
        )
        analyzed("swim", "base")
        assert analyzed.cache_info().currsize > 0
        perf.reset_all_caches()
        assert analyzed.cache_info().currsize == 0

    def test_pipeline_schedule_memo_clears_on_reset(self):
        from repro.arraydf.options import AnalysisOptions
        from repro.pipeline import run_pipeline
        from repro.pipeline.manager import _schedule_memo
        from repro.suites import get_program

        run_pipeline(
            get_program("swim").fresh_program(), AnalysisOptions.predicated()
        )
        assert len(_schedule_memo.data) > 0
        perf.reset_all_caches()
        assert len(_schedule_memo.data) == 0
