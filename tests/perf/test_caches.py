"""Cache-correctness regression tests for the interning/memo layer.

Three guarantees the performance work must never silently break:

* interning — structurally equal ``AffineExpr`` / ``Constraint`` /
  ``LinearSystem`` / ``ArrayRegion`` values are the *same object*;
* memoization — the memoized region operations agree with their
  unmemoized implementations on randomized inputs;
* resettability — :func:`repro.perf.reset_all_caches` empties every
  registered table and re-seeds the module singletons.
"""

import random
from fractions import Fraction

from repro import perf
from repro.linalg.constraint import Constraint, FALSE, TRUE
from repro.linalg.system import LinearSystem
from repro.regions.operations import _try_coalesce_impl, try_coalesce
from repro.regions.region import ArrayRegion
from repro.regions.subtract import _subtract_region_impl, subtract_region
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
V = AffineExpr.var


class TestInternIdentity:
    def test_affine_expr_interned(self):
        a = V("i") * 2 + V("j") - 3
        b = V("j") + V("i") * 2 - 3
        assert a == b and a is b

    def test_affine_expr_distinct(self):
        assert V("i") is not V("j")
        assert (V("i") + 1) is not V("i")

    def test_fraction_and_int_keys_coincide(self):
        assert C(2) is C(Fraction(4, 2))

    def test_constraint_interned(self):
        a = Constraint.le(V("i"), V("n"))
        b = Constraint.le(V("i") - V("n"), C(0))
        assert a == b and a is b

    def test_system_interned_modulo_order(self):
        c1 = Constraint.ge(V("i"), C(1))
        c2 = Constraint.le(V("i"), V("n"))
        assert LinearSystem([c1, c2]) is LinearSystem([c2, c1])

    def test_system_interned_modulo_duplicates(self):
        c1 = Constraint.ge(V("i"), C(1))
        assert LinearSystem([c1, c1]) is LinearSystem([c1])

    def test_region_interned(self):
        s = LinearSystem([Constraint.ge(V("__d0"), C(1))])
        assert ArrayRegion("a", 1, s) is ArrayRegion("a", 1, s)
        assert ArrayRegion("a", 1, s) is not ArrayRegion("b", 1, s)


def _random_interval_region(rng, array="a"):
    """A 1-D region  lo <= __d0 <= hi  with small random symbolic bounds."""
    d = V("__d0")
    lo = C(rng.randint(-3, 3)) + V("n") * rng.choice([0, 0, 1])
    hi = C(rng.randint(2, 9)) + V("n") * rng.choice([0, 1, 1])
    return ArrayRegion(
        array, 1, LinearSystem([Constraint.ge(d, lo), Constraint.le(d, hi)])
    )


class TestMemoizedOpsMatchImpl:
    def test_subtract_matches_impl_randomized(self):
        rng = random.Random(1234)
        for _ in range(60):
            a = _random_interval_region(rng)
            b = _random_interval_region(rng)
            assert subtract_region(a, b) == _subtract_region_impl(a, b)
            # cached second call must agree too
            assert subtract_region(a, b) == _subtract_region_impl(a, b)

    def test_subtract_result_not_aliased(self):
        rng = random.Random(7)
        a = _random_interval_region(rng)
        b = _random_interval_region(rng)
        first = subtract_region(a, b)
        first.append(None)  # caller mutation must not poison the memo
        assert None not in subtract_region(a, b)

    def test_coalesce_matches_impl_randomized(self):
        rng = random.Random(99)
        for _ in range(60):
            a = _random_interval_region(rng)
            b = _random_interval_region(rng)
            assert try_coalesce(a, b) == _try_coalesce_impl(a, b)
            assert try_coalesce(a, b) == _try_coalesce_impl(a, b)

    def test_coalesce_caches_none_results(self):
        # disjoint arrays can never coalesce: result is None, and the
        # second call must be a memo *hit* (MISS sentinel discriminates)
        s = LinearSystem([Constraint.ge(V("__d0"), C(1))])
        a, b = ArrayRegion("p", 1, s), ArrayRegion("q", 1, s)
        assert try_coalesce(a, b) is None
        table = perf.memo_table("region.coalesce")
        hits = table.hits
        assert try_coalesce(a, b) is None
        assert table.hits == hits + 1


class TestResetAllCaches:
    def test_every_registered_table_empties(self):
        # populate a few tables, then reset and check the registry view
        rng = random.Random(5)
        a, b = _random_interval_region(rng), _random_interval_region(rng)
        subtract_region(a, b)
        try_coalesce(a, b)
        perf.reset_all_caches()
        stats = perf.snapshot()["caches"]
        assert stats  # the registry is populated
        for name, st in stats.items():
            # reseeded singletons leave at most a handful of entries
            assert st["size"] <= 4, f"{name} not cleared (size {st['size']})"
            assert st["hits"] == 0 and st["misses"] <= 4, name

    def test_singletons_survive_reset(self):
        perf.reset_all_caches()
        assert AffineExpr.const(0) is AffineExpr.ZERO
        assert AffineExpr.const(1) is AffineExpr.ONE
        assert Constraint(AffineExpr.ZERO, TRUE.rel) is TRUE
        assert LinearSystem(()) is LinearSystem.universe()
        assert LinearSystem((FALSE,)) is LinearSystem.empty()

    def test_interning_still_canonical_after_reset(self):
        e1 = V("i") + 3
        perf.reset_all_caches()
        e2 = V("i") + 3
        # e1 predates the reset so identity with e2 is not guaranteed,
        # but equality and post-reset canonicalization must hold
        assert e1 == e2 and hash(e1) == hash(e2)
        assert (V("i") + 3) is e2

    def test_results_unchanged_after_reset(self):
        rng = random.Random(31)
        pairs = [
            (_random_interval_region(rng), _random_interval_region(rng))
            for _ in range(10)
        ]
        warm = [subtract_region(a, b) for a, b in pairs]
        perf.reset_all_caches()
        cold = [subtract_region(a, b) for a, b in pairs]
        assert warm == cold
