"""Unit tests for the call graph."""

from repro.ir.callgraph import CallGraph
from repro.lang.parser import parse_program

SRC = """
program main
  call a(1)
  call b(2)
end
subroutine a(x)
  call c(x)
end
subroutine b(x)
  call c(x)
  call a(x)
end
subroutine c(x)
  y = x
end
subroutine orphan(x)
  y = x
end
"""


def graph():
    return CallGraph(parse_program(SRC))


class TestEdges:
    def test_callees(self):
        g = graph()
        assert g.callees("main") == {"a", "b"}
        assert g.callees("b") == {"c", "a"}
        assert g.callees("c") == set()

    def test_callers(self):
        g = graph()
        assert g.callers("c") == {"a", "b"}
        assert g.callers("main") == set()

    def test_edge_list_sorted(self):
        g = graph()
        edges = g.edge_list()
        assert ("main", "a") in edges
        assert edges == sorted(edges)

    def test_call_sites_counted(self):
        g = graph()
        assert len(g.call_sites["main"]) == 2
        assert len(g.call_sites["b"]) == 2
        assert len(g.call_sites["orphan"]) == 0


class TestOrders:
    def test_bottom_up_callees_first(self):
        g = graph()
        order = g.bottom_up_order()
        assert order.index("c") < order.index("a")
        assert order.index("c") < order.index("b")
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("main")

    def test_bottom_up_covers_all_units(self):
        g = graph()
        assert set(g.bottom_up_order()) == {"main", "a", "b", "c", "orphan"}

    def test_reachable_from_main(self):
        g = graph()
        assert g.reachable_from_main() == {"main", "a", "b", "c"}
