"""Unit tests for the region graph."""

import pytest

from repro.ir.regiongraph import (
    CallRegion,
    IfRegion,
    LoopRegion,
    ProcRegion,
    SeqRegion,
    StmtRegion,
    build_region_tree,
)
from repro.lang.parser import parse_program

SRC = """
program t
  integer n
  real a(10)
  read n
  do i = 1, n
    if (i > 2) then
      a(i) = 1.0
    else
      a(i) = 2.0
    endif
    do j = 1, 3
      a(j) = a(j) + 1.0
    enddo
  enddo
  call f(a)
end
subroutine f(x)
  real x(*)
  x(1) = 0.0
end
"""


@pytest.fixture
def tree():
    program = parse_program(SRC)
    return build_region_tree(program.main_unit)


class TestStructure:
    def test_root_is_proc(self, tree):
        assert isinstance(tree, ProcRegion)
        assert tree.unit.name == "t"

    def test_region_kinds_present(self, tree):
        kinds = {type(r).__name__ for r in tree.walk()}
        assert kinds == {
            "ProcRegion",
            "SeqRegion",
            "StmtRegion",
            "LoopRegion",
            "IfRegion",
            "CallRegion",
        }

    def test_unique_rids(self, tree):
        rids = [r.rid for r in tree.walk()]
        assert len(rids) == len(set(rids))
        assert all(r >= 0 for r in rids)

    def test_unit_name_stamped(self, tree):
        assert all(r.unit_name == "t" for r in tree.walk())

    def test_parents_linked(self, tree):
        for r in tree.walk():
            for c in r.children():
                assert c.parent is r

    def test_loops_preorder(self, tree):
        labels = [l.label for l in tree.loops()]
        assert labels == ["t:L1", "t:L2"]


class TestContext:
    def test_enclosing_loops(self, tree):
        inner = tree.loops()[1]
        enclosing = inner.enclosing_loops()
        assert [l.label for l in enclosing] == ["t:L1"]
        assert inner.loop_depth() == 1

    def test_outer_loop_depth_zero(self, tree):
        assert tree.loops()[0].loop_depth() == 0

    def test_enclosing_proc(self, tree):
        inner = tree.loops()[1]
        assert inner.enclosing_proc() is tree

    def test_if_region_arms(self, tree):
        ifs = [r for r in tree.walk() if isinstance(r, IfRegion)]
        assert len(ifs) == 1
        assert len(ifs[0].then_seq.items) == 1
        assert len(ifs[0].else_seq.items) == 1

    def test_call_region_callee(self, tree):
        calls = [r for r in tree.walk() if isinstance(r, CallRegion)]
        assert len(calls) == 1
        assert calls[0].callee == "f"

    def test_loop_index_var(self, tree):
        assert tree.loops()[0].index_var == "i"
        assert tree.loops()[1].index_var == "j"

    def test_detached_region_raises(self):
        region = StmtRegion(parse_program("program q\nx = 1\nend\n").main_unit.body[0])
        with pytest.raises(ValueError):
            region.enclosing_proc()
