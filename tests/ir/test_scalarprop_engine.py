"""Scalar propagation on the dataflow engine matches the legacy scan.

:func:`~repro.ir.scalarprop.propagate_scalars` now phrases definition
availability as a FORWARD/ALLPATH problem on the generic worklist
engine; :func:`~repro.ir.scalarprop.propagate_scalars_legacy` keeps the
original sequential positional scan.  The two must produce the same
program text for every benchmark program — the cache keys
(:func:`~repro.service.cache.unit_key` hashes the propagated source)
and every downstream analysis artifact depend on it.
"""

from repro import perf
from repro.ir.scalarprop import propagate_scalars, propagate_scalars_legacy
from repro.lang.parser import parse_program
from repro.lang.prettyprint import pretty
from repro.suites import all_programs

EXTRA = [
    # a join where the same definition arrives along both arms — the
    # ALLPATH meet keeps it; a branch-local redefinition kills it
    (
        "join-kills",
        "program p\n"
        "  integer n, m, k\n"
        "  real a(100)\n"
        "  read n\n"
        "  m = n + 1\n"
        "  if (n > 3) then\n"
        "    k = m\n"
        "  else\n"
        "    m = n + 2\n"
        "    k = m\n"
        "  endif\n"
        "  do i = 1, m\n"
        "    a(i) = 0.0\n"
        "  enddo\n"
        "end\n",
    ),
    # a loop-carried redefinition must not propagate into the loop
    (
        "loop-carried",
        "program p\n"
        "  integer n, m\n"
        "  real a(100)\n"
        "  read n\n"
        "  m = 2\n"
        "  do i = 1, n\n"
        "    a(m) = 1.0\n"
        "    m = m + 1\n"
        "  enddo\n"
        "end\n",
    ),
    # dead code after a return still rewrites deterministically
    (
        "post-return",
        "subroutine f(x, n)\n"
        "  integer n, m\n"
        "  real x(*)\n"
        "  m = n + 1\n"
        "  return\n"
        "  x(m) = 0.0\n"
        "end\n"
        "program p\n"
        "  integer n\n"
        "  real a(100)\n"
        "  read n\n"
        "  call f(a, n)\n"
        "end\n",
    ),
]


class TestEngineMatchesLegacy:
    def test_every_suite_program_identical(self):
        for bench in all_programs():
            flow = pretty(propagate_scalars(bench.fresh_program()))
            legacy = pretty(propagate_scalars_legacy(bench.fresh_program()))
            assert flow == legacy, bench.name

    def test_handwritten_control_flow_identical(self):
        for name, src in EXTRA:
            flow = pretty(propagate_scalars(parse_program(src)))
            legacy = pretty(propagate_scalars_legacy(parse_program(src)))
            assert flow == legacy, name

    def test_propagation_is_idempotent(self):
        for name, src in EXTRA:
            once = propagate_scalars(parse_program(src))
            twice = propagate_scalars(once)
            assert pretty(once) == pretty(twice), name


class TestEngineIsExercised:
    # one stable, affine, prefix definition: exactly one candidate bit
    CANDIDATE = (
        "program p\n"
        "  integer n, m\n"
        "  real a(100)\n"
        "  read n\n"
        "  m = n + 1\n"
        "  do i = 1, m\n"
        "    a(i) = 0.0\n"
        "  enddo\n"
        "end\n"
    )

    def test_candidates_drive_the_worklist(self):
        runs = perf.counter("dataflow.engine.runs")
        iters = perf.counter("dataflow.iterations")
        out = propagate_scalars(parse_program(self.CANDIDATE))
        assert perf.counter("dataflow.engine.runs") > runs
        assert perf.counter("dataflow.iterations") > iters
        assert "n + 1" in pretty(out)  # the bound was rewritten

    def test_unit_without_candidates_skips_the_solver(self):
        # no scalar definition feeds a later use: nothing to solve
        src = (
            "program p\n"
            "  integer n\n"
            "  real a(10)\n"
            "  read n\n"
            "  do i = 1, n\n"
            "    a(i) = 0.0\n"
            "  enddo\n"
            "end\n"
        )
        runs = perf.counter("dataflow.engine.runs")
        out = propagate_scalars(parse_program(src))
        assert perf.counter("dataflow.engine.runs") == runs
        assert pretty(out) == pretty(parse_program(src))
