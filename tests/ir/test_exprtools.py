"""Unit tests for AST → affine / predicate translation."""

from fractions import Fraction

from repro.ir.exprtools import cond_to_predicate, reads_arrays, to_affine
from repro.lang.parser import parse_program
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.evaluate import evaluate
from repro.predicates.formula import AndPred, Atom, NotPred, OrPred
from repro.symbolic.affine import AffineExpr


def expr(text, decls="real a(10), b(10, 10)"):
    p = parse_program(f"program t\n{decls}\nzz = {text}\nend\n")
    return p.main_unit.body[0].value


class TestToAffine:
    def test_literals(self):
        assert to_affine(expr("42")) == AffineExpr.const(42)
        assert to_affine(expr("3.5")) is None  # reals not in index domain

    def test_variables_and_sums(self):
        e = to_affine(expr("i + 2 * j - 3"))
        assert e.coeff("i") == 1 and e.coeff("j") == 2 and e.constant == -3

    def test_unary_minus(self):
        assert to_affine(expr("-i")) == AffineExpr.var("i", -1)

    def test_products(self):
        assert to_affine(expr("3 * i")) == AffineExpr.var("i", 3)
        assert to_affine(expr("i * 3")) == AffineExpr.var("i", 3)
        assert to_affine(expr("i * j")) is None

    def test_division(self):
        assert to_affine(expr("6 / 2")) == AffineExpr.const(3)
        assert to_affine(expr("4 * i / 2")) == AffineExpr.var("i", 2)
        # truncating division of a variable is not affine
        assert to_affine(expr("i / 2")) is None
        assert to_affine(expr("i / j")) is None
        assert to_affine(expr("i / 0")) is None

    def test_power(self):
        assert to_affine(expr("2 ** 3")) == AffineExpr.const(8)
        assert to_affine(expr("i ** 2")) is None

    def test_array_and_intrinsic_opaque(self):
        assert to_affine(expr("a(i)")) is None
        assert to_affine(expr("mod(i, 2)")) is None
        assert to_affine(expr("max(i, j)")) is None


class TestCondToPredicate:
    def cond(self, text):
        p = parse_program(
            f"program t\nreal a(10)\nif ({text}) then\nzz = 1\nendif\nend\n"
        )
        return cond_to_predicate(p.main_unit.body[0].cond)

    def test_affine_comparisons(self):
        for text, env, expected in [
            ("i < 3", {"i": 2}, True),
            ("i < 3", {"i": 3}, False),
            ("i >= j + 1", {"i": 5, "j": 4}, True),
            ("i == 2 * j", {"i": 4, "j": 2}, True),
            ("i != j", {"i": 1, "j": 1}, False),
        ]:
            pred = self.cond(text)
            assert evaluate(pred, env) == expected, text

    def test_connectives(self):
        pred = self.cond("i > 0 and (j < 5 or k == 2)")
        assert evaluate(pred, {"i": 1, "j": 9, "k": 2})
        assert not evaluate(pred, {"i": 0, "j": 1, "k": 2})

    def test_not(self):
        pred = self.cond("not i > 0")
        assert evaluate(pred, {"i": 0})
        assert not evaluate(pred, {"i": 1})

    def test_mod_divisibility_atom(self):
        pred = self.cond("mod(n, 4) == 0")
        assert isinstance(pred, Atom) and isinstance(pred.atom, DivAtom)
        assert evaluate(pred, {"n": 8})
        assert not evaluate(pred, {"n": 6})

    def test_mod_inequality(self):
        pred = self.cond("mod(n, 4) != 0")
        assert evaluate(pred, {"n": 6})
        assert not evaluate(pred, {"n": 8})

    def test_mod_reversed_operands(self):
        pred = self.cond("0 == mod(n, 3)")
        assert isinstance(pred, Atom) and isinstance(pred.atom, DivAtom)

    def test_nonaffine_becomes_opaque(self):
        pred = self.cond("i * j > 4")
        assert isinstance(pred, Atom) and isinstance(pred.atom, OpaqueAtom)
        assert set(pred.atom.reads) == {"i", "j"}

    def test_array_read_opaque_includes_array(self):
        pred = self.cond("a(i) > 0.0")
        assert isinstance(pred.atom, OpaqueAtom)
        assert "a" in pred.atom.reads

    def test_opaque_key_is_source_text(self):
        pred = self.cond("i * j > 4")
        assert pred.atom.key == "i * j > 4"


class TestReadsArrays:
    def test_detects_array_refs(self):
        assert reads_arrays(expr("a(i) + 1.0"))
        assert not reads_arrays(expr("i + j"))
