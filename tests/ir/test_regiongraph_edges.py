"""Edge construction in the region flow graph.

The :class:`~repro.ir.regiongraph.FlowGraph` built by
:func:`~repro.ir.regiongraph.build_flow_graph` is what the generic
worklist engine iterates, so its corner cases need direct coverage:

* loop headers carry the back edge and double as the loop exit, with an
  empty body degenerating to a header self-loop;
* ``Return`` jumps to ``EXIT``, leaving statements after it unreachable
  and giving the enclosing loop a second exit;
* branch arms re-join at the common successor, including empty arms
  flowing through the ``If`` header itself.
"""

import pytest

from repro.ir.regiongraph import (
    CallRegion,
    FlowGraph,
    IfRegion,
    LoopRegion,
    StmtRegion,
    build_flow_graph,
    build_region_tree,
)
from repro.lang.astnodes import Return
from repro.lang.parser import parse_program


def _graph(src, unit=None):
    program = parse_program(src)
    proc = build_region_tree(
        program.units[unit] if unit else program.main_unit
    )
    return proc, build_flow_graph(proc)


def _loop_nodes(proc, graph):
    return {
        r.label: graph.node_for(r)
        for r in proc.walk()
        if isinstance(r, LoopRegion)
    }


class TestStraightLine:
    def test_chain_entry_to_exit(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  read n\n"
            "  n = n + 1\n"
            "  print n\n"
            "end\n"
        )
        stmts = [
            g.node_for(r) for r in proc.walk() if isinstance(r, StmtRegion)
        ]
        assert g.succs[FlowGraph.ENTRY] == [stmts[0]]
        for a, b in zip(stmts, stmts[1:]):
            assert g.succs[a] == [b]
        assert g.succs[stmts[-1]] == [FlowGraph.EXIT]
        assert all(g.is_reachable(i) for i in range(2, len(g)))

    def test_calls_are_nodes(self):
        proc, g = _graph(
            "program p\n"
            "  real a(10)\n"
            "  call f(a)\n"
            "end\n"
            "subroutine f(x)\n"
            "  real x(*)\n"
            "  x(1) = 0.0\n"
            "end\n"
        )
        calls = [r for r in proc.walk() if isinstance(r, CallRegion)]
        assert len(calls) == 1
        node = g.node_for(calls[0])
        assert g.preds[node] == [FlowGraph.ENTRY]
        assert g.succs[node] == [FlowGraph.EXIT]


class TestLoops:
    def test_header_has_back_edge_and_is_exit(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  real a(10)\n"
            "  read n\n"
            "  do i = 1, n\n"
            "    a(i) = 0.0\n"
            "  enddo\n"
            "  print a(1)\n"
            "end\n"
        )
        header = _loop_nodes(proc, g)["p:L1"]
        # back edge: exactly one successor of the header flows back to it
        (body,) = [s for s in g.succs[header] if header in g.succs[s]]
        # the header is the loop exit: it also flows to the print
        after = [s for s in g.succs[header] if s != body]
        assert len(after) == 1
        assert g.succs[after[0]] == [FlowGraph.EXIT]

    def test_empty_body_is_header_self_loop(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  read n\n"
            "  do i = 1, n\n"
            "  enddo\n"
            "end\n"
        )
        header = _loop_nodes(proc, g)["p:L1"]
        assert header in g.succs[header]  # degenerate back edge
        assert FlowGraph.EXIT in g.succs[header]

    def test_nested_loop_back_edges_stay_separate(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  real a(10)\n"
            "  read n\n"
            "  do i = 1, n\n"
            "    do j = 1, n\n"
            "      a(j) = 0.0\n"
            "    enddo\n"
            "  enddo\n"
            "end\n"
        )
        loops = _loop_nodes(proc, g)
        outer, inner = loops["p:L1"], loops["p:L2"]
        # outer body is just the inner loop: inner header carries the
        # outer back edge, the assignment carries the inner one
        assert outer in g.succs[inner]
        stmt = [
            g.node_for(r) for r in proc.walk() if isinstance(r, StmtRegion)
        ][-1]
        assert inner in g.succs[stmt]
        assert outer not in g.succs[stmt]


class TestReturnAndUnreachable:
    SRC = (
        "subroutine f(x, n)\n"
        "  integer n\n"
        "  real x(*)\n"
        "  return\n"
        "  x(1) = 0.0\n"
        "end\n"
        "program p\n"
        "  integer n\n"
        "  real a(10)\n"
        "  read n\n"
        "  call f(a, n)\n"
        "end\n"
    )

    def test_return_jumps_to_exit(self):
        proc, g = _graph(self.SRC, unit="f")
        ret = next(
            g.node_for(r)
            for r in proc.walk()
            if isinstance(r, StmtRegion) and isinstance(r.stmt, Return)
        )
        assert g.succs[ret] == [FlowGraph.EXIT]

    def test_statement_after_return_is_unreachable(self):
        proc, g = _graph(self.SRC, unit="f")
        dead = next(
            g.node_for(r)
            for r in proc.walk()
            if isinstance(r, StmtRegion) and not isinstance(r.stmt, Return)
        )
        assert g.preds[dead] == []
        assert not g.is_reachable(dead)
        # it still wires forward to EXIT (falling off the body's end),
        # but no path from ENTRY ever enters it
        assert dead in g.preds[FlowGraph.EXIT]

    def test_conditional_return_makes_loop_multi_exit(self):
        proc, g = _graph(
            "subroutine f(x, n)\n"
            "  integer n\n"
            "  real x(*)\n"
            "  do i = 1, n\n"
            "    if (i > 3) then\n"
            "      return\n"
            "    endif\n"
            "    x(i) = 0.0\n"
            "  enddo\n"
            "  x(1) = 1.0\n"
            "end\n"
            "program p\n"
            "  integer n\n"
            "  real a(10)\n"
            "  read n\n"
            "  call f(a, n)\n"
            "end\n",
            unit="f",
        )
        header = _loop_nodes(proc, g)["f:L1"]
        ret = next(
            g.node_for(r)
            for r in proc.walk()
            if isinstance(r, StmtRegion) and isinstance(r.stmt, Return)
        )
        # two paths reach EXIT: the return inside the loop and the
        # fall-through statement after it
        assert ret in g.preds[FlowGraph.EXIT]
        assert g.succs[ret] == [FlowGraph.EXIT]
        assert header not in g.succs[ret]  # the return path skips the latch
        after = next(
            s for s in g.succs[header] if g.nodes[s] is not None
            and isinstance(g.nodes[s], StmtRegion)
        )
        assert after in g.preds[FlowGraph.EXIT]
        assert len(g.preds[FlowGraph.EXIT]) == 2


class TestBranches:
    def test_arms_rejoin_at_successor(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  read n\n"
            "  if (n > 0) then\n"
            "    n = 1\n"
            "  else\n"
            "    n = 2\n"
            "  endif\n"
            "  print n\n"
            "end\n"
        )
        cond = next(
            g.node_for(r) for r in proc.walk() if isinstance(r, IfRegion)
        )
        then_n, else_n = g.succs[cond]
        join = next(
            g.node_for(r)
            for r in proc.walk()
            if isinstance(r, StmtRegion)
            and r.stmt.__class__.__name__ == "PrintStmt"
        )
        assert sorted(g.preds[join]) == sorted([then_n, else_n])

    def test_empty_else_flows_through_header(self):
        proc, g = _graph(
            "program p\n"
            "  integer n\n"
            "  read n\n"
            "  if (n > 0) then\n"
            "    n = 1\n"
            "  endif\n"
            "  print n\n"
            "end\n"
        )
        cond = next(
            g.node_for(r) for r in proc.walk() if isinstance(r, IfRegion)
        )
        join = next(
            g.node_for(r)
            for r in proc.walk()
            if isinstance(r, StmtRegion)
            and r.stmt.__class__.__name__ == "PrintStmt"
        )
        # the empty arm's path is the If header itself
        assert cond in g.preds[join]

    def test_edges_are_deduplicated(self):
        _, g = _graph(
            "program p\n"
            "  integer n\n"
            "  read n\n"
            "  if (n > 0) then\n"
            "  endif\n"
            "  print n\n"
            "end\n"
        )
        for succs in g.succs:
            assert len(succs) == len(set(succs))
        for preds in g.preds:
            assert len(preds) == len(set(preds))
