"""Unit tests for per-loop metadata."""

from repro.ir.loopinfo import collect_loop_info
from repro.ir.regiongraph import build_region_tree
from repro.lang.astnodes import loops_of
from repro.lang.parser import parse_program


def infos(src):
    p = parse_program(src)
    proc = build_region_tree(p.main_unit)
    by_label = {}
    for loop, info in collect_loop_info(proc).items():
        by_label[loop.label] = info
    return by_label


class TestCandidacy:
    def test_plain_loop_is_candidate(self):
        i = infos("program t\nreal a(9)\ndo i = 1, 5\na(i) = 1.0\nenddo\nend\n")
        assert i["t:L1"].is_candidate

    def test_print_blocks(self):
        i = infos("program t\ndo i = 1, 5\nprint i\nenddo\nend\n")
        assert i["t:L1"].has_io and not i["t:L1"].is_candidate

    def test_read_blocks(self):
        i = infos("program t\ndo i = 1, 5\nread x\nenddo\nend\n")
        assert i["t:L1"].has_io

    def test_return_blocks(self):
        src = (
            "program t\ncall f(1)\nend\n"
            "subroutine f(q)\ndo i = 1, 5\nreturn\nenddo\nend\n"
        )
        p = parse_program(src)
        proc = build_region_tree(p.units["f"])
        info = list(collect_loop_info(proc).values())[0]
        assert info.has_return and not info.is_candidate

    def test_written_bound_blocks(self):
        i = infos("program t\nn = 9\ndo i = 1, n\nn = n - 1\nenddo\nend\n")
        assert not i["t:L1"].bounds_invariant

    def test_written_index_blocks(self):
        i = infos("program t\ndo i = 1, 5\ni = i + 1\nenddo\nend\n")
        assert not i["t:L1"].bounds_invariant

    def test_symbolic_step_blocks(self):
        i = infos("program t\nread k\ndo i = 1, 9, k\nx = i\nenddo\nend\n")
        assert i["t:L1"].step is None and not i["t:L1"].is_candidate

    def test_constant_negative_step_ok(self):
        i = infos("program t\ndo i = 9, 1, -2\nx = i\nenddo\nend\n")
        assert i["t:L1"].step == -2 and i["t:L1"].is_candidate

    def test_call_does_not_block_bounds(self):
        src = (
            "program t\nread n\ndo i = 1, n\ncall f(i, n)\nenddo\nend\n"
            "subroutine f(a, b)\nc = a + b\nend\n"
        )
        i = infos(src)
        assert i["t:L1"].bounds_invariant
        assert i["t:L1"].has_calls


class TestIterationSpace:
    def test_affine_space(self):
        i = infos("program t\nread n\ndo i = 2, n - 1\nx = i\nenddo\nend\n")
        space = i["t:L1"].iteration_space()
        assert space.evaluate({"i": 2, "n": 5})
        assert not space.evaluate({"i": 1, "n": 5})
        assert not space.evaluate({"i": 5, "n": 5})

    def test_negative_step_flips_bounds(self):
        i = infos("program t\ndo i = 9, 3, -1\nx = i\nenddo\nend\n")
        space = i["t:L1"].iteration_space()
        assert space.evaluate({"i": 5})
        assert not space.evaluate({"i": 2})
        assert not space.evaluate({"i": 10})

    def test_nonaffine_upper_bound_keeps_lower(self):
        i = infos(
            "program t\nread n, m\ndo i = 1, n * m\nx = i\nenddo\nend\n"
        )
        space = i["t:L1"].iteration_space()
        assert not i["t:L1"].is_affine
        # the affine lower bound is kept; the product bound contributes none
        assert space.evaluate({"i": 1})
        assert not space.evaluate({"i": 0})

    def test_min_bound_exact(self):
        i = infos(
            "program t\nread n, m\ndo i = 1, min(n, m)\nx = i\nenddo\nend\n"
        )
        space = i["t:L1"].iteration_space()
        assert space.evaluate({"i": 3, "n": 5, "m": 4})
        assert not space.evaluate({"i": 5, "n": 5, "m": 4})

    def test_max_lower_bound_exact(self):
        i = infos(
            "program t\nread n, m\ndo i = max(n, m), 50\nx = i\nenddo\nend\n"
        )
        space = i["t:L1"].iteration_space()
        assert space.evaluate({"i": 10, "n": 5, "m": 9})
        assert not space.evaluate({"i": 8, "n": 5, "m": 9})

    def test_nested_min_bound(self):
        i = infos(
            "program t\nread n, m, q\ndo i = 1, min(n, min(m, q))\nx = i\nenddo\nend\n"
        )
        space = i["t:L1"].iteration_space()
        assert not space.evaluate({"i": 4, "n": 9, "m": 9, "q": 3})
        assert space.evaluate({"i": 3, "n": 9, "m": 9, "q": 3})


class TestScalarFlow:
    def test_reduction_detection(self):
        i = infos(
            "program t\nreal a(9)\ns = 0.0\ndo i = 1, 5\ns = s + a(i)\nenddo\nend\n"
        )
        assert "s" in i["t:L1"].reductions

    def test_commuted_reduction(self):
        i = infos(
            "program t\nreal a(9)\ndo i = 1, 5\ns = a(i) + s\nenddo\nend\n"
        )
        assert "s" in i["t:L1"].reductions

    def test_non_reduction_self_use(self):
        i = infos(
            "program t\nreal a(9)\ndo i = 1, 5\ns = s * 2.0 + a(i)\nenddo\nend\n"
        )
        assert "s" not in i["t:L1"].reductions
        assert "s" in i["t:L1"].scalar_exposed_reads

    def test_private_scalar_not_exposed(self):
        i = infos(
            "program t\nreal a(9)\ndo i = 1, 5\nt1 = a(i)\na(i) = t1\nenddo\nend\n"
        )
        assert "t1" in i["t:L1"].scalar_writes
        assert "t1" not in i["t:L1"].scalar_exposed_reads

    def test_branch_write_not_definite(self):
        i = infos(
            "program t\nreal a(9)\nread x\n"
            "do i = 1, 5\nif (x > 0) then\nt1 = 1.0\nendif\na(i) = t1\nenddo\nend\n"
        )
        # written only on one path, then read: exposed
        assert "t1" in i["t:L1"].scalar_exposed_reads

    def test_both_branches_definite(self):
        i = infos(
            "program t\nreal a(9)\nread x\n"
            "do i = 1, 5\nif (x > 0) then\nt1 = 1.0\nelse\nt1 = 2.0\nendif\n"
            "a(i) = t1\nenddo\nend\n"
        )
        assert "t1" not in i["t:L1"].scalar_exposed_reads

    def test_inner_loop_write_not_definite(self):
        i = infos(
            "program t\nreal a(9)\nread n\n"
            "do i = 1, 5\ndo j = 1, n\nt1 = j * 1.0\nenddo\na(i) = t1\nenddo\nend\n"
        )
        # the inner loop may run zero times: t1 stays exposed for the outer
        assert "t1" in i["t:L1"].scalar_exposed_reads
