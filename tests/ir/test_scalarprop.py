"""Unit and integration tests for forward scalar propagation."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.ir.scalarprop import propagate_scalars
from repro.lang.astnodes import Assign, DoLoop, walk_stmts
from repro.lang.parser import parse_program
from repro.lang.prettyprint import expr_str, pretty
from repro.partests.driver import analyze_program
from repro.runtime.interp import run_program


def prop(src):
    return propagate_scalars(parse_program(src))


class TestPropagation:
    def test_simple_chain(self):
        p = prop(
            "program t\nreal a(50)\nread n\nm = n + 1\nq = m * 2\n"
            "do i = 1, q\na(i) = 1.0\nenddo\nend\n"
        )
        loop = next(
            s for s in walk_stmts(p.main_unit.body) if isinstance(s, DoLoop)
        )
        # q propagated through m down to n: hi = 2n + 2
        assert expr_str(loop.hi) == "2 * n + 2"

    def test_reassigned_scalar_not_propagated(self):
        p = prop(
            "program t\nreal a(50)\nread n\nm = n + 1\nm = m + 1\n"
            "do i = 1, m\na(i) = 1.0\nenddo\nend\n"
        )
        loop = next(
            s for s in walk_stmts(p.main_unit.body) if isinstance(s, DoLoop)
        )
        assert expr_str(loop.hi) == "m"

    def test_definition_after_prefix_not_propagated(self):
        p = prop(
            "program t\nreal a(50)\nread n, x\n"
            "if (x > 0) then\ny = 1\nendif\n"
            "m = n + 1\n"
            "do i = 1, m\na(i) = 1.0\nenddo\nend\n"
        )
        loop = next(
            s for s in walk_stmts(p.main_unit.body) if isinstance(s, DoLoop)
        )
        assert expr_str(loop.hi) == "m"

    def test_nonaffine_definition_not_propagated(self):
        p = prop(
            "program t\nreal a(50)\nread n\nm = n * n\n"
            "do i = 1, m\na(i) = 1.0\nenddo\nend\n"
        )
        loop = next(
            s for s in walk_stmts(p.main_unit.body) if isinstance(s, DoLoop)
        )
        assert expr_str(loop.hi) == "m"

    def test_structure_preserved(self):
        src = (
            "program t\nreal a(50)\nread n\nm = n + 1\n"
            "do i = 1, m\na(i) = 1.0\nenddo\nprint a(1)\nend\n"
        )
        original = parse_program(src)
        p = prop(src)
        orig_kinds = [type(s).__name__ for s in walk_stmts(original.main_unit.body)]
        new_kinds = [type(s).__name__ for s in walk_stmts(p.main_unit.body)]
        assert orig_kinds == new_kinds
        orig_nids = [s.nid for s in walk_stmts(original.main_unit.body)]
        new_nids = [s.nid for s in walk_stmts(p.main_unit.body)]
        assert orig_nids == new_nids

    def test_semantics_preserved(self):
        src = (
            "program t\nreal a(50)\nread n\nm = n + 1\nq = m * 2\n"
            "do i = 1, q\na(i) = i * 1.0\nenddo\nprint a(q)\nend\n"
        )
        ref = run_program(parse_program(src), [4])
        got = run_program(prop(src), [4])
        assert got.outputs == ref.outputs
        assert got.main_arrays == ref.main_arrays

    def test_negative_coefficients_render(self):
        p = prop(
            "program t\nreal a(50)\nread n\nm = 10 - n\n"
            "do i = 1, m\na(i) = 1.0\nenddo\nend\n"
        )
        text = pretty(p)
        reparsed = parse_program(text)
        assert reparsed is not None


class TestAnalysisPrecision:
    """The win scalar propagation buys: relating derived bounds."""

    SRC = """
program t
  integer n, m
  real a(200)
  read n
  m = n + 50
  do i = 1, n
    a(i + m) = a(i) + 1.0
  enddo
end
"""

    def test_with_propagation_parallel(self):
        # m = n + 50 >= n: accesses are disjoint, provable statically
        res = analyze_program(
            parse_program(self.SRC), AnalysisOptions.predicated()
        )
        status = {l.label: l.status for l in res.loops}
        assert status["t:L1"] in ("parallel", "parallel_private")

    def test_without_propagation_needs_runtime_test(self):
        res = analyze_program(
            parse_program(self.SRC),
            AnalysisOptions.predicated().without(scalar_propagation=False),
        )
        status = {l.label: l.status for l in res.loops}
        assert status["t:L1"] == "runtime"
