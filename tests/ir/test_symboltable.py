"""Unit tests for the symbol table."""

import pytest

from repro.ir.symboltable import SymbolTable
from repro.lang.parser import parse_program
from repro.symbolic.affine import AffineExpr

SRC = """
program t
  x = 1
  call f(1, 2)
end
subroutine f(n, m)
  integer n, m
  real a(10), b(n, m), c(10, *)
  a(1) = 0.0
  b(1, 1) = 0.0
  c(1, 1) = 0.0
end
"""


@pytest.fixture
def st():
    return SymbolTable(parse_program(SRC).units["f"])


class TestClassification:
    def test_arrays_and_scalars(self, st):
        assert st.is_array("a") and st.is_array("b") and st.is_array("c")
        assert st.is_scalar("n") and st.is_scalar("m")
        assert not st.is_array("n")
        assert not st.is_scalar("a")
        assert not st.is_declared("zz")

    def test_formals(self, st):
        assert st.is_formal("n") and st.is_formal("m")
        assert not st.is_formal("a")
        assert st.formal_position("n") == 0
        assert st.formal_position("m") == 1

    def test_types(self, st):
        assert st.is_integer("n")
        assert not st.is_integer("a")

    def test_listings(self, st):
        assert st.declared_arrays() == ["a", "b", "c"]
        assert "n" in st.declared_scalars()


class TestExtents:
    def test_rank(self, st):
        assert st.rank("a") == 1
        assert st.rank("b") == 2
        with pytest.raises(KeyError):
            st.rank("n")

    def test_affine_extents_constant(self, st):
        exts = st.affine_extents("a")
        assert exts == [AffineExpr.const(10)]

    def test_affine_extents_symbolic(self, st):
        exts = st.affine_extents("b")
        assert exts == [AffineExpr.var("n"), AffineExpr.var("m")]

    def test_assumed_size_is_none(self, st):
        exts = st.affine_extents("c")
        assert exts[0] == AffineExpr.const(10)
        assert exts[1] is None

    def test_extents_raw(self, st):
        from repro.lang.astnodes import ASSUMED

        assert st.extents("c")[1] == ASSUMED
