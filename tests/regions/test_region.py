"""Unit tests for single array regions."""

import pytest

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
D1 = AffineExpr.var("__d1")
I = AffineExpr.var("i")
N = AffineExpr.var("n")
C = AffineExpr.const


def interval(array, lo, hi, rank=1):
    return ArrayRegion(
        array,
        rank,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


class TestConstruction:
    def test_from_subscripts_single(self):
        r = ArrayRegion.from_subscripts("a", [I])
        assert r.rank == 1
        assert r.contains_point((3,), {"i": 3})
        assert not r.contains_point((4,), {"i": 3})

    def test_from_subscripts_2d(self):
        r = ArrayRegion.from_subscripts("b", [I, I + 1])
        assert r.rank == 2
        assert r.contains_point((2, 3), {"i": 2})
        assert not r.contains_point((2, 4), {"i": 2})

    def test_from_subscripts_nonaffine_unconstrained(self):
        r = ArrayRegion.from_subscripts("a", [None])
        assert r.system.is_universe()
        assert r.contains_point((99,), {})

    def test_whole_with_extents(self):
        r = ArrayRegion.whole("a", 1, [C(10)])
        assert r.contains_point((1,), {})
        assert r.contains_point((10,), {})
        assert not r.contains_point((0,), {})
        assert not r.contains_point((11,), {})

    def test_whole_symbolic_extent(self):
        r = ArrayRegion.whole("a", 1, [N])
        assert r.contains_point((5,), {"n": 10})
        assert not r.contains_point((11,), {"n": 10})

    def test_whole_unbounded(self):
        r = ArrayRegion.whole("a", 1, [None])
        assert r.contains_point((1000,), {})
        assert not r.contains_point((0,), {})


class TestQueries:
    def test_is_empty(self):
        assert interval("a", C(5), C(2)).is_empty()
        assert not interval("a", C(2), C(5)).is_empty()

    def test_parameters_exclude_dims(self):
        r = ArrayRegion.from_subscripts("a", [I + 1]).conjoin(
            LinearSystem([Constraint.le(I, N)])
        )
        assert r.parameters() == frozenset({"i", "n"})

    def test_contains(self):
        big = interval("a", C(1), C(10))
        small = interval("a", C(3), C(5))
        assert big.contains(small)
        assert not small.contains(big)

    def test_contains_other_array(self):
        assert not interval("a", C(1), C(10)).contains(interval("b", C(3), C(5)))

    def test_contains_parametric(self):
        big = interval("a", C(1), N)
        small = ArrayRegion(
            "a",
            1,
            LinearSystem(
                [
                    Constraint.ge(D0, C(1)),
                    Constraint.le(D0, N - 1),
                ]
            ),
        )
        assert big.contains(small)


class TestTransforms:
    def test_substitute(self):
        r = ArrayRegion.from_subscripts("a", [I]).substitute({"i": C(7)})
        assert r.contains_point((7,), {})
        assert not r.contains_point((6,), {})

    def test_rename(self):
        r = ArrayRegion.from_subscripts("a", [I]).rename({"i": "i1"})
        assert "i1" in r.parameters()

    def test_rename_array(self):
        r = interval("a", C(1), C(5)).rename_array("x")
        assert r.array == "x"

    def test_immutable(self):
        r = interval("a", C(1), C(5))
        with pytest.raises(AttributeError):
            r.array = "b"

    def test_hash_eq(self):
        assert interval("a", C(1), C(5)) == interval("a", C(1), C(5))
        assert len({interval("a", C(1), C(5)), interval("a", C(1), C(5))}) == 1
