"""Unit tests for region binary operations (hull, coalesce, intersect)."""

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.regions.operations import (
    hull_join,
    intersect_regions,
    region_contains,
    try_coalesce,
)
from repro.regions.region import ArrayRegion
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
N = AffineExpr.var("n")
C = AffineExpr.const


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array,
        1,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


def pts(region, env=None, rng=range(-5, 40)):
    env = env or {}
    return {d for d in rng if region.contains_point((d,), env)}


class TestIntersect:
    def test_overlap(self):
        x = intersect_regions(interval(C(1), C(8)), interval(C(5), C(12)))
        assert pts(x) == {5, 6, 7, 8}

    def test_disjoint_empty(self):
        x = intersect_regions(interval(C(1), C(3)), interval(C(7), C(9)))
        assert x.is_empty()

    def test_different_arrays_none(self):
        assert intersect_regions(
            interval(C(1), C(3), "a"), interval(C(1), C(3), "b")
        ) is None

    def test_contains_helper(self):
        assert region_contains(interval(C(1), C(10)), interval(C(2), C(5)))
        assert not region_contains(interval(C(2), C(5)), interval(C(1), C(10)))


class TestHullJoin:
    def test_hull_covers_both(self):
        h = hull_join(interval(C(1), C(3)), interval(C(8), C(10)))
        assert pts(h) >= {1, 2, 3, 8, 9, 10}

    def test_hull_of_adjacent_is_exact(self):
        h = hull_join(interval(C(1), C(5)), interval(C(6), C(10)))
        assert pts(h) == set(range(1, 11))

    def test_hull_parametric(self):
        h = hull_join(interval(C(1), N), interval(C(2), N + 1))
        assert pts(h, {"n": 6}) >= ({1, 2, 3, 4, 5, 6} | {7})

    def test_hull_rejects_mismatched(self):
        import pytest

        with pytest.raises(ValueError):
            hull_join(interval(C(1), C(2), "a"), interval(C(1), C(2), "b"))


class TestTryCoalesce:
    def test_containment(self):
        m = try_coalesce(interval(C(1), C(10)), interval(C(3), C(5)))
        assert m is not None and pts(m) == set(range(1, 11))

    def test_adjacent_merged_exactly(self):
        m = try_coalesce(interval(C(1), C(5)), interval(C(6), C(10)))
        assert m is not None and pts(m) == set(range(1, 11))

    def test_overlapping_merged(self):
        m = try_coalesce(interval(C(1), C(7)), interval(C(4), C(10)))
        assert m is not None and pts(m) == set(range(1, 11))

    def test_gap_not_merged(self):
        assert try_coalesce(interval(C(1), C(3)), interval(C(6), C(9))) is None

    def test_parametric_adjacent(self):
        # [1, n] ∪ [n+1, 2n]: hull [1, 2n] is exact
        a = interval(C(1), N)
        b = interval(N + 1, N * 2)
        m = try_coalesce(a, b)
        assert m is not None
        assert pts(m, {"n": 5}) == set(range(1, 11))

    def test_different_arrays_none(self):
        assert try_coalesce(
            interval(C(1), C(5), "a"), interval(C(6), C(9), "b")
        ) is None
