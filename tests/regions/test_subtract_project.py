"""Unit tests for region subtraction and projection."""

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.regions.project import (
    exact_for_integers,
    must_project_over_loop,
    project_over_loop,
)
from repro.regions.region import ArrayRegion
from repro.regions.subtract import subtract_region, subtract_summary
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
I = AffineExpr.var("i")
N = AffineExpr.var("n")
C = AffineExpr.const


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array,
        1,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


def points(region, env, lo=-5, hi=30):
    return {d for d in range(lo, hi) if region.contains_point((d,), env)}


def union_points(regions, env, lo=-5, hi=30):
    out = set()
    for r in regions:
        out |= points(r, env, lo, hi)
    return out


class TestSubtractRegion:
    def test_middle_cut(self):
        a = interval(C(1), C(10))
        b = interval(C(4), C(6))
        pieces = subtract_region(a, b)
        assert union_points(pieces, {}) == {1, 2, 3, 7, 8, 9, 10}

    def test_disjoint_pieces(self):
        a = interval(C(1), C(10))
        b = interval(C(4), C(6))
        pieces = subtract_region(a, b)
        # pieces must be pairwise disjoint
        seen = set()
        for p in pieces:
            pts = points(p, {})
            assert not (pts & seen)
            seen |= pts

    def test_subtract_superset_gives_empty(self):
        a = interval(C(3), C(5))
        b = interval(C(1), C(10))
        assert subtract_region(a, b) == []

    def test_subtract_disjoint_keeps_all(self):
        a = interval(C(1), C(3))
        b = interval(C(7), C(9))
        pieces = subtract_region(a, b)
        assert union_points(pieces, {}) == {1, 2, 3}

    def test_subtract_different_array_noop(self):
        a = interval(C(1), C(3), "a")
        b = interval(C(1), C(3), "b")
        assert subtract_region(a, b) == [a]

    def test_subtract_point(self):
        a = interval(C(1), C(5))
        b = ArrayRegion.from_subscripts("a", [C(3)])
        pieces = subtract_region(a, b)
        assert union_points(pieces, {}) == {1, 2, 4, 5}

    def test_parametric_boundary(self):
        # the Figure-1-style case: [1, n] minus [1, n-1] leaves {n}
        a = interval(C(1), N)
        b = interval(C(1), N - 1)
        pieces = subtract_region(a, b)
        for n in (1, 4, 9):
            assert union_points(pieces, {"n": n}) == {n}

    def test_subtract_summary_multiple(self):
        a = interval(C(1), C(10))
        pieces = subtract_summary(
            [a], [interval(C(1), C(3)), interval(C(8), C(10))]
        )
        assert union_points(pieces, {}) == {4, 5, 6, 7}

    def test_soundness_property(self):
        # (A - B) ∪ (A ∩ B) ⊇ A and (A - B) ∩ B = ∅ on sample points
        a = interval(C(2), C(9))
        b = interval(C(5), C(12))
        diff = subtract_region(a, b)
        pa, pb = points(a, {}), points(b, {})
        pd = union_points(diff, {})
        assert pd == pa - pb


class TestProjection:
    def test_project_identity_subscript(self):
        # a(i), 1 <= i <= n projects to 1 <= d <= n
        r = ArrayRegion.from_subscripts("a", [I])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        proj = project_over_loop(r, "i", space)
        assert points(proj, {"n": 5}) == {1, 2, 3, 4, 5}

    def test_project_shifted(self):
        r = ArrayRegion.from_subscripts("a", [I + 2])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(4))])
        proj = project_over_loop(r, "i", space)
        assert points(proj, {}) == {3, 4, 5, 6}

    def test_project_strided_overapproximates(self):
        # a(2i) over i in [1,5]: may-projection covers the full interval
        r = ArrayRegion.from_subscripts("a", [I * 2])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(5))])
        proj = project_over_loop(r, "i", space)
        assert {2, 4, 6, 8, 10} <= points(proj, {})

    def test_exactness_criterion(self):
        unit = ArrayRegion.from_subscripts("a", [I]).system
        assert exact_for_integers(unit, "i")
        strided = ArrayRegion.from_subscripts("a", [I * 2]).system
        assert not exact_for_integers(strided, "i")

    def test_must_project_exact_case(self):
        r = ArrayRegion.from_subscripts("a", [I])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        proj = must_project_over_loop(r, "i", space)
        assert proj is not None
        assert points(proj, {"n": 4}) == {1, 2, 3, 4}

    def test_must_project_rejects_stride(self):
        r = ArrayRegion.from_subscripts("a", [I * 2])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(5))])
        assert must_project_over_loop(r, "i", space) is None

    def test_project_keeps_parameters(self):
        r = ArrayRegion.from_subscripts("a", [I])
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        proj = project_over_loop(r, "i", space)
        assert "n" in proj.parameters()
        assert "i" not in proj.parameters()
