"""Unit tests for summary sets."""

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
I = AffineExpr.var("i")
N = AffineExpr.var("n")
C = AffineExpr.const


def interval(lo, hi, array="a"):
    return ArrayRegion(
        array,
        1,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


def pts(summary, array, env, rng=range(-2, 25)):
    out = set()
    for r in summary.regions(array):
        out |= {d for d in rng if r.contains_point((d,), env)}
    return out


class TestConstruction:
    def test_empty(self):
        assert SummarySet.empty().is_empty()
        assert SummarySet.empty().arrays() == ()

    def test_of(self):
        s = SummarySet.of(interval(C(1), C(3)), interval(C(1), C(2), "b"))
        assert s.arrays() == ("a", "b")

    def test_empty_regions_dropped(self):
        s = SummarySet.of(interval(C(5), C(2)))
        assert s.is_empty()


class TestUnion:
    def test_union_distinct_arrays(self):
        s1 = SummarySet.of(interval(C(1), C(3)))
        s2 = SummarySet.of(interval(C(1), C(2), "b"))
        u = s1.union(s2)
        assert u.arrays() == ("a", "b")

    def test_union_coalesces_contained(self):
        s1 = SummarySet.of(interval(C(1), C(10)))
        s2 = SummarySet.of(interval(C(3), C(5)))
        u = s1.union(s2)
        assert len(u.regions("a")) == 1

    def test_union_coalesces_adjacent(self):
        s1 = SummarySet.of(interval(C(1), C(5)))
        s2 = SummarySet.of(interval(C(6), C(10)))
        u = s1.union(s2)
        assert pts(u, "a", {}) == set(range(1, 11))
        assert len(u.regions("a")) == 1  # exact hull merge

    def test_union_keeps_disjoint(self):
        s1 = SummarySet.of(interval(C(1), C(3)))
        s2 = SummarySet.of(interval(C(8), C(10)))
        u = s1.union(s2)
        assert len(u.regions("a")) == 2
        assert pts(u, "a", {}) == {1, 2, 3, 8, 9, 10}

    def test_widening_respects_budget(self):
        pieces = [interval(C(4 * k), C(4 * k + 1)) for k in range(10)]
        u = SummarySet.empty()
        for p in pieces:
            u = u.union(SummarySet.of(p), budget=3)
        assert len(u.regions("a")) <= 3
        # widening is an over-approximation
        expected = set()
        for k in range(10):
            expected |= {4 * k, 4 * k + 1}
        assert expected <= pts(u, "a", {}, range(-2, 50))


class TestIntersectSubtract:
    def test_intersect_pairwise(self):
        s1 = SummarySet.of(interval(C(1), C(6)))
        s2 = SummarySet.of(interval(C(4), C(9)))
        x = s1.intersect_pairwise(s2)
        assert pts(x, "a", {}) == {4, 5, 6}

    def test_intersect_distributes(self):
        s1 = SummarySet.of(interval(C(1), C(3)), interval(C(7), C(9)))
        s2 = SummarySet.of(interval(C(2), C(8)))
        x = s1.intersect_pairwise(s2)
        assert pts(x, "a", {}) == {2, 3, 7, 8}

    def test_intersect_different_arrays_empty(self):
        s1 = SummarySet.of(interval(C(1), C(3)))
        s2 = SummarySet.of(interval(C(1), C(3), "b"))
        assert s1.intersect_pairwise(s2).is_empty()

    def test_subtract(self):
        s = SummarySet.of(interval(C(1), C(10)))
        w = SummarySet.of(interval(C(1), C(9)))
        d = s.subtract(w)
        assert pts(d, "a", {}) == {10}

    def test_subtract_full_coverage(self):
        s = SummarySet.of(interval(C(1), C(5)))
        w = SummarySet.of(interval(C(1), C(10)))
        assert s.subtract(w).is_empty()

    def test_intersect_nonempty(self):
        s1 = SummarySet.of(interval(C(1), C(5)))
        s2 = SummarySet.of(interval(C(5), C(9)))
        s3 = SummarySet.of(interval(C(6), C(9)))
        assert s1.intersect_nonempty(s2)
        assert not s1.intersect_nonempty(s3)


class TestCovers:
    def test_covers_direct(self):
        outer = SummarySet.of(interval(C(1), C(10)))
        inner = SummarySet.of(interval(C(2), C(5)))
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_covers_by_pieces(self):
        outer = SummarySet.of(interval(C(1), C(5)), interval(C(6), C(10)))
        inner = SummarySet.of(interval(C(3), C(8)))
        assert outer.covers(inner)

    def test_covers_parametric(self):
        outer = SummarySet.of(interval(C(1), N))
        inner = SummarySet.of(interval(C(2), N - 1))
        assert outer.covers(inner)

    def test_covers_empty(self):
        assert SummarySet.empty().covers(SummarySet.empty())
        assert SummarySet.of(interval(C(1), C(3))).covers(SummarySet.empty())
        assert not SummarySet.empty().covers(SummarySet.of(interval(C(1), C(3))))


class TestProjection:
    def test_project_may(self):
        body = SummarySet.of(ArrayRegion.from_subscripts("a", [I]))
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(8))])
        loop = body.project_may("i", space)
        assert pts(loop, "a", {}) == set(range(1, 9))

    def test_project_must_exact(self):
        body = SummarySet.of(ArrayRegion.from_subscripts("a", [I]))
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(8))])
        loop = body.project_must("i", space)
        assert pts(loop, "a", {}) == set(range(1, 9))

    def test_project_must_drops_stride(self):
        body = SummarySet.of(ArrayRegion.from_subscripts("a", [I * 2]))
        space = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(8))])
        loop = body.project_must("i", space)
        assert loop.is_empty()

    def test_conjoin_all_embedding(self):
        s = SummarySet.of(interval(C(1), N))
        embedded = s.conjoin_all(LinearSystem([Constraint.le(N, C(3))]))
        assert pts(embedded, "a", {"n": 10}) == set()
        assert pts(embedded, "a", {"n": 3}) == {1, 2, 3}


class TestPlumbing:
    def test_eq_order_insensitive(self):
        s1 = SummarySet.of(interval(C(1), C(3)), interval(C(7), C(9)))
        s2 = SummarySet.of(interval(C(7), C(9)), interval(C(1), C(3)))
        assert s1 == s2 and hash(s1) == hash(s2)

    def test_restricted_to(self):
        s = SummarySet.of(interval(C(1), C(3)), interval(C(1), C(3), "b"))
        assert s.restricted_to("a").arrays() == ("a",)
        assert s.restricted_to("zzz").is_empty()

    def test_drop_arrays(self):
        s = SummarySet.of(interval(C(1), C(3)), interval(C(1), C(3), "b"))
        assert s.drop_arrays(["b"]).arrays() == ("a",)
