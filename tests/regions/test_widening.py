"""Widening and budget-path tests: precision may drop, soundness may not."""

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion
from repro.regions.subtract import subtract_summary
from repro.regions.summary import SummarySet, _widen
from repro.symbolic.affine import AffineExpr

D0 = AffineExpr.var("__d0")
C = AffineExpr.const


def interval(lo, hi, array="a", extra=()):
    cons = [Constraint.ge(D0, C(lo)), Constraint.le(D0, C(hi))]
    cons.extend(extra)
    return ArrayRegion(array, 1, LinearSystem(cons))


def big_system_interval(lo, hi, array="a"):
    """An interval padded with redundant constraints to exceed the
    coalesce limit."""
    extra = [
        Constraint.ge(D0 * (k + 2), C(lo * (k + 2) - k - 1))
        for k in range(8)
    ]
    return interval(lo, hi, array, extra)


def pts(regions, rng=range(-5, 60)):
    out = set()
    for r in regions:
        out |= {d for d in rng if r.contains_point((d,), {})}
    return out


class TestWiden:
    def test_small_systems_semantic_hull(self):
        regions = [interval(4 * k, 4 * k + 1) for k in range(8)]
        out = _widen(regions, 3)
        assert len(out) <= 3
        expected = set()
        for k in range(8):
            expected |= {4 * k, 4 * k + 1}
        assert expected <= pts(out)  # superset: sound

    def test_large_systems_syntactic_hull(self):
        regions = [big_system_interval(1, 9), big_system_interval(20, 29)]
        out = _widen(regions, 1)
        assert len(out) == 1
        assert {1, 5, 9, 20, 25, 29} <= pts(out)

    def test_widen_noop_within_budget(self):
        regions = [interval(1, 3), interval(7, 9)]
        assert _widen(list(regions), 4) == regions


class TestSubtractBudget:
    def test_many_writes_keep_soundness(self):
        # subtracting 30 scattered points from [1, 50] blows the piece
        # budget; the result must still be a superset of the true
        # difference
        base = [interval(1, 50)]
        writes = [interval(2 * k, 2 * k) for k in range(1, 26)]
        out = subtract_summary(base, writes, budget=6)
        true_diff = set(range(1, 51)) - {2 * k for k in range(1, 26)}
        assert true_diff <= pts(out)

    def test_huge_write_skipped(self):
        base = [interval(1, 20)]
        huge = big_system_interval(1, 30)
        # pad further to exceed 2*budget constraints
        extra = [
            Constraint.ge(D0 * (k + 3), C(-100)) for k in range(10)
        ]
        very_huge = ArrayRegion(
            "a", 1, huge.system & LinearSystem(extra)
        )
        out = subtract_summary(base, [very_huge], budget=4)
        # the write was skipped: nothing removed, still sound (superset)
        assert pts(out) == set(range(1, 21))


class TestUnionBudgetEndToEnd:
    def test_union_never_loses_points(self):
        acc = SummarySet.empty()
        expected = set()
        for k in range(15):
            lo, hi = 3 * k, 3 * k + 1
            acc = acc.union(SummarySet.of(interval(lo, hi)), budget=4)
            expected |= {lo, hi}
        got = pts(acc.regions("a"), range(-5, 60))
        assert expected <= got
        assert len(acc.regions("a")) <= 4
