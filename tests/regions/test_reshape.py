"""Unit tests for interprocedural summary translation (Reshape)."""

import pytest

from repro.ir.symboltable import SymbolTable
from repro.lang.astnodes import Call
from repro.lang.parser import parse_program
from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import OpaqueAtom
from repro.predicates.formula import Atom
from repro.regions.region import ArrayRegion
from repro.regions.reshape import (
    CallContext,
    translate_array_summary,
    translate_summary_set,
)
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr
from repro.symbolic.terms import FreshNameSource

D0 = AffineExpr.var("__d0")
D1 = AffineExpr.var("__d1")
C = AffineExpr.const


def make_ctx(src, call_index=0):
    program = parse_program(src)
    main = program.main_unit
    calls = [s for s in main.body if isinstance(s, Call)]
    call = calls[call_index]
    callee = program.units[call.name]
    return CallContext(
        call, SymbolTable(main), SymbolTable(callee), FreshNameSource()
    )


def region_1d(lo, hi, array):
    return ArrayRegion(
        array, 1,
        LinearSystem([Constraint.ge(D0, lo), Constraint.le(D0, hi)]),
    )


def pts1(regions, env=None, rng=range(0, 30)):
    env = env or {}
    out = set()
    for r in regions:
        out |= {d for d in rng if r.contains_point((d,), env)}
    return out


class TestScalarBindings:
    SRC = """
program t
  real a(10)
  read m
  call f(a, m + 1, m * m)
end
subroutine f(x, p, q)
  real x(*)
  x(p) = q * 1.0
end
"""

    def test_affine_actual_substituted(self):
        ctx = make_ctx(self.SRC)
        b = ctx.scalar_bindings()
        assert b["p"] == AffineExpr.var("m") + 1

    def test_nonaffine_actual_freshened(self):
        ctx = make_ctx(self.SRC)
        b = ctx.scalar_bindings()
        # m*m is not affine: bound to a fresh unconstrained symbol
        assert b["q"].variables()[0].startswith("__t")


class TestDirectRename:
    SRC = """
program t
  real a(10, 20)
  call f(a)
end
subroutine f(x)
  real x(10, 20)
  x(1, 1) = 0.0
end
"""

    def test_same_shape_renamed(self):
        ctx = make_ctx(self.SRC)
        region = ArrayRegion.from_subscripts("x", [C(3), C(4)])
        alts = translate_array_summary([region], "x", ctx, must=True)
        assert len(alts) == 1
        pred, regions = alts[0]
        assert pred.is_true()
        assert regions[0].array == "a"
        assert regions[0].contains_point((3, 4), {})


class TestLinearization:
    SRC = """
program t
  real a(4, 6)
  call f(a)
end
subroutine f(x)
  real x(24)
  x(1) = 0.0
end
"""

    def test_flat_range_maps_to_columns(self):
        ctx = make_ctx(self.SRC)
        # callee writes x(1..8): the first two caller columns
        region = region_1d(C(1), C(8), "x")
        alts = translate_array_summary([region], "x", ctx, must=True)
        pred, regions = alts[0]
        assert pred.is_true()
        covered = {
            (i, j)
            for i in range(1, 5)
            for j in range(1, 7)
            if any(r.contains_point((i, j), {}) for r in regions)
        }
        expected = {(i, j) for j in (1, 2) for i in range(1, 5)}
        assert covered == expected

    def test_single_flat_element(self):
        ctx = make_ctx(self.SRC)
        # x(6) is a(2, 2) in column-major order
        region = ArrayRegion.from_subscripts("x", [C(6)])
        alts = translate_array_summary([region], "x", ctx, must=True)
        _, regions = alts[0]
        hits = {
            (i, j)
            for i in range(1, 5)
            for j in range(1, 7)
            if any(r.contains_point((i, j), {}) for r in regions)
        }
        assert hits == {(2, 2)}


class TestOptimisticReshape:
    SRC = """
program t
  integer p, q
  real a(24)
  read p, q
  call f(a, p, q)
end
subroutine f(x, p, q)
  integer p, q
  real x(p, q)
  x(1, 1) = 0.0
end
"""

    def test_whole_coverage_guarded(self):
        ctx = make_ctx(self.SRC)
        whole = ArrayRegion(
            "x", 2,
            LinearSystem(
                [
                    Constraint.ge(D0, C(1)),
                    Constraint.le(D0, AffineExpr.var("p")),
                    Constraint.ge(D1, C(1)),
                    Constraint.le(D1, AffineExpr.var("q")),
                ]
            ),
        )
        alts = translate_array_summary([whole], "x", ctx, must=True)
        assert len(alts) == 2
        pred, regions = alts[0]
        assert isinstance(pred, Atom) and isinstance(pred.atom, OpaqueAtom)
        assert "==" in pred.atom.key
        assert regions[0].array == "a"
        # optimistic region is the whole caller array
        assert pts1(regions) == set(range(1, 25))
        # default claims nothing for must
        dpred, dregions = alts[1]
        assert dpred.is_true() and dregions == ()

    def test_partial_coverage_gets_default_only(self):
        ctx = make_ctx(self.SRC)
        partial = ArrayRegion(
            "x", 2,
            LinearSystem(
                [
                    Constraint.ge(D0, C(2)),  # misses row 1
                    Constraint.le(D0, AffineExpr.var("p")),
                    Constraint.ge(D1, C(1)),
                    Constraint.le(D1, AffineExpr.var("q")),
                ]
            ),
        )
        alts = translate_array_summary([partial], "x", ctx, must=True)
        assert len(alts) == 1
        assert alts[0][0].is_true() and alts[0][1] == ()

    def test_may_default_is_whole_array(self):
        ctx = make_ctx(self.SRC)
        anything = ArrayRegion.from_subscripts(
            "x", [AffineExpr.var("p"), C(1)]
        )
        alts = translate_array_summary([anything], "x", ctx, must=False)
        default = alts[-1][1]
        assert pts1(default) == set(range(1, 25))


class TestSummarySetTranslation:
    SRC = """
program t
  real a(10)
  real keepme(5)
  call f(a)
  keepme(1) = 0.0
end
subroutine f(x)
  real x(*), local(10)
  x(1) = 0.0
  local(1) = 0.0
end
"""

    def test_locals_dropped(self):
        ctx = make_ctx(self.SRC)
        summary = SummarySet.of(
            region_1d(C(1), C(5), "x"), region_1d(C(1), C(5), "local")
        )
        alts = translate_summary_set(summary, ctx, must=False)
        assert len(alts) == 1
        _, out = alts[0]
        assert out.arrays() == ("a",)

    def test_assumed_size_direct(self):
        ctx = make_ctx(self.SRC)
        summary = SummarySet.of(region_1d(C(2), C(7), "x"))
        alts = translate_summary_set(summary, ctx, must=True)
        _, out = alts[0]
        assert pts1(out.regions("a")) == set(range(2, 8))
