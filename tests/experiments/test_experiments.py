"""Smoke + shape tests for the experiment harnesses.

The benchmarks assert the paper claims in full; these tests keep each
harness importable, runnable and structurally sane in the normal test
run (which skips the heavy full-suite passes where possible).
"""

import pytest

from repro.experiments import fig1_examples
from repro.experiments.common import format_table, percent


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["longer", 22]])
        lines = text.split("\n")
        assert len(lines) == 4
        header, rule, r1, r2 = lines
        assert len(rule) == len(header)
        assert "longer" in r2

    def test_format_table_with_title(self):
        text = format_table(["a"], [["x"]], title="T")
        assert text.startswith("T\n")

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_percent(self):
        assert percent(1, 2) == "50%"
        assert percent(0, 0) == "-"


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_examples.run()

    def test_all_examples_present(self, result):
        assert set(result.statuses) == {"fig1a", "fig1b", "fig1c", "fig1d"}

    def test_base_always_serial(self, result):
        for statuses in result.statuses.values():
            assert statuses["base"] == "serial"

    def test_predicated_always_wins(self, result):
        for statuses in result.statuses.values():
            assert statuses["predicated"] in (
                "parallel",
                "parallel_private",
                "runtime",
            )

    def test_runtime_examples_have_tests(self, result):
        assert "fig1b" in result.runtime_tests
        assert "fig1d" in result.runtime_tests

    def test_format_renders(self, result):
        text = result.format()
        assert "fig1a" in text and "fig1d" in text


class TestTableHarnessesOnSubset:
    """Exercise the row machinery on a couple of programs (the full
    sweep runs in benchmarks/)."""

    def test_table1_row_counting(self):
        from repro.experiments.table1_loops import ProgramRow, Table1

        t = Table1(
            rows=[
                ProgramRow("p1", "nas", 10, 9, 5, 4, 2, 1, 1),
                ProgramRow("p2", "nas", 6, 6, 3, 3, 1, 0, 1),
            ]
        )
        total = t.totals()
        assert total.loops == 16
        assert total.base_parallel == 8
        assert total.pred_additional == 3
        nas_total = t.totals("nas")
        assert nas_total.candidates == 15
        assert "TAB1" in t.format()

    def test_table3_totals(self):
        from repro.experiments.table3_categories import Table3

        t = Table3(counts={"boundary": [2, 1], "reshape": [0, 2]})
        assert t.total() == (2, 3)
        assert "TAB3" in t.format()

    def test_speedup_curve(self):
        from repro.machine.speedup import SpeedupCurve

        c = SpeedupCurve("x", {1: 1.0, 8: 4.0})
        assert c.at(8) == 4.0
        assert c.best() == 4.0
