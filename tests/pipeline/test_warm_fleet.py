"""The warm fleet: content keys, epoch invalidation, taint eviction.

PR 10 lets pool workers keep their engines and memo tables alive across
runs within a *fleet epoch* (``docs/EXECUTION.md`` §7).  The contract
under test:

* engine keys are pure content hashes when the fleet is warm, per-run
  nonces when it is off (``REPRO_WARM_FLEET=0`` restores PR-9 behavior
  byte for byte);
* every semantic knob change bumps the epoch, and a worker seeing a
  newer epoch drops *all* warm state before touching the task;
* a degraded (budget-tainted) engine never survives into another run;
* none of which may change any analysis answer, for any executor, job
  count, chunking, or budget.
"""

import hashlib
import warnings

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.pipeline import (
    resolve_batch_chunk,
    run_pipeline,
    run_pipeline_batch,
)
from repro.pipeline import executor as pexec
from repro.service.budgets import Budget, budget_scope
from repro.suites import all_programs


@pytest.fixture(autouse=True)
def _restore_state():
    yield
    pexec.set_executor(None)
    perf.set_warm_fleet(None)
    pexec._worker_engines.clear()
    pexec._worker_built_keys.clear()
    pexec._worker_epoch = None


def _bench(i=0):
    return all_programs()[i]


def _opts():
    return AnalysisOptions.predicated()


# ----------------------------------------------------------------------
# engine keys
# ----------------------------------------------------------------------
class TestEngineKeys:
    def test_warm_keys_are_stable_content_hashes(self):
        perf.set_warm_fleet(True)
        p = _bench().fresh_program()
        h1 = pexec.make_header(p, _opts(), None)
        h2 = pexec.make_header(p, _opts(), None)
        assert h1.engine_key == h2.engine_key
        assert len(h1.engine_key) == 24
        int(h1.engine_key, 16)  # pure hex: no nonce suffix

    def test_warm_keys_separate_distinct_inputs(self):
        perf.set_warm_fleet(True)
        p, q = _bench(0).fresh_program(), _bench(1).fresh_program()
        keys = {
            pexec.make_header(p, _opts(), None).engine_key,
            pexec.make_header(q, _opts(), None).engine_key,
            pexec.make_header(p, AnalysisOptions.base(), None).engine_key,
        }
        assert len(keys) == 3

    def test_cold_keys_keep_the_per_run_nonce(self):
        perf.set_warm_fleet(False)
        p = _bench().fresh_program()
        h1 = pexec.make_header(p, _opts(), None)
        h2 = pexec.make_header(p, _opts(), None)
        assert h1.engine_key != h2.engine_key
        assert ":" in h1.engine_key

    def test_header_carries_the_current_epoch(self):
        p = _bench().fresh_program()
        before = perf.epoch()
        assert pexec.make_header(p, _opts(), None).epoch == before
        perf.bump_epoch()
        assert pexec.make_header(p, _opts(), None).epoch == before + 1


# ----------------------------------------------------------------------
# the epoch counter
# ----------------------------------------------------------------------
class TestEpochBumps:
    def test_knob_change_bumps_epoch_once(self):
        e0 = perf.epoch()
        perf.set_dep_screen(False)
        try:
            e1 = perf.epoch()
            assert e1 == e0 + 1
            perf.set_dep_screen(False)  # no-op: same value, no bump
            assert perf.epoch() == e1
        finally:
            perf.set_dep_screen(None)
        assert perf.epoch() > e1

    def test_every_semantic_knob_setter_bumps(self):
        from repro.pipeline import set_pipeline

        setters = [
            perf.set_pred_oracle,
            perf.set_packed_kernel,
            perf.set_bytecode,
            perf.set_dep_screen,
            perf.set_warm_fleet,
            set_pipeline,
        ]
        for setter in setters:
            e0 = perf.epoch()
            setter(False)
            try:
                assert perf.epoch() > e0, setter.__name__
            finally:
                setter(None)

    def test_reset_all_caches_bumps_epoch_and_counter(self):
        e0 = perf.epoch()
        c0 = perf.counter("perf.epoch_bumps")
        perf.reset_all_caches()
        assert perf.epoch() == e0 + 1
        # the bump itself lands before the counter tables reset, so the
        # running total restarts from the reset — only monotonicity of
        # the epoch matters; the counter must at least exist
        assert perf.counter("perf.epoch_bumps") >= 0
        assert c0 >= 0


# ----------------------------------------------------------------------
# worker-side reuse / rebuild / eviction (functions called in-process:
# the worker entry points are plain functions, so this is deterministic
# where a live pool's task routing is not)
# ----------------------------------------------------------------------
class TestWorkerEngineLifecycle:
    def _header(self):
        perf.set_warm_fleet(True)
        return pexec.make_header(_bench().fresh_program(), _opts(), None)

    def test_first_touch_builds_then_reuses(self):
        h = self._header()
        pexec._sync_epoch(h.epoch)
        b0 = perf.counter("pipeline.executor.builds")
        r0 = perf.counter("pipeline.executor.reuses")
        e1 = pexec._worker_engine(h)
        assert perf.counter("pipeline.executor.builds") == b0 + 1
        e2 = pexec._worker_engine(h)
        assert e2 is e1
        assert perf.counter("pipeline.executor.reuses") == r0 + 1

    def test_epoch_sync_drops_engines_and_counts_rebuild(self):
        h = self._header()
        pexec._sync_epoch(h.epoch)
        pexec._worker_engine(h)
        s0 = perf.counter("pipeline.executor.epoch_syncs")
        pexec._sync_epoch(h.epoch + 1)
        assert perf.counter("pipeline.executor.epoch_syncs") == s0 + 1
        assert pexec._worker_engines == {}
        rb0 = perf.counter("pipeline.executor.rebuilds")
        pexec._worker_engine(h)  # key seen before: rebuild, not build
        assert perf.counter("pipeline.executor.rebuilds") == rb0 + 1

    def test_same_epoch_sync_is_a_noop(self):
        h = self._header()
        pexec._sync_epoch(h.epoch)
        pexec._worker_engine(h)
        s0 = perf.counter("pipeline.executor.epoch_syncs")
        pexec._sync_epoch(h.epoch)
        assert perf.counter("pipeline.executor.epoch_syncs") == s0
        assert pexec._worker_engines  # warm state untouched

    def test_tainted_engine_is_evicted_not_reused(self):
        h = self._header()
        pexec._sync_epoch(h.epoch)
        engine = pexec._worker_engine(h)
        engine.tainted_units.add("main")  # simulate a budget trip
        pexec._evict_engine_if_tainted(h.engine_key, engine)
        assert h.engine_key not in pexec._worker_engines
        rb0 = perf.counter("pipeline.executor.rebuilds")
        fresh = pexec._worker_engine(h)
        assert fresh is not engine
        assert perf.counter("pipeline.executor.rebuilds") == rb0 + 1

    def test_engine_lru_is_bounded(self):
        perf.set_warm_fleet(True)
        pexec._sync_epoch(perf.epoch())
        for i in range(pexec._WORKER_ENGINE_MAX + 2):
            h = pexec.make_header(
                _bench(i % len(all_programs())).fresh_program(),
                _opts(),
                None,
            )
            pexec._worker_engine(h)
        assert len(pexec._worker_engines) <= pexec._WORKER_ENGINE_MAX


# ----------------------------------------------------------------------
# end-to-end: invalidation and taint must never change an answer
# ----------------------------------------------------------------------
COMBOS = [
    ("thread", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 1),
    ("process", 2),
    ("process", 4),
]


def _result_hash(bench, executor, jobs, budget=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with budget_scope(budget):
            ctx = run_pipeline(
                bench.fresh_program(),
                AnalysisOptions.predicated(),
                jobs=jobs,
                executor=executor,
            )
    rows = [
        (l.label, l.status, str(l.condition), l.enclosed, l.runtime_test)
        for l in ctx.get("result").loops
    ]
    return hashlib.sha256(repr((rows, ctx.degraded)).encode()).hexdigest()


class TestEpochInvalidationProperty:
    """For every executor × job count: warmth, epoch bumps and budget
    taint may change *where* and *how much* work happens — never what
    comes out."""

    def test_warm_rerun_and_epoch_bump_preserve_results(self):
        bench = _bench(3)
        for executor, jobs in COMBOS:
            perf.reset_all_caches()
            fresh = _result_hash(bench, executor, jobs)
            # same epoch, warm state: reuse path
            assert _result_hash(bench, executor, jobs) == fresh, (
                executor,
                jobs,
            )
            # knob-change-shaped invalidation: rebuild path
            perf.bump_epoch()
            assert _result_hash(bench, executor, jobs) == fresh, (
                executor,
                jobs,
            )

    def test_invalidation_restores_cold_behavior_under_budget(self):
        """``reset_all_caches`` (an epoch bump + parent reset) must make
        the next tightly-budgeted run behave exactly like the first cold
        one — if workers ignored the epoch and kept warm memos, the ops
        meter would trip elsewhere and degrade different loops."""
        bench = _bench(0)
        for executor, jobs in COMBOS:
            perf.reset_all_caches()
            cold1 = _result_hash(
                bench, executor, jobs, budget=Budget(max_ops=1)
            )
            _result_hash(bench, executor, jobs)  # warm everything up
            perf.reset_all_caches()
            cold2 = _result_hash(
                bench, executor, jobs, budget=Budget(max_ops=1)
            )
            assert cold1 == cold2, (executor, jobs)

    def test_degraded_run_never_poisons_the_next(self):
        """A budget-tripped run leaves tainted engines behind; the next
        *unbudgeted* run in the same epoch must still produce the clean
        answer (taint eviction, not a nonce, is what protects it)."""
        bench = _bench(3)
        for executor, jobs in COMBOS:
            perf.reset_all_caches()
            clean = _result_hash(bench, executor, jobs)
            perf.reset_all_caches()
            _result_hash(bench, executor, jobs, budget=Budget(max_ops=1))
            # warm, same epoch, right after a degraded run:
            assert _result_hash(bench, executor, jobs) == clean, (
                executor,
                jobs,
            )


# ----------------------------------------------------------------------
# batch chunking
# ----------------------------------------------------------------------
class TestBatchChunking:
    def test_resolve_batch_chunk_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK", raising=False)
        assert resolve_batch_chunk(5, 100, 4) == 5  # explicit wins
        assert resolve_batch_chunk(0, 100, 4) == 1  # clamped
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "7")
        assert resolve_batch_chunk(None, 100, 4) == 7
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "seven")
        with pytest.raises(ValueError, match="REPRO_BATCH_CHUNK"):
            resolve_batch_chunk(None, 100, 4)

    def test_resolve_batch_chunk_auto_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK", raising=False)
        # ~4 chunks per worker, never above 32, never below 1
        assert resolve_batch_chunk(None, 64, 4) == 4
        assert resolve_batch_chunk(None, 3, 4) == 1
        assert resolve_batch_chunk(None, 10_000, 4) == 32

    def test_chunking_is_invisible(self):
        """serial loop == thread batch == process batch at every chunk
        size, program for program, in input order."""
        benches = all_programs()[:5]
        programs = [b.fresh_program() for b in benches] + [
            b.fresh_program() for b in benches[:3]
        ]

        def rows(results):
            return [
                [(l.label, l.status, str(l.condition)) for l in r.loops]
                for r in results
            ]

        def run(jobs, executor, chunk=None):
            perf.reset_all_caches()
            return rows(
                run_pipeline_batch(
                    [b for b in programs],
                    _opts(),
                    jobs=jobs,
                    executor=executor,
                    chunk=chunk,
                )
            )

        serial = run(1, "thread")
        assert len(serial) == len(programs)
        assert run(2, "thread") == serial
        assert run(2, "process", chunk=1) == serial  # unchunked shape
        assert run(2, "process", chunk=3) == serial
        assert run(2, "process", chunk=len(programs)) == serial

    def test_chunk_counters(self):
        programs = [all_programs()[0].fresh_program() for _ in range(6)]
        perf.reset_all_caches()
        c0 = perf.counter("pipeline.executor.chunks")
        p0 = perf.counter("pipeline.executor.batch_programs")
        run_pipeline_batch(programs, _opts(), jobs=2, executor="process", chunk=2)
        assert perf.counter("pipeline.executor.chunks") == c0 + 3
        assert perf.counter("pipeline.executor.batch_programs") == p0 + 6


# ----------------------------------------------------------------------
# the warm-fleet switch
# ----------------------------------------------------------------------
class TestWarmFleetSwitch:
    def test_environment_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_FLEET", raising=False)
        perf.set_warm_fleet(None)
        assert perf.warm_fleet_enabled() is True  # on by default
        monkeypatch.setenv("REPRO_WARM_FLEET", "0")
        perf.set_warm_fleet(None)
        assert perf.warm_fleet_enabled() is False
        perf.set_warm_fleet(True)
        assert perf.warm_fleet_enabled() is True

    def test_disabled_fleet_still_answers_identically(self):
        bench = _bench(2)
        perf.set_warm_fleet(True)
        perf.reset_all_caches()
        warm = _result_hash(bench, "process", 2)
        perf.set_warm_fleet(False)
        perf.reset_all_caches()
        assert _result_hash(bench, "process", 2) == warm
