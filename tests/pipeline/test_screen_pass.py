"""The screen pass in the pipeline: skip, elision, cache, executors.

Three integration properties beyond the unit-level classification
tests:

* a caller-free, fully-covered unit skips summarization outright — its
  "summary" is the :class:`~repro.arraydf.screen.ScreenedUnit` sentinel
  and its decisions come straight from the screen's pre-made rows;
* an outermost screened-independent loop of a caller-free unit skips
  its loop projection (``elided=True``); :func:`reproject_loop` can
  recompute the projected value on demand and gets exactly what the
  screen-off walk produces;
* both paths are invisible in the results — screen on and off, cold
  and warm cache, thread and process executors all agree.
"""

import pytest

from repro import perf
from repro.arraydf.analysis import reproject_loop
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.screen import ScreenedUnit
from repro.lang.parser import parse_program
from repro.pipeline import run_pipeline
from repro.service.cache import SummaryCache
from repro.suites import get_program

#: main is caller-free and every loop screens (independent): the
#: whole-unit skip fires for it, while the subroutines keep the full walk
SKIP_SRC = """program main
  integer n
  real a(100), b(100)
  read n
  call initone(a, n)
  call inittwo(b, n)
  do i = 1, n
    a(i) = a(i) + b(i)
  enddo
  print a(n)
end
subroutine initone(x, m)
  integer m
  real x(100)
  do i = 1, m
    x(i) = 0.0
  enddo
end
subroutine inittwo(y, m)
  integer m
  real y(100)
  do i = 1, m
    y(i) = 1.0
  enddo
end
"""

OPTS = AnalysisOptions.predicated()


def _rows(ctx):
    return [
        (l.label, l.status, str(l.condition), l.reason, l.enclosed)
        for l in ctx.get("result").loops
    ]


def _run(program, screen_on, **kw):
    perf.set_dep_screen(screen_on)
    try:
        perf.reset_all_caches()
        return run_pipeline(program, OPTS, **kw)
    finally:
        perf.set_dep_screen(None)
        perf.reset_all_caches()


class TestWholeUnitSkip:
    def test_screened_unit_sentinel_replaces_the_summary(self):
        ctx = _run(
            parse_program(SKIP_SRC), True, goals=("result", "summary")
        )
        assert isinstance(ctx.get("summary", "main"), ScreenedUnit)
        # called units keep their real summaries (their proc values feed
        # the callers)
        assert not isinstance(ctx.get("summary", "initone"), ScreenedUnit)

    def test_skip_counts_saved_units(self):
        perf.reset_counters()
        _run(parse_program(SKIP_SRC), True, goals=("result",))
        assert perf.counter("screen.saved_units") > 0

    def test_skipped_unit_decisions_match_screen_off(self):
        on = _rows(_run(parse_program(SKIP_SRC), True, goals=("result",)))
        off = _rows(_run(parse_program(SKIP_SRC), False, goals=("result",)))
        assert on == off

    def test_screen_off_runs_the_full_walk(self):
        ctx = _run(
            parse_program(SKIP_SRC), False, goals=("result", "summary")
        )
        assert not isinstance(ctx.get("summary", "main"), ScreenedUnit)


class TestElision:
    def test_outermost_screened_loops_skip_projection(self):
        ctx = _run(
            get_program("hydro2d").fresh_program(),
            True,
            goals=("result", "summary"),
        )
        summary = ctx.get("summary", "hydro2d")
        elided = {l.label for l, s in summary.loops.items() if s.elided}
        assert elided, "no loop was elided — the fast path is dead"
        from repro.arraydf.values import AccessValue

        for l, s in summary.loops.items():
            if s.elided:
                assert s.loop_value == AccessValue.empty()

    def test_reprojection_recovers_the_screen_off_value(self):
        on = _run(
            get_program("hydro2d").fresh_program(),
            True,
            goals=("summary",),
        ).get("summary", "hydro2d")
        off = _run(
            get_program("hydro2d").fresh_program(),
            False,
            goals=("summary",),
        ).get("summary", "hydro2d")
        off_by_label = {l.label: s for l, s in off.loops.items()}
        checked = 0
        for l, s in on.loops.items():
            if not s.elided:
                continue
            recovered = reproject_loop(s, OPTS)
            assert recovered == off_by_label[l.label].loop_value, l.label
            checked += 1
        assert checked > 0

    def test_elided_summaries_stay_out_of_the_cache(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        _run(
            get_program("hydro2d").fresh_program(),
            True,
            cache=cache,
            goals=("result",),
        )
        # screen rows are cached; the unit summary (whose loop rows
        # would hold placeholder values) must not be
        kinds = {p.name.split(".")[-2] for p in cache.root.glob("*/*.pkl")}
        assert "screen" in kinds
        assert "summary" not in kinds


class TestWarmAndExecutors:
    def test_warm_screen_cache_is_identical(self, tmp_path):
        # a whole-program warm run short-circuits at the program-level
        # cache, so edit one unit: the program key misses, while the
        # screen entries of the *untouched* units (keyed on their own
        # content only) serve from disk
        cache = SummaryCache(tmp_path / "c")
        edited = SKIP_SRC.replace("y(i) = 1.0", "y(i) = 2.0")
        _run(parse_program(SKIP_SRC), True, cache=cache, goals=("result",))
        hits = perf.counter("cache.screen_hit")
        warm = _rows(
            _run(parse_program(edited), True, cache=cache, goals=("result",))
        )
        assert perf.counter("cache.screen_hit") > hits
        cold = _rows(_run(parse_program(edited), True, goals=("result",)))
        assert warm == cold

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_agree_with_serial(self, executor):
        serial = _rows(
            _run(parse_program(SKIP_SRC), True, jobs=1, goals=("result",))
        )
        pooled = _rows(
            _run(
                parse_program(SKIP_SRC),
                True,
                jobs=2,
                executor=executor,
                goals=("result",),
            )
        )
        assert pooled == serial
