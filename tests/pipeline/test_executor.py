"""The executor layer: kind/jobs selection, process pool, invisibility.

The process executor must be *invisible*: for any suite program,
executor kind and job count may change where tasks run but never what
they produce — including how budget exhaustion degrades the answer.
"""

import hashlib
import random
import warnings

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.linalg.fourier_motzkin import (
    _note_fallback,
    capture_fallback_warnings,
    replay_fallback_warnings,
)
from repro.pipeline import run_pipeline
from repro.pipeline import executor as pexec
from repro.pipeline.passes import SummarizePass
from repro.service.budgets import Budget, budget_scope
from repro.suites import all_programs


@pytest.fixture(autouse=True)
def _restore_executor():
    yield
    pexec.set_executor(None)


class TestSelection:
    def test_explicit_kind_wins(self):
        assert pexec.executor_kind("process") == "process"
        assert pexec.executor_kind("thread") == "thread"

    def test_invalid_explicit_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            pexec.executor_kind("gpu")

    def test_environment_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        pexec.set_executor(None)
        assert pexec.executor_kind() == "thread"
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        pexec.set_executor(None)
        assert pexec.executor_kind() == "process"

    def test_invalid_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "fiber")
        pexec.set_executor(None)
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            pexec.executor_kind()

    def test_set_executor_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        pexec.set_executor("process")
        assert pexec.executor_kind() == "process"

    def test_set_executor_rejects_unknown(self):
        with pytest.raises(ValueError):
            pexec.set_executor("gpu")

    def test_resolve_jobs(self, monkeypatch):
        assert pexec.resolve_jobs(3) == 3
        assert pexec.resolve_jobs(0) == 1  # clamped
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert pexec.resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert pexec.resolve_jobs(None) == 4
        monkeypatch.setenv("REPRO_JOBS", "four")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            pexec.resolve_jobs(None)


SRC = """
program main
  integer n
  real a(100)
  read n
  call work(a, n)
end
subroutine work(x, m)
  integer m
  real x(100)
  do i = 1, m
    x(i) = 0.0
  enddo
end
"""


class TestFallback:
    def test_non_distributable_region_falls_back_to_threads(
        self, monkeypatch
    ):
        """A unit-scope region containing any non-distributable pass
        runs on the thread path and counts the fallback."""
        monkeypatch.setattr(SummarizePass, "distributable", False)
        before = perf.counter("pipeline.executor.fallback")
        ctx = run_pipeline(
            parse_program(SRC),
            AnalysisOptions.predicated(),
            jobs=2,
            executor="process",
        )
        assert perf.counter("pipeline.executor.fallback") > before
        assert [l.label for l in ctx.get("result").loops] == ["work:L1"]


class TestWarningPlumbing:
    def test_capture_collects_instead_of_warning(self):
        perf.reset_all_caches()
        with warnings.catch_warnings(record=True) as emitted:
            warnings.simplefilter("always")
            with capture_fallback_warnings() as records:
                with perf.analysis_context("proc-a"):
                    _note_fallback("x", 3)
        assert emitted == []
        assert len(records) == 1
        assert records[0][0] == "proc-a"

    def test_replay_warns_once_per_context_across_workers(self):
        """Records from several workers that tripped the same context
        replay as ONE warning (the per-worker repetition bug)."""
        perf.reset_all_caches()
        records = [
            ("proc-a", "dropped in proc-a"),
            ("proc-a", "dropped in proc-a"),  # a second worker
            ("proc-b", "dropped in proc-b"),
        ]
        with warnings.catch_warnings(record=True) as emitted:
            warnings.simplefilter("always")
            replay_fallback_warnings(records)
            replay_fallback_warnings(records)  # a third completion wave
        assert sorted(str(w.message) for w in emitted) == [
            "dropped in proc-a",
            "dropped in proc-b",
        ]


class TestExecutorInvisibility:
    """Seeded property sweep: executor choice changes nothing visible."""

    COMBOS = [
        ("thread", 1),
        ("thread", 2),
        ("thread", 4),
        ("process", 1),
        ("process", 2),
        ("process", 4),
    ]

    def _result_hash(self, bench, executor, jobs, budget=None):
        """A hash over everything ``--profile`` makes visible about the
        result: per-loop decisions plus the degradation flag."""
        perf.reset_all_caches()  # identical memo warmth for every combo
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with budget_scope(budget):
                ctx = run_pipeline(
                    bench.fresh_program(),
                    AnalysisOptions.predicated(),
                    jobs=jobs,
                    executor=executor,
                )
        rows = [
            (l.label, l.status, str(l.condition), l.enclosed, l.runtime_test)
            for l in ctx.get("result").loops
        ]
        blob = repr((rows, ctx.degraded)).encode()
        return hashlib.sha256(blob).hexdigest()

    def test_unbudgeted_results_identical_across_combos(self):
        rng = random.Random(20260808)
        for bench in rng.sample(all_programs(), 4):
            hashes = {
                self._result_hash(bench, executor, jobs)
                for executor, jobs in self.COMBOS
            }
            assert len(hashes) == 1, bench.name

    def test_budget_degradation_identical_across_combos(self):
        """Exhaustion under a tight op budget degrades the same loops
        to the same statuses no matter where the tasks ran."""
        for bench in (all_programs()[0], all_programs()[3]):
            hashes = {}
            for executor, jobs in self.COMBOS:
                hashes[(executor, jobs)] = self._result_hash(
                    bench, executor, jobs, budget=Budget(max_ops=1)
                )
            assert len(set(hashes.values())) == 1, (bench.name, hashes)
