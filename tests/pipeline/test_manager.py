"""PassManager scheduling: wiring, pruning, dependence order, parallelism."""

import threading

import pytest

from repro import perf
from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.pipeline import (
    PassManager,
    PipelineWiringError,
    ProgramContext,
    analysis_passes,
    run_pipeline,
)
from repro.pipeline.base import PROGRAM_SCOPE, UNIT_SCOPE, Pass
from repro.pipeline.manager import _build_region_schedule

# main calls left and right; left calls leaf — two independent subtrees
# below main ({left, leaf} and {right})
SRC = """
program main
  integer n
  real a(100), b(100)
  read n
  call left(a, n)
  call right(b, n)
end
subroutine left(x, m)
  integer m
  real x(100)
  call leaf(x, m)
end
subroutine leaf(x, m)
  integer m
  real x(100)
  do j = 1, m
    x(j) = 0.0
  enddo
end
subroutine right(y, m)
  integer m
  real y(100)
  do k = 1, m
    y(k) = 1.0
  enddo
end
"""


class _Record(Pass):
    """A test pass that logs its (name, unit) executions."""

    def __init__(self, name, scope, inputs, outputs, log):
        self.name = name
        self.scope = scope
        self.inputs = inputs
        self.outputs = outputs
        self.log = log

    def run(self, ctx, unit=None):
        self.log.append((self.name, unit, threading.current_thread().name))
        for out in self.outputs:
            ctx.put(out, f"{out}:{unit}", unit)


def _ctx(src=SRC, **kw):
    return ProgramContext(
        parse_program(src), AnalysisOptions.predicated(), **kw
    )


class TestWiring:
    def test_missing_input_raises(self):
        log = []
        bad = _Record("bad", PROGRAM_SCOPE, ("nonexistent",), ("out",), log)
        with pytest.raises(PipelineWiringError):
            PassManager([bad]).run(_ctx())

    def test_missing_goal_raises(self):
        with pytest.raises(PipelineWiringError):
            PassManager(list(analysis_passes())).run(
                _ctx(), goals=("no_such_artifact",)
            )

    def test_callee_input_on_program_scope_raises(self):
        log = []
        bad = _Record("bad", PROGRAM_SCOPE, ("x@callees",), ("x",), log)
        with pytest.raises(PipelineWiringError):
            PassManager([bad]).run(_ctx())

    def test_goal_pruning_skips_downstream_passes(self):
        ctx = run_pipeline(
            parse_program(SRC), AnalysisOptions.predicated(), goals=("result",)
        )
        assert ctx.has("result")
        assert not ctx.has("plan")
        assert not ctx.has("transformed")

    def test_preloaded_goal_schedules_nothing(self):
        ctx = _ctx()
        ctx.put("result", "sentinel")
        PassManager(list(analysis_passes())).run(ctx, goals=("result",))
        assert ctx.get("result") == "sentinel"
        assert not ctx.has("engine")  # nothing upstream ran


class TestRegionSchedule:
    PASSES = analysis_passes()

    def _schedule(self):
        ctx = _ctx()
        units = ("main", "left", "leaf", "right")
        edges = (("left", "leaf"), ("main", "left"), ("main", "right"))
        region = tuple(p for p in self.PASSES if p.scope == UNIT_SCOPE)
        return _build_region_schedule(units, edges, region)

    def test_screen_tasks_are_dependence_free(self):
        sched = self._schedule()
        # region pass 0 = screen: per-unit syntax, no callee coupling
        deps = sched["deps"]
        for unit in ("main", "left", "leaf", "right"):
            assert deps[(0, unit)] == ()

    def test_summarize_waits_for_screen_and_callees_only(self):
        sched = self._schedule()
        # region pass 1 = summarize
        deps = sched["deps"]
        assert deps[(1, "leaf")] == ((0, "leaf"),)
        assert deps[(1, "right")] == ((0, "right"),)
        assert set(deps[(1, "left")]) == {(0, "left"), (1, "leaf")}
        assert set(deps[(1, "main")]) == {
            (0, "main"),
            (1, "left"),
            (1, "right"),
        }

    def test_decide_depends_on_own_screen_and_summary_only(self):
        sched = self._schedule()
        # region pass 2 = decide
        for unit in ("main", "left", "leaf", "right"):
            assert sched["deps"][(2, unit)] == ((0, unit), (1, unit))

    def test_waves_expose_parallelism(self):
        sched = self._schedule()
        wave = sched["wave"]
        # every screen fires immediately
        assert all(wave[(0, u)] == 0 for u in ("main", "left", "leaf", "right"))
        # leaf and right are independent roots: same summarize wave
        assert wave[(1, "leaf")] == wave[(1, "right")] == 1
        assert wave[(1, "left")] == 2
        assert wave[(1, "main")] == 3
        # decide rides one wave behind its summarize
        assert wave[(2, "right")] == 2

    def test_serial_task_order_is_pass_major_bottom_up(self):
        sched = self._schedule()
        tasks = sched["tasks"]
        summarize_units = [u for i, u in tasks if i == 1]
        # bottom-up: leaf before left before main
        assert summarize_units.index("leaf") < summarize_units.index("left")
        assert summarize_units.index("left") < summarize_units.index("main")
        # pass-major: all screen before any summarize before any decide
        assert tasks.index((1, "leaf")) > tasks.index((0, "main"))
        assert tasks.index((2, "leaf")) > tasks.index((1, "main"))

    def test_schedule_is_memoized(self):
        perf.reset_all_caches()
        from repro.pipeline.manager import _schedule_memo

        run_pipeline(parse_program(SRC), AnalysisOptions.predicated())
        misses = _schedule_memo.misses
        run_pipeline(parse_program(SRC), AnalysisOptions.predicated())
        assert _schedule_memo.misses == misses  # second run hits
        assert _schedule_memo.hits > 0


class TestParallelExecution:
    def test_parallel_respects_dependences(self):
        """Under many workers, every callee summary still lands before
        its caller's walk starts (run repeatedly to shake races)."""
        for _ in range(5):
            ctx = run_pipeline(
                parse_program(SRC), AnalysisOptions.predicated(), jobs=4
            )
            assert sorted(l.label for l in ctx.get("result").loops) == [
                "leaf:L1",
                "right:L1",
            ]

    def test_parallel_uses_worker_threads(self):
        # pin the thread executor: under REPRO_EXECUTOR=process the
        # schedule records proc-<pid> workers instead
        ctx = run_pipeline(
            parse_program(SRC),
            AnalysisOptions.predicated(),
            jobs=4,
            explain=True,
            executor="thread",
        )
        workers = {
            r["worker"]
            for r in ctx.explain["schedule"]
            if r.get("unit") is not None
        }
        assert any(w.startswith("pipeline") for w in workers)

    def test_pass_failure_propagates_deterministically(self):
        log = []

        class Boom(Pass):
            name = "boom"
            scope = UNIT_SCOPE
            inputs = ("engine",)
            outputs = ("junk",)

            def run(self, ctx, unit=None):
                if unit == "leaf":
                    raise RuntimeError("boom:leaf")
                log.append(unit)
                ctx.put("junk", unit, unit)

        passes = list(analysis_passes())[:2] + [Boom()]
        for jobs in (1, 4):
            with pytest.raises(RuntimeError, match="boom:leaf"):
                PassManager(passes).run(_ctx(), jobs=jobs)


class TestExplain:
    def test_explain_structure(self):
        ctx = run_pipeline(
            parse_program(SRC),
            AnalysisOptions.predicated(),
            jobs=2,
            goals=("transformed",),
            explain=True,
        )
        ex = ctx.explain
        assert ex["jobs"] == 2
        assert ex["units"] == ["main", "left", "leaf", "right"]
        assert ["left", "leaf"] in [
            sorted(e, reverse=True) for e in ex["callgraph"]
        ]
        names = [p["name"] for p in ex["passes"]]
        assert names == [
            "scalarprop",
            "frontend",
            "screen",
            "summarize",
            "decide",
            "enclose",
            "plan",
            "twoversion",
        ]
        assert all("seconds" in r for r in ex["schedule"] if not r.get("skipped"))
        assert ex["pass_seconds"].keys() == set(names)
        # first wave holds every unit's screen (all dependence-free)
        first_wave = {tuple(t) for t in ex["waves"][0]}
        assert ("screen", "leaf") in first_wave
        assert ("screen", "right") in first_wave
        # the independent subtree roots summarize in the next wave
        second_wave = {tuple(t) for t in ex["waves"][1]}
        assert ("summarize", "leaf") in second_wave
        assert ("summarize", "right") in second_wave

    def test_explain_off_by_default(self):
        ctx = run_pipeline(parse_program(SRC), AnalysisOptions.predicated())
        assert ctx.explain is None
