"""Tests for the worker fleet draining the job queue."""

import threading
import time
import warnings

from repro.service.queue import JobQueue
from repro.service.workers import WorkerFleet

SRC = (
    "program cli\n"
    "  integer n, k\n"
    "  real a(100)\n"
    "  read n, k\n"
    "  do i = 1, n\n"
    "    a(i + k) = a(i) + 1.0\n"
    "  enddo\n"
    "  print a(n)\n"
    "end\n"
)

INDEPENDENT = (
    "program ind\n"
    "  integer n\n"
    "  real a(100)\n"
    "  read n\n"
    "  do i = 1, n\n"
    "    a(i) = 2.0\n"
    "  enddo\n"
    "end\n"
)


class TestFleet:
    def test_drains_queue_and_records_receipts(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = [
            q.submit("analyze", {"id": i, "source": SRC}) for i in range(6)
        ]
        with WorkerFleet(q, workers=3):
            responses = [q.wait(i, timeout=60.0) for i in ids]
        assert all(r is not None and r["ok"] for r in responses)
        assert [r["id"] for r in responses] == list(range(6))
        for jid in ids:
            assert q.state(jid) == "done"
            assert q.receipt(jid) is not None

    def test_claim_limit_divides_depth_across_the_fleet(self, tmp_path):
        q = JobQueue(tmp_path)
        fleet = WorkerFleet(q, workers=4, claim_chunk_limit=8)
        # shallow queue: stay polite (one at a time)
        q.submit_batch("analyze", [{"source": INDEPENDENT}] * 3)
        assert fleet._claim_limit() == 1
        # deep backlog: chunk up to the cap, never the whole backlog
        q.submit_batch("analyze", [{"source": INDEPENDENT}] * 13)
        assert fleet._claim_limit() == 4  # 16 pending / 4 workers
        q.submit_batch("analyze", [{"source": INDEPENDENT}] * 64)
        assert fleet._claim_limit() == 8  # capped at claim_chunk_limit
        # limit <= 1 disables chunking entirely
        assert WorkerFleet(q, workers=4, claim_chunk_limit=1)._claim_limit() == 1

    def test_batch_submit_drains_with_chunked_claims(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = q.submit_batch(
            "analyze", [{"id": i, "source": INDEPENDENT} for i in range(10)]
        )
        with WorkerFleet(q, workers=2, claim_chunk_limit=4):
            responses = [q.wait(i, timeout=60.0) for i in ids]
        assert all(r is not None and r["ok"] for r in responses)
        assert [r["id"] for r in responses] == list(range(10))
        for jid in ids:  # chunked claims still receipt per job
            assert q.receipt(jid) is not None

    def test_failed_job_recorded_not_fatal(self, tmp_path):
        q = JobQueue(tmp_path)
        bad = q.submit("analyze", {"id": 0, "source": "not fortran"})
        good = q.submit("analyze", {"id": 1, "source": INDEPENDENT})
        with WorkerFleet(q, workers=1):
            bad_resp = q.wait(bad, timeout=60.0)
            good_resp = q.wait(good, timeout=60.0)
        assert not bad_resp["ok"] and "ParseError" in bad_resp["error"]
        assert q.state(bad) == "failed"
        assert good_resp["ok"]  # the worker survived the poisoned job

    def test_concurrent_budgets_do_not_cross_meter(self, tmp_path):
        """One tiny-budget job degrades; its unlimited neighbors don't.

        This is the thread-local budget contract: before it, a fleet
        thread's budget metered every other thread's work.
        """
        from repro import perf

        perf.reset_all_caches()  # make the FM budget bite
        q = JobQueue(tmp_path)
        tiny = q.submit(
            "analyze",
            {"id": 0, "source": SRC, "budget": {"max_fm_constraints": 1}},
        )
        frees = [
            q.submit("analyze", {"id": i, "source": SRC})
            for i in range(1, 4)
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with WorkerFleet(q, workers=4):
                tiny_resp = q.wait(tiny, timeout=60.0)
                free_resps = [q.wait(i, timeout=60.0) for i in frees]
        assert tiny_resp["ok"] and tiny_resp["degraded"]
        assert tiny_resp["loops"][0]["status"] == "serial"
        for resp in free_resps:
            assert resp["ok"] and not resp["degraded"]
            assert resp["loops"][0]["status"] == "runtime"
        # the degraded receipt says so; the others' receipts do not
        assert q.receipt(tiny)["degradation"]["degraded"]
        assert not any(
            q.receipt(i)["degradation"]["degraded"] for i in frees
        )

    def test_graceful_drain_finishes_running_jobs(self, tmp_path):
        q = JobQueue(tmp_path)
        running = q.submit("analyze", {"id": 0, "source": SRC})
        fleet = WorkerFleet(q, workers=1).start()
        # wait until the worker picked the job up
        deadline = time.monotonic() + 30.0
        while q.state(running) == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        fleet.request_drain()
        queued_late = q.submit("analyze", {"id": 1, "source": SRC})
        assert fleet.drain(timeout=60.0)
        # the in-flight job finished; the late one was never claimed
        assert q.state(running) in ("done", "failed")
        assert q.state(queued_late) == "queued"

    def test_stats_shape(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", {"id": 0, "source": INDEPENDENT})
        fleet = WorkerFleet(q, workers=2).start()
        q.wait(jid, timeout=60.0)
        fleet.drain(timeout=10.0)
        stats = fleet.stats()
        assert stats["workers"] == 2
        assert stats["completed"] == 1
        assert stats["busy"] == 0 and stats["running"] == []
        assert stats["draining"] is True
        assert 0.0 <= stats["utilization"] <= 1.0

    def test_two_fleets_share_one_queue_exactly_once(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = [
            q.submit("analyze", {"id": i, "source": INDEPENDENT})
            for i in range(8)
        ]
        a = WorkerFleet(q, workers=2).start()
        b = WorkerFleet(JobQueue(tmp_path, recover=False), workers=2).start()
        try:
            responses = [q.wait(i, timeout=60.0) for i in ids]
        finally:
            a.drain(timeout=10.0)
            b.drain(timeout=10.0)
        assert all(r is not None and r["ok"] for r in responses)
        # every job ran exactly once across both fleets
        total = a.stats()["completed"] + b.stats()["completed"]
        assert total == 8
