"""Tests for per-job provenance receipts."""

import json

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.service import receipts
from repro.service.jobs import execute_job
from repro.service.queue import Job

SRC = (
    "program main\n"
    "  integer n\n"
    "  real a(100)\n"
    "  read n\n"
    "  call init(a, n)\n"
    "  do i = 1, n\n"
    "    a(i) = a(i) + 1.0\n"
    "  enddo\n"
    "end\n"
    "subroutine init(x, m)\n"
    "  integer m\n"
    "  real x(100)\n"
    "  do i = 1, m\n"
    "    x(i) = 0.0\n"
    "  enddo\n"
    "end\n"
)


def _job(body, kind="analyze", jid="j00000001"):
    return Job(jid, kind, body, 0, 1, None)


def _execute(body, **kwargs):
    return execute_job(_job(body), **kwargs)


class TestInputsFingerprint:
    def test_unit_keys_cover_every_unit(self):
        program = parse_program(SRC)
        keys = receipts.program_unit_keys(program, AnalysisOptions.predicated())
        assert set(keys) == {"main", "init"}
        assert all(len(k) == 64 for k in keys.values())

    def test_editing_a_callee_dirties_the_caller(self):
        opts = AnalysisOptions.predicated()
        before = receipts.program_unit_keys(parse_program(SRC), opts)
        edited = SRC.replace("x(i) = 0.0", "x(i) = 1.0")
        after = receipts.program_unit_keys(parse_program(edited), opts)
        # the callee changed, and through key chaining so did its caller
        assert after["init"] != before["init"]
        assert after["main"] != before["main"]

    def test_options_change_every_key(self):
        program = parse_program(SRC)
        pred = receipts.program_unit_keys(program, AnalysisOptions.predicated())
        base = receipts.program_unit_keys(program, AnalysisOptions.base())
        assert all(pred[name] != base[name] for name in pred)

    def test_combined_hash_reproduces(self):
        inputs = receipts.analyze_inputs(
            parse_program(SRC), AnalysisOptions.predicated()
        )
        assert inputs["combined"] == receipts.combined_hash(inputs)


class TestReceiptContract:
    def test_validates_against_schema(self):
        resp, receipt = _execute({"id": 1, "source": SRC})
        assert resp["ok"]
        assert receipts.validate_receipt(receipt) == []
        assert receipt["job"] == {
            "id": "j00000001",
            "kind": "analyze",
            "priority": 0,
        }
        assert receipt["inputs"]["program"] == "main"
        assert receipt["result"]["state"] == "done"
        assert receipt["result"]["loops"] == len(resp["loops"])

    def test_knobs_record_every_switch(self):
        _, receipt = _execute({"source": SRC})
        knobs = receipt["knobs"]
        for switch in (
            "pred_oracle",
            "packed_kernel",
            "bytecode",
            "dep_screen",
            "pipeline",
            "cache",
        ):
            assert isinstance(knobs[switch], bool)
        assert knobs["options"] == "predicated"
        assert "predicates=True" in knobs["options_fingerprint"]
        assert knobs["executor"] in ("thread", "process")

    def test_budget_granted_recorded(self):
        _, receipt = _execute(
            {"source": SRC, "budget": {"max_fm_constraints": 10**9}}
        )
        assert receipt["budgets"]["granted"] == {
            "max_wall_s": None,
            "max_ops": None,
            "max_fm_constraints": 10**9,
        }
        assert receipt["degradation"] == {"degraded": False, "trips": {}}

    def test_degradation_recorded_on_budget_trip(self):
        import warnings

        from repro import perf

        perf.reset_all_caches()  # make the FM budget bite
        fm_heavy = (
            "program cli\n"
            "  integer n, k\n"
            "  real a(100)\n"
            "  read n, k\n"
            "  do i = 1, n\n"
            "    a(i + k) = a(i) + 1.0\n"
            "  enddo\n"
            "  print a(n)\n"
            "end\n"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resp, receipt = _execute(
                {"source": fm_heavy, "budget": {"max_fm_constraints": 1}}
            )
        assert resp["ok"] and resp["degraded"]
        assert receipt["degradation"]["degraded"]
        assert receipt["degradation"]["trips"].get("fm", 0) >= 1
        assert receipts.validate_receipt(receipt) == []

    def test_failed_job_still_gets_a_receipt(self):
        resp, receipt = _execute({"id": 9, "source": "not fortran"})
        assert not resp["ok"]
        assert receipts.validate_receipt(receipt) == []
        assert receipt["result"]["state"] == "failed"
        assert "ParseError" in receipt["result"]["error"]
        assert receipt["inputs"]["unit_keys"] == {}

    def test_experiment_receipt(self):
        resp, receipt = execute_job(
            _job({"id": 2, "which": "fig1"}, kind="experiment")
        )
        assert resp["ok"] and "output" in resp
        assert receipts.validate_receipt(receipt) == []
        assert receipt["inputs"]["which"] == "fig1"

    def test_corrupt_combined_hash_detected(self):
        _, receipt = _execute({"source": SRC})
        receipt["inputs"]["unit_keys"]["main"] = "0" * 64
        problems = receipts.validate_receipt(receipt)
        assert any("reproduce" in p for p in problems)


class TestByteStability:
    def test_stable_modulo_timings(self):
        """Two runs of the same job + knobs: identical stable bytes."""
        a_resp, a = _execute({"id": 5, "source": SRC})
        b_resp, b = _execute({"id": 5, "source": SRC})
        assert a_resp == b_resp
        assert a["timings"] != {} and b["timings"] != {}
        stable_a = receipts.receipt_bytes(receipts.stable_part(a))
        stable_b = receipts.receipt_bytes(receipts.stable_part(b))
        assert stable_a == stable_b

    def test_canonical_encoding_roundtrips(self):
        _, receipt = _execute({"source": SRC})
        raw = receipts.receipt_bytes(receipt)
        assert raw.endswith(b"\n")
        parsed = json.loads(raw)
        assert receipts.validate_receipt(parsed) == []
        assert receipts.receipt_bytes(parsed) == raw
