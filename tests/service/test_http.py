"""Tests for the HTTP front door."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.http import ServiceServer, parse_addr, service_stats
from repro.service.queue import JobQueue
from repro.service.workers import WorkerFleet

SRC = (
    "program ind\n"
    "  integer n\n"
    "  real a(100)\n"
    "  read n\n"
    "  do i = 1, n\n"
    "    a(i) = 2.0\n"
    "  enddoen\n"
    "end\n"
).replace("enddoen", "enddo")


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port, with a 2-worker fleet."""
    queue = JobQueue(tmp_path / "q", capacity=8)
    fleet = WorkerFleet(queue, workers=2).start()
    server = ServiceServer(("127.0.0.1", 0), queue, fleet)
    t = threading.Thread(target=server.serve_forever, daemon=True)
    t.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, queue, fleet, server
    finally:
        server.shutdown()
        server.server_close()
        fleet.drain(timeout=30.0)


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read()), dict(e.headers)


def _post(base, path, body, raw=None):
    data = raw if raw is not None else json.dumps(body).encode()
    req = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read()), dict(e.headers)


def _wait_done(base, jid, tries=600):
    import time

    for _ in range(tries):
        _, payload, _ = _get(base, f"/v1/jobs/{jid}")
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {jid} never finished")


class TestEndpoints:
    def test_healthz(self, service):
        base, *_ = service
        code, payload, _ = _get(base, "/v1/healthz")
        assert code == 200
        assert payload == {"ok": True, "draining": False}

    def test_job_lifecycle(self, service):
        base, queue, _, _ = service
        code, sub, _ = _post(
            base, "/v1/jobs", {"kind": "analyze", "id": 1, "source": SRC}
        )
        assert code == 202 and sub["ok"] and sub["state"] == "queued"
        payload = _wait_done(base, sub["id"])
        assert payload["state"] == "done"
        resp = payload["response"]
        assert resp["ok"] and resp["id"] == 1
        assert resp["loops"][0]["status"] == "parallel"

    def test_kind_defaults_to_analyze(self, service):
        base, *_ = service
        code, sub, _ = _post(base, "/v1/jobs", {"id": 2, "source": SRC})
        assert code == 202
        assert _wait_done(base, sub["id"])["response"]["ok"]

    def test_receipt_endpoint(self, service):
        base, *_ = service
        _, sub, _ = _post(base, "/v1/jobs", {"id": 3, "source": SRC})
        _wait_done(base, sub["id"])
        code, receipt, _ = _get(base, f"/v1/jobs/{sub['id']}/receipt")
        assert code == 200
        from repro.service.receipts import validate_receipt

        assert validate_receipt(receipt) == []
        assert receipt["job"]["id"] == sub["id"]

    def test_stats(self, service):
        base, *_ = service
        _, sub, _ = _post(base, "/v1/jobs", {"id": 4, "source": SRC})
        _wait_done(base, sub["id"])
        code, stats, _ = _get(base, "/v1/stats")
        assert code == 200
        assert stats["queue"]["done"] >= 1
        assert stats["fleet"]["workers"] == 2
        assert stats["counters"]["job.analyze"] >= 1
        assert stats["counters"]["queue.submitted"] >= 1
        assert "caches" in stats

    def test_batch_lifecycle(self, service):
        base, queue, _, _ = service
        code, sub, _ = _post(
            base,
            "/v1/batch",
            {
                "kind": "analyze",
                "jobs": [{"id": i, "source": SRC} for i in range(3)],
            },
        )
        assert code == 202 and sub["ok"] and sub["state"] == "queued"
        assert len(sub["ids"]) == 3
        for i, jid in enumerate(sub["ids"]):
            payload = _wait_done(base, jid)
            assert payload["state"] == "done"
            assert payload["response"]["id"] == i  # input order preserved
            # per-job receipts survive the batch path
            code, receipt, _ = _get(base, f"/v1/jobs/{jid}/receipt")
            assert code == 200 and receipt["job"]["id"] == jid

    def test_unknown_budget_key_fails_the_job(self, service):
        """The strict-budget contract travels the whole HTTP path."""
        base, *_ = service
        _, sub, _ = _post(
            base,
            "/v1/jobs",
            {"id": 5, "source": SRC, "budget": {"max_walls": 1.0}},
        )
        payload = _wait_done(base, sub["id"])
        assert payload["state"] == "failed"
        assert "max_walls" in payload["response"]["error"]


class TestErrors:
    def test_unknown_job_404(self, service):
        base, *_ = service
        code, payload, _ = _get(base, "/v1/jobs/j99999999")
        assert code == 404 and not payload["ok"]

    def test_receipt_before_done_404(self, service):
        base, queue, _, _ = service
        # submitted but never claimed (a job the fleet lost the race to
        # would be racy; use an id that exists only as queued)
        jid = queue.submit("analyze", {"id": 0, "source": "program p\nend\n"})
        code, payload, _ = _get(base, f"/v1/jobs/{jid}/receipt")
        if code == 200:  # fleet may have finished it already
            return
        assert code == 404 and payload["state"] in ("queued", "running")

    def test_bad_json_400(self, service):
        base, *_ = service
        code, payload, _ = _post(base, "/v1/jobs", None, raw=b"{nope")
        assert code == 400 and "bad JSON" in payload["error"]

    def test_non_object_400(self, service):
        base, *_ = service
        code, payload, _ = _post(base, "/v1/jobs", [1, 2])
        assert code == 400 and "object" in payload["error"]

    def test_unknown_kind_400(self, service):
        base, *_ = service
        code, payload, _ = _post(base, "/v1/jobs", {"kind": "bogus"})
        assert code == 400 and "bogus" in payload["error"]

    def test_unknown_path_404(self, service):
        base, *_ = service
        assert _get(base, "/v1/nope")[0] == 404
        assert _post(base, "/v1/nope", {})[0] == 404

    def test_batch_validation_400(self, service):
        base, *_ = service
        code, payload, _ = _post(base, "/v1/batch", {"kind": "analyze"})
        assert code == 400 and "jobs" in payload["error"]
        code, payload, _ = _post(base, "/v1/batch", {"jobs": []})
        assert code == 400 and "jobs" in payload["error"]
        code, payload, _ = _post(base, "/v1/batch", {"jobs": [1, 2]})
        assert code == 400 and "object" in payload["error"]
        code, payload, _ = _post(
            base, "/v1/batch", {"kind": "bogus", "jobs": [{}]}
        )
        assert code == 400 and "bogus" in payload["error"]


class TestBackpressure:
    def test_429_with_retry_after_when_full(self, tmp_path):
        # no fleet: nothing drains the queue, so capacity 1 fills at once
        queue = JobQueue(tmp_path / "q", capacity=1)
        server = ServiceServer(("127.0.0.1", 0), queue, None)
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, _, _ = _post(base, "/v1/jobs", {"id": 0, "source": SRC})
            assert code == 202
            code, payload, headers = _post(
                base, "/v1/jobs", {"id": 1, "source": SRC}
            )
            assert code == 429
            assert not payload["ok"]
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            server.server_close()

    def test_batch_429_is_all_or_nothing(self, tmp_path):
        queue = JobQueue(tmp_path / "q", capacity=2)
        server = ServiceServer(("127.0.0.1", 0), queue, None)
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, payload, headers = _post(
                base,
                "/v1/batch",
                {"jobs": [{"id": i, "source": SRC} for i in range(3)]},
            )
            assert code == 429 and not payload["ok"]
            assert int(headers["Retry-After"]) >= 1
            assert queue.depth() == 0  # nothing half-admitted
            code, payload, _ = _post(
                base,
                "/v1/batch",
                {"jobs": [{"id": i, "source": SRC} for i in range(2)]},
            )
            assert code == 202 and len(payload["ids"]) == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_draining_healthz_and_503(self, tmp_path):
        queue = JobQueue(tmp_path / "q", capacity=4)
        server = ServiceServer(("127.0.0.1", 0), queue, None)
        server.draining = True
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            code, health, _ = _get(base, "/v1/healthz")
            assert code == 200 and health["draining"]
            code, _, headers = _post(base, "/v1/jobs", {"source": SRC})
            assert code == 503 and "Retry-After" in headers
        finally:
            server.shutdown()
            server.server_close()


class TestHelpers:
    def test_parse_addr(self):
        assert parse_addr(":8080") == ("127.0.0.1", 8080)
        assert parse_addr("8080") == ("127.0.0.1", 8080)
        assert parse_addr("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(ValueError):
            parse_addr("nope")

    def test_service_stats_without_fleet(self, tmp_path):
        stats = service_stats(JobQueue(tmp_path), None)
        assert stats["fleet"] is None
        assert stats["queue"]["queued"] == 0
