"""Tests for the content-addressed procedure-summary cache.

The heavyweight test here is the cross-process one: analyze a
multi-procedure program through the CLI, mutate one procedure, and
re-analyze — only the dirty subtree of the call graph (the edited
procedure and its transitive callers) recomputes, the rest is served
from disk, and the reports are byte-identical modulo the timing line.
"""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.service.cache import (
    SummaryCache,
    options_fingerprint,
    program_key,
    unit_key,
)

SRC = """program main
  integer n
  real a(100), b(100)
  read n
  call initone(a, n)
  call inittwo(b, n)
  do i = 1, n
    a(i) = a(i) + b(i)
  enddo
  print a(n)
end

subroutine initone(x, m)
  integer m
  real x(100)
  do i = 1, m
    x(i) = 0.0
  enddo
end

subroutine inittwo(y, m)
  integer m
  real y(100)
  do i = 1, m
    y(i) = 1.0
  enddo
end
"""

#: the same program with only ``inittwo`` edited
SRC_EDITED = SRC.replace("y(i) = 1.0", "y(i) = 2.0")


class TestKeys:
    def test_unit_key_deterministic(self):
        opts = AnalysisOptions.predicated()
        k1 = unit_key("src", [("f", "abc")], opts)
        k2 = unit_key("src", [("f", "abc")], opts)
        assert k1 == k2

    def test_unit_key_sensitive_to_everything(self):
        opts = AnalysisOptions.predicated()
        base = unit_key("src", [("f", "abc")], opts)
        assert unit_key("src2", [("f", "abc")], opts) != base
        assert unit_key("src", [("f", "xyz")], opts) != base
        assert unit_key("src", [("g", "abc")], opts) != base
        assert unit_key("src", [], opts) != base
        assert unit_key("src", [("f", "abc")], AnalysisOptions.base()) != base

    def test_callee_order_irrelevant(self):
        opts = AnalysisOptions.predicated()
        pairs = [("f", "1"), ("g", "2")]
        assert unit_key("s", pairs, opts) == unit_key("s", pairs[::-1], opts)

    def test_options_fingerprint_distinguishes_configs(self):
        fps = {
            options_fingerprint(o)
            for o in (
                AnalysisOptions.base(),
                AnalysisOptions.predicated(),
                AnalysisOptions.predicated().without(embedding=False),
            )
        }
        assert len(fps) == 3

    def test_program_key_sensitive_to_any_unit(self):
        opts = AnalysisOptions.predicated()
        assert program_key(parse_program(SRC), opts) != program_key(
            parse_program(SRC_EDITED), opts
        )
        assert program_key(parse_program(SRC), opts) == program_key(
            parse_program(SRC), opts
        )


class TestStore:
    def test_roundtrip(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        cache.store("ab" + "0" * 62, "summary", {"x": 1})
        assert cache.load("ab" + "0" * 62, "summary") == {"x": 1}
        assert cache.entry_count() == 1

    def test_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        assert cache.load("cd" + "0" * 62, "summary") is None

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        key = "ef" + "0" * 62
        cache.store(key, "summary", [1, 2, 3])
        path = cache._path(key, "summary")
        path.write_bytes(b"not a pickle")
        assert cache.load(key, "summary") is None
        assert not path.exists()

    def test_distinct_kinds_coexist(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        key = "01" + "0" * 62
        cache.store(key, "summary", "s")
        cache.store(key, "decisions", "d")
        assert cache.load(key, "summary") == "s"
        assert cache.load(key, "decisions") == "d"


class TestWarmRun:
    def test_warm_results_match_cold(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        cold = analyze_program(parse_program(SRC), cache=cache)
        warm = analyze_program(parse_program(SRC), cache=cache)
        nocache = analyze_program(parse_program(SRC))
        for a in (warm, nocache):
            assert [
                (l.label, l.status, str(l.condition), l.reason) for l in a.loops
            ] == [
                (l.label, l.status, str(l.condition), l.reason)
                for l in cold.loops
            ]

    def test_warm_run_skips_reanalysis(self, tmp_path):
        from repro import perf

        cache = SummaryCache(tmp_path / "c")
        analyze_program(parse_program(SRC), cache=cache)
        base = perf.counter("cache.program_hit")
        analyze_program(parse_program(SRC), cache=cache)
        assert perf.counter("cache.program_hit") == base + 1


def _run_analyze(tmp_path, source_name, cache_dir):
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(repo_src)
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "analyze",
            str(tmp_path / source_name),
            "--cache",
            str(cache_dir),
            "--profile",
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    text = proc.stdout
    split = text.index("{\n")
    report = re.sub(r"analysis: \S+ ms", "analysis: - ms", text[:split])
    counters = json.loads(text[split:])["counters"]
    return report, {
        k: v for k, v in counters.items() if k.startswith("cache.")
    }


@pytest.mark.slow
class TestCrossProcess:
    def test_dirty_subtree_only(self, tmp_path):
        """Mutate one procedure: its callers recompute, the rest hits."""
        cache_dir = tmp_path / "cache"
        (tmp_path / "v.f").write_text(SRC)

        cold_report, cold = _run_analyze(tmp_path, "v.f", cache_dir)
        warm_report, warm = _run_analyze(tmp_path, "v.f", cache_dir)

        # warm process: one program-level hit, nothing recomputed
        assert warm["cache.program_hit"] == 1
        assert warm["cache.summary_miss"] == 0
        assert warm["cache.store"] == 0
        assert warm_report == cold_report

        # edit inittwo only: initone's summary + decisions are reused and
        # inittwo (the dirty subtree) recomputes.  main is caller-free
        # and fully covered by the tier-0 screen, so its summarization
        # is skipped outright — no summary lookup happens for it at all
        # (unless the subprocess inherits REPRO_DEP_SCREEN=0, in which
        # case main misses too).
        raw = os.environ.get("REPRO_DEP_SCREEN", "1").strip().lower()
        screened = raw not in ("0", "off", "false", "no")
        (tmp_path / "v.f").write_text(SRC_EDITED)
        edited_report, edited = _run_analyze(tmp_path, "v.f", cache_dir)
        assert edited["cache.program_hit"] == 0
        assert edited["cache.summary_hit"] == 1  # initone
        assert edited["cache.summary_miss"] == (1 if screened else 2)
        assert edited["cache.decisions_hit"] == 1

        # and the second run of the edited program is fully warm again,
        # byte-identical to the first
        rewarm_report, rewarm = _run_analyze(tmp_path, "v.f", cache_dir)
        assert rewarm["cache.program_hit"] == 1
        assert rewarm["cache.summary_miss"] == 0
        assert rewarm_report == edited_report
