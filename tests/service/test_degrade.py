"""Fault injection: budget exhaustion mid-analysis degrades soundly.

The invariant under test is the one the experiment tables rely on:
whatever the budget does, a decision may only move *toward* "not proven
parallel" — never from serial to parallel — so a degraded answer stays
consistent with the ELPD dynamic oracle (a loop run serially is always
safe), and the pipeline never surfaces the exhaustion as an exception.
"""

import warnings

import pytest

from repro import perf
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.service import Budget, budget_scope
from repro.service.cache import SummaryCache
from repro.suites.registry import all_programs

WIN = ("parallel", "parallel_private", "runtime")


def _statuses(result):
    return {l.label: l.status for l in result.loops}


def _degraded_analysis(program, budget, cache=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with budget_scope(budget):
            return analyze_program(program, cache=cache)


class TestFmExhaustion:
    def test_whole_suite_never_raises_and_only_demotes(self):
        perf.reset_all_caches()  # force real FM work so the budget bites
        before = perf.counter("budget.degraded_unit") + perf.counter(
            "budget.degraded_loop"
        )
        degraded = {}
        for bench in all_programs():
            result = _degraded_analysis(
                bench.fresh_program(), Budget(max_fm_constraints=50)
            )
            degraded[bench.name] = _statuses(result)
        after = perf.counter("budget.degraded_unit") + perf.counter(
            "budget.degraded_loop"
        )
        assert after > before, "budget never tripped — test is vacuous"

        for bench in all_programs():
            precise = _statuses(analyze_program(bench.fresh_program()))
            got = degraded[bench.name]
            assert got.keys() == precise.keys()
            for label, status in precise.items():
                if got[label] == status:
                    continue
                # a flip must demote a decided loop to serial; candidacy
                # is syntactic and must never shift
                assert got[label] == "serial", (label, status, got[label])
                assert status != "not_candidate"

    def test_degraded_unit_counter(self):
        perf.reset_all_caches()
        bench = all_programs()[0]
        base = perf.counter("budget.degraded_unit")
        result = _degraded_analysis(
            bench.fresh_program(), Budget(max_fm_constraints=1)
        )
        assert perf.counter("budget.degraded_unit") > base
        precise = _statuses(analyze_program(bench.fresh_program()))
        for label, status in _statuses(result).items():
            if status != precise[label]:
                assert status == "serial"

    def test_degraded_results_never_cached(self, tmp_path):
        perf.reset_all_caches()
        cache = SummaryCache(tmp_path / "c")
        bench = all_programs()[0]
        _degraded_analysis(
            bench.fresh_program(), Budget(max_fm_constraints=1), cache=cache
        )
        # the budget-independent screen rows may be stored; the degraded
        # analysis artifacts (summaries, decisions) must not be
        def degradable():
            return [
                p
                for p in cache.root.glob("*/*.pkl")
                if not p.name.endswith(".screen.pkl")
            ]

        assert degradable() == []

        # ... so a later unbudgeted run computes (and caches) the
        # precise result rather than resurrecting a degraded one
        precise = analyze_program(bench.fresh_program(), cache=cache)
        assert degradable()
        assert _statuses(precise) == _statuses(
            analyze_program(bench.fresh_program())
        )


class TestWallAndOps:
    def test_zero_ops_budget_degrades(self):
        perf.reset_all_caches()
        bench = all_programs()[0]
        base = perf.counter("budget.degraded_unit")
        result = _degraded_analysis(bench.fresh_program(), Budget(max_ops=0))
        assert perf.counter("budget.degraded_unit") > base
        precise = _statuses(analyze_program(bench.fresh_program()))
        for label, status in _statuses(result).items():
            if status != precise[label]:
                assert status == "serial"

    def test_unlimited_budget_is_transparent(self):
        bench = all_programs()[0]
        with budget_scope(Budget.unlimited()):
            a = _statuses(analyze_program(bench.fresh_program()))
        b = _statuses(analyze_program(bench.fresh_program()))
        assert a == b


class TestConservativeSummary:
    def test_fallback_shape(self):
        from repro.arraydf.options import AnalysisOptions
        from repro.ir.symboltable import SymbolTable
        from repro.service.degrade import conservative_unit_summary

        program = parse_program(
            "program p\n"
            "  integer n\n"
            "  real a(10)\n"
            "  read n\n"
            "  do i = 1, n\n"
            "    a(i) = 0.0\n"
            "  enddo\n"
            "end\n"
        )
        unit = program.units["p"]
        summary = conservative_unit_summary(
            unit, SymbolTable(unit), AnalysisOptions.predicated()
        )
        assert len(summary.loops) == 1
        (loop_summary,) = summary.loops.values()
        # whole-array may read/write, nothing definitely written
        assert "a" in loop_summary.body_value.r.arrays()
        assert "a" in loop_summary.body_value.w.arrays()
        assert loop_summary.body_value.must_default().is_empty()
        assert "i" in loop_summary.body_value.scalar_writes
