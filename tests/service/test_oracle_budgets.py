"""Oracle memoization under per-request budgets.

Contract (mirrors the PR 2 summary-cache contract): a budget trip aborts
the query *before* any memo store, so a degraded (budget-interrupted)
answer can never be served from cache later — while genuine memo hits
stay free even under an exhausted budget.
"""

import pytest

from repro import perf
from repro.predicates import oracle
from repro.predicates.atoms import LinAtom
from repro.predicates.formula import p_and, p_atom
from repro.service.budgets import Budget, BudgetExceeded, budget_scope
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
X = AffineExpr.var("x")
Y = AffineExpr.var("y")


@pytest.fixture(autouse=True)
def _fresh_oracle():
    perf.set_pred_oracle(True)
    perf.reset_all_caches()
    yield
    perf.set_pred_oracle(None)
    perf.reset_all_caches()


def _fm_pred():
    """Two-variable contradiction: the interval tier cannot settle it,
    so the query must reach the (budgeted) Fourier–Motzkin kernel.
    (Not a structural complement, so ``p_and`` does not fold it.)"""
    return p_and(
        p_atom(LinAtom.le(X - Y, C(0))),
        p_atom(LinAtom.le(Y - X, C(-2))),
    )


def test_budget_trip_leaves_no_memo_entry():
    p = _fm_pred()
    with pytest.raises(BudgetExceeded):
        with budget_scope(Budget(max_ops=0)):
            oracle.is_unsat(p)
    assert p not in oracle._UNSAT.data
    assert all(p not in conj for conj in oracle._CONJUNCT.data)


def test_implies_trip_leaves_no_memo_entry():
    p = _fm_pred()
    q = p_atom(LinAtom.le(X, C(0)))
    with pytest.raises(BudgetExceeded):
        with budget_scope(Budget(max_ops=0)):
            oracle.implies(p, q)
    assert (p, q) not in oracle._IMPLIES.data


def test_unbudgeted_query_computes_and_caches():
    p = _fm_pred()
    assert oracle.is_unsat(p)
    assert oracle._UNSAT.data[p] is True


def test_memo_hit_is_free_under_exhausted_budget():
    p = _fm_pred()
    assert oracle.is_unsat(p)  # warm the memo, unbudgeted
    with budget_scope(Budget(max_ops=0)):
        assert oracle.is_unsat(p)  # pure hit: no kernel work, no trip


def test_recompute_after_trip_yields_correct_answer():
    """A tripped query leaves the oracle able to answer correctly once
    resources allow."""
    p = _fm_pred()
    with pytest.raises(BudgetExceeded):
        with budget_scope(Budget(max_ops=0)):
            oracle.is_unsat(p)
    assert oracle.is_unsat(p) is True
    assert oracle.is_unsat(p) == oracle.ground_is_unsat(p)
