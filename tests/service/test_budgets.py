"""Unit tests for the per-request resource budgets."""

import time

import pytest

from repro import perf
from repro.service.budgets import (
    Budget,
    BudgetExceeded,
    active_budget,
    budget_scope,
    charge_fm,
    checkpoint,
    suspended,
)


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().is_unlimited
        assert Budget.unlimited().is_unlimited

    def test_from_dict(self):
        b = Budget.from_dict({"max_wall_s": 1.5, "max_fm_constraints": 10})
        assert b.max_wall_s == 1.5
        assert b.max_fm_constraints == 10
        assert b.max_ops is None
        assert not b.is_unlimited

    def test_from_dict_empty(self):
        assert Budget.from_dict(None).is_unlimited
        assert Budget.from_dict({}).is_unlimited

    def test_from_dict_rejects_unknown_keys(self):
        """Regression: a typo'd key used to be silently ignored, leaving
        the request unlimited while the client believed a budget held."""
        import pytest

        with pytest.raises(ValueError, match="'max_walls'"):
            Budget.from_dict({"max_walls": 1.5})
        with pytest.raises(ValueError, match="'junk'"):
            Budget.from_dict({"max_ops": 10, "junk": 3})
        # the error names every bad key and the allowed ones
        with pytest.raises(ValueError, match="max_fm_constraints"):
            Budget.from_dict({"a": 1, "b": 2})


class TestScope:
    def test_no_budget_is_noop(self):
        assert active_budget() is None
        checkpoint()  # must not raise
        charge_fm(10**9)  # must not raise
        with budget_scope(None):
            assert active_budget() is None
        with budget_scope(Budget.unlimited()):
            assert active_budget() is None

    def test_scope_restores_previous(self):
        outer = Budget(max_fm_constraints=100)
        inner = Budget(max_fm_constraints=5)
        with budget_scope(outer) as a:
            assert active_budget() is a
            with budget_scope(inner) as b:
                assert active_budget() is b
            assert active_budget() is a
        assert active_budget() is None

    def test_scope_restored_after_trip(self):
        with pytest.raises(BudgetExceeded):
            with budget_scope(Budget(max_fm_constraints=1)):
                charge_fm(2)
        assert active_budget() is None

    def test_suspended(self):
        with budget_scope(Budget(max_fm_constraints=1)):
            with suspended():
                charge_fm(100)  # enforcement off
            with pytest.raises(BudgetExceeded):
                charge_fm(100)


class TestTrips:
    def test_fm_budget_trips(self):
        with budget_scope(Budget(max_fm_constraints=10)) as active:
            charge_fm(6)
            charge_fm(4)  # exactly at the limit: fine
            with pytest.raises(BudgetExceeded) as exc:
                charge_fm(1)
            assert exc.value.kind == "fm"
            assert active.degraded

    def test_wall_budget_trips(self):
        with budget_scope(Budget(max_wall_s=0.005)):
            time.sleep(0.02)
            with pytest.raises(BudgetExceeded) as exc:
                checkpoint()
            assert exc.value.kind == "wall"

    def test_ops_budget_trips(self):
        with budget_scope(Budget(max_ops=0)):
            perf.bump("fm.eliminate", 5)  # an op counter
            with pytest.raises(BudgetExceeded) as exc:
                checkpoint()
            assert exc.value.kind == "ops"

    def test_keeps_raising_while_exhausted(self):
        with budget_scope(Budget(max_fm_constraints=1)):
            with pytest.raises(BudgetExceeded):
                charge_fm(5)
            with pytest.raises(BudgetExceeded):
                charge_fm(0)  # fm spend is cumulative; still over

    def test_trip_counter_bumped_once(self):
        base = perf.counter("budget.trip.fm")
        with budget_scope(Budget(max_fm_constraints=1)):
            for _ in range(3):
                with pytest.raises(BudgetExceeded):
                    charge_fm(5)
        assert perf.counter("budget.trip.fm") == base + 1
