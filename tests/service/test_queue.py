"""Unit tests for the persistent on-disk job queue."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro import perf
from repro.service.queue import JobQueue, QueueFull

BODY = {"id": 1, "source": "program p\nend\n"}


class TestSubmit:
    def test_ids_are_deterministic_fifo(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = [q.submit("analyze", BODY) for _ in range(3)]
        assert ids == ["j00000001", "j00000002", "j00000003"]
        assert all(q.state(i) == "queued" for i in ids)
        assert q.depth() == 3

    def test_unknown_kind_rejected(self, tmp_path):
        q = JobQueue(tmp_path)
        with pytest.raises(ValueError, match="bogus"):
            q.submit("bogus", BODY)
        assert q.depth() == 0

    def test_bounded_capacity(self, tmp_path):
        q = JobQueue(tmp_path, capacity=2)
        base = perf.counter("queue.rejected")
        q.submit("analyze", BODY)
        q.submit("analyze", BODY)
        with pytest.raises(QueueFull) as exc:
            q.submit("analyze", BODY)
        assert exc.value.retry_after > 0
        assert perf.counter("queue.rejected") == base + 1
        # claiming frees capacity: pending, not running, is bounded
        q.claim()
        q.submit("analyze", BODY)

    def test_journal_records_lifecycle(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        q.claim(owner="w0")
        q.finish(jid, {"id": 1, "ok": True}, None)
        events = [e["ev"] for e in q.journal_events(jid)]
        assert events == ["submit", "claim", "done"]


class _CountingJournal:
    """Wraps the queue's raw journal file to count write() calls."""

    def __init__(self, f):
        self._f = f
        self.writes = 0

    def write(self, payload):
        self.writes += 1
        return self._f.write(payload)

    def tell(self):
        return self._f.tell()

    @property
    def closed(self):
        return self._f.closed


class TestSubmitBatch:
    def test_ids_ordered_and_claimable_fifo(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = q.submit_batch("analyze", [BODY] * 3)
        assert ids == ["j00000001", "j00000002", "j00000003"]
        assert all(q.state(i) == "queued" for i in ids)
        assert [q.claim().id for _ in range(3)] == ids

    def test_empty_batch_is_a_noop(self, tmp_path):
        q = JobQueue(tmp_path)
        assert q.submit_batch("analyze", []) == []
        assert q.depth() == 0

    def test_unknown_kind_rejected(self, tmp_path):
        q = JobQueue(tmp_path)
        with pytest.raises(ValueError, match="bogus"):
            q.submit_batch("bogus", [BODY])

    def test_one_journal_write_per_batch(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit("analyze", BODY)  # opens the journal handle
        spy = q._journal_file = _CountingJournal(q._journal_file)
        base = perf.counter("queue.batches")
        q.submit_batch("analyze", [BODY] * 5)
        assert spy.writes == 1  # five events, one write/flush
        assert perf.counter("queue.batches") == base + 1
        # per-job provenance preserved: every job has its own line
        submits = [e for e in q.journal_events() if e["ev"] == "submit"]
        assert len(submits) == 6

    def test_admission_is_all_or_nothing(self, tmp_path):
        q = JobQueue(tmp_path, capacity=4)
        q.submit("analyze", BODY)
        base = perf.counter("queue.rejected")
        with pytest.raises(QueueFull):
            q.submit_batch("analyze", [BODY] * 4)  # 1 + 4 > 4
        assert perf.counter("queue.rejected") == base + 1
        assert q.depth() == 1  # nothing half-admitted
        # a batch that fits exactly is admitted
        assert len(q.submit_batch("analyze", [BODY] * 3)) == 3

    def test_interleaves_with_single_submits(self, tmp_path):
        q = JobQueue(tmp_path)
        first = q.submit("analyze", BODY)
        batch = q.submit_batch("analyze", [BODY] * 2, priority=5)
        order = [q.claim().id for _ in range(3)]
        assert order == batch + [first]  # priority, then FIFO


class TestClaimChunk:
    def test_respects_limit_and_order(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = q.submit_batch("analyze", [BODY] * 5)
        first = q.claim_chunk(owner="w0", limit=2)
        assert [j.id for j in first] == ids[:2]
        rest = q.claim_chunk(owner="w1", limit=99)
        assert [j.id for j in rest] == ids[2:]
        assert q.claim_chunk(owner="w2", limit=2) == []

    def test_chunk_claims_are_exclusive_across_threads(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit_batch("analyze", [BODY] * 12)
        got, lock = [], threading.Lock()

        def worker():
            while True:
                jobs = q.claim_chunk(owner="t", limit=3)
                if not jobs:
                    return
                with lock:
                    got.extend(j.id for j in jobs)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 12
        assert len(set(got)) == 12  # exactly-once survives chunking

    def test_chunk_journal_is_one_write(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit_batch("analyze", [BODY] * 4)
        spy = q._journal_file = _CountingJournal(q._journal_file)
        jobs = q.claim_chunk(owner="w0", limit=4)
        assert len(jobs) == 4
        assert spy.writes == 1
        claims = [e for e in q.journal_events() if e["ev"] == "claim"]
        assert [e["id"] for e in claims] == [j.id for j in jobs]
        assert all(e["owner"] == "w0" for e in claims)


class TestClaim:
    def test_fifo_within_priority(self, tmp_path):
        q = JobQueue(tmp_path)
        low = q.submit("analyze", BODY, priority=0)
        high1 = q.submit("analyze", BODY, priority=5)
        high2 = q.submit("analyze", BODY, priority=5)
        order = [q.claim().id for _ in range(3)]
        assert order == [high1, high2, low]

    def test_claim_is_exclusive(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        assert q.claim().id == jid
        assert q.claim() is None
        assert q.state(jid) == "running"

    def test_concurrent_claims_get_distinct_jobs(self, tmp_path):
        q = JobQueue(tmp_path)
        for _ in range(8):
            q.submit("analyze", BODY)
        got, lock = [], threading.Lock()

        def worker():
            while True:
                job = q.claim()
                if job is None:
                    return
                with lock:
                    got.append(job.id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 8
        assert len(set(got)) == 8  # exactly-once: no duplicate claims

    def test_two_queue_objects_share_one_directory(self, tmp_path):
        a = JobQueue(tmp_path)
        b = JobQueue(tmp_path)
        jid = a.submit("analyze", BODY)
        assert b.claim().id == jid
        assert a.claim() is None
        b.finish(jid, {"ok": True}, None)
        assert a.state(jid) == "done"


class TestFinish:
    def test_response_roundtrip(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        q.claim()
        resp = {"id": 1, "ok": True, "loops": []}
        q.finish(jid, resp, None)
        assert q.state(jid) == "done"
        assert q.response(jid) == resp

    def test_failed_state(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        q.claim()
        q.finish(jid, {"id": 1, "ok": False, "error": "x"}, None)
        assert q.state(jid) == "failed"

    def test_wait_blocks_until_done(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        assert q.wait(jid, timeout=0.05) is None  # not finished yet

        def finisher():
            job = q.claim()
            q.finish(job.id, {"ok": True}, None)

        t = threading.Thread(target=finisher)
        t.start()
        assert q.wait(jid, timeout=10.0) == {"ok": True}
        t.join()

    def test_stats_shape(self, tmp_path):
        q = JobQueue(tmp_path, capacity=9)
        done = q.submit("analyze", BODY)
        q.claim()
        q.finish(done, {"ok": True}, None)
        q.submit("analyze", BODY)
        q.claim()
        q.submit("analyze", BODY)
        assert q.stats() == {
            "queued": 1,
            "running": 1,
            "done": 1,
            "failed": 0,
            "capacity": 9,
        }


class TestRecovery:
    def test_claimed_but_unfinished_is_reenqueued(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        q.claim(owner="doomed")
        assert q.state(jid) == "running"
        # simulate the worker dying: reopen the directory
        base = perf.counter("queue.recovered")
        q2 = JobQueue(tmp_path)
        assert q2.state(jid) == "queued"
        assert perf.counter("queue.recovered") == base + 1
        assert "recover" in [e["ev"] for e in q2.journal_events(jid)]
        # the job re-runs exactly once
        assert q2.claim().id == jid
        assert q2.claim() is None

    def test_finished_jobs_are_not_recovered(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        q.claim()
        q.finish(jid, {"ok": True}, None)
        q2 = JobQueue(tmp_path)
        assert q2.state(jid) == "done"
        assert q2.recover() == []

    def test_crash_between_claim_and_finish_subprocess(self, tmp_path):
        """Kill a real worker process mid-job; restart re-runs it once."""
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", {"id": 7, "source": "program p\nend\n"})
        # the "worker": claims the job, then dies without finishing
        script = (
            "import os, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.service.queue import JobQueue\n"
            "q = JobQueue(%r, recover=False)\n"
            "job = q.claim(owner='crashy')\n"
            "assert job is not None\n"
            "os._exit(1)\n"
        ) % (
            os.path.join(os.path.dirname(__file__), "..", "..", "src"),
            str(tmp_path),
        )
        proc = subprocess.run([sys.executable, "-c", script])
        assert proc.returncode == 1
        assert JobQueue(tmp_path, recover=False).state(jid) == "running"

        # restart: recovery re-enqueues, a fleet completes it exactly once
        q2 = JobQueue(tmp_path)
        assert q2.state(jid) == "queued"
        from repro.service.workers import WorkerFleet

        fleet = WorkerFleet(q2, workers=2).start()
        resp = q2.wait(jid, timeout=60.0)
        fleet.drain(timeout=10.0)
        assert resp is not None and resp["ok"]
        # exactly one receipt, exactly one result, exactly one re-run
        assert (q2.receipts_dir / f"{jid}.json").exists()
        assert len(list(q2.receipts_dir.glob("*.json"))) == 1
        events = [e["ev"] for e in q2.journal_events(jid)]
        assert events == ["submit", "claim", "recover", "claim", "done"]

    def test_torn_batch_submit_recovers_from_directory(self, tmp_path):
        """Crash mid-way through a batch's single journal write: the
        job records were published (atomically, per job) before the
        journal append, so every admitted job survives and runs exactly
        once — the journal is provenance, not the source of truth."""
        q = JobQueue(tmp_path)
        ids = q.submit_batch("analyze", [BODY] * 3)
        journal = tmp_path / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        assert len(lines) == 3  # one line per job from the one write
        # keep the first submit line and tear the second mid-character
        journal.write_bytes(lines[0] + lines[1][: len(lines[1]) // 2])

        q2 = JobQueue(tmp_path)
        assert [q2.state(i) for i in ids] == ["queued"] * 3
        claimed = [q2.claim().id for _ in range(3)]
        assert claimed == ids  # all three, in order, exactly once
        assert q2.claim() is None
        assert json.dumps(q2.journal_events())  # tail stays parseable

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        q = JobQueue(tmp_path)
        jid = q.submit("analyze", BODY)
        with open(tmp_path / "journal.jsonl", "a") as f:
            f.write('{"ev": "cl')  # torn write from a crash
        events = JobQueue(tmp_path).journal_events(jid)
        assert [e["ev"] for e in events] == ["submit"]
        assert json.dumps(events)  # parseable structures only
