"""Tests for the JSON-lines batch/server front end."""

import io
import json

from repro.service.cache import SummaryCache, set_default_cache_dir
from repro.service.server import handle_request, serve

SRC = (
    "program cli\n"
    "  integer n, k\n"
    "  real a(100)\n"
    "  read n, k\n"
    "  do i = 1, n\n"
    "    a(i + k) = a(i) + 1.0\n"
    "  enddo\n"
    "  print a(n)\n"
    "end\n"
)

INDEPENDENT = (
    "program ind\n"
    "  integer n\n"
    "  real a(100)\n"
    "  read n\n"
    "  do i = 1, n\n"
    "    a(i) = 2.0\n"
    "  enddo\n"
    "end\n"
)


def _serve_lines(requests, **kwargs):
    stdin = io.StringIO(
        "".join(json.dumps(r) + "\n" for r in requests) + "\n"
    )
    stdout = io.StringIO()
    count = serve(stdin, stdout, **kwargs)
    lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert count == len(lines)
    return lines


class TestHandleRequest:
    def test_analysis(self):
        resp = handle_request({"id": 42, "source": SRC})
        assert resp["ok"] and resp["id"] == 42
        assert resp["program"] == "cli"
        assert not resp["degraded"]
        (loop,) = resp["loops"]
        assert loop["label"] == "cli:L1"
        assert loop["status"] == "runtime"
        assert loop["runtime_test"]

    def test_base_options(self):
        resp = handle_request({"source": SRC, "options": "base"})
        assert resp["ok"]
        assert resp["loops"][0]["status"] == "serial"

    def test_report_text(self):
        resp = handle_request({"source": SRC, "report": True})
        assert "cli:L1" in resp["report"]

    def test_file_request(self, tmp_path):
        f = tmp_path / "p.f"
        f.write_text(INDEPENDENT)
        resp = handle_request({"file": str(f)})
        assert resp["ok"]
        assert resp["loops"][0]["status"] == "parallel"

    def test_parse_error_is_reported_not_raised(self):
        resp = handle_request({"id": 7, "source": "not fortran"})
        assert resp == {
            "id": 7,
            "ok": False,
            "error": resp["error"],
        }
        assert "ParseError" in resp["error"]

    def test_missing_source(self):
        resp = handle_request({"id": 1})
        assert not resp["ok"]

    def test_bad_options_name(self):
        resp = handle_request({"source": SRC, "options": "bogus"})
        assert not resp["ok"] and "bogus" in resp["error"]

    def test_unknown_budget_key_rejected(self):
        """Regression: a typo'd budget key used to be silently ignored,
        granting an unlimited budget; now the request fails, naming it."""
        resp = handle_request(
            {
                "id": 3,
                "source": SRC,
                "budget": {"max_walls": 1.0, "max_fm_constraints": 5},
            }
        )
        assert resp["id"] == 3 and not resp["ok"]
        assert "max_walls" in resp["error"]
        assert "max_wall_s" in resp["error"]  # the allowed keys are listed


class TestServeLoop:
    def test_order_and_ids(self):
        reqs = [
            {"id": i, "source": SRC if i % 2 else INDEPENDENT}
            for i in range(6)
        ]
        lines = _serve_lines(reqs)
        assert [l["id"] for l in lines] == list(range(6))
        assert all(l["ok"] for l in lines)

    def test_bad_json_line(self):
        stdin = io.StringIO('{"id": 1, "source": %s}\nnot json\n' % json.dumps(SRC))
        stdout = io.StringIO()
        assert serve(stdin, stdout) == 2
        ok, bad = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert ok["ok"]
        assert not bad["ok"] and "bad JSON" in bad["error"]

    def test_pooled_results_identical_and_ordered(self):
        reqs = [
            {"id": i, "source": SRC if i % 2 else INDEPENDENT}
            for i in range(8)
        ]
        serial = _serve_lines(reqs, jobs=1)
        pooled = _serve_lines(reqs, jobs=3)
        assert pooled == serial

    def test_cache_warms_across_calls(self, tmp_path):
        from repro import perf

        try:
            cache_dir = str(tmp_path / "c")
            _serve_lines([{"id": 0, "source": SRC}], cache_dir=cache_dir)
            assert SummaryCache(cache_dir).entry_count() > 0
            base = perf.counter("cache.program_hit")
            _serve_lines([{"id": 1, "source": SRC}], cache_dir=cache_dir)
            assert perf.counter("cache.program_hit") == base + 1
        finally:
            set_default_cache_dir(None)

    def test_budget_degrades_in_request_scope(self):
        from repro import perf

        perf.reset_all_caches()  # make the FM budget bite
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            lines = _serve_lines(
                [
                    {
                        "id": 0,
                        "source": SRC,
                        "budget": {"max_fm_constraints": 1},
                    },
                    {"id": 1, "source": INDEPENDENT},
                ]
            )
        assert lines[0]["ok"] and lines[0]["degraded"]
        assert lines[0]["loops"][0]["status"] == "serial"
        # the budget was per-request: the next request is unaffected
        assert lines[1]["ok"] and not lines[1]["degraded"]
        assert lines[1]["loops"][0]["status"] == "parallel"
