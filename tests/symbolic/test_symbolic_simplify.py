"""Unit tests for normalization helpers (integerize / tighten / bounds)."""

from fractions import Fraction

from repro.symbolic.affine import AffineExpr
from repro.symbolic.simplify import bounds_to_int, integerize, tighten_le

I = AffineExpr.var("i")
J = AffineExpr.var("j")


class TestIntegerize:
    def test_fractions_scaled_to_integers(self):
        e = AffineExpr({"i": Fraction(1, 2), "j": Fraction(1, 3)}, Fraction(1, 6))
        out = integerize(e)
        assert out.is_integral()
        # 3i + 2j + 1 (scaled by lcm 6, content 1)
        assert out.coeff("i") == 3 and out.coeff("j") == 2
        assert out.constant == 1

    def test_content_divided_out(self):
        e = AffineExpr({"i": 4, "j": 6}, 8)
        out = integerize(e)
        assert out.coeff("i") == 2 and out.coeff("j") == 3
        assert out.constant == 4

    def test_already_primitive_unchanged(self):
        e = AffineExpr({"i": 2, "j": 3}, 5)
        assert integerize(e) == e

    def test_sign_preserved(self):
        e = AffineExpr({"i": Fraction(-1, 2)}, Fraction(3, 2))
        out = integerize(e)
        # -i/2 + 3/2 <= 0 iff i >= 3; scaled: -i + 3 <= 0 iff i >= 3
        for i in (2, 3, 4):
            assert (e.evaluate({"i": i}) <= 0) == (out.evaluate({"i": i}) <= 0)


class TestTightenLe:
    def test_gcd_floor(self):
        # 2i - 5 <= 0  =>  i <= 2  (i.e. i - 2 <= 0)
        out = tighten_le(AffineExpr({"i": 2}, -5))
        assert out == AffineExpr({"i": 1}, -2)

    def test_exact_divisible_unchanged(self):
        out = tighten_le(AffineExpr({"i": 2}, -4))
        assert out == AffineExpr({"i": 1}, -2)

    def test_mixed_coefficients_untouched(self):
        e = AffineExpr({"i": 2, "j": 3}, -5)
        assert tighten_le(e) == e

    def test_constant_expr_canonicalized(self):
        # positive constants normalize to the canonical 1 (still false
        # as a `<= 0` constraint); sign is what matters
        out = tighten_le(AffineExpr.const(7))
        assert out.is_constant() and out.constant > 0
        out0 = tighten_le(AffineExpr.const(0))
        assert out0.is_zero()

    def test_truth_preserved_on_integers(self):
        e = AffineExpr({"i": 3}, -7)  # 3i <= 7 iff i <= 2
        out = tighten_le(e)
        for i in range(-3, 6):
            assert (e.evaluate({"i": i}) <= 0) == (out.evaluate({"i": i}) <= 0)


class TestBoundsToInt:
    def test_inward_rounding(self):
        assert bounds_to_int(Fraction(1, 2), Fraction(7, 2)) == (1, 3)

    def test_exact_endpoints(self):
        assert bounds_to_int(Fraction(2), Fraction(5)) == (2, 5)

    def test_empty_interval(self):
        lo, hi = bounds_to_int(Fraction(7, 2), Fraction(7, 2))
        assert lo > hi  # caller must detect emptiness
