"""Unit tests for variable-naming conventions and fresh names."""

import pytest

from repro.symbolic import terms


class TestDimVars:
    def test_dim_var(self):
        assert terms.dim_var(0) == "__d0"
        assert terms.dim_var(3) == "__d3"

    def test_dim_var_negative(self):
        with pytest.raises(ValueError):
            terms.dim_var(-1)

    def test_is_dim_var(self):
        assert terms.is_dim_var("__d0")
        assert terms.is_dim_var("__d12")
        assert not terms.is_dim_var("__dx")
        assert not terms.is_dim_var("d0")
        assert not terms.is_dim_var("__t0")

    def test_dim_index(self):
        assert terms.dim_index("__d7") == 7
        with pytest.raises(ValueError):
            terms.dim_index("i")

    def test_iter_dim_vars(self):
        assert list(terms.iter_dim_vars(3)) == ["__d0", "__d1", "__d2"]
        assert list(terms.iter_dim_vars(0)) == []


class TestFreshNames:
    def test_source_distinct(self):
        src = terms.FreshNameSource()
        names = {src.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_source_deterministic(self):
        a = terms.FreshNameSource()
        b = terms.FreshNameSource()
        assert [a.fresh() for _ in range(5)] == [b.fresh() for _ in range(5)]

    def test_hint_embedded(self):
        src = terms.FreshNameSource()
        assert "loop" in src.fresh("loop")

    def test_fresh_many(self):
        src = terms.FreshNameSource()
        names = src.fresh_many(4)
        assert len(set(names)) == 4

    def test_generated_detection(self):
        src = terms.FreshNameSource()
        assert terms.is_generated(src.fresh())
        assert not terms.is_generated("i")

    def test_module_level_fresh(self):
        assert terms.fresh_name() != terms.fresh_name()
