"""Unit tests for the affine-expression algebra."""

from fractions import Fraction

import pytest

from repro.symbolic.affine import AffineExpr, sum_exprs


class TestConstruction:
    def test_const(self):
        e = AffineExpr.const(5)
        assert e.is_constant()
        assert e.constant == 5
        assert e.variables() == ()

    def test_var(self):
        e = AffineExpr.var("i")
        assert e.coeff("i") == 1
        assert e.coeff("j") == 0
        assert not e.is_constant()

    def test_var_with_coeff(self):
        e = AffineExpr.var("i", 3)
        assert e.coeff("i") == 3

    def test_zero_coefficients_dropped(self):
        e = AffineExpr({"i": 0, "j": 2})
        assert e.variables() == ("j",)

    def test_zero_one_constants(self):
        assert AffineExpr.ZERO.is_zero()
        assert AffineExpr.ONE.constant == 1

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            AffineExpr({"i": 1.5})


class TestArithmetic:
    def test_add_exprs(self):
        e = AffineExpr.var("i") + AffineExpr.var("j")
        assert e.coeff("i") == 1 and e.coeff("j") == 1

    def test_add_cancels(self):
        e = AffineExpr.var("i") + AffineExpr.var("i", -1)
        assert e.is_zero()

    def test_add_scalar(self):
        e = AffineExpr.var("i") + 4
        assert e.constant == 4

    def test_radd(self):
        e = 4 + AffineExpr.var("i")
        assert e.constant == 4

    def test_sub(self):
        e = AffineExpr.var("i") - AffineExpr.var("j")
        assert e.coeff("j") == -1

    def test_rsub(self):
        e = 10 - AffineExpr.var("i")
        assert e.constant == 10 and e.coeff("i") == -1

    def test_neg(self):
        e = -(AffineExpr.var("i") + 2)
        assert e.coeff("i") == -1 and e.constant == -2

    def test_mul(self):
        e = (AffineExpr.var("i") + 1) * 3
        assert e.coeff("i") == 3 and e.constant == 3

    def test_mul_by_zero(self):
        assert ((AffineExpr.var("i") + 1) * 0).is_zero()

    def test_div(self):
        e = AffineExpr.var("i", 4) / 2
        assert e.coeff("i") == 2

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            AffineExpr.var("i") / 0

    def test_fraction_coeffs(self):
        e = AffineExpr.var("i") * Fraction(1, 3)
        assert e.coeff("i") == Fraction(1, 3)
        assert not e.is_integral()


class TestSubstitution:
    def test_substitute_number(self):
        e = AffineExpr.var("i") + AffineExpr.var("j")
        assert e.substitute({"i": 5}) == AffineExpr.var("j") + 5

    def test_substitute_expr(self):
        e = AffineExpr.var("i", 2)
        r = e.substitute({"i": AffineExpr.var("j") + 1})
        assert r == AffineExpr.var("j", 2) + 2

    def test_substitute_simultaneous_swap(self):
        e = AffineExpr({"x": 1, "y": 2})
        r = e.substitute({"x": AffineExpr.var("y"), "y": AffineExpr.var("x")})
        assert r == AffineExpr({"y": 1, "x": 2})

    def test_substitute_unbound_kept(self):
        e = AffineExpr.var("i") + AffineExpr.var("j")
        assert e.substitute({"i": 0}).variables() == ("j",)

    def test_rename(self):
        e = AffineExpr({"i": 1, "j": 1})
        assert e.rename({"i": "k"}) == AffineExpr({"k": 1, "j": 1})

    def test_rename_merges(self):
        e = AffineExpr({"i": 1, "j": 2})
        assert e.rename({"j": "i"}) == AffineExpr({"i": 3})


class TestEvaluate:
    def test_evaluate(self):
        e = AffineExpr({"i": 2, "j": -1}, 3)
        assert e.evaluate({"i": 4, "j": 1}) == 10

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").evaluate({})


class TestNormalization:
    def test_equality_is_structural(self):
        a = AffineExpr.var("i") + AffineExpr.var("j")
        b = AffineExpr.var("j") + AffineExpr.var("i")
        assert a == b and hash(a) == hash(b)

    def test_primitive(self):
        e = AffineExpr({"i": 4, "j": 6}, 2)
        p = e.primitive()
        assert p.coeff("i") == 2 and p.coeff("j") == 3 and p.constant == 1

    def test_content_constant_expr(self):
        assert AffineExpr.const(7).content() == 1

    def test_sum_exprs(self):
        assert sum_exprs([]).is_zero()
        total = sum_exprs([AffineExpr.var("i"), AffineExpr.var("i")])
        assert total.coeff("i") == 2

    def test_str_roundtrip_readable(self):
        e = AffineExpr({"i": 1, "j": -2}, 5)
        s = str(e)
        assert "i" in s and "j" in s and "5" in s

    def test_bool(self):
        assert not AffineExpr.ZERO
        assert AffineExpr.ONE


class TestIntegerExactness:
    """The all-int fast paths stay exact and never box into Fraction."""

    def test_integral_arithmetic_stays_int(self):
        x = AffineExpr.var("x")
        e = (x * 3 + 5) - x + 2
        assert type(e.coeff("x")) is int and e.coeff("x") == 2
        assert type(e.constant) is int and e.constant == 7

    def test_exact_int_division_stays_int(self):
        x = AffineExpr.var("x")
        e = (x * 4 + 8) / 2
        assert type(e.coeff("x")) is int and e.coeff("x") == 2
        assert type(e.constant) is int and e.constant == 4

    def test_inexact_division_is_exact_rational(self):
        x = AffineExpr.var("x")
        e = (x * 3) / 2
        assert e.coeff("x") == Fraction(3, 2)
        # round-trips back to the int representation exactly
        assert (e * 2).coeff("x") == 3
        assert type((e * 2).coeff("x")) is int

    def test_integral_fraction_inputs_normalize_to_int(self):
        e = AffineExpr.var("x", Fraction(6, 3)) + Fraction(4, 2)
        assert type(e.coeff("x")) is int and e.coeff("x") == 2
        assert type(e.constant) is int and e.constant == 2

    def test_float_scalar_ops_rejected(self):
        x = AffineExpr.var("x")
        with pytest.raises(TypeError):
            x * 1.5
        with pytest.raises(TypeError):
            x / 0.5
        with pytest.raises(TypeError):
            x + 0.5
