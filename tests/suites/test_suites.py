"""Verification of the benchmark-suite ground truth.

These are the calibration tests: every per-loop expectation (base,
predicated, ELPD oracle) is checked against the actual pipeline, and the
aggregate statistics are checked against the paper's claims.
"""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.partests.driver import analyze_program
from repro.runtime.elpd import run_oracle
from repro.runtime.interp import run_program
from repro.suites import SUITE_NAMES, all_programs, by_suite, get_program

PROGRAMS = all_programs()


@pytest.fixture(scope="module")
def driver_results():
    out = {}
    for p in PROGRAMS:
        out[p.name] = {
            "base": analyze_program(p.fresh_program(), AnalysisOptions.base()),
            "predicated": analyze_program(
                p.fresh_program(), AnalysisOptions.predicated()
            ),
        }
    return out


class TestRegistry:
    def test_thirty_programs(self):
        assert len(PROGRAMS) == 30

    def test_suite_sizes(self):
        assert len(by_suite("specfp95")) == 10
        assert len(by_suite("nas")) == 8
        assert len(by_suite("perfect")) == 11
        assert len(by_suite("extra")) == 1

    def test_get_program(self):
        assert get_program("tomcatv").suite == "specfp95"
        with pytest.raises(KeyError):
            get_program("nope")

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            by_suite("spec2000")

    def test_every_loop_has_expectation(self):
        from repro.lang.astnodes import loops_of

        for p in PROGRAMS:
            labels = {
                l.label
                for u in p.program.units.values()
                for l in loops_of(u)
            }
            assert labels == set(p.expectations)


@pytest.mark.parametrize("prog", PROGRAMS, ids=lambda p: p.name)
class TestPerProgramGroundTruth:
    def test_base_statuses(self, prog, driver_results):
        actual = {
            l.label: l.status for l in driver_results[prog.name]["base"].loops
        }
        for label, exp in prog.expectations.items():
            assert actual[label] == exp.base, label

    def test_predicated_statuses(self, prog, driver_results):
        actual = {
            l.label: l.status
            for l in driver_results[prog.name]["predicated"].loops
        }
        for label, exp in prog.expectations.items():
            assert actual[label] == exp.predicated, label

    def test_oracle_classifications(self, prog):
        rep = run_oracle(prog.fresh_program(), prog.inputs)
        for label, exp in prog.expectations.items():
            assert rep.observations[label].classification == exp.elpd, label

    def test_program_executes(self, prog):
        result = run_program(prog.fresh_program(), prog.inputs)
        assert result.steps > 0


class TestAggregateShape:
    """The paper's headline numbers, reproduced in shape."""

    @staticmethod
    def _counts():
        total = cands = base_par = remaining = elpd_par = rec = rt = 0
        outer = set()
        for p in PROGRAMS:
            for label, e in p.expectations.items():
                total += 1
                if e.base == "not_candidate":
                    continue
                cands += 1
                if e.base in ("parallel", "parallel_private"):
                    base_par += 1
                    continue
                remaining += 1
                if e.elpd in ("independent", "privatizable"):
                    elpd_par += 1
                    if e.predicated in (
                        "parallel",
                        "parallel_private",
                        "runtime",
                    ):
                        rec += 1
                        if e.predicated == "runtime":
                            rt += 1
                        if e.outer_win:
                            outer.add(p.name)
        return total, cands, base_par, remaining, elpd_par, rec, rt, outer

    def test_base_parallelizes_over_half(self):
        _, cands, base_par, *_ = self._counts()
        assert base_par / cands > 0.5

    def test_predicated_recovers_over_40_percent(self):
        *_, elpd_par, rec, rt, _ = self._counts()
        assert rec / elpd_par > 0.40

    def test_runtime_and_compile_time_wins_both_present(self):
        *_, elpd_par, rec, rt, _ = self._counts()
        assert 0 < rt < rec  # some run-time, some compile-time

    def test_nine_outer_win_programs(self):
        *_, outer = self._counts()
        assert len(outer) == 9

    def test_five_speedup_candidates(self):
        assert sum(1 for p in PROGRAMS if p.speedup_candidate) == 5

    def test_speedup_candidates_have_outer_wins(self):
        for p in PROGRAMS:
            if p.speedup_candidate:
                assert p.outer_win_labels(), p.name


class TestAnalysisSoundnessVsOracle:
    """A loop the compiler parallelizes must never be dynamically
    dependent — the analysis is sound with respect to the ELPD oracle
    (on the arrays; scalar obstacles are screened statically)."""

    @pytest.mark.parametrize("prog", PROGRAMS, ids=lambda p: p.name)
    def test_no_compile_time_parallel_loop_is_dependent(self, prog, driver_results):
        rep = run_oracle(prog.fresh_program(), prog.inputs)
        res = driver_results[prog.name]["predicated"]
        for l in res.loops:
            if l.status in ("parallel", "parallel_private"):
                obs = rep.observations.get(l.label)
                assert obs is not None
                assert obs.classification != "dependent", l.label
