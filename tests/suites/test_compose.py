"""Unit tests for benchmark-program composition."""

import pytest

from repro.suites import patterns as P
from repro.suites.compose import BenchmarkProgram, compose
from repro.suites.patterns import LoopExpectation, PatternInstance


class TestCompose:
    def test_single_pattern(self):
        bench = compose("one", "extra", [P.stencil("z1")])
        assert bench.loop_count == 1
        assert "one:L1" in bench.expectations
        assert bench.program.main == "one"

    def test_patterns_concatenate_in_order(self):
        bench = compose("two", "extra", [P.stencil("z1"), P.recurrence("z2")])
        assert bench.expectations["two:L1"].category == "plain"
        assert bench.expectations["two:L2"].category == "recurrence"

    def test_setup_loops_counted(self):
        bench = compose("three", "extra", [P.nonaffine("z3")])
        # setup loop + main loop
        assert bench.loop_count == 2
        assert bench.expectations["three:L1"].category == "plain"
        assert bench.expectations["three:L2"].category == "nonaffine"

    def test_subroutine_loops_labeled(self):
        bench = compose("four", "extra", [P.call_row("z4")])
        labels = set(bench.expectations)
        assert "four:L1" in labels
        assert any(l.startswith("crowz4:") for l in labels)

    def test_inputs_concatenate(self):
        bench = compose(
            "five", "extra",
            [P.offset_runtime("z5", k_value=3), P.cond_cover("z6", flag_value=9)],
        )
        assert bench.inputs == [3, 9]

    def test_mismatched_expectations_rejected(self):
        broken = PatternInstance(
            decls=["real qq(5)"],
            main_lines=["do i = 1, 5", "  qq(i) = 1.0", "enddo"],
            main_expect=[],  # missing!
        )
        with pytest.raises(ValueError):
            compose("bad", "extra", [broken])

    def test_fresh_program_is_new_object(self):
        bench = compose("six", "extra", [P.stencil("z7")])
        assert bench.fresh_program() is not bench.program

    def test_outer_win_labels(self):
        bench = compose("seven", "extra", [P.offset_runtime("z8")])
        assert bench.outer_win_labels() == ["seven:L1"]
        plain = compose("eight", "extra", [P.stencil("z9")])
        assert plain.outer_win_labels() == []


class TestPatternHygiene:
    def test_unique_suffixes_no_collision(self):
        bench = compose(
            "nine", "extra",
            [P.stencil("a"), P.stencil("b"), P.work_array("c")],
        )
        # all loops analyzable; names did not collide
        assert bench.loop_count == 5

    def test_every_pattern_composes_alone(self):
        builders = [
            P.stencil, P.init2d, P.triangular, P.reduction, P.work_array,
            P.call_row, P.recurrence, P.scalar_recurrence, P.wavefront,
            P.io_loop, P.nonaffine, P.data_dependent, P.cond_cover,
            P.guard_zero_trip, P.index_guard, P.offset_runtime,
            P.outer_offset, P.reshape_size,
        ]
        for k, builder in enumerate(builders):
            bench = compose(f"solo{k}", "extra", [builder(f"u{k}")])
            assert bench.loop_count >= 1, builder.__name__
