"""Negative-step and strided loops: execution order matters.

With a descending loop, the execution-earlier iteration has the larger
index; both the privatization flow test and the exposed-read subtraction
must flip direction, and strided loops must not claim prior-iteration
coverage from the index-range hull.
"""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program
from repro.runtime.elpd import run_oracle


def status(src, label="t:L1"):
    res = analyze_program(parse_program(src), AnalysisOptions.predicated())
    return res.by_label()[label]


class TestNegativeStep:
    def test_descending_flow_is_serial(self):
        # descending: iteration i reads a(i+1), written by iteration
        # i+1 which executed EARLIER — a genuine flow dependence
        src = (
            "program t\ninteger n\nreal a(100)\nread n\na(n) = 1.0\n"
            "do i = n - 1, 1, -1\n a(i) = a(i + 1) + 1.0\nenddo\nend\n"
        )
        assert status(src).status == "serial"

    def test_ascending_same_body_is_anti_only(self):
        # ascending the same body: a(i+1) is read before iteration i+1
        # overwrites it — an anti dependence, removable by privatization
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 1, n - 1\n a(i) = a(i + 1) + 1.0\nenddo\nend\n"
        )
        assert status(src).status in ("parallel_private", "runtime")

    def test_descending_anti_parallelizable(self):
        # descending, reading a(i-1): the read target is overwritten by
        # the execution-LATER iteration — anti only
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = n, 2, -1\n a(i) = a(i - 1) + 1.0\nenddo\nend\n"
        )
        assert status(src).status in ("parallel_private", "runtime")

    def test_descending_plain_parallel(self):
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = n, 1, -1\n a(i) = i * 1.0\nenddo\nend\n"
        )
        assert status(src).status == "parallel"

    def test_verdicts_match_oracle(self):
        for src in [
            "program t\ninteger n\nreal a(100)\nread n\na(n) = 1.0\n"
            "do i = n - 1, 1, -1\n a(i) = a(i + 1) + 1.0\nenddo\nend\n",
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = n, 2, -1\n a(i) = a(i - 1) + 1.0\nenddo\nend\n",
        ]:
            res = analyze_program(
                parse_program(src), AnalysisOptions.predicated()
            )
            rep = run_oracle(parse_program(src), [12])
            for l in res.loops:
                if l.status in ("parallel", "parallel_private"):
                    assert (
                        rep.observations[l.label].classification
                        != "dependent"
                    ), src


class TestStridedLoops:
    def test_stride_two_no_false_coverage(self):
        # the strided loop writes only even elements; the following loop
        # reads all of them — odd reads stay exposed, so the enclosing
        # repeat loop carries real flow on any n >= 2.  The analysis may
        # keep a degenerate run-time test (parallel when n <= 1), but it
        # must evaluate FALSE — never parallelize — on a flowing input.
        src = """
program t
  integer n
  real a(100), b(100)
  read n
  do r = 1, 3
    do i = 2, n, 2
      a(i) = b(i) + r
    enddo
    do i = 1, n
      b(i) = a(i) * 0.5
    enddo
  enddo
end
"""
        res = analyze_program(parse_program(src), AnalysisOptions.predicated())
        outer = res.by_label()["t:L1"]
        rep = run_oracle(parse_program(src), [10])
        assert rep.observations["t:L1"].classification == "dependent"
        if outer.status == "runtime":
            from repro.predicates.evaluate import evaluate

            assert not evaluate(outer.condition, {"n": 10})
        else:
            assert outer.status == "serial"

    def test_strided_loop_itself_parallel(self):
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 2, n, 2\n a(i) = i * 1.0\nenddo\nend\n"
        )
        assert status(src).status == "parallel"

    def test_interleaved_strides_conservative(self):
        # writes evens reads odds with stride 2: actually independent,
        # but the hulled iteration space may or may not prove it — it
        # must never be *unsound* (oracle check)
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 2, n, 2\n a(i) = a(i - 1) + 1.0\nenddo\nend\n"
        )
        res = analyze_program(parse_program(src), AnalysisOptions.predicated())
        l = res.by_label()["t:L1"]
        if l.status in ("parallel", "parallel_private"):
            rep = run_oracle(parse_program(src), [20])
            assert rep.observations["t:L1"].classification != "dependent"
