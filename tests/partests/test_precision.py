"""Precision tests: cases the exact integer substrate must get right."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

OPTS = AnalysisOptions.predicated()


def status_of(src, label, opts=OPTS):
    res = analyze_program(parse_program(src), opts)
    return {l.label: l for l in res.loops}[label]


class TestIntegerReasoning:
    def test_parity_independence(self):
        # writes even elements, reads odd: 2i == 2j+1 has no integer
        # solution — gcd tightening proves independence
        src = (
            "program t\ninteger n\nreal a(200)\nread n\n"
            "do i = 1, n\na(2 * i) = a(2 * i + 1) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "parallel"

    def test_stride_three_offset_two(self):
        # 3i vs 3j+2: no integer solution either
        src = (
            "program t\ninteger n\nreal a(300)\nread n\n"
            "do i = 1, n\na(3 * i) = a(3 * i + 2) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "parallel"

    def test_same_parity_dependent(self):
        # writes 2i, reads 2i - 2 = 2(i-1): genuine carried flow
        src = (
            "program t\ninteger n\nreal a(200)\nread n\na(2) = 1.0\n"
            "do i = 2, n\na(2 * i) = a(2 * i - 2) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "serial"


class TestShapePrecision:
    def test_distinct_columns_independent(self):
        src = (
            "program t\ninteger n\nreal b(100, 100)\nread n\n"
            "do j = 1, n\n do i = 1, n\n  b(i, j) = b(i, j) * 2.0\n enddo\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "parallel"

    def test_row_vs_column_conflict(self):
        # writes row i, reads column i: they cross at (i1, i2)
        src = (
            "program t\ninteger n\nreal b(100, 100)\nread n\nb(1,1) = 1.0\n"
            "do i = 2, n\n do j = 1, n\n  b(i, j) = b(j, i - 1) + 1.0\n enddo\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "serial"

    def test_triangular_write_independent(self):
        src = (
            "program t\ninteger n\nreal b(100, 100)\nread n\n"
            "do j = 2, n\n do i = 1, j - 1\n  b(i, j) = 1.0\n enddo\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "parallel"

    def test_first_iteration_peel_pattern(self):
        # every iteration writes a(i) and additionally reads a(1):
        # a(1) is written only by iteration 1 *before* any later read in
        # serial order — but in parallel order that's a flow: serial
        src = (
            "program t\ninteger n\nreal a(100), b(100)\nread n\n"
            "do i = 1, n\n a(i) = i * 1.0\n b(i) = a(1) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "serial"

    def test_read_only_shared_element(self):
        src = (
            "program t\ninteger n\nreal a(100), b(100)\nread n\na(1) = 5.0\n"
            "do i = 2, n\n b(i) = a(1) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "parallel"


class TestScalarPropagationPrecision:
    def test_derived_bound_relation(self):
        src = (
            "program t\ninteger n, m\nreal a(300)\nread n\nm = 2 * n\n"
            "do i = 1, n\n a(i + m) = a(i) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status in ("parallel", "parallel_private")

    def test_unrelated_symbol_stays_runtime(self):
        src = (
            "program t\ninteger n, m\nreal a(300)\nread n, m\n"
            "do i = 1, n\n a(i + m) = a(i) + 1.0\nenddo\nend\n"
        )
        assert status_of(src, "t:L1").status == "runtime"
