"""Unit tests for win classification by ablation."""

from repro.partests.classify import LoopClassification, classify_wins
from repro.lang.parser import parse_program


def factory(src):
    return lambda: parse_program(src)


class TestClassifyWins:
    def test_no_wins_on_plain_program(self):
        src = (
            "program t\ninteger n\nreal a(50)\nread n\n"
            "do i = 1, n\na(i) = 1.0\nenddo\nend\n"
        )
        assert classify_wins(factory(src)) == []

    def test_offset_win_needs_extraction_and_tests(self):
        src = (
            "program t\ninteger n, k\nreal a(100)\nread n, k\n"
            "do i = 1, n\na(i + k) = a(i) + 1.0\nenddo\nend\n"
        )
        wins = classify_wins(factory(src))
        assert len(wins) == 1
        w = wins[0]
        assert w.status == "runtime"
        assert w.base_status == "serial"
        assert "extraction" in w.necessary
        assert "runtime_tests" in w.necessary
        assert w.mechanism == "extraction"

    def test_correlation_win_needs_no_single_feature(self):
        src = """
program t
  integer n, x
  real h(20), b(20, 20)
  read n, x
  do i = 1, n
    if (x > 5) then
      do j = 1, n
        h(j) = b(j, i)
      enddo
    endif
    if (x > 5) then
      do j = 1, n
        b(j, i) = h(j) + 1.0
      enddo
    endif
  enddo
end
"""
        wins = classify_wins(factory(src))
        labels = {w.label: w for w in wins}
        assert "t:L1" in labels
        assert labels["t:L1"].mechanism == "correlation"

    def test_reshape_win_needs_interprocedural(self):
        src = """
program t
  integer p, q
  real a(200)
  read p, q
  do r = 1, 3
    call fill(a, p, q)
    do i = 1, 200
      a(i) = a(i) * 0.5
    enddo
  enddo
end
subroutine fill(x, p, q)
  integer p, q
  real x(p, q)
  do j = 1, q
    do i = 1, p
      x(i, j) = 1.0
    enddo
  enddo
end
"""
        wins = classify_wins(factory(src))
        outer = next(w for w in wins if w.label == "t:L1")
        assert "interprocedural" in outer.necessary
        assert outer.mechanism == "interprocedural"


class TestMechanismPriority:
    def test_priority_order(self):
        c = LoopClassification(
            "x:L1", "runtime", "serial",
            necessary=["runtime_tests", "extraction"],
        )
        assert c.mechanism == "extraction"
        c2 = LoopClassification(
            "x:L1", "runtime", "serial", necessary=["runtime_tests"]
        )
        assert c2.mechanism == "runtime_tests"
        c3 = LoopClassification("x:L1", "parallel", "serial", necessary=[])
        assert c3.mechanism == "correlation"
