"""Tests for reaching path predicates (forward test conjunction).

"Prior to performing the predicated array data-flow analysis,
predicates can be derived via a forward interprocedural data-flow
analysis that forms the conjunction of all the tests along the
control-flow paths reaching the current program point" (Section 4.1).
"""

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program


def status(src, label, opts=None):
    res = analyze_program(
        parse_program(src), opts or AnalysisOptions.predicated()
    )
    return res.by_label()[label]


class TestPathPredicates:
    GUARDED = """
program t
  integer n, k
  real a(300)
  read n, k
  if (k > n) then
    do i = 1, n
      a(i + k) = a(i) + 1.0
    enddo
  endif
end
"""

    def test_guard_discharges_runtime_test(self):
        l = status(self.GUARDED, "t:L1")
        assert l.status in ("parallel", "parallel_private")
        assert l.runtime_test is None

    def test_base_still_serial(self):
        l = status(self.GUARDED, "t:L1", AnalysisOptions.base())
        assert l.status == "serial"

    def test_unguarded_needs_runtime_test(self):
        src = (
            "program t\ninteger n, k\nreal a(300)\nread n, k\n"
            "do i = 1, n\na(i + k) = a(i) + 1.0\nenddo\nend\n"
        )
        assert status(src, "t:L1").status == "runtime"

    def test_insufficient_guard_keeps_test(self):
        # k > 0 does not resolve the dependence; the test survives
        src = """
program t
  integer n, k
  real a(300)
  read n, k
  if (k > 0) then
    do i = 1, n
      a(i + k) = a(i) + 1.0
    enddo
  endif
end
"""
        l = status(src, "t:L1")
        assert l.status == "runtime"

    def test_else_branch_negation_used(self):
        # the else-arm carries ¬(k <= n), i.e. k > n: parallel
        src = """
program t
  integer n, k
  real a(300)
  read n, k
  if (k <= n) then
    x = 1
  else
    do i = 1, n
      a(i + k) = a(i) + 1.0
    enddo
  endif
end
"""
        l = status(src, "t:L1")
        assert l.status in ("parallel", "parallel_private")

    def test_nested_guards_conjoin(self):
        src = """
program t
  integer n, k, m
  real a(400)
  read n, k, m
  if (m > 0) then
    if (k > n + m) then
      do i = 1, n
        a(i + k) = a(i) + 1.0
      enddo
    endif
  endif
end
"""
        l = status(src, "t:L1")
        assert l.status in ("parallel", "parallel_private")

    def test_guard_strengthens_conflict_system(self):
        # guard makes the nominally-overlapping accesses disjoint
        src = """
program t
  integer n, d
  real a(300)
  read n, d
  if (d >= n) then
    do i = 1, n
      a(i + d) = a(i) * 0.5
    enddo
  endif
end
"""
        l = status(src, "t:L1")
        assert l.status in ("parallel", "parallel_private")
