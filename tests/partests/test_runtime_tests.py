"""Unit tests for run-time test legality, rendering and cost."""

import pytest

from repro.partests.runtime_tests import is_runtime_evaluable, render_predicate
from repro.partests.runtime_tests import test_cost as predicate_cost
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.evaluate import evaluate
from repro.predicates.formula import (
    FALSE,
    TRUE,
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.symbolic.affine import AffineExpr

K = AffineExpr.var("k")
N = AffineExpr.var("n")
C = AffineExpr.const

KN = p_atom(LinAtom.ge(K, N))
DIV = p_atom(DivAtom(N, 4))
OPQ = p_atom(OpaqueAtom("p*q == 100", ("p", "q")))


class TestEvaluability:
    def test_clean_scalars_ok(self):
        assert is_runtime_evaluable(KN, frozenset())

    def test_clobbered_scalar_blocks(self):
        assert not is_runtime_evaluable(KN, frozenset({"k"}))

    def test_loop_index_blocks(self):
        pred = p_atom(LinAtom.gt(AffineExpr.var("i"), C(5)))
        assert not is_runtime_evaluable(pred, frozenset({"i"}))

    def test_generated_symbols_block(self):
        pred = p_atom(LinAtom.gt(AffineExpr.var("__t3"), C(0)))
        assert not is_runtime_evaluable(pred, frozenset())

    def test_opaque_reads_checked(self):
        assert is_runtime_evaluable(OPQ, frozenset({"z"}))
        assert not is_runtime_evaluable(OPQ, frozenset({"q"}))

    def test_constants_always_ok(self):
        assert is_runtime_evaluable(TRUE, frozenset({"x"}))
        assert is_runtime_evaluable(FALSE, frozenset({"x"}))


class TestRendering:
    def parses(self, text):
        from repro.codegen.twoversion import parse_condition

        return parse_condition(text)

    def roundtrip_env(self, pred, env):
        """Rendered text evaluates the same as the predicate."""
        from repro.lang.parser import parse_program
        from repro.runtime.interp import run_program

        text = render_predicate(pred)
        names = sorted(pred.variables())
        src = (
            "program t\n"
            + (f"read {', '.join(names)}\n" if names else "")
            + f"zz = {text}\nprint zz\nend\n"
        )
        result = run_program(
            parse_program(src), [env[v] for v in names]
        )
        return result.outputs[0] == "1"

    def test_linear_atom(self):
        for env in ({"k": 5, "n": 3}, {"k": 2, "n": 3}):
            assert self.roundtrip_env(KN, env) == evaluate(KN, env)

    def test_equality_atom(self):
        pred = p_atom(LinAtom.eq(K, N))
        for env in ({"k": 3, "n": 3}, {"k": 3, "n": 4}):
            assert self.roundtrip_env(pred, env) == evaluate(pred, env)

    def test_divisibility_atom(self):
        for env in ({"n": 8}, {"n": 9}):
            assert self.roundtrip_env(DIV, env) == evaluate(DIV, env)

    def test_connectives(self):
        pred = p_or(p_and(KN, DIV), p_not(DIV))
        for n, k in [(8, 9), (8, 2), (9, 1), (9, 12)]:
            env = {"k": k, "n": n}
            assert self.roundtrip_env(pred, env) == evaluate(pred, env)

    def test_constants_renderable(self):
        assert self.parses(render_predicate(TRUE)) is not None
        assert self.parses(render_predicate(FALSE)) is not None

    def test_opaque_key_rendered_verbatim(self):
        assert render_predicate(OPQ) == "p*q == 100"


class TestCost:
    def test_constants_free(self):
        assert predicate_cost(TRUE) == 0
        assert predicate_cost(FALSE) == 0

    def test_atoms_counted(self):
        assert predicate_cost(KN) == 1
        assert predicate_cost(p_and(KN, DIV)) == 2
        assert predicate_cost(p_or(p_and(KN, DIV), OPQ)) == 3

    def test_negation_free(self):
        assert predicate_cost(p_not(OPQ)) == 1
