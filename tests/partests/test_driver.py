"""End-to-end tests of the parallelization driver on canonical loops."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

OPTS = AnalysisOptions.predicated()
BASE = AnalysisOptions.base()


def statuses(src, opts=OPTS):
    res = analyze_program(parse_program(src), opts)
    return {l.label: l for l in res.loops}


class TestBasicOutcomes:
    def test_independent_loop(self):
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 1, n\n a(i) = 1.0\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "parallel"

    def test_carried_dependence_serial(self):
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 2, n\n a(i) = a(i - 1)\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "serial"

    def test_io_not_candidate(self):
        ls = statuses(
            "program t\ninteger n\nread n\n"
            "do i = 1, n\n print i\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "not_candidate"
        assert ls["t:L1"].reason == "io"

    def test_nonconstant_step_not_candidate(self):
        ls = statuses(
            "program t\ninteger n, k\nreal a(100)\nread n, k\n"
            "do i = 1, n, k\n a(i) = 1.0\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "not_candidate"
        assert ls["t:L1"].reason == "step"

    def test_variant_bounds_not_candidate(self):
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 1, n\n n = n - 1\n a(i) = 1.0\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "not_candidate"
        assert ls["t:L1"].reason == "bounds"

    def test_reduction_allowed(self):
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\ns = 0.0\n"
            "do i = 1, n\n s = s + a(i)\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "parallel_private"
        assert ls["t:L1"].reduction_scalars == ["s"]

    def test_scalar_dependence_serial(self):
        # s carries a genuine recurrence (not a recognized reduction)
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\ns = 1.0\n"
            "do i = 1, n\n s = s * 2.0 + a(i)\n a(i) = s\nenddo\nend\n"
        )
        assert ls["t:L1"].status == "serial"
        assert "scalar" in ls["t:L1"].reason

    def test_private_scalar_ok(self):
        ls = statuses(
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 1, n\n t = a(i) * 2.0\n a(i) = t\nenddo\nend\n"
        )
        assert ls["t:L1"].status in ("parallel", "parallel_private")
        assert "t" in ls["t:L1"].private_scalars


class TestPrivatization:
    SRC = """
program t
  integer n
  real a(100, 100), w(100)
  read n
  do j = 1, n
    do i = 1, n
      w(i) = a(i, j) * 2.0
    enddo
    do i = 1, n
      a(i, j) = w(i) + 1.0
    enddo
  enddo
end
"""

    def test_work_array_privatized(self):
        ls = statuses(self.SRC)
        assert ls["t:L1"].status == "parallel_private"
        assert ls["t:L1"].private_arrays == ["w"]

    def test_inner_loops_parallel_and_enclosed(self):
        ls = statuses(self.SRC)
        assert ls["t:L2"].status == "parallel"
        assert ls["t:L2"].enclosed
        assert not ls["t:L1"].enclosed


class TestPredicatedWins:
    # Figure 1(a)-style: conditional def + use under the same condition
    FIG1A = """
program t
  integer n, x
  real help(100), b(100, 100)
  read n, x
  do i = 1, n
    if (x > 5) then
      do j = 1, n
        help(j) = b(j, i)
      enddo
    endif
    if (x > 5) then
      do j = 1, n
        b(j, i) = help(j) + 1.0
      enddo
    endif
  enddo
end
"""

    def test_fig1a_predicated_parallel(self):
        ls = statuses(self.FIG1A)
        assert ls["t:L1"].status in ("parallel", "parallel_private")

    def test_fig1a_base_serial(self):
        ls = statuses(self.FIG1A, BASE)
        assert ls["t:L1"].status == "serial"

    # symbolic offset: the classic run-time independence test
    OFFSET = """
program t
  integer n, k
  real a(200)
  read n, k
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
end
"""

    def test_offset_runtime_test(self):
        ls = statuses(self.OFFSET)
        assert ls["t:L1"].status == "runtime"
        assert ls["t:L1"].runtime_test is not None
        assert "k" in ls["t:L1"].runtime_test

    def test_offset_base_serial(self):
        ls = statuses(self.OFFSET, BASE)
        assert ls["t:L1"].status == "serial"

    def test_offset_no_runtime_tests_serial(self):
        ls = statuses(self.OFFSET, AnalysisOptions.compile_time_only())
        assert ls["t:L1"].status == "serial"

    # index-dependent guard: embedding makes the must-write exact
    EMBED = """
program t
  integer n
  real a(100), b(100)
  read n
  do j = 1, n
    do i = 1, n
      if (i > 1) then
        a(i) = b(i)
      endif
      b(i) = a(i) * 2.0
    enddo
  enddo
end
"""

    def test_embedding_case_analyzed(self):
        ls = statuses(self.EMBED)
        assert ls["t:L2"].status in ("parallel", "parallel_private")


class TestInterproceduralDriver:
    SRC = """
program t
  integer n
  real a(100, 100)
  read n
  do j = 1, n
    call zrow(a, j, n)
  enddo
end
subroutine zrow(x, j, n)
  real x(100, 100)
  integer j, n
  do i = 1, n
    x(i, j) = 0.0
  enddo
end
"""

    def test_caller_loop_parallel_with_summaries(self):
        ls = statuses(self.SRC)
        assert ls["t:L1"].status == "parallel"

    def test_caller_loop_serial_without_summaries(self):
        ls = statuses(self.SRC, OPTS.without(interprocedural=False))
        assert ls["t:L1"].status == "serial"

    def test_callee_loop_parallel_either_way(self):
        for opts in (OPTS, OPTS.without(interprocedural=False)):
            ls = statuses(self.SRC, opts)
            assert ls["zrow:L1"].status == "parallel"


class TestResultCounters:
    def test_counts(self):
        src = (
            "program t\ninteger n\nreal a(100)\nread n\n"
            "do i = 1, n\n a(i) = 1.0\nenddo\n"
            "do i = 2, n\n a(i) = a(i - 1)\nenddo\n"
            "do i = 1, n\n print i\nenddo\nend\n"
        )
        res = analyze_program(parse_program(src))
        assert res.total_loops == 3
        assert res.candidate_loops == 2
        assert res.parallelized == 1
        assert res.count("serial") == 1
        assert res.count("not_candidate") == 1
