"""Property-based round-trip tests for the front end (hypothesis).

Random ASTs built through the builder DSL must pretty-print to source
that re-parses to the same pretty-printed text (fixpoint), and integer
expressions must evaluate identically through ``to_affine`` and the
interpreter.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.exprtools import to_affine
from repro.lang import builder as b
from repro.lang.astnodes import Program, Subroutine, assign_nids
from repro.lang.parser import parse_program
from repro.lang.prettyprint import expr_str, pretty

NAMES = ["i", "j", "n", "k"]


@st.composite
def int_exprs(draw, depth=0):
    """Random integer-valued expressions (affine and non-affine)."""
    if depth >= 3:
        choice = draw(st.sampled_from(["num", "var"]))
    else:
        choice = draw(
            st.sampled_from(
                ["num", "var", "add", "sub", "mul", "neg", "minmax", "mod"]
            )
        )
    if choice == "num":
        return b.num(draw(st.integers(min_value=0, max_value=20)))
    if choice == "var":
        return b.var(draw(st.sampled_from(NAMES)))
    if choice == "neg":
        return b.neg(draw(int_exprs(depth=depth + 1)))
    if choice == "minmax":
        f = draw(st.sampled_from(["min", "max"]))
        from repro.lang.astnodes import Intrinsic

        return Intrinsic(
            f,
            (draw(int_exprs(depth=depth + 1)), draw(int_exprs(depth=depth + 1))),
        )
    if choice == "mod":
        return b.mod(
            draw(int_exprs(depth=depth + 1)),
            b.num(draw(st.integers(min_value=1, max_value=7))),
        )
    op = {"add": "+", "sub": "-", "mul": "*"}[choice]
    return b.binop(
        op, draw(int_exprs(depth=depth + 1)), draw(int_exprs(depth=depth + 1))
    )


@st.composite
def stmt_lists(draw, depth=0):
    n = draw(st.integers(min_value=1, max_value=3))
    out = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["assign", "if", "loop"])
            if depth < 2
            else st.just("assign")
        )
        if kind == "assign":
            out.append(
                b.assign(
                    draw(st.sampled_from(["x", "y", "z"])),
                    draw(int_exprs()),
                )
            )
        elif kind == "if":
            cond = b.binop(
                draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="])),
                draw(int_exprs()),
                draw(int_exprs()),
            )
            out.append(
                b.if_(
                    cond,
                    draw(stmt_lists(depth=depth + 1)),
                    draw(stmt_lists(depth=depth + 1))
                    if draw(st.booleans())
                    else (),
                )
            )
        else:
            out.append(
                b.do(
                    draw(st.sampled_from(["i", "j"])),
                    draw(int_exprs()),
                    draw(int_exprs()),
                    draw(stmt_lists(depth=depth + 1)),
                )
            )
    return out


def make_program(stmts):
    unit = Subroutine("t", [], {}, stmts, is_main=True)
    program = Program("t", {"t": unit}, "t")
    from repro.lang.parser import check_semantics

    check_semantics(program)
    assign_nids(program)
    return program


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(stmt_lists())
    def test_pretty_parse_fixpoint(self, stmts):
        program = make_program(stmts)
        text1 = pretty(program)
        reparsed = parse_program(text1)
        assert pretty(reparsed) == text1

    @settings(max_examples=60, deadline=None)
    @given(int_exprs())
    def test_expr_str_reparses_to_same_expr(self, expr):
        text = expr_str(expr)
        program = parse_program(f"program t\nzz = {text}\nend\n")
        assert program.main_unit.body[0].value == expr


class TestAffineConsistency:
    @settings(max_examples=80, deadline=None)
    @given(int_exprs(), st.integers(-4, 4), st.integers(-4, 4),
           st.integers(1, 9), st.integers(-4, 4))
    def test_to_affine_matches_interpreter(self, expr, i, j, n, k):
        """Where to_affine succeeds, its value equals the interpreted
        value of the expression (integer semantics agree)."""
        affine = to_affine(expr)
        if affine is None:
            return
        env = {"i": i, "j": j, "n": n, "k": k}
        from repro.lang.parser import parse_program as pp
        from repro.runtime.interp import run_program

        src = (
            "program t\ninteger i, j, n, k, zz\nread i, j, n, k\n"
            f"zz = {expr_str(expr)}\nprint zz\nend\n"
        )
        result = run_program(pp(src), [i, j, n, k])
        expected = affine.evaluate(env)
        assert Fraction(int(result.outputs[0])) == expected
