"""Unit tests for the lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src)]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert toks[-1].kind is TokKind.EOF

    def test_name_and_keyword(self):
        toks = tokenize("do i")
        assert toks[0].is_kw("do")
        assert toks[1].kind is TokKind.NAME and toks[1].value == "i"

    def test_case_insensitive(self):
        toks = tokenize("DO I")
        assert toks[0].is_kw("do")
        assert toks[1].value == "i"

    def test_int_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokKind.INT and toks[0].value == 42

    def test_real_literal(self):
        toks = tokenize("3.14")
        assert toks[0].kind is TokKind.REAL and toks[0].value == pytest.approx(3.14)

    def test_real_vs_range_dots(self):
        # "1." followed by non-digit must not become a real
        toks = tokenize("a(1) = 1")
        assert all(t.kind is not TokKind.REAL for t in toks)

    def test_string_literal(self):
        toks = tokenize("print 'hello'")
        assert toks[1].kind is TokKind.STRING and toks[1].value == "hello"


class TestOperators:
    def test_multichar_longest_match(self):
        assert "<=" in values("a <= b")
        assert "**" in values("a ** b")

    def test_fortran_dotted_ops(self):
        vals = values("a .le. b .and. c .gt. d")
        assert "<=" in vals and "and" in vals and ">" in vals

    def test_word_logical_ops(self):
        vals = values("a and b or not c")
        assert "and" in vals and "or" in vals and "not" in vals

    def test_slash_equals(self):
        assert "!=" in values("a /= b")
        assert "!=" in values("a != b")


class TestLinesAndComments:
    def test_newline_collapse(self):
        toks = tokenize("a\n\n\nb")
        newlines = [t for t in toks if t.kind is TokKind.NEWLINE]
        assert len(newlines) == 2  # one after a, one after b

    def test_semicolon_separator(self):
        toks = tokenize("a = 1; b = 2")
        newlines = [t for t in toks if t.kind is TokKind.NEWLINE]
        assert len(newlines) >= 2

    def test_comment_stripped(self):
        vals = values("a = 1 ! comment with do if end\nb = 2")
        assert "comment" not in vals and "do" not in vals

    def test_continuation(self):
        toks = tokenize("a = 1 + &\n 2")
        vals = [t.value for t in toks]
        assert 2 in vals
        # no newline between 1 + and 2
        plus_idx = vals.index("+")
        assert toks[plus_idx + 1].value == 2

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        names = [t for t in toks if t.kind is TokKind.NAME]
        assert [t.line for t in names] == [1, 2, 3]


class TestErrors:
    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a = #")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("print 'oops")

    def test_stray_ampersand(self):
        with pytest.raises(LexError):
            tokenize("a & b")

    def test_bad_dotted_op(self):
        with pytest.raises(LexError):
            tokenize("a .xyz. b")
