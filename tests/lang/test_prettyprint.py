"""Round-trip and formatting tests for the pretty printer."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.prettyprint import expr_str, pretty

ROUNDTRIP_SOURCES = [
    # simple program
    "program t\n  x = 1 + 2 * 3\nend\n",
    # loop with step and condition
    """
program t
  integer n
  real a(100)
  read n
  do i = 1, n, 2
    if (i > 5 and i < 20) then
      a(i) = a(i - 1) + 1.0
    endif
  enddo
end
""",
    # multiple units, 2-d arrays, intrinsics
    """
program t
  real b(10, 20)
  call init(b, 10, 20)
end
subroutine init(x, n, m)
  real x(10, *)
  do j = 1, m
    do i = 1, n
      x(i, j) = mod(i + j, 2) * 1.0
    enddo
  enddo
end
""",
    # elseif chains and unary operators
    """
program t
  read k
  if (k > 0) then
    s = 1
  elseif (k < 0) then
    s = -1
  else
    s = 0
  endif
  print s
end
""",
]


class TestRoundTrip:
    @pytest.mark.parametrize("src", ROUNDTRIP_SOURCES)
    def test_parse_pretty_parse_fixpoint(self, src):
        p1 = parse_program(src)
        text1 = pretty(p1)
        p2 = parse_program(text1)
        text2 = pretty(p2)
        assert text1 == text2

    def test_precedence_preserved(self):
        src = "program t\n  x = (1 + 2) * 3\n  y = 1 + 2 * 3\nend\n"
        p = parse_program(src)
        text = pretty(p)
        p2 = parse_program(text)
        assert p2.main_unit.body[0].value == p.main_unit.body[0].value
        assert p2.main_unit.body[1].value == p.main_unit.body[1].value


class TestExprStr:
    def expr(self, text):
        p = parse_program(f"program t\nreal a(10)\nx = {text}\nend\n")
        return p.main_unit.body[0].value

    def test_minimal_parens(self):
        assert expr_str(self.expr("1 + 2 * 3")) == "1 + 2 * 3"
        assert expr_str(self.expr("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_subtraction_associativity(self):
        e = self.expr("10 - 2 - 3")
        # must not print as 10 - (2 - 3)
        assert expr_str(e) in ("10 - 2 - 3",)
        p = parse_program(f"program t\nx = {expr_str(e)}\nend\n")
        assert p.main_unit.body[0].value == e

    def test_unary_minus(self):
        assert expr_str(self.expr("-i")) == "-i"

    def test_intrinsic(self):
        assert expr_str(self.expr("mod(i, 2)")) == "mod(i, 2)"

    def test_real_formatting(self):
        assert expr_str(self.expr("1.0")) == "1.0"

    def test_not_operator(self):
        e = self.expr("not i < 3")
        text = expr_str(e)
        p = parse_program(f"program t\nx = {text}\nend\n")
        assert p.main_unit.body[0].value == e
