"""Unit tests for the parser and semantic checks."""

import pytest

from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    If,
    Intrinsic,
    Num,
    ReadStmt,
    UnOp,
    VarRef,
    loops_of,
    walk_stmts,
)
from repro.lang.errors import ParseError, SemanticError
from repro.lang.parser import parse_program


def parse_main(body: str, decls: str = "") -> "Program":
    src = f"program t\n{decls}\n{body}\nend\n"
    return parse_program(src)


class TestUnits:
    def test_minimal_program(self):
        p = parse_main("x = 1")
        assert p.main == "t"
        assert len(p.main_unit.body) == 1

    def test_subroutine_with_params(self):
        src = """
program t
  real a(10)
  call f(a, 3)
end
subroutine f(x, n)
  real x(*)
  x(n) = 0.0
end
"""
        p = parse_program(src)
        assert p.units["f"].params == ["x", "n"]
        assert not p.units["f"].is_main

    def test_missing_program_unit(self):
        with pytest.raises(SemanticError):
            parse_program("subroutine f(x)\nx = 1\nend\n")

    def test_duplicate_units(self):
        src = "program t\nx=1\nend\nsubroutine t(a)\na=1\nend\n"
        with pytest.raises(SemanticError):
            parse_program(src)


class TestStatements:
    def test_assign_scalar(self):
        p = parse_main("x = 1 + 2")
        stmt = p.main_unit.body[0]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, BinOp)

    def test_assign_array(self):
        p = parse_main("a(i) = 0.0", decls="real a(10)")
        stmt = p.main_unit.body[0]
        assert isinstance(stmt.target, ArrayRef)

    def test_do_loop(self):
        p = parse_main("do i = 1, 10\n a(i) = 0.0\nenddo", decls="real a(10)")
        loop = p.main_unit.body[0]
        assert isinstance(loop, DoLoop)
        assert loop.var == "i"
        assert loop.step is None
        assert loop.label == "t:L1"

    def test_do_loop_with_step(self):
        p = parse_main("do i = 1, 10, 2\n x = i\nenddo")
        assert p.main_unit.body[0].step == Num(2)

    def test_nested_loop_labels(self):
        p = parse_main(
            "do i = 1, 10\n do j = 1, 10\n  a(i) = 0.0\n enddo\nenddo",
            decls="real a(10)",
        )
        labels = [l.label for l in loops_of(p.main_unit)]
        assert labels == ["t:L1", "t:L2"]

    def test_if_then_else(self):
        p = parse_main("if (x > 0) then\n y = 1\nelse\n y = 2\nendif")
        stmt = p.main_unit.body[0]
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_elseif_chain(self):
        p = parse_main(
            "if (x > 0) then\n y = 1\nelseif (x < 0) then\n y = 2\nelse\n y = 3\nendif"
        )
        stmt = p.main_unit.body[0]
        nested = stmt.else_body[0]
        assert isinstance(nested, If)
        assert len(nested.else_body) == 1

    def test_read(self):
        p = parse_main("read n, m")
        stmt = p.main_unit.body[0]
        assert isinstance(stmt, ReadStmt)
        assert stmt.names == ["n", "m"]

    def test_nids_unique(self):
        p = parse_main("do i = 1, 3\n x = i\nenddo\ny = 1")
        nids = [s.nid for s in walk_stmts(p.main_unit.body)]
        assert len(nids) == len(set(nids))
        assert all(n >= 0 for n in nids)


class TestExpressions:
    def expr(self, text):
        p = parse_main(f"x = {text}", decls="real a(10), b(10, 10)")
        return p.main_unit.body[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_parens(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_relational(self):
        e = self.expr("i + 1 <= n")
        assert e.op == "<=" and e.left.op == "+"

    def test_logical_precedence(self):
        e = self.expr("i < 3 and j > 2 or k == 1")
        assert e.op == "or" and e.left.op == "and"

    def test_not(self):
        e = self.expr("not i < 3")
        assert isinstance(e, UnOp) and e.op == "not"

    def test_unary_minus(self):
        e = self.expr("-i + 1")
        assert e.op == "+" and isinstance(e.left, UnOp)

    def test_power_right_assoc(self):
        e = self.expr("2 ** 3 ** 2")
        assert e.op == "**" and e.right.op == "**"

    def test_intrinsic(self):
        e = self.expr("mod(i, 2)")
        assert isinstance(e, Intrinsic) and e.name == "mod"

    def test_array_2d(self):
        e = self.expr("b(i, j)")
        assert isinstance(e, ArrayRef) and len(e.subscripts) == 2


class TestSemantics:
    def test_implicit_typing(self):
        p = parse_main("i = 1\nx = 2.0")
        assert p.main_unit.decls["i"].typ == "integer"
        assert p.main_unit.decls["x"].typ == "real"

    def test_undeclared_array_rejected(self):
        with pytest.raises(SemanticError):
            parse_main("q(1) = 0.0")

    def test_rank_mismatch(self):
        with pytest.raises(SemanticError):
            parse_main("a(1, 2) = 0.0", decls="real a(10)")

    def test_scalar_subscripted(self):
        with pytest.raises(SemanticError):
            parse_main("x = 1\nx(2) = 3")

    def test_call_unknown_unit(self):
        with pytest.raises(SemanticError):
            parse_main("call nope(1)")

    def test_call_arity_mismatch(self):
        src = "program t\ncall f(1)\nend\nsubroutine f(a, b)\nc = a + b\nend\n"
        with pytest.raises(SemanticError):
            parse_program(src)

    def test_recursion_rejected(self):
        src = (
            "program t\ncall f(1)\nend\n"
            "subroutine f(a)\ncall g(a)\nend\n"
            "subroutine g(a)\ncall f(a)\nend\n"
        )
        with pytest.raises(SemanticError):
            parse_program(src)

    def test_whole_array_call_arg_allowed(self):
        src = (
            "program t\nreal a(10)\ncall f(a)\nend\n"
            "subroutine f(x)\nreal x(*)\nx(1) = 0.0\nend\n"
        )
        p = parse_program(src)
        assert isinstance(p.main_unit.body[0], Call)

    def test_assumed_size_only_last_dim(self):
        src = "program t\nx=1\nend\nsubroutine f(a)\nreal a(*, 10)\na(1,1)=0.0\nend\n"
        with pytest.raises(SemanticError):
            parse_program(src)


class TestParseErrors:
    def test_missing_enddo(self):
        with pytest.raises(ParseError):
            parse_program("program t\ndo i = 1, 3\nx = 1\nend\n")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse_main("= 5")

    def test_assign_to_intrinsic(self):
        with pytest.raises(ParseError):
            parse_main("mod(i, 2) = 1")

    def test_bad_if(self):
        with pytest.raises(ParseError):
            parse_main("if x > 0 then\ny=1\nendif")
