"""Unit tests for the programmatic AST builder."""

from repro.lang import builder as b
from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    BinOp,
    DoLoop,
    If,
    Num,
    UnOp,
    VarRef,
    walk_stmts,
)


class TestExprHelpers:
    def test_as_expr_coercions(self):
        assert b.as_expr(3) == Num(3)
        assert b.as_expr(2.5) == Num(2.5)
        assert b.as_expr("i") == VarRef("i")
        v = VarRef("x")
        assert b.as_expr(v) is v

    def test_arithmetic(self):
        e = b.add("i", 1)
        assert e == BinOp("+", VarRef("i"), Num(1))
        assert b.mul(2, "j").op == "*"
        assert b.sub("i", "j").op == "-"
        assert b.div("i", 2).op == "/"

    def test_relational(self):
        assert b.lt("i", "n").op == "<"
        assert b.le("i", "n").op == "<="
        assert b.gt("i", "n").op == ">"
        assert b.ge("i", "n").op == ">="
        assert b.eq("i", "n").op == "=="
        assert b.ne("i", "n").op == "!="

    def test_logical(self):
        assert b.land(b.lt("i", 3), b.gt("j", 2)).op == "and"
        assert b.lor(b.lt("i", 3), b.gt("j", 2)).op == "or"
        assert isinstance(b.lnot(b.lt("i", 3)), UnOp)

    def test_aref(self):
        e = b.aref("a", "i", 1)
        assert isinstance(e, ArrayRef)
        assert e.subscripts == (VarRef("i"), Num(1))

    def test_mod(self):
        e = b.mod("n", 4)
        assert e.name == "mod" and len(e.args) == 2


class TestStmtHelpers:
    def test_assign(self):
        s = b.assign("x", 1)
        assert isinstance(s, Assign) and s.target == VarRef("x")

    def test_assign_array_target(self):
        s = b.assign(b.aref("a", "i"), 0)
        assert isinstance(s.target, ArrayRef)

    def test_do(self):
        s = b.do("i", 1, "n", [b.assign("x", "i")])
        assert isinstance(s, DoLoop)
        assert s.step is None
        s2 = b.do("i", 1, "n", [], step=2)
        assert s2.step == Num(2)

    def test_if(self):
        s = b.if_(b.gt("x", 0), [b.assign("y", 1)], [b.assign("y", 2)])
        assert isinstance(s, If)
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_call_read(self):
        c = b.call("foo", "a", 3)
        assert c.name == "foo" and len(c.args) == 2
        r = b.read("n", "m")
        assert r.names == ["n", "m"]


class TestClone:
    def test_clone_fresh_identity(self):
        loop = b.do("i", 1, 10, [b.assign("x", "i")])
        copy = b.clone_stmt(loop)
        assert copy is not loop
        assert copy.body[0] is not loop.body[0]
        assert copy.var == loop.var and copy.lo == loop.lo

    def test_clone_deep(self):
        inner = b.if_(b.gt("x", 0), [b.assign("y", 1)])
        loop = b.do("i", 1, 10, [inner])
        copy = b.clone_stmt(loop)
        copy.body[0].then_body.append(b.assign("z", 2))
        assert len(inner.then_body) == 1  # original untouched

    def test_clone_body_count(self):
        body = [b.assign("x", 1), b.assign("y", 2)]
        copied = b.clone_body(body)
        assert len(copied) == 2
        assert all(c is not o for c, o in zip(copied, body))

    def test_clone_preserves_line_and_label(self):
        loop = b.do("i", 1, 10, [], line=42)
        loop.label = "t:L9"
        copy = b.clone_stmt(loop)
        assert copy.line == 42 and copy.label == "t:L9"

    def test_cloned_stmts_countable(self):
        loop = b.do("i", 1, 10, [b.assign("x", "i"), b.assign("y", "i")])
        assert len(list(walk_stmts([b.clone_stmt(loop)]))) == 3
