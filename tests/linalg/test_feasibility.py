"""Unit tests for feasibility and implication."""

from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import is_feasible, is_rationally_feasible
from repro.linalg.implication import (
    any_entailed,
    entails,
    remove_redundant,
    system_implies,
    systems_equivalent,
)
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

I = AffineExpr.var("i")
J = AffineExpr.var("j")
N = AffineExpr.var("n")
C = AffineExpr.const


class TestFeasibility:
    def test_universe_feasible(self):
        assert is_feasible(LinearSystem.universe())

    def test_empty_infeasible(self):
        assert not is_feasible(LinearSystem.empty())

    def test_interval(self):
        assert is_feasible(LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(1))]))
        assert not is_feasible(
            LinearSystem([Constraint.ge(I, C(2)), Constraint.le(I, C(1))])
        )

    def test_parametric(self):
        # 1 <= i <= n is feasible (n free)
        assert is_feasible(LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)]))
        # ... but not once n <= 0
        assert not is_feasible(
            LinearSystem(
                [Constraint.ge(I, C(1)), Constraint.le(I, N), Constraint.le(N, C(0))]
            )
        )

    def test_equality_chain(self):
        s = LinearSystem(
            [Constraint.eq(I, J), Constraint.eq(J, C(3)), Constraint.le(I, C(2))]
        )
        assert not is_feasible(s)

    def test_triangle(self):
        s = LinearSystem(
            [
                Constraint.ge(I, C(0)),
                Constraint.ge(J, C(0)),
                Constraint.le(I + J, C(-1)),
            ]
        )
        assert not is_feasible(s)

    def test_rational_alias(self):
        s = LinearSystem([Constraint.ge(I, C(1))])
        assert is_rationally_feasible(s) == is_feasible(s)


class TestEntailment:
    def setup_method(self):
        self.loop = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])

    def test_entails_own_constraint(self):
        assert entails(self.loop, Constraint.ge(I, C(1)))

    def test_entails_weaker(self):
        assert entails(self.loop, Constraint.ge(I, C(0)))

    def test_not_entails_stronger(self):
        assert not entails(self.loop, Constraint.ge(I, C(2)))

    def test_empty_entails_everything(self):
        assert entails(LinearSystem.empty(), Constraint.le(C(1), C(0)))

    def test_entails_equality(self):
        s = LinearSystem([Constraint.ge(I, C(3)), Constraint.le(I, C(3))])
        assert entails(s, Constraint.eq(I, C(3)))
        assert not entails(self.loop, Constraint.eq(I, C(3)))

    def test_entails_derived(self):
        # i <= n and n <= 5 entail i <= 5
        s = self.loop.conjoin(Constraint.le(N, C(5)))
        assert entails(s, Constraint.le(I, C(5)))

    def test_any_entailed(self):
        assert any_entailed(
            self.loop, [Constraint.ge(I, C(2)), Constraint.ge(I, C(0))]
        )
        assert not any_entailed(self.loop, [Constraint.ge(I, C(2))])


class TestSystemImplies:
    def test_subset_implies(self):
        a = LinearSystem([Constraint.ge(I, C(2)), Constraint.le(I, C(4))])
        b = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, C(10))])
        assert system_implies(a, b)
        assert not system_implies(b, a)

    def test_equivalence(self):
        a = LinearSystem([Constraint.le(AffineExpr.var("i", 2), C(4))])
        b = LinearSystem([Constraint.le(I, C(2))])
        assert systems_equivalent(a, b)

    def test_universe_implied_by_all(self):
        assert system_implies(LinearSystem.empty(), LinearSystem.universe())
        assert system_implies(LinearSystem.universe(), LinearSystem.universe())


class TestRemoveRedundant:
    def test_drops_implied(self):
        s = LinearSystem(
            [
                Constraint.ge(I, C(2)),
                Constraint.ge(I, C(0)),  # implied
                Constraint.le(I, N),
            ]
        )
        r = remove_redundant(s)
        assert len(r) == 2
        assert systems_equivalent(r, s)

    def test_noop_when_minimal(self):
        s = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        assert remove_redundant(s) == s
