"""`remove_redundant` single-pass vs. the classic fixpoint reference.

The rewritten single pass must compute exactly the constraint list the
old remove-one-and-restart loop converged to — entailment is monotone in
the constraint set, so a constraint kept against the full set stays
non-entailed after later removals.  The randomized corpus here checks
that equivalence on systems shaped like region bounds (single- and
two-variable rows, occasional equalities, occasionally infeasible).
"""

import random

import pytest

from repro import perf
from repro.linalg.constraint import Constraint
from repro.linalg.implication import entails, remove_redundant
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
V = [AffineExpr.var(n) for n in ("x", "y", "z")]


def _reference_remove_redundant(system: LinearSystem) -> LinearSystem:
    """The pre-oracle implementation: pop one entailed constraint, then
    restart the scan, until a full scan removes nothing."""
    kept = list(system.constraints)
    changed = True
    while changed:
        changed = False
        for i, c in enumerate(kept):
            rest = LinearSystem(kept[:i] + kept[i + 1 :])
            if entails(rest, c):
                kept.pop(i)
                changed = True
                break
    return LinearSystem(kept)


def _random_system(rng: random.Random) -> LinearSystem:
    rows = []
    for _ in range(rng.randrange(2, 7)):
        v = V[rng.randrange(len(V))]
        c = C(rng.randrange(-5, 6))
        kind = rng.randrange(5)
        if kind == 0:
            rows.append(Constraint.ge(v, c))
        elif kind == 1:
            rows.append(Constraint.le(v, c))
        elif kind == 2:
            rows.append(Constraint.eq(v, c))
        else:
            w = V[rng.randrange(len(V))]
            row = Constraint.le(v - w, c) if kind == 3 else Constraint.ge(
                v + w, c
            )
            rows.append(row)
    return LinearSystem(rows)


@pytest.mark.parametrize("seed", range(6))
def test_single_pass_matches_fixpoint_reference(seed):
    rng = random.Random(seed)
    for _ in range(60):
        system = _random_system(rng)
        fast = remove_redundant(system)
        slow = _reference_remove_redundant(system)
        assert list(fast.constraints) == list(slow.constraints), system


def test_matches_reference_with_oracle_cache_disabled():
    """The rewrite is independent of the entailment memo."""
    rng = random.Random(99)
    systems = [_random_system(rng) for _ in range(30)]
    expected = [_reference_remove_redundant(s) for s in systems]
    perf.set_pred_oracle(False)
    try:
        got = [remove_redundant(s) for s in systems]
    finally:
        perf.set_pred_oracle(None)
    for s, e, g in zip(systems, expected, got):
        assert list(e.constraints) == list(g.constraints), s


def test_keeps_duplicate_free_minimal_form():
    x = V[0]
    system = LinearSystem(
        [
            Constraint.ge(x, C(0)),
            Constraint.ge(x, C(0)),  # exact duplicate
            Constraint.ge(x, C(-5)),  # entailed by x >= 0
            Constraint.le(x, C(9)),
        ]
    )
    out = remove_redundant(system)
    assert list(out.constraints) == list(
        _reference_remove_redundant(system).constraints
    )
    assert len(out) <= 2
