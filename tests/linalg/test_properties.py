"""Property-based tests for the linear-algebra substrate (hypothesis)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.fourier_motzkin import eliminate
from repro.linalg.implication import entails
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

VARS = ["i", "j", "k"]

coeffs = st.integers(min_value=-4, max_value=4)
consts = st.integers(min_value=-10, max_value=10)


@st.composite
def affine_exprs(draw):
    cs = {v: draw(coeffs) for v in VARS}
    return AffineExpr(cs, draw(consts))


@st.composite
def le_constraints(draw):
    return Constraint(draw(affine_exprs()), Rel.LE)


@st.composite
def systems(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    return LinearSystem([draw(le_constraints()) for _ in range(n)])


points = st.fixed_dictionaries({v: st.integers(min_value=-6, max_value=6) for v in VARS})


class TestAffineAlgebraProperties:
    @given(affine_exprs(), affine_exprs(), points)
    def test_addition_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affine_exprs(), st.integers(min_value=-5, max_value=5), points)
    def test_scaling_pointwise(self, a, s, env):
        assert (a * s).evaluate(env) == a.evaluate(env) * s

    @given(affine_exprs(), points)
    def test_negation_involution(self, a, env):
        assert (-(-a)) == a
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(affine_exprs())
    def test_primitive_preserves_sign(self, a):
        p = a.primitive()
        # content is positive, so sign at any point is preserved; check zero
        if a.is_zero():
            assert p.is_zero()


class TestConstraintProperties:
    @given(affine_exprs(), points)
    def test_normalization_preserves_truth(self, e, env):
        """Constraint normalization (gcd tightening) must not change the
        integer-point truth value."""
        c = Constraint(e, Rel.LE)
        raw = e.evaluate(env) <= 0
        assert c.evaluate(env) == raw

    @given(le_constraints(), points)
    def test_negation_complements(self, c, env):
        assert c.evaluate(env) != c.negate().evaluate(env)


class TestSystemProperties:
    @given(systems(), points)
    def test_membership_is_conjunction(self, s, env):
        expected = all(c.evaluate(env) for c in s)
        assert s.evaluate(env) == expected

    @given(systems(), points)
    def test_simplified_preserves_membership(self, s, env):
        assert s.evaluate(env) == s.simplified().evaluate(env)

    @given(systems(), systems(), points)
    def test_conjoin_is_intersection(self, a, b, env):
        assert (a & b).evaluate(env) == (a.evaluate(env) and b.evaluate(env))


class TestFourierMotzkinProperties:
    @settings(max_examples=60)
    @given(systems(), st.sampled_from(VARS), points)
    def test_projection_superset(self, s, var, env):
        """Any point of the original system maps into the projection."""
        if s.evaluate(env):
            proj = eliminate(s, var)
            assert var not in proj.variables()
            # evaluation only consults mentioned variables
            assert proj.evaluate(env)

    @settings(max_examples=60)
    @given(systems(), st.sampled_from(VARS), points)
    def test_feasibility_monotone_under_projection(self, s, var, env):
        """Projection never turns an integer-feasible system infeasible.

        ``eliminate`` applies gcd-based integer tightening while
        ``is_feasible`` answers over the rationals, so a rationally
        feasible but integer-empty system (e.g. one forcing
        ``i - k == 1/2``) may legitimately project to an infeasible
        system.  The sound property is therefore stated for integer
        witnesses: any system with an integer point stays feasible
        under projection.
        """
        if s.evaluate(env):
            assert is_feasible(s)
            assert is_feasible(eliminate(s, var))


class TestEntailmentProperties:
    @settings(max_examples=60)
    @given(systems(), le_constraints(), points)
    def test_entailment_sound_on_points(self, s, c, env):
        """If `s` entails `c`, every sampled point of `s` satisfies `c`."""
        if entails(s, c) and s.evaluate(env):
            assert c.evaluate(env)

    @given(systems())
    def test_system_entails_own_constraints(self, s):
        for c in s:
            assert entails(s, c)
