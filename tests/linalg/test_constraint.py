"""Unit tests for single-constraint normalization and classification."""

import pytest

from repro.linalg.constraint import FALSE, TRUE, Constraint, Rel
from repro.symbolic.affine import AffineExpr

I = AffineExpr.var("i")
J = AffineExpr.var("j")
N = AffineExpr.var("n")
C = AffineExpr.const


class TestConstructors:
    def test_le(self):
        c = Constraint.le(I, N)
        assert c.rel is Rel.LE
        assert c.expr == I - N

    def test_lt_is_integer_strict(self):
        c = Constraint.lt(I, N)
        # i < n over integers is i - n + 1 <= 0
        assert c.expr == I - N + 1

    def test_ge(self):
        c = Constraint.ge(I, C(1))
        assert c.expr == -I + 1

    def test_gt(self):
        c = Constraint.gt(I, C(0))
        assert c.expr == -I + 1

    def test_eq(self):
        c = Constraint.eq(I, J)
        assert c.rel is Rel.EQ


class TestNormalization:
    def test_gcd_tightening(self):
        # 2i <= 5  =>  i <= 2
        c = Constraint.le(AffineExpr.var("i", 2), C(5))
        assert c == Constraint.le(I, C(2))

    def test_gcd_tightening_negative(self):
        # 3i >= 7  =>  i >= 3  (ceil)
        c = Constraint.ge(AffineExpr.var("i", 3), C(7))
        assert c == Constraint.ge(I, C(3))

    def test_fraction_scaling(self):
        from fractions import Fraction

        c = Constraint.le(AffineExpr.var("i", Fraction(1, 2)), C(1))
        assert c == Constraint.le(I, C(2))

    def test_no_tightening_on_mixed_gcd(self):
        c = Constraint.le(AffineExpr({"i": 2, "j": 3}), C(5))
        assert c.expr == AffineExpr({"i": 2, "j": 3}, -5)


class TestClassification:
    def test_tautology(self):
        assert TRUE.is_tautology()
        assert Constraint.le(C(0), C(5)).is_tautology()
        assert Constraint.eq(C(3), C(3)).is_tautology()

    def test_contradiction(self):
        assert FALSE.is_contradiction()
        assert Constraint.le(C(5), C(0)).is_contradiction()
        assert Constraint.eq(C(1), C(2)).is_contradiction()

    def test_integer_infeasible_equality(self):
        # 2i == 1 has no integer solution
        c = Constraint.eq(AffineExpr.var("i", 2), C(1))
        assert c.is_contradiction()

    def test_feasible_equality_not_contradiction(self):
        c = Constraint.eq(AffineExpr.var("i", 2), C(4))
        assert not c.is_contradiction()

    def test_open_constraint_neither(self):
        c = Constraint.le(I, N)
        assert not c.is_tautology() and not c.is_contradiction()


class TestAlgebra:
    def test_negate_le(self):
        c = Constraint.le(I, C(5))  # i <= 5
        n = c.negate()  # i >= 6
        assert n == Constraint.ge(I, C(6))

    def test_negate_eq_raises(self):
        with pytest.raises(ValueError):
            Constraint.eq(I, C(0)).negate()

    def test_double_negation(self):
        c = Constraint.le(I, N)
        assert c.negate().negate() == c

    def test_substitute(self):
        c = Constraint.le(I, N)
        assert c.substitute({"n": C(10)}) == Constraint.le(I, C(10))

    def test_rename(self):
        c = Constraint.le(I, N)
        assert c.rename({"i": "k"}) == Constraint.le(AffineExpr.var("k"), N)

    def test_evaluate(self):
        c = Constraint.le(I, N)
        assert c.evaluate({"i": 3, "n": 5})
        assert not c.evaluate({"i": 6, "n": 5})

    def test_evaluate_eq(self):
        c = Constraint.eq(I, J)
        assert c.evaluate({"i": 2, "j": 2})
        assert not c.evaluate({"i": 2, "j": 3})


class TestPlumbing:
    def test_immutability(self):
        c = Constraint.le(I, N)
        with pytest.raises(AttributeError):
            c.rel = Rel.EQ

    def test_hash_consistency(self):
        assert hash(Constraint.le(I, N)) == hash(Constraint.le(I, N))

    def test_str(self):
        assert "<=" in str(Constraint.le(I, N))
        assert "==" in str(Constraint.eq(I, N))
