"""Differential fuzzing: packed kernel vs. legacy kernel.

Seeded random systems — mixed ``<=``/``==`` rows, rational coefficients
(scaled integral by constraint normalization), degenerate and
contradictory rows — are pushed through ``eliminate`` / ``eliminate_all``
/ ``is_feasible`` / ``entails`` in both kernel modes.  The contract under
test:

* **identical results** — pointer-equal interned systems when the intern
  tables are shared between the two runs, equal canonical forms always;
* **identical counter deltas** — ``fm.eliminate`` / ``fm.pair_combine`` /
  ``fm.fallback_drop`` advance identically from cold caches, i.e. the
  packed kernel performs exactly the legacy eliminations (including memo
  hit/miss structure and the blowup fallback), just on packed rows.
"""

import random
import warnings
from fractions import Fraction

import pytest

from repro import perf
from repro.linalg import feasibility
from repro.linalg import fourier_motzkin as fm
from repro.linalg import packed
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.fourier_motzkin import eliminate, eliminate_all
from repro.linalg.implication import system_implies
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

PARITY_COUNTERS = ("fm.eliminate", "fm.pair_combine", "fm.fallback_drop")


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    perf.set_packed_kernel(None)
    perf.reset_all_caches()
    perf.reset_counters()


def _random_system(rng, nvars, nrows):
    vars_ = [f"v{i}" for i in range(nvars)]
    cons = []
    for _ in range(nrows):
        coeffs = {}
        for v in vars_:
            if rng.random() < 0.6:
                c = rng.randint(-6, 6)
                if c and rng.random() < 0.2:
                    c = Fraction(c, rng.randint(1, 4))
                if c:
                    coeffs[v] = c
        const = rng.randint(-12, 12)
        if rng.random() < 0.15:
            const = Fraction(const, rng.randint(1, 3))
        rel = Rel.EQ if rng.random() < 0.3 else Rel.LE
        cons.append(Constraint(AffineExpr(coeffs, const), rel))
    return LinearSystem(tuple(cons))


def _corpus(seed, count=50):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        out.append(
            _random_system(rng, rng.randint(1, 5), rng.randint(1, 9))
        )
    # degenerate shapes the generator rarely emits
    out.append(LinearSystem())  # universe
    out.append(LinearSystem.empty())  # canonical false
    return out


def _ops(systems):
    """A deterministic op sequence with repeats (exercises the memos)."""
    ops = []
    for i, s in enumerate(systems):
        vs = sorted(s.variables())
        if vs:
            ops.append(("eliminate", s, vs[0]))
            ops.append(("eliminate_all", s, tuple(vs)))
            ops.append(("eliminate", s, vs[0]))  # memo hit
            ops.append(("eliminate_all", s, tuple(vs)))  # memo hit
        ops.append(("feasible", s, None))
        if i > 0:
            ops.append(("implies", s, systems[i - 1]))
    return ops


def _run(op):
    kind, a, b = op
    if kind == "eliminate":
        return eliminate(a, b)
    if kind == "eliminate_all":
        return eliminate_all(a, b)
    if kind == "feasible":
        return is_feasible(a)
    return system_implies(a, b)


def _run_mode(enabled, ops):
    perf.set_packed_kernel(enabled)
    perf.reset_all_caches()
    perf.reset_counters()
    results = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for op in ops:
            results.append(_run(op))
    return results, {c: perf.counter(c) for c in PARITY_COUNTERS}


@pytest.mark.parametrize("seed", [1234, 777, 20260806])
def test_counter_parity_and_equal_results(seed):
    """Cold-cache runs in each mode: equal counters, equal canonical
    results.  (Pointer identity is checked separately — a full cache
    reset between modes re-seeds the intern tables, so `is` across the
    reset is not meaningful here.)"""
    ops = _ops(_corpus(seed))
    legacy_results, legacy_counters = _run_mode(False, ops)
    packed_results, packed_counters = _run_mode(True, ops)

    assert legacy_counters == packed_counters
    assert legacy_counters["fm.eliminate"] > 0  # corpus exercised the kernel
    for op, lr, pr in zip(ops, legacy_results, packed_results):
        if isinstance(lr, bool):
            assert lr == pr, op
        else:
            # across a cache reset, compare canonical renderings
            assert str(lr) == str(pr), op


@pytest.mark.parametrize("seed", [42, 9001])
def test_pointer_equal_results_with_shared_interns(seed):
    """With the intern tables left shared (only the FM-layer memos
    cleared between runs), both kernels must return the *same interned
    objects*."""
    systems = [
        s for s in _corpus(seed, count=30) if s.variables()
    ]
    perf.reset_all_caches()
    perf.reset_counters()

    def run_all():
        out = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for s in systems:
                vs = sorted(s.variables())
                out.append(eliminate(s, vs[0]))
                out.append(eliminate_all(s, tuple(vs)))
        return out

    perf.set_packed_kernel(False)
    legacy = run_all()
    # clear only the FM-layer memos so interned values stay shared
    fm._ELIM.data.clear()
    fm._ELIM_ALL.data.clear()
    packed._LOWER.data.clear()
    packed._REUSE.data.clear()
    feasibility.clear_cache()
    perf.set_packed_kernel(True)
    repacked = run_all()
    for i, (lr, pr) in enumerate(zip(legacy, repacked)):
        assert lr is pr, f"op {i}: results not pointer-equal"


def test_blowup_fallback_parity():
    """Systems past the pair-combination guard take the fallback drop in
    both modes, with identical fm.fallback_drop deltas and results."""
    n = 60  # 60 lowers x 60 uppers = 3600 pairs > MAX_CONSTRAINTS * 4
    x = AffineExpr.var("x")
    cons = []
    for k in range(n):
        y = AffineExpr.var(f"y{k}")
        cons.append(Constraint.le(x, y * (k + 2)))  # upper bounds on x
        cons.append(Constraint.ge(x, y * -(k + 2)))  # lower bounds on x
    s = LinearSystem(tuple(cons))
    ops = [("eliminate", s, "x")]
    legacy_results, legacy_counters = _run_mode(False, ops)
    packed_results, packed_counters = _run_mode(True, ops)
    assert legacy_counters == packed_counters
    assert legacy_counters["fm.fallback_drop"] == 1
    assert str(legacy_results[0]) == str(packed_results[0])
