"""Unit tests for the packed integer-matrix FM kernel.

The differential fuzz suite (``test_packed_fuzz.py``) covers the
identical-results contract broadly; these tests pin the packed form
itself — lowering/lifting round trips, row normalization against the
symbolic normalizers, canonicalization, and the memo tables.
"""

from fractions import Fraction

import pytest

from repro import perf
from repro.linalg import packed
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

C = AffineExpr.const
I = AffineExpr.var("i")
J = AffineExpr.var("j")
K = AffineExpr.var("k")


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf.reset_all_caches()
    perf.reset_counters()
    yield
    perf.set_packed_kernel(None)


def _sys(*constraints):
    return LinearSystem(tuple(constraints))


class TestLowerLift:
    def test_round_trip_is_pointer_equal(self):
        s = _sys(
            Constraint.le(I, C(10)),
            Constraint.ge(I, C(0)),
            Constraint.eq(J, I + C(1)),
        )
        assert packed.lift(packed.lower(s)) is s

    def test_lower_is_memoized_both_directions(self):
        s = _sys(Constraint.le(I, C(5)))
        p1 = packed.lower(s)
        hits = packed._LOWER.hits
        p2 = packed.lower(s)
        assert p2 is p1
        assert packed._LOWER.hits == hits + 1
        # lifting the lowered form is a pure lookup, not a rebuild
        hits = packed._LOWER.hits
        assert packed.lift(p1) is s
        assert packed._LOWER.hits == hits + 1

    def test_variable_order_is_sorted(self):
        s = _sys(Constraint.le(K + J + I, C(0)))
        vars_, rows = packed.lower(s)
        assert vars_ == ("i", "j", "k")
        assert len(rows) == 1

    def test_universe_and_false(self):
        assert packed.lower(LinearSystem()) == ((), ())
        assert packed.lower(LinearSystem.empty()) == packed._FALSE_PACKED
        assert packed.lift(packed._FALSE_PACKED) is LinearSystem.empty()

    def test_lower_rejects_non_integer_rows(self):
        # normalization makes every interned constraint all-integer, so a
        # rational coefficient surviving to lower() is an invariant break
        s = _sys(Constraint.le(I * Fraction(1, 3), C(1)))
        for c in s:
            for _, cf in c.expr.terms():
                assert cf == int(cf)  # tighten_le scaled it integral


class TestRowNormalization:
    def test_norm_le_matches_tighten(self):
        # 4i + 6j + 10 <= 0 -> content 2 -> 2i + 3j + 5 <= 0 (gcd(2,3)=1)
        assert packed._norm_le_row((4, 6), 10) == ((2, 3), 5)
        # 4i + 7 <= 0 -> tighten: i <= -7/4 -> i + 2 <= 0 (floor)
        assert packed._norm_le_row((4,), 7) == ((1,), 2)
        # constant-only rows keep content-1 scaling (3 <= 0 -> 1 <= 0,
        # the canonical FALSE row), matching integerize
        assert packed._norm_le_row((0, 0), 3) == ((0, 0), 1)
        assert packed._norm_le_row((0, 0), -3) == ((0, 0), -1)

    def test_norm_le_agrees_with_constraint_interning(self):
        for coeffs, const in [
            ((4,), 7),
            ((-6, 9), 4),
            ((2, 4), -6),
            ((0,), 5),
            ((3, -3), 0),
        ]:
            vars_ = ("i", "j")[: len(coeffs)]
            expr = AffineExpr(
                {v: c for v, c in zip(vars_, coeffs) if c}, const
            )
            c = Constraint(expr, Rel.LE)
            nc, nk = packed._norm_le_row(coeffs, const)
            rebuilt = Constraint(
                AffineExpr(
                    {v: x for v, x in zip(vars_, nc) if x}, nk
                ),
                Rel.LE,
            )
            assert rebuilt is c

    def test_norm_eq_matches_integerize(self):
        assert packed._norm_eq_row((4, 6), 10) == ((2, 3), 5)
        # no gcd tightening for equalities beyond content removal
        assert packed._norm_eq_row((2, 4), 5) == ((2, 4), 5)

    def test_row_class(self):
        TAUT, OPEN, CONTRA = (
            packed._TAUT,
            packed._OPEN,
            packed._CONTRA,
        )
        assert packed._row_class(False, (0, 0), 0) == TAUT
        assert packed._row_class(False, (0, 0), 1) == CONTRA
        assert packed._row_class(True, (0,), 0) == TAUT
        assert packed._row_class(True, (0,), 2) == CONTRA
        # 2i + 4j == 5 has no integer solution
        assert packed._row_class(True, (2, 4), 5) == CONTRA
        assert packed._row_class(True, (2, 3), 5) == OPEN
        assert packed._row_class(False, (1,), 3) == OPEN


class TestCanon:
    def test_contradiction_folds_to_false(self):
        out = packed._canon(("i",), [(False, (1,), 0), (False, (0,), 2)])
        assert out == packed._FALSE_PACKED

    def test_dedup_and_dead_column_compression(self):
        rows = [
            (False, (1, 0), -5),
            (False, (1, 0), -5),
            (False, (0, 0), 0),  # tautology dropped
        ]
        vars_, kept = packed._canon(("i", "j"), rows)
        assert vars_ == ("i",)  # j column was dead
        assert kept == ((False, (1,), -5),)

    def test_sort_matches_system_order(self):
        s = _sys(
            Constraint.le(I, C(9)),
            Constraint.ge(J, C(2)),
            Constraint.eq(K, C(4)),
        )
        lowered = packed.lower(s)
        shuffled = packed._canon(lowered[0], list(reversed(lowered[1])))
        assert shuffled == lowered


class TestEliminationStep:
    def test_matches_legacy_eliminate(self):
        from repro.linalg.fourier_motzkin import _eliminate_uncached

        s = _sys(
            Constraint.ge(I, C(0)),
            Constraint.le(I, J),
            Constraint.le(J, C(10)),
        )
        expected = _eliminate_uncached(s, "i")
        got = packed.eliminate_packed(s, "i")
        assert got is expected

    def test_unit_eq_substitution_matches(self):
        from repro.linalg.fourier_motzkin import _eliminate_uncached

        s = _sys(
            Constraint.eq(I, J + C(3)),
            Constraint.le(I, C(10)),
            Constraint.ge(I, C(0)),
        )
        assert packed.eliminate_packed(s, "i") is _eliminate_uncached(s, "i")

    def test_reuse_memo_hits_on_repeat(self):
        s = _sys(Constraint.ge(I, C(0)), Constraint.le(I, C(5)))
        packed.eliminate_packed(s, "i")
        misses = packed._REUSE.misses
        hits = packed._REUSE.hits
        packed.eliminate_packed(s, "i")
        assert packed._REUSE.misses == misses
        assert packed._REUSE.hits == hits + 1

    def test_eliminate_all_matches_legacy(self):
        from repro.linalg.fourier_motzkin import (
            _eliminate_all_legacy,
            eliminate_all,
        )

        s = _sys(
            Constraint.ge(I, C(1)),
            Constraint.le(I, J),
            Constraint.le(J, K),
            Constraint.le(K, C(100)),
        )
        todo = tuple(sorted(("i", "j")))
        perf.set_packed_kernel(False)
        expected = _eliminate_all_legacy(s, todo)
        perf.set_packed_kernel(True)
        assert packed.eliminate_all_packed(s, todo) is expected
        # and the public dispatcher routes to the same result
        assert eliminate_all(s, ("i", "j")) is expected


class TestNumpyPath:
    def test_numpy_combine_matches_scalar(self):
        np = pytest.importorskip("numpy")
        assert packed._np is np
        rng_rows = [
            (False, (-(i % 4 + 1), i - 6, 2 * i - 3), i - 5)
            for i in range(10)
        ]
        lowers = [r for r in rng_rows if r[1][0] < 0]
        uppers = [
            (False, (i % 3 + 1, 4 - i, i), 7 - i) for i in range(10)
        ]
        got = packed._combine_pairs_numpy(lowers, uppers, 0)
        want = packed._combine_pairs_scalar(lowers, uppers, 0)
        assert got == want

    def test_overflow_guard_rejects_huge_coefficients(self):
        big = 2**40
        lowers = [(False, (-big, big), big)] * 8
        uppers = [(False, (big, -big), big)] * 8
        assert not packed._numpy_combinable(lowers, uppers, 0)


class TestMemoRegistration:
    def test_packed_memos_clear_on_reset(self):
        s = _sys(Constraint.ge(I, C(0)), Constraint.le(I, C(5)))
        packed.eliminate_packed(s, "i")
        assert packed._LOWER.data and packed._REUSE.data
        perf.reset_all_caches()
        assert not packed._LOWER.data
        assert not packed._REUSE.data

    def test_registered_names(self):
        assert perf.tracked_cache(packed._LOWER) == (
            "fm.packed.lower",
            "memo",
        )
        assert perf.tracked_cache(packed._REUSE) == (
            "fm.packed.reuse",
            "memo",
        )
