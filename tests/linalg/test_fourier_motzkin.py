"""Unit tests for Fourier–Motzkin elimination."""

import pytest

from repro.linalg.constraint import Constraint
from repro.linalg.fourier_motzkin import eliminate, eliminate_all
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

I = AffineExpr.var("i")
J = AffineExpr.var("j")
N = AffineExpr.var("n")
C = AffineExpr.const


class TestEliminate:
    def test_simple_interval(self):
        # 1 <= i <= n ; eliminating i gives n >= 1
        s = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        r = eliminate(s, "i")
        assert "i" not in r.variables()
        assert r.evaluate({"n": 1})
        assert not r.evaluate({"n": 0})

    def test_var_absent_noop(self):
        s = LinearSystem([Constraint.le(J, N)])
        assert eliminate(s, "i") is s

    def test_chained_bounds(self):
        # i <= j, j <= n, i >= 1; eliminate j => 1 <= i <= n
        s = LinearSystem(
            [Constraint.le(I, J), Constraint.le(J, N), Constraint.ge(I, C(1))]
        )
        r = eliminate(s, "j")
        assert r.evaluate({"i": 1, "n": 1})
        assert not r.evaluate({"i": 2, "n": 1})

    def test_equality_substitution(self):
        # j == i + 1, j <= n; eliminate j => i + 1 <= n
        s = LinearSystem([Constraint.eq(J, I + 1), Constraint.le(J, N)])
        r = eliminate(s, "j")
        assert r == LinearSystem([Constraint.le(I + 1, N)])

    def test_equality_nonunit_coefficient(self):
        # 2j == i, 1 <= j <= 3 ; eliminate j => i in [2, 6] rationally
        s = LinearSystem(
            [
                Constraint.eq(AffineExpr.var("j", 2), I),
                Constraint.ge(J, C(1)),
                Constraint.le(J, C(3)),
            ]
        )
        r = eliminate(s, "j")
        assert "j" not in r.variables()
        assert r.evaluate({"i": 4})
        assert not r.evaluate({"i": 8})

    def test_no_upper_bounds_drops_lowers(self):
        # only i >= 1: projection of i is the universe
        s = LinearSystem([Constraint.ge(I, C(1))])
        assert eliminate(s, "i").is_universe()

    def test_infeasible_detected_at_ground(self):
        # i >= 5 and i <= 2
        s = LinearSystem([Constraint.ge(I, C(5)), Constraint.le(I, C(2))])
        assert eliminate(s, "i").is_trivially_empty()

    def test_rational_combination(self):
        # 2i >= j and 3i <= n, eliminate i: 3j <= 2n
        s = LinearSystem(
            [
                Constraint.ge(AffineExpr.var("i", 2), J),
                Constraint.le(AffineExpr.var("i", 3), N),
            ]
        )
        r = eliminate(s, "i")
        assert r.evaluate({"j": 2, "n": 3})
        assert not r.evaluate({"j": 4, "n": 3})


class TestEliminateAll:
    def test_eliminate_all_to_ground(self):
        s = LinearSystem(
            [
                Constraint.ge(I, C(1)),
                Constraint.le(I, J),
                Constraint.le(J, C(10)),
            ]
        )
        r = eliminate_all(s, ["i", "j"])
        assert r.is_universe()

    def test_eliminate_all_keeps_params(self):
        s = LinearSystem(
            [Constraint.ge(I, C(1)), Constraint.le(I, N)]
        )
        r = eliminate_all(s, ["i"])
        assert r.variables() == frozenset({"n"})

    def test_eliminate_all_infeasible(self):
        s = LinearSystem(
            [
                Constraint.ge(I, J),
                Constraint.ge(J, I + 1),
            ]
        )
        r = eliminate_all(s, ["i", "j"])
        assert r.is_trivially_empty()

    def test_projection_soundness_samples(self):
        # every point satisfying the original satisfies the projection
        s = LinearSystem(
            [
                Constraint.ge(I, C(0)),
                Constraint.le(I + J, C(5)),
                Constraint.ge(J, C(0)),
            ]
        )
        proj = eliminate(s, "i")
        for i in range(0, 6):
            for j in range(0, 6):
                if s.evaluate({"i": i, "j": j}):
                    assert proj.evaluate({"j": j})


class TestFallback:
    """The combinatorial-blowup fallback is counted and warned about."""

    def _blowup_system(self, tag=""):
        # 50 distinct lower bounds x 50 distinct upper bounds on `z` gives
        # 2500 pairs, past the MAX_CONSTRAINTS * 4 = 2400 fallback limit.
        z = AffineExpr.var("z" + tag)
        lows = [Constraint.ge(z, C(k)) for k in range(50)]
        ups = [
            Constraint.le(z, AffineExpr.var(f"u{tag}{k}")) for k in range(50)
        ]
        return LinearSystem(lows + ups), "z" + tag

    def test_fallback_counts_and_warns_once(self):
        import warnings

        from repro import perf

        perf.reset_all_caches()  # also re-arms the one-time warning
        perf.reset_counters()
        s, var = self._blowup_system()
        with pytest.warns(RuntimeWarning, match="Fourier-Motzkin"):
            r = eliminate(s, var)
        # sound superset: the variable's constraints were dropped
        assert var not in r.variables()
        assert r.is_universe()
        assert perf.counter("fm.fallback_drop") == 1

        # a second fallback still counts but does not warn again
        s2, var2 = self._blowup_system("b")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            eliminate(s2, var2)
        assert perf.counter("fm.fallback_drop") == 2

    def test_fallback_is_sound_superset(self):
        from repro import perf

        perf.reset_all_caches()
        s, var = self._blowup_system("c")
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            proj = eliminate(s, var)
        # every point of the original satisfies the (relaxed) projection
        point = {v: 60 for v in s.variables()}
        assert s.evaluate(point)
        assert proj.evaluate(point)


class TestEliminationOrderIndependence:
    """Projection commutes: the cheapest-first heuristic order used by
    ``eliminate_all`` must give the same polyhedron as any other
    elimination order (it is a pure cost choice)."""

    def _corpus(self):
        import random

        from repro.linalg.constraint import Rel

        rng = random.Random(31337)
        systems = []
        for _ in range(25):
            nv = rng.randint(2, 5)
            vars_ = [f"v{i}" for i in range(nv)]
            cons = []
            for _ in range(rng.randint(3, 8)):
                coeffs = {
                    v: rng.randint(-4, 4)
                    for v in vars_
                    if rng.random() < 0.7
                }
                coeffs = {v: c for v, c in coeffs.items() if c}
                rel = Rel.EQ if rng.random() < 0.25 else Rel.LE
                cons.append(
                    Constraint(
                        AffineExpr(coeffs, rng.randint(-8, 8)), rel
                    )
                )
            systems.append(LinearSystem(tuple(cons)))
        return systems

    def _eliminate_in_order(self, system, order):
        current = system
        for v in order:
            current = eliminate(current, v)
        return current

    def test_ground_projection_order_independent(self):
        """Eliminating *all* variables must reach the identical ground
        verdict (universe / false) in every order."""
        for s in self._corpus():
            vs = sorted(s.variables())
            heuristic = eliminate_all(s, vs)
            forward = self._eliminate_in_order(s, vs)
            backward = self._eliminate_in_order(s, list(reversed(vs)))
            assert heuristic is forward
            assert heuristic is backward

    def test_partial_projection_sound_in_any_order(self):
        """Every elimination order yields a sound projection: any integer
        point of the original system satisfies each projected system.

        (Canonical forms of *partial* projections may differ between
        orders — gcd integer tightening applied along different
        combination paths produces different, individually sound,
        supersets of the integer projection.  What the analysis consumes
        — ground feasibility/entailment verdicts — is order-independent,
        pinned by ``test_ground_projection_order_independent``.)"""
        import random

        rng = random.Random(5)
        for s in self._corpus():
            vs = sorted(s.variables())
            if len(vs) < 3:
                continue
            subset = vs[:2]
            projections = [
                eliminate_all(s, subset),
                self._eliminate_in_order(s, subset),
                self._eliminate_in_order(s, list(reversed(subset))),
            ]
            kept = [v for v in vs if v not in subset]
            # sample integer points of the original; each projection
            # must contain their shadows
            hits = 0
            for _ in range(200):
                point = {v: rng.randint(-6, 6) for v in vs}
                if not s.evaluate(point):
                    continue
                hits += 1
                shadow = {v: point[v] for v in kept}
                for proj in projections:
                    assert proj.evaluate(shadow)

    def test_heuristic_prefers_unit_equality(self):
        """A variable pinned by a unit equality is eliminated first even
        when it sorts last alphabetically."""
        from repro import perf
        from repro.linalg import fourier_motzkin as fm

        perf.reset_all_caches()
        z = AffineExpr.var("z")
        s = LinearSystem(
            [
                Constraint.eq(z, I + C(1)),  # unit eq pins z
                Constraint.ge(I, C(0)),
                Constraint.le(I, J),
                Constraint.le(J, C(9)),
            ]
        )
        result = eliminate_all(s, ["i", "j", "z"])
        assert result.is_universe()


class TestWarnedContextsBound:
    """The warned-context set is a bounded FIFO: a long-lived server
    process must not leak one entry per analysis context forever."""

    def test_eviction_keeps_size_bounded(self):
        from repro import perf
        from repro.linalg import fourier_motzkin as fm

        perf.reset_all_caches()
        n = fm._WARNED_CONTEXTS_MAX + 40
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for k in range(n):
                with perf.analysis_context(f"ctx{k}"):
                    fm._note_fallback("x", 99999)
        assert len(fm._warned_contexts) == fm._WARNED_CONTEXTS_MAX
        # oldest entries were evicted, newest retained
        assert "ctx0" not in fm._warned_contexts
        assert f"ctx{n - 1}" in fm._warned_contexts

    def test_reset_clears(self):
        from repro import perf
        from repro.linalg import fourier_motzkin as fm

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with perf.analysis_context("ctx-reset"):
                fm._note_fallback("x", 99999)
        assert fm._warned_contexts
        perf.reset_all_caches()
        assert not fm._warned_contexts
