"""Unit tests for linear systems (conjunctions of constraints)."""

import pytest

from repro.linalg.constraint import Constraint
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr

I = AffineExpr.var("i")
J = AffineExpr.var("j")
N = AffineExpr.var("n")
C = AffineExpr.const


def bounds(lo, var, hi):
    return [Constraint.ge(var, lo), Constraint.le(var, hi)]


class TestConstruction:
    def test_universe(self):
        u = LinearSystem.universe()
        assert u.is_universe()
        assert len(u) == 0

    def test_tautologies_dropped(self):
        s = LinearSystem([Constraint.le(C(0), C(1)), Constraint.le(I, N)])
        assert len(s) == 1

    def test_contradiction_collapses(self):
        s = LinearSystem([Constraint.le(I, N), Constraint.le(C(1), C(0))])
        assert s.is_trivially_empty()
        assert s == LinearSystem.empty()

    def test_duplicates_merged(self):
        s = LinearSystem([Constraint.le(I, N), Constraint.le(I, N)])
        assert len(s) == 1

    def test_order_irrelevant(self):
        a = LinearSystem([Constraint.le(I, N), Constraint.ge(I, C(1))])
        b = LinearSystem([Constraint.ge(I, C(1)), Constraint.le(I, N)])
        assert a == b and hash(a) == hash(b)


class TestAccessors:
    def test_variables(self):
        s = LinearSystem(bounds(C(1), I, N))
        assert s.variables() == frozenset({"i", "n"})

    def test_iteration(self):
        s = LinearSystem(bounds(C(1), I, N))
        assert len(list(s)) == 2

    def test_partition_by_vars(self):
        s = LinearSystem(bounds(C(1), I, N) + bounds(C(1), J, C(10)))
        touching, rest = s.partition_by_vars(frozenset({"i"}))
        assert touching.variables() >= frozenset({"i"})
        assert "i" not in rest.variables()


class TestAlgebra:
    def test_conjoin_constraint(self):
        s = LinearSystem([Constraint.ge(I, C(1))]).conjoin(Constraint.le(I, N))
        assert len(s) == 2

    def test_conjoin_system_and_operator(self):
        a = LinearSystem([Constraint.ge(I, C(1))])
        b = LinearSystem([Constraint.le(I, N)])
        assert (a & b) == a.conjoin(b)

    def test_substitute(self):
        s = LinearSystem(bounds(C(1), I, N)).substitute({"n": C(0)})
        assert s.is_trivially_empty() or not s.evaluate({"i": 1})

    def test_rename(self):
        s = LinearSystem([Constraint.le(I, N)]).rename({"i": "k"})
        assert "k" in s.variables() and "i" not in s.variables()

    def test_evaluate(self):
        s = LinearSystem(bounds(C(1), I, N))
        assert s.evaluate({"i": 1, "n": 3})
        assert not s.evaluate({"i": 0, "n": 3})

    def test_universe_evaluates_true(self):
        assert LinearSystem.universe().evaluate({})


class TestSimplified:
    def test_keeps_tighter_upper_bound(self):
        s = LinearSystem([Constraint.le(I, C(5)), Constraint.le(I, C(3))])
        simp = s.simplified()
        assert len(simp) == 1
        assert simp.evaluate({"i": 3}) and not simp.evaluate({"i": 4})

    def test_keeps_distinct_constraints(self):
        s = LinearSystem(bounds(C(1), I, N))
        assert len(s.simplified()) == 2

    def test_preserves_semantics_on_samples(self):
        s = LinearSystem(
            [
                Constraint.le(I, C(7)),
                Constraint.le(I, C(9)),
                Constraint.ge(I, C(2)),
            ]
        )
        simp = s.simplified()
        for i in range(-2, 12):
            assert s.evaluate({"i": i}) == simp.evaluate({"i": i})


class TestPlumbing:
    def test_immutable(self):
        s = LinearSystem()
        with pytest.raises(AttributeError):
            s._constraints = ()

    def test_repr_str(self):
        assert "universe" in repr(LinearSystem.universe())
        assert "true" == str(LinearSystem.universe())
        s = LinearSystem([Constraint.le(I, N)])
        assert "<=" in str(s)
