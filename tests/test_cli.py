"""Tests for the `python -m repro` command-line driver."""

import pytest

from repro.__main__ import main

SRC = """
program cli
  integer n, k
  real a(100)
  read n, k
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
  print a(n)
end
"""


@pytest.fixture
def source_file(tmp_path):
    f = tmp_path / "prog.f"
    f.write_text(SRC)
    return str(f)


class TestAnalyze:
    def test_predicated_report(self, source_file, capsys):
        assert main(["analyze", source_file]) == 0
        out = capsys.readouterr().out
        assert "run-time test" in out
        assert "cli:L1" in out

    def test_base_report(self, source_file, capsys):
        assert main(["analyze", source_file, "--base"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out

    def test_emit_two_version(self, source_file, capsys):
        assert main(["analyze", source_file, "--emit"]) == 0
        out = capsys.readouterr().out
        assert "if (" in out and "else" in out  # the guard
        assert out.count("do i = 1, n") >= 2  # both versions


class TestRun:
    def test_run_outputs(self, source_file, capsys):
        assert main(["run", source_file, "6", "50"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "0"

    def test_run_float_inputs(self, tmp_path, capsys):
        f = tmp_path / "p.f"
        f.write_text("program p\nread x\nprint x * 2.0\nend\n")
        assert main(["run", str(f), "1.5"]) == 0
        assert capsys.readouterr().out.strip() == "3"


class TestElpd:
    def test_elpd_output(self, source_file, capsys):
        assert main(["elpd", source_file, "6", "2"]) == 0
        out = capsys.readouterr().out
        assert "cli:L1" in out and "dependent" in out

    def test_elpd_independent_case(self, source_file, capsys):
        assert main(["elpd", source_file, "6", "70"]) == 0
        out = capsys.readouterr().out
        assert "independent" in out


class TestExperimentsCommand:
    def test_fig1(self, capsys):
        assert main(["experiments", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out

    def test_jobs_output_identical(self, capsys):
        assert main(["experiments", "fig1", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiments", "fig1", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_profile_emits_json(self, capsys):
        import json

        assert main(["experiments", "fig1", "--profile"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "fm.fallback_drop" in payload["counters"]
        assert payload["total_ops"] > 0
        assert any(
            st["hit_rate"] > 0 for st in payload["caches"].values()
        )

    def test_profile_sees_worker_activity(self, capsys):
        """Perf stats from --jobs worker processes merge into --profile."""
        import json

        from repro import perf

        perf.reset_all_caches()
        perf.reset_counters()
        assert main(["experiments", "fig1", "--jobs", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["total_ops"] > 0
        assert any(
            st["hits"] > 0 for st in payload["caches"].values()
        )
