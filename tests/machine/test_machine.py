"""Tests for the multiprocessor cost simulator."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.lang.parser import parse_program
from repro.machine.costmodel import MachineModel
from repro.machine.simulate import simulate
from repro.machine.speedup import speedup_comparison
from repro.partests.driver import analyze_program

MODEL = MachineModel()


def make(src, opts=None):
    program = parse_program(src)
    plan = build_plan(analyze_program(program, opts or AnalysisOptions.predicated()))
    return program, plan


PARALLEL_SRC = """
program t
  integer n
  real a(5000)
  read n
  do r = 1, 10
    do i = 1, n
      a(i) = a(i) * 0.5 + 1.0
    enddo
  enddo
end
"""

SERIAL_SRC = """
program t
  integer n
  real a(5000)
  read n
  a(1) = 1.0
  do i = 2, n
    a(i) = a(i - 1) + 1.0
  enddo
end
"""


class TestCostModel:
    def test_single_processor_identity(self):
        assert MODEL.parallel_time(1000.0, 100, 1) == 1000.0

    def test_parallel_time_decreases(self):
        t2 = MODEL.parallel_time(10000.0, 1000, 2)
        t4 = MODEL.parallel_time(10000.0, 1000, 4)
        t8 = MODEL.parallel_time(10000.0, 1000, 8)
        assert t2 > t4 > t8

    def test_overhead_dominates_small_loops(self):
        # a tiny loop is not worth parallelizing
        t1 = MODEL.parallel_time(20.0, 4, 1)
        t8 = MODEL.parallel_time(20.0, 4, 8)
        assert t8 > t1

    def test_processors_capped_by_iterations(self):
        t_iters = MODEL.parallel_time(8000.0, 4, 8)
        t_capped = MODEL.parallel_time(8000.0, 4, 4)
        assert t_iters == t_capped

    def test_test_time_scales_with_atoms(self):
        assert MODEL.test_time(4) == 4 * MODEL.test_cost_per_atom
        assert MODEL.test_time(0) == 0


class TestSimulate:
    def test_parallel_program_records_instances(self):
        program, plan = make(PARALLEL_SRC)
        res = simulate(program, plan, [2000])
        assert len(res.instances) == 10  # one per outer iteration
        assert all(i.iterations == 2000 for i in res.instances)

    def test_serial_program_no_instances(self):
        program, plan = make(SERIAL_SRC)
        res = simulate(program, plan, [2000])
        assert res.instances == []
        assert res.time(8, MODEL) == res.serial_steps

    def test_speedup_monotone(self):
        program, plan = make(PARALLEL_SRC)
        res = simulate(program, plan, [2000])
        s = [res.speedup(p, MODEL) for p in (1, 2, 4, 8)]
        assert s[0] <= s[1] <= s[2] <= s[3]
        assert s[3] > 1.5

    def test_single_level_parallelism(self):
        # nested parallel loops: every instance is recorded, but the
        # greedy selection picks only the profitable outermost level
        src = """
program t
  integer n
  real a(100, 100)
  read n
  do j = 1, n
    do i = 1, n
      a(i, j) = 1.0
    enddo
  enddo
end
"""
        program, plan = make(src)
        res = simulate(program, plan, [50])
        chosen_labels = {res.instances[i].label for i in res.chosen(MODEL)}
        assert chosen_labels == {"t:L1"}

    def test_unprofitable_outer_falls_through_to_inner(self):
        # outer instance below the threshold, inner instances above it
        src = """
program t
  integer n
  real a(4, 2000)
  read n
  do j = 1, 2
    do i = 1, n
      a(j, i) = 1.0
    enddo
  enddo
end
"""
        program, plan = make(src)
        res = simulate(program, plan, [2000])
        chosen_labels = {res.instances[i].label for i in res.chosen(MODEL)}
        # outer work ≈ 2 × 2000 is profitable here; shrink threshold view:
        # instead assert nesting structure is recorded correctly
        roots = [i for i in res.instances if i.parent == -1]
        children = [i for i in res.instances if i.parent != -1]
        assert roots and children
        assert chosen_labels  # something was selected


class TestTwoVersionCost:
    # single offset loop: two-version with test (k >= n or k <= -n or k <= 0)
    SRC = """
program t
  integer n, k
  real a(5000)
  read n, k
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
end
"""

    def test_passing_test_parallelizes(self):
        program, plan = make(self.SRC)
        res = simulate(program, plan, [2000, 3000])
        assert len(res.instances) == 1
        assert res.speedup(8, MODEL) > 2.0

    def test_failing_test_pays_only_test(self):
        # 1 <= k < n: dependent, serial version runs after the test
        program, plan = make(self.SRC)
        res = simulate(program, plan, [2000, 3])
        assert res.instances == []
        assert res.failed_test_atoms > 0
        # overhead is negligible relative to the work (the 'low-cost' claim)
        overhead = res.time(8, MODEL) - res.serial_steps
        assert overhead < 0.05 * res.serial_steps

    def test_outer_loop_runtime_privatization(self):
        # with a repeat loop around it, the outer loop carries its own
        # test (parallel with privatization when k >= 1) — both versions
        # must still compute the same thing (checked in codegen tests);
        # here we check the plan parallelizes the outermost level
        src = """
program t
  integer n, k
  real a(5000)
  read n, k
  do r = 1, 10
    do i = 1, n
      a(i + k) = a(i) + 1.0
    enddo
  enddo
end
"""
        program, plan = make(src)
        res = simulate(program, plan, [2000, 3000])
        chosen = {res.instances[i].label for i in res.chosen(MODEL)}
        assert chosen == {"t:L1"}  # outermost profitable level wins


class TestSpeedupComparison:
    def test_predicated_beats_base_on_runtime_case(self):
        src = """
program t
  integer n, k
  real a(5000)
  read n, k
  do r = 1, 10
    do i = 1, n
      a(i + k) = a(i) * 0.5
    enddo
  enddo
end
"""
        curves = speedup_comparison(parse_program(src), [1500, 2000])
        assert curves["base"].at(8) == pytest.approx(1.0, abs=0.05)
        assert curves["predicated"].at(8) > 2.0

    def test_equal_when_no_predicated_win(self):
        curves = speedup_comparison(parse_program(PARALLEL_SRC), [2000])
        assert curves["base"].at(8) == pytest.approx(
            curves["predicated"].at(8), rel=0.01
        )
