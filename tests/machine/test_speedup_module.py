"""Unit tests for the speedup-curve module and cost-model sensitivity."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.lang.parser import parse_program
from repro.machine.costmodel import MachineModel
from repro.machine.speedup import (
    SpeedupCurve,
    curve_from_result,
    speedup_comparison,
)
from repro.machine.simulate import MachineResult, ParallelInstance

BIG_LOOP = """
program t
  integer n
  real a(5000)
  read n
  do r = 1, 4
    do i = 1, n
      a(i) = a(i) * 0.5 + 1.0
    enddo
  enddo
end
"""


class TestCurveFromResult:
    def make_result(self, work=8000.0, iters=2000):
        return MachineResult(
            serial_steps=10000.0,
            instances=[ParallelInstance("l", work, iters)],
        )

    def test_curve_points(self):
        res = self.make_result()
        curve = curve_from_result("x", res, 10000.0, MachineModel(), (1, 2, 8))
        assert set(curve.points) == {1, 2, 8}
        assert curve.at(8) > curve.at(2) > 0

    def test_best(self):
        res = self.make_result()
        curve = curve_from_result("x", res, 10000.0, MachineModel(), (1, 8))
        assert curve.best() == curve.at(8)

    def test_unprofitable_instance_ignored(self):
        res = MachineResult(
            serial_steps=10000.0,
            instances=[ParallelInstance("tiny", 50.0, 10)],
        )
        model = MachineModel()
        assert res.time(8, model) == pytest.approx(res.serial_steps)


class TestNestSelection:
    def test_child_blocked_by_chosen_parent(self):
        model = MachineModel()
        res = MachineResult(
            serial_steps=20000.0,
            instances=[
                ParallelInstance("outer", 18000.0, 100, parent=-1),
                ParallelInstance("inner", 7000.0, 50, parent=0),
            ],
        )
        chosen = res.chosen(model)
        assert chosen == [0]

    def test_unprofitable_parent_releases_child(self):
        model = MachineModel()
        res = MachineResult(
            serial_steps=20000.0,
            instances=[
                ParallelInstance("outer", 300.0, 2, parent=-1),
                ParallelInstance("inner", 5000.0, 50, parent=0),
            ],
        )
        chosen = res.chosen(model)
        assert chosen == [1]

    def test_grandchild_blocked_transitively(self):
        model = MachineModel()
        res = MachineResult(
            serial_steps=50000.0,
            instances=[
                ParallelInstance("a", 40000.0, 100, parent=-1),
                ParallelInstance("b", 20000.0, 50, parent=0),
                ParallelInstance("c", 9000.0, 20, parent=1),
            ],
        )
        assert res.chosen(model) == [0]


class TestModelSensitivity:
    """The *identity* of speedup winners should be robust to moderate
    cost-model perturbation (claimed in EXPERIMENTS.md)."""

    @pytest.mark.parametrize(
        "model",
        [
            MachineModel(),
            MachineModel(fork_overhead=100.0),
            MachineModel(fork_overhead=400.0),
            MachineModel(sched_per_iteration=0.3),
        ],
        ids=["default", "cheap-fork", "dear-fork", "dear-sched"],
    )
    def test_big_loop_always_speeds_up(self, model):
        curves = speedup_comparison(
            parse_program(BIG_LOOP), [4000], model=model
        )
        assert curves["predicated"].at(8) > 1.5

    def test_configurations_parameter(self):
        curves = speedup_comparison(
            parse_program(BIG_LOOP),
            [4000],
            configurations={"only": AnalysisOptions.base()},
        )
        assert set(curves) == {"only"}
