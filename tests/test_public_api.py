"""The documented top-level API surface."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_quickstart_flow(self):
        program = repro.parse_program(
            "program t\ninteger n\nreal a(50)\nread n\n"
            "do i = 1, n\na(i) = 1.0\nenddo\nend\n"
        )
        result = repro.analyze_program(program)
        assert result.parallelized == 1
        text = repro.format_report(result)
        assert "PARALLEL" in text

    def test_run_and_oracle(self):
        program = repro.parse_program(
            "program t\ninteger n\nreal a(50)\nread n\n"
            "do i = 1, n\na(i) = i * 1.0\nenddo\nprint a(n)\nend\n"
        )
        execution = repro.run_program(program, [5])
        assert execution.outputs == ["5"]
        oracle = repro.run_oracle(program, [5])
        assert oracle.observations["t:L1"].classification == "independent"

    def test_options_configurations(self):
        base = repro.AnalysisOptions.base()
        pred = repro.AnalysisOptions.predicated()
        assert not base.predicates and pred.predicates
        assert base.scalar_propagation  # scalar analysis predates predicates
