"""Tests for plan lowering and the two-version transform."""

import pytest

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.codegen.report import format_report
from repro.codegen.twoversion import parse_condition, transform_program
from repro.lang.astnodes import DoLoop, If, walk_stmts
from repro.lang.parser import parse_program
from repro.lang.prettyprint import pretty
from repro.partests.driver import analyze_program
from repro.runtime.interp import run_program

OFFSET_SRC = """
program t
  integer n, k
  real a(200)
  read n, k
  do i = 1, n
    a(i) = i * 1.0
  enddo
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
  print a(1), a(n)
end
"""

SIMPLE_SRC = """
program t
  integer n
  real a(100)
  read n
  do i = 1, n
    a(i) = 1.0
  enddo
  do i = 2, n
    a(i) = a(i - 1)
  enddo
end
"""


def plan_for(src, opts=None):
    program = parse_program(src)
    result = analyze_program(program, opts or AnalysisOptions.predicated())
    return program, result, build_plan(result)


class TestPlan:
    def test_modes(self):
        _, result, plan = plan_for(OFFSET_SRC)
        modes = {p.label: p.mode for p in plan.loops.values()}
        assert modes["t:L1"] == "parallel"
        assert modes["t:L2"] == "two_version"

    def test_serial_mode(self):
        _, _, plan = plan_for(SIMPLE_SRC)
        modes = {p.label: p.mode for p in plan.loops.values()}
        assert modes["t:L2"] == "serial"

    def test_counters(self):
        _, _, plan = plan_for(OFFSET_SRC)
        assert plan.parallel_count() == 2
        assert plan.two_version_count() == 1

    def test_outer_parallel_labels(self):
        _, _, plan = plan_for(OFFSET_SRC)
        assert "t:L1" in plan.outer_parallel_labels()


class TestTwoVersionTransform:
    def test_guard_introduced(self):
        program, _, plan = plan_for(OFFSET_SRC)
        out = transform_program(program, plan)
        guards = [
            s
            for s in walk_stmts(out.main_unit.body)
            if isinstance(s, If)
            and any(
                isinstance(c, DoLoop) and c.label.endswith("_par")
                for c in s.then_body
            )
        ]
        assert len(guards) == 1
        assert any(
            isinstance(c, DoLoop) and c.label.endswith("_seq")
            for c in guards[0].else_body
        )

    def test_transform_pretty_reparses(self):
        program, _, plan = plan_for(OFFSET_SRC)
        out = transform_program(program, plan)
        text = pretty(out)
        reparsed = parse_program(text)
        assert reparsed.main == out.main

    @pytest.mark.parametrize(
        "inputs",
        [
            [10, 0],  # k = 0: test true
            [10, 3],  # k small: dependent, serial version
            [10, 50],  # k >= n: independent, parallel version
            [10, 10],  # k == n boundary
        ],
    )
    def test_semantics_preserved(self, inputs):
        program, _, plan = plan_for(OFFSET_SRC)
        out = transform_program(program, plan)
        ref = run_program(program, inputs)
        got = run_program(out, inputs)
        assert got.outputs == ref.outputs
        assert got.main_arrays == ref.main_arrays

    def test_original_untouched(self):
        program, _, plan = plan_for(OFFSET_SRC)
        before = pretty(program)
        transform_program(program, plan)
        assert pretty(program) == before


class TestParseCondition:
    def test_roundtrip(self):
        e = parse_condition("(k <= 0) or (n - k <= 0)")
        assert e is not None

    def test_plan_predicates_renderable(self):
        _, result, plan = plan_for(OFFSET_SRC)
        for lp in plan.loops.values():
            if lp.mode == "two_version":
                from repro.partests.runtime_tests import render_predicate

                text = render_predicate(lp.runtime_pred)
                assert parse_condition(text) is not None


class TestReport:
    def test_report_mentions_all_loops(self):
        _, result, _ = plan_for(OFFSET_SRC)
        text = format_report(result)
        assert "t:L1" in text and "t:L2" in text
        assert "run-time test" in text

    def test_report_shows_private(self):
        src = """
program t
  integer n
  real a(100, 100), w(100)
  read n
  do j = 1, n
    do i = 1, n
      w(i) = a(i, j)
    enddo
    do i = 1, n
      a(i, j) = w(i) + 1.0
    enddo
  enddo
end
"""
        _, result, _ = plan_for(src)
        text = format_report(result)
        assert "private: w" in text
