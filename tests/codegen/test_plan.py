"""Unit tests for plan lowering."""

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

SRC = """
program t
  integer n, k
  real a(300), w(40), b(40, 40)
  read n, k
  do i = 1, n
    a(i + k) = a(i) + 1.0
  enddo
  do j = 1, 40
    do i = 1, 40
      w(i) = b(i, j)
    enddo
    do i = 1, 40
      b(i, j) = w(i) + 1.0
    enddo
  enddo
  do i = 2, n
    a(i) = a(i - 1)
  enddo
end
"""


def make():
    program = parse_program(SRC)
    result = analyze_program(program, AnalysisOptions.predicated())
    return result, build_plan(result)


class TestLowering:
    def test_modes_by_status(self):
        result, plan = make()
        modes = {p.label: p.mode for p in plan.loops.values()}
        assert modes["t:L1"] == "two_version"
        assert modes["t:L2"] == "parallel"
        assert modes["t:L5"] == "serial"

    def test_runtime_metadata_carried(self):
        _, plan = make()
        two = next(p for p in plan.loops.values() if p.mode == "two_version")
        assert two.runtime_pred is not None
        assert two.runtime_cost >= 1
        assert "a" in two.private_arrays

    def test_parallel_loops_have_no_pred(self):
        _, plan = make()
        for p in plan.loops.values():
            if p.mode == "parallel":
                assert p.runtime_pred is None

    def test_enclosed_flags(self):
        _, plan = make()
        by_label = {p.label: p for p in plan.loops.values()}
        assert by_label["t:L3"].enclosed
        assert by_label["t:L4"].enclosed
        assert not by_label["t:L2"].enclosed

    def test_counters(self):
        _, plan = make()
        assert plan.two_version_count() == 1
        assert plan.parallel_count() == 4  # L1, L2, L3, L4
        assert "t:L2" in plan.outer_parallel_labels()
        assert "t:L3" not in plan.outer_parallel_labels()

    def test_plan_for_unknown_loop(self):
        _, plan = make()
        other = parse_program("program q\ndo i = 1, 2\nx = i\nenddo\nend\n")
        from repro.lang.astnodes import DoLoop, walk_stmts

        foreign = next(
            s for s in walk_stmts(other.main_unit.body)
            if isinstance(s, DoLoop)
        )
        # a loop with an unknown nid simply has no plan... unless the
        # nid happens to collide; plan_for is keyed by nid only
        lp = plan.plan_for(foreign)
        assert lp is None or lp.nid == foreign.nid


class TestPrivateScalarsInPlan:
    def test_reductions_and_privates_lowered(self):
        src = (
            "program t\ninteger n\nreal a(50)\nread n\ns = 0.0\n"
            "do i = 1, n\n t1 = a(i) * 2.0\n s = s + t1\nenddo\nend\n"
        )
        program = parse_program(src)
        result = analyze_program(program, AnalysisOptions.predicated())
        plan = build_plan(result)
        lp = next(iter(plan.loops.values()))
        assert "s" in lp.reduction_scalars
        assert "t1" in lp.private_scalars
