"""The report derives initialization (copy-in) regions for privatized
arrays — the paper's "derivation of regions in privatizable arrays
requiring initialization"."""

from repro.arraydf.options import AnalysisOptions
from repro.codegen.report import format_report
from repro.lang.parser import parse_program
from repro.partests.driver import analyze_program

SRC = """
program t
  integer n, d
  real h(50), b(50, 50)
  read n, d
  do i = 1, n
    do j = 1, d
      h(j) = b(j, i)
    enddo
    do j = 1, n
      b(j, i) = h(j) + 1.0
    enddo
  enddo
end
"""


class TestCopyInRegions:
    def test_copy_in_region_derived(self):
        res = analyze_program(parse_program(SRC), AnalysisOptions.predicated())
        outer = res.by_label()["t:L1"]
        assert outer.status == "parallel_private"
        assert outer.private_arrays == ["h"]
        copy_in = outer.verdict.array_verdicts["h"].copy_in
        assert copy_in is not None and not copy_in.is_empty()
        # the uncovered boundary region [d+1, n] needs initialization
        region = copy_in.regions("h")[0]
        assert region.contains_point((8,), {"d": 5, "n": 10})
        assert not region.contains_point((3,), {"d": 5, "n": 10})

    def test_report_prints_copy_in(self):
        res = analyze_program(parse_program(SRC), AnalysisOptions.predicated())
        text = format_report(res)
        assert "copy-in h:" in text

    def test_fully_covered_array_needs_no_copy_in(self):
        src = """
program t
  integer n
  real h(50), b(50, 50)
  read n
  do i = 1, n
    do j = 1, n
      h(j) = b(j, i)
    enddo
    do j = 1, n
      b(j, i) = h(j) + 1.0
    enddo
  enddo
end
"""
        res = analyze_program(parse_program(src), AnalysisOptions.predicated())
        outer = res.by_label()["t:L1"]
        copy_in = outer.verdict.array_verdicts["h"].copy_in
        assert copy_in is None or copy_in.is_empty()
