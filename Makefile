# Developer entry points.  `make check` is the pre-merge gate: lint
# (when the tools are installed), the full test suite, and the
# benchmark regression gate against BENCH_baseline.json.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test perfgate serve-smoke bench

check: lint test perfgate serve-smoke

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi

test:
	$(PYTHON) -m pytest tests/

perfgate:
	$(PYTHON) benchmarks/check_regression.py
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr1.json --current BENCH_pr3.json \
		--threshold 2.0 --require-faster test_whole_program_analysis
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr4.json --current BENCH_pr4.json \
		--threshold 2.0 \
		--max-ratio test_pipeline_parallel:test_pipeline_serial:1.5 \
		--max-ratio test_pipeline_serial:test_pipeline_legacy_driver:1.25
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr4.json --current BENCH_pr5.json \
		--threshold 2.0 --require-faster test_whole_program_analysis \
		--max-ratio test_linalg_eliminate_packed:test_linalg_eliminate_legacy:0.9 \
		--max-ratio test_linalg_feasibility_packed:test_linalg_feasibility_legacy:0.9
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr5.json --current BENCH_pr6.json \
		--threshold 2.0 --require-faster test_interpreter_throughput \
		--max-ratio test_runtime_exec_bytecode:test_runtime_exec_tree:0.5 \
		--max-ratio test_runtime_elpd_bytecode:test_runtime_elpd_tree:0.85
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr6.json --current BENCH_pr7.json \
		--threshold 2.0
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr7.json --current BENCH_pr8.json \
		--threshold 2.0 --require-faster test_whole_program_analysis \
		--max-ratio test_whole_suite_screened:test_whole_suite_unscreened:1.1
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr8.json --current BENCH_pr9.json \
		--threshold 2.0 \
		--max-ratio test_serve_job_fleet:test_serve_job_direct:1.3
	$(PYTHON) benchmarks/check_regression.py \
		--baseline BENCH_pr9.json --current BENCH_pr10.json \
		--threshold 2.0
	$(PYTHON) benchmarks/check_regression.py --multicore
	$(PYTHON) benchmarks/check_regression.py --serve
	$(PYTHON) benchmarks/check_regression.py --throughput

# end-to-end smoke of the HTTP job service: start, submit, poll,
# validate receipts, graceful SIGTERM drain
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# re-record the micro-benchmark timings (compare with perfgate)
bench:
	$(PYTHON) -m pytest benchmarks/test_core_micro.py benchmarks/test_predicates_micro.py benchmarks/test_pipeline_micro.py benchmarks/test_linalg_micro.py benchmarks/test_runtime_micro.py benchmarks/test_screen_micro.py benchmarks/test_pipeline_multicore.py benchmarks/test_serve_latency.py benchmarks/test_batch_throughput.py --benchmark-json BENCH_current.json
