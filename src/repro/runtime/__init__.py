"""Execution substrate: interpreter, ELPD oracle, plan-aware execution.

The interpreter realizes Fortran-like semantics for the mini language —
flat column-major array storage (so sequence association across reshaped
call boundaries behaves like the real thing), by-reference whole-array
argument passing, by-value scalars, truncating integer division.

On top of it:

* :mod:`repro.runtime.elpd` — the Extended Lazy Privatizing Doall test:
  shadow-array instrumentation that classifies each loop's dynamic
  cross-iteration behaviour (independent / privatizable / dependent) on
  a concrete input, the oracle the paper uses to count "inherently
  parallel" loops;
* plan-aware execution (:class:`~repro.runtime.interp.Interpreter` with
  a :class:`~repro.codegen.plan.ParallelPlan`) — evaluates derived
  run-time tests exactly where the two-version code would, and feeds the
  machine-model cost accounting.
"""

from repro.runtime.values import ArrayStorage, RuntimeError_
from repro.runtime.interp import ExecutionResult, Interpreter, run_program
from repro.runtime.elpd import ElpdReport, LoopObservation, run_elpd

__all__ = [
    "ArrayStorage",
    "RuntimeError_",
    "Interpreter",
    "ExecutionResult",
    "run_program",
    "ElpdReport",
    "LoopObservation",
    "run_elpd",
]
