"""Tree-walking interpreter for the mini-Fortran language.

Semantics follow Fortran-77 conventions where they matter to the
analysis:

* arrays are flat column-major storage, passed to subroutines by
  reference with sequence association (a ``real x(200)`` formal views a
  ``real a(10,20)`` actual);
* scalars are passed by value (the analysis relies on this);
* integer division truncates toward zero; ``mod`` matches Fortran MOD;
* an unset array element reads as ``0.0`` and an unset scalar as ``0``
  (deterministic, so analyses can be cross-checked against execution).

Hook points (``access_hook``, ``loop_hook``) drive the ELPD oracle and
the machine cost model without entangling them with evaluation.  When a
:class:`~repro.codegen.plan.ParallelPlan` is supplied, two-version loops
evaluate their derived run-time test on entry — exactly what generated
code would do — and report the outcome to the loop hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import perf
from repro.lang.astnodes import (
    ASSUMED,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
    UnOp,
    VarRef,
)
from repro.runtime.values import ArrayStorage, RuntimeError_

Number = Union[int, float]


class _ReturnSignal(Exception):
    pass


@dataclass
class Frame:
    unit: Subroutine
    scalars: Dict[str, Number] = field(default_factory=dict)
    arrays: Dict[str, ArrayStorage] = field(default_factory=dict)


@dataclass
class LoopEvent:
    """One dynamic loop instance (for tests and the machine model)."""

    label: str
    nid: int
    iterations: int
    ran_parallel_version: Optional[bool] = None  # two-version outcome


@dataclass
class ExecutionResult:
    outputs: List[str]
    steps: int
    main_arrays: Dict[str, Dict[int, float]]
    main_scalars: Dict[str, Number]
    loop_events: List[LoopEvent]


class Interpreter:
    """Executes one program on one input sequence."""

    def __init__(
        self,
        program: Program,
        inputs: Sequence[Number] = (),
        plan=None,
        access_hook: Optional[Callable[[str, ArrayStorage, int], None]] = None,
        loop_hook=None,
        max_steps: int = 10_000_000,
    ) -> None:
        self.program = program
        self.inputs = list(inputs)
        self._input_pos = 0
        self.plan = plan
        self.access_hook = access_hook
        self.loop_hook = loop_hook
        self.max_steps = max_steps
        self.steps = 0
        self.outputs: List[str] = []
        self.loop_events: List[LoopEvent] = []
        self._cond_cache: Dict[int, Expr] = {}

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        if perf.bytecode_enabled():
            from repro.runtime.bytecode import execute

            return execute(self)
        return self._run_tree()

    def _run_tree(self) -> ExecutionResult:
        """The original tree-walking path, kept verbatim — the reference
        semantics the bytecode engine is differentially pinned against
        (``REPRO_BYTECODE=0`` selects it)."""
        main = self.program.main_unit
        frame = self._new_frame(main, [], [])
        try:
            self._exec_body(main.body, frame)
        except _ReturnSignal:
            pass
        return ExecutionResult(
            outputs=self.outputs,
            steps=self.steps,
            main_arrays={
                name: arr.snapshot() for name, arr in frame.arrays.items()
            },
            main_scalars=dict(frame.scalars),
            loop_events=self.loop_events,
        )

    # ------------------------------------------------------------------
    # frames and calls
    # ------------------------------------------------------------------
    def _new_frame(
        self,
        unit: Subroutine,
        scalar_args: List[Tuple[str, Number]],
        array_args: List[Tuple[str, ArrayStorage]],
    ) -> Frame:
        frame = Frame(unit)
        for name, value in scalar_args:
            frame.scalars[name] = value
        passed_arrays = {name for name, _ in array_args}
        # resolve declared extents (may reference parameter scalars)
        for name, decl in unit.decls.items():
            if not decl.is_array:
                continue
            extents: List[Optional[int]] = []
            for d in decl.dims:
                if d == ASSUMED:
                    extents.append(None)
                else:
                    extents.append(int(self._eval(d, frame)))
            if name in passed_arrays:
                actual = dict(array_args)[name]
                frame.arrays[name] = actual.view(name, extents)
            else:
                frame.arrays[name] = ArrayStorage(name, extents, decl.typ)
        return frame

    def _do_call(self, stmt: Call, frame: Frame) -> None:
        callee = self.program.units[stmt.name]
        scalar_args: List[Tuple[str, Number]] = []
        array_args: List[Tuple[str, ArrayStorage]] = []
        for formal, actual in zip(callee.params, stmt.args):
            formal_decl = callee.decls.get(formal)
            formal_is_array = formal_decl is not None and formal_decl.is_array
            if formal_is_array:
                if not (
                    isinstance(actual, VarRef) and actual.name in frame.arrays
                ):
                    raise RuntimeError_(
                        f"call {stmt.name}: formal array {formal!r} needs a "
                        f"whole-array actual"
                    )
                array_args.append((formal, frame.arrays[actual.name]))
            else:
                scalar_args.append((formal, self._eval(actual, frame)))
        callee_frame = self._new_frame(callee, scalar_args, array_args)
        try:
            self._exec_body(callee.body, callee_frame)
        except _ReturnSignal:
            pass

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_body(self, body: List[Stmt], frame: Frame) -> None:
        for stmt in body:
            self._exec_stmt(stmt, frame)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise RuntimeError_(f"step budget exceeded ({self.max_steps})")

    def _exec_stmt(self, stmt: Stmt, frame: Frame) -> None:
        self._tick()
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, frame)
            if isinstance(stmt.target, VarRef):
                decl = frame.unit.decls.get(stmt.target.name)
                if decl is not None and decl.typ == "integer":
                    value = int(value)
                frame.scalars[stmt.target.name] = value
            else:
                subs = [int(self._eval(s, frame)) for s in stmt.target.subscripts]
                arr = self._array(stmt.target.name, frame)
                off = arr.store(subs, float(value))
                if self.access_hook is not None:
                    self.access_hook("w", arr, off)
            return
        if isinstance(stmt, DoLoop):
            self._exec_loop(stmt, frame)
            return
        if isinstance(stmt, If):
            if self._truthy(self._eval(stmt.cond, frame)):
                self._exec_body(stmt.then_body, frame)
            else:
                self._exec_body(stmt.else_body, frame)
            return
        if isinstance(stmt, Call):
            self._do_call(stmt, frame)
            return
        if isinstance(stmt, ReadStmt):
            for name in stmt.names:
                if self._input_pos >= len(self.inputs):
                    raise RuntimeError_(
                        f"read {name}: input exhausted at position "
                        f"{self._input_pos}"
                    )
                value = self.inputs[self._input_pos]
                self._input_pos += 1
                decl = frame.unit.decls.get(name)
                if decl is not None and decl.typ == "integer":
                    value = int(value)
                frame.scalars[name] = value
            return
        if isinstance(stmt, PrintStmt):
            parts = []
            for a in stmt.args:
                if hasattr(a, "text"):
                    parts.append(a.text)
                else:
                    parts.append(_fmt(self._eval(a, frame)))
            self.outputs.append(" ".join(parts))
            return
        if isinstance(stmt, Return):
            raise _ReturnSignal()
        raise RuntimeError_(f"cannot execute {stmt!r}")

    def _exec_loop(self, stmt: DoLoop, frame: Frame) -> None:
        lo = int(self._eval(stmt.lo, frame))
        hi = int(self._eval(stmt.hi, frame))
        step = int(self._eval(stmt.step, frame)) if stmt.step is not None else 1
        if step == 0:
            raise RuntimeError_(f"loop {stmt.label}: zero step")

        ran_parallel: Optional[bool] = None
        lp = self.plan.plan_for(stmt) if self.plan is not None else None
        if lp is not None and lp.mode == "two_version":
            cond = self._cond_cache.get(stmt.nid)
            if cond is None:
                from repro.codegen.twoversion import predicate_to_expr

                cond = predicate_to_expr(lp.runtime_pred)
                self._cond_cache[stmt.nid] = cond
            ran_parallel = self._truthy(self._eval(cond, frame))
        elif lp is not None and lp.mode == "parallel":
            ran_parallel = True

        token = None
        if self.loop_hook is not None:
            token = self.loop_hook.enter_loop(stmt, frame, ran_parallel)

        iterations = 0
        i = lo
        while (step > 0 and i <= hi) or (step < 0 and i >= hi):
            frame.scalars[stmt.var] = i
            iterations += 1
            if self.loop_hook is not None:
                self.loop_hook.iter_start(token, i)
            self._exec_body(stmt.body, frame)
            i += step
        frame.scalars[stmt.var] = i  # Fortran: index holds past-the-end

        if self.loop_hook is not None:
            self.loop_hook.exit_loop(token)
        self.loop_events.append(
            LoopEvent(stmt.label, stmt.nid, iterations, ran_parallel)
        )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _array(self, name: str, frame: Frame) -> ArrayStorage:
        arr = frame.arrays.get(name)
        if arr is None:
            raise RuntimeError_(f"unknown array {name!r}")
        return arr

    def _truthy(self, value: Number) -> bool:
        return bool(value)

    def _eval(self, expr: Expr, frame: Frame) -> Number:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, VarRef):
            return frame.scalars.get(expr.name, 0)
        if isinstance(expr, ArrayRef):
            subs = [int(self._eval(s, frame)) for s in expr.subscripts]
            arr = self._array(expr.name, frame)
            off = arr.offset(subs)
            if self.access_hook is not None:
                self.access_hook("r", arr, off)
            return arr.data.get(off, 0.0)
        if isinstance(expr, UnOp):
            v = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -v
            return 0 if self._truthy(v) else 1  # not
        if isinstance(expr, Intrinsic):
            args = [self._eval(a, frame) for a in expr.args]
            if expr.name == "mod":
                a, b = args
                if b == 0:
                    raise RuntimeError_("mod with zero divisor")
                if isinstance(a, int) and isinstance(b, int):
                    return int(math.fmod(a, b))
                return math.fmod(a, b)
            if expr.name == "min":
                return min(args)
            if expr.name == "max":
                return max(args)
            if expr.name == "abs":
                return abs(args[0])
            raise RuntimeError_(f"unknown intrinsic {expr.name!r}")
        if isinstance(expr, BinOp):
            op = expr.op
            if op == "and":
                return (
                    1
                    if self._truthy(self._eval(expr.left, frame))
                    and self._truthy(self._eval(expr.right, frame))
                    else 0
                )
            if op == "or":
                return (
                    1
                    if self._truthy(self._eval(expr.left, frame))
                    or self._truthy(self._eval(expr.right, frame))
                    else 0
                )
            a = self._eval(expr.left, frame)
            b = self._eval(expr.right, frame)
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    raise RuntimeError_("division by zero")
                if isinstance(a, int) and isinstance(b, int):
                    return int(a / b)  # Fortran truncation toward zero
                return a / b
            if op == "**":
                return a ** b
            if op == "<":
                return 1 if a < b else 0
            if op == "<=":
                return 1 if a <= b else 0
            if op == ">":
                return 1 if a > b else 0
            if op == ">=":
                return 1 if a >= b else 0
            if op == "==":
                return 1 if a == b else 0
            if op == "!=":
                return 1 if a != b else 0
            raise RuntimeError_(f"unknown operator {op!r}")
        raise RuntimeError_(f"cannot evaluate {expr!r}")


def _fmt(value: Number) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def run_program(
    program: Program,
    inputs: Sequence[Number] = (),
    plan=None,
    max_steps: int = 10_000_000,
) -> ExecutionResult:
    """Convenience one-shot execution."""
    return Interpreter(program, inputs, plan=plan, max_steps=max_steps).run()
