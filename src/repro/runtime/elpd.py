"""The Extended Lazy Privatizing Doall (ELPD) test.

ELPD instruments every candidate loop the compiler left unparallelized
and classifies each loop's *dynamic* behaviour on a concrete input:

* **independent** — no element is touched by two different iterations
  with at least one write;
* **privatizable** — cross-iteration conflicts exist, but no iteration's
  *first* access to an element reads a value written by an earlier
  iteration (no cross-iteration flow into an exposed read), so
  per-iteration private copies with copy-in/copy-out are safe;
* **dependent** — a cross-iteration flow was observed.

Loops reported independent or privatizable are the "remaining inherently
parallel" loops of the paper's tables — parallelization guaranteed only
for the tested input, which is exactly ELPD's contract.

The implementation shadows every array element (keyed by underlying
storage buffer and flat offset, so reshaped views alias correctly) for
each dynamically active instrumented loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import perf
from repro.lang.astnodes import Program
from repro.runtime.interp import Interpreter
from repro.runtime.values import ArrayStorage

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

Number = Union[int, float]

_RANKING = {"not_executed": 0, "independent": 1, "privatizable": 2, "dependent": 3}


class _ElementState:
    """Shadow state of one array element within one loop instance."""

    __slots__ = (
        "first_ord",
        "last_access_ord",
        "last_write_ord",
        "any_write",
        "multi_ord",
        "flow",
    )

    def __init__(self) -> None:
        self.first_ord = -1
        self.last_access_ord = -1
        self.last_write_ord = -1
        self.any_write = False
        self.multi_ord = False
        self.flow = False

    def access(self, kind: str, ord_: int) -> None:
        if self.first_ord < 0:
            self.first_ord = ord_
        first_in_ord = ord_ != self.last_access_ord
        if first_in_ord and kind == "r" and 0 <= self.last_write_ord < ord_:
            # this iteration's first touch reads a value some earlier
            # iteration wrote: cross-iteration flow
            self.flow = True
        if self.last_access_ord >= 0 and ord_ != self.first_ord:
            self.multi_ord = True
        self.last_access_ord = ord_
        if kind == "w":
            self.any_write = True
            self.last_write_ord = ord_

    @property
    def conflicts(self) -> bool:
        return self.multi_ord and self.any_write


class _ActiveInstance:
    """One dynamic execution of an instrumented loop."""

    __slots__ = ("label", "ordinal", "elements", "array_of")

    def __init__(self, label: str) -> None:
        self.label = label
        self.ordinal = -1
        self.elements: Dict[Tuple[int, int], _ElementState] = {}
        self.array_of: Dict[int, str] = {}

    def record(self, kind: str, storage: ArrayStorage, offset: int) -> None:
        if self.ordinal < 0:
            return  # access outside any iteration (loop bounds eval)
        key = (id(storage.data), offset)
        state = self.elements.get(key)
        if state is None:
            state = _ElementState()
            self.elements[key] = state
            self.array_of[id(storage.data)] = storage.name
        state.access(kind, self.ordinal)

    def classify(self) -> Tuple[str, Set[str], Set[str]]:
        conflict_arrays: Set[str] = set()
        flow_arrays: Set[str] = set()
        for (buf, _off), st in self.elements.items():
            if st.flow:
                flow_arrays.add(self.array_of[buf])
            elif st.conflicts:
                conflict_arrays.add(self.array_of[buf])
        if flow_arrays:
            return "dependent", conflict_arrays, flow_arrays
        if conflict_arrays:
            return "privatizable", conflict_arrays, flow_arrays
        return "independent", conflict_arrays, flow_arrays


# ----------------------------------------------------------------------
# packed shadow state (REPRO_BYTECODE=1, the default)
# ----------------------------------------------------------------------
#: below this element count the scalar classify loop beats the NumPy
#: bulk masks (fromiter setup cost)
_BULK_MIN = 64

#: reusable column sets — (first, last-access, last-write, flags, bufs)
#: list tuples — so short-lived loop instances stop churning allocations
_POOL_MAX = 32
_pool: List[tuple] = []
_pool_stats = {"hits": 0, "misses": 0}


def _pool_acquire() -> tuple:
    if _pool:
        _pool_stats["hits"] += 1
        return _pool.pop()
    _pool_stats["misses"] += 1
    return ([], [], [], [], [])


def _pool_release(cols: tuple) -> None:
    if len(_pool) < _POOL_MAX:
        for c in cols:
            c.clear()
        _pool.append(cols)


def _pool_stats_snapshot() -> Dict[str, int]:
    return {
        "hits": _pool_stats["hits"],
        "misses": _pool_stats["misses"],
        "size": len(_pool),
    }


def _pool_clear() -> None:
    _pool.clear()
    _pool_stats["hits"] = 0
    _pool_stats["misses"] = 0


perf.register_cache(
    "elpd.shadow.pool", _pool_stats_snapshot, _pool_clear, obj=_pool
)
perf.declare("elpd.shadow.elements")


class _PackedInstance:
    """Packed shadow state for one dynamic loop instance.

    Replaces one ``_ElementState`` object per touched element with
    parallel integer columns indexed by a ``(buffer id, flat offset) ->
    row`` dict: first-ordinal / last-access / last-write columns plus a
    flags column (bit 1 = any_write, bit 2 = multi_ord, bit 4 = flow).
    ``classify`` reduces the flags/bufs columns in bulk with NumPy masks
    instead of walking per-element objects.  Behaviour is pinned
    element-for-element against :class:`_ElementState.access` — the
    differential suites assert identical verdicts with the switch off.
    """

    __slots__ = (
        "label",
        "ordinal",
        "index",
        "array_of",
        "_cols",
        "_first",
        "_lastacc",
        "_lastw",
        "_flags",
        "_bufs",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.ordinal = -1
        self.index: Dict[Tuple[int, int], int] = {}
        self.array_of: Dict[int, str] = {}
        cols = _pool_acquire()
        self._cols = cols
        self._first, self._lastacc, self._lastw, self._flags, self._bufs = cols

    def record(self, kind: str, storage: ArrayStorage, offset: int) -> None:
        ord_ = self.ordinal
        if ord_ < 0:
            return  # access outside any iteration (loop bounds eval)
        buf = id(storage.data)
        key = (buf, offset)
        row = self.index.get(key)
        if row is None:
            # fresh element: inline _ElementState.access on zero state
            self.index[key] = len(self._flags)
            self.array_of[buf] = storage.name
            self._first.append(ord_)
            self._lastacc.append(ord_)
            if kind == "w":
                self._lastw.append(ord_)
                self._flags.append(1)
            else:
                self._lastw.append(-1)
                self._flags.append(0)
            self._bufs.append(buf)
            return
        f = self._flags[row]
        if ord_ != self._lastacc[row]:
            if kind == "r" and 0 <= self._lastw[row] < ord_:
                f |= 4  # first touch this iteration reads an earlier write
        if ord_ != self._first[row]:
            f |= 2  # touched by more than one iteration
        self._lastacc[row] = ord_
        if kind == "w":
            f |= 1
            self._lastw[row] = ord_
        self._flags[row] = f

    def classify(self) -> Tuple[str, Set[str], Set[str]]:
        flags = self._flags
        n = len(flags)
        perf.bump("elpd.shadow.elements", n)
        conflict_arrays: Set[str] = set()
        flow_arrays: Set[str] = set()
        if _np is not None and n >= _BULK_MIN:
            fl = _np.fromiter(flags, _np.int64, count=n)
            flow_mask = (fl & 4) != 0
            conf_mask = ((fl & 3) == 3) & ~flow_mask
            if flow_mask.any() or conf_mask.any():
                bufs = _np.fromiter(self._bufs, _np.int64, count=n)
                array_of = self.array_of
                for b in _np.unique(bufs[flow_mask]).tolist():
                    flow_arrays.add(array_of[b])
                for b in _np.unique(bufs[conf_mask]).tolist():
                    conflict_arrays.add(array_of[b])
        else:
            bufs = self._bufs
            array_of = self.array_of
            for row in range(n):
                f = flags[row]
                if f & 4:
                    flow_arrays.add(array_of[bufs[row]])
                elif (f & 3) == 3:
                    conflict_arrays.add(array_of[bufs[row]])
        if flow_arrays:
            return "dependent", conflict_arrays, flow_arrays
        if conflict_arrays:
            return "privatizable", conflict_arrays, flow_arrays
        return "independent", conflict_arrays, flow_arrays

    def release(self) -> None:
        """Return the columns to the pool (instance is done)."""
        cols = self._cols
        self._cols = None
        self._first = self._lastacc = self._lastw = None
        self._flags = self._bufs = None
        if cols is not None:
            _pool_release(cols)


@dataclass
class LoopObservation:
    """Aggregated dynamic verdict for one loop label."""

    label: str
    instances: int = 0
    classification: str = "not_executed"
    conflict_arrays: Set[str] = field(default_factory=set)
    flow_arrays: Set[str] = field(default_factory=set)
    total_iterations: int = 0

    def merge(self, cls: str, conflicts: Set[str], flows: Set[str], iters: int) -> None:
        self.instances += 1
        self.total_iterations += iters
        if _RANKING[cls] > _RANKING[self.classification]:
            self.classification = cls
        self.conflict_arrays |= conflicts
        self.flow_arrays |= flows

    @property
    def dynamically_parallel(self) -> bool:
        return self.classification in ("independent", "privatizable")


@dataclass
class ElpdReport:
    """ELPD results for one program run."""

    observations: Dict[str, LoopObservation] = field(default_factory=dict)
    steps: int = 0

    def parallelizable_labels(self) -> List[str]:
        return sorted(
            label
            for label, obs in self.observations.items()
            if obs.dynamically_parallel
        )

    def dependent_labels(self) -> List[str]:
        return sorted(
            label
            for label, obs in self.observations.items()
            if obs.classification == "dependent"
        )


class _ElpdHook:
    """Interpreter loop hook feeding the shadow instances."""

    def __init__(self, targets: Optional[Set[str]]) -> None:
        self.targets = targets
        self.active: List[_ActiveInstance] = []
        self.report = ElpdReport()
        self._iter_counts: List[int] = []
        # the packed shadow rides the same switch as the bytecode
        # engine; captured once so one run never mixes representations
        self._packed = perf.bytecode_enabled()

    def enter_loop(self, stmt, frame, ran_parallel):
        if self.targets is not None and stmt.label not in self.targets:
            self.active.append(None)  # placeholder to keep stack aligned
            self._iter_counts.append(0)
            return len(self.active) - 1
        if self._packed:
            inst = _PackedInstance(stmt.label)
        else:
            inst = _ActiveInstance(stmt.label)
        self.active.append(inst)
        self._iter_counts.append(0)
        return len(self.active) - 1

    def iter_start(self, token, ivalue):
        inst = self.active[token]
        self._iter_counts[token] += 1
        if inst is not None:
            inst.ordinal += 1

    def exit_loop(self, token):
        inst = self.active.pop()
        iters = self._iter_counts.pop()
        if inst is None:
            return
        if type(inst) is _PackedInstance:
            with perf.phase("elpd.shadow"):
                cls, conflicts, flows = inst.classify()
            inst.release()
        else:
            cls, conflicts, flows = inst.classify()
        obs = self.report.observations.setdefault(
            inst.label, LoopObservation(inst.label)
        )
        obs.merge(cls, conflicts, flows, iters)

    def record_access(self, kind: str, storage: ArrayStorage, offset: int) -> None:
        for inst in self.active:
            if inst is not None:
                inst.record(kind, storage, offset)


def static_scalar_obstacles(program: Program) -> Dict[str, Set[str]]:
    """Per-loop scalars that carry a genuine cross-iteration dependence.

    ELPD instruments *array* accesses ("accesses to all arrays reported
    by the compiler as being involved in a dependence were
    instrumented"); scalar recurrences are resolved by the compiler's
    scalar analysis.  This helper reproduces that static side so the
    combined oracle (:func:`run_oracle`) matches the paper's notion of
    an inherently parallel loop.
    """
    from repro.ir.loopinfo import collect_loop_info
    from repro.ir.regiongraph import build_region_tree
    from repro.ir.symboltable import SymbolTable
    from repro.lang.astnodes import DoLoop, walk_stmts

    out: Dict[str, Set[str]] = {}
    for unit in program.units.values():
        symtab = SymbolTable(unit)
        proc = build_region_tree(unit)
        for loop, info in collect_loop_info(proc).items():
            inner = {
                s.var for s in walk_stmts(loop.body) if isinstance(s, DoLoop)
            }
            obstacles = {
                name
                for name in info.scalar_writes
                if name != loop.var
                and name not in inner
                and symtab.is_scalar(name)
                and name in info.scalar_exposed_reads
                and name not in info.reductions
            }
            if obstacles:
                out[loop.label] = obstacles
    return out


def run_oracle(
    program: Program,
    inputs: Sequence[Number] = (),
    target_labels: Optional[Sequence[str]] = None,
    max_steps: int = 10_000_000,
) -> ElpdReport:
    """ELPD array instrumentation + static scalar-recurrence screening.

    Loops whose scalars carry a cross-iteration dependence are demoted
    to ``dependent`` regardless of their array behaviour.
    """
    report = run_elpd(program, inputs, target_labels, max_steps)
    for label, names in static_scalar_obstacles(program).items():
        obs = report.observations.get(label)
        if obs is not None:
            obs.classification = "dependent"
            obs.flow_arrays |= {f"<scalar:{n}>" for n in names}
    return report


def run_elpd(
    program: Program,
    inputs: Sequence[Number] = (),
    target_labels: Optional[Sequence[str]] = None,
    max_steps: int = 10_000_000,
) -> ElpdReport:
    """Run the program with ELPD instrumentation.

    *target_labels* restricts instrumentation (the paper instruments the
    loops the compiler could not parallelize); ``None`` instruments all.
    """
    targets = set(target_labels) if target_labels is not None else None
    hook = _ElpdHook(targets)
    interp = Interpreter(
        program,
        inputs,
        access_hook=hook.record_access,
        loop_hook=hook,
        max_steps=max_steps,
    )
    result = interp.run()
    hook.report.steps = result.steps
    # loops named as targets but never executed
    if targets is not None:
        for label in targets:
            hook.report.observations.setdefault(
                label, LoopObservation(label)
            )
    return hook.report
