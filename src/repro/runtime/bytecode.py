"""Compile-once bytecode runtime for the mini-Fortran interpreter.

The tree-walking :class:`~repro.runtime.interp.Interpreter` re-examines
every AST node on every execution — ``isinstance`` dispatch, operator
string compares, per-access ``ArrayStorage.offset`` calls.  This module
lowers each :class:`~repro.lang.astnodes.Subroutine` **once** into a
compact instruction form — a flat list of pre-bound closures with

* constant-folded operand slots,
* array slots resolved to per-frame registers (no per-access dict
  lookup of the storage object),
* inlined column-major offset/bounds computation for rank-1/rank-2
  references,
* pre-bound intrinsic and operator handlers (no string dispatch),
* loop trip counts computed once per dynamic loop instance,

and caches the compiled unit in the ``rt.bytecode`` memo table
(registered with :mod:`repro.perf`, so ``reset_all_caches`` drops it).

Where a ``DoLoop`` body is straight-line (array assignments only, no
scalar carry) with affine subscripts, the loop additionally compiles a
NumPy-vectorized program that executes the whole iteration space as
array operations (:class:`_VecLoop`).  The vectorized path is attempted
only when every safety precondition verifies at loop entry — integer
affine subscripts, in-bounds at both endpoints, injective write
offsets, no cross-name buffer aliasing, step budget not exceeded —
and otherwise falls back to the scalar instruction loop, which
reproduces the tree-walker's behaviour (including the exact error at
the exact iteration).

Contract: with the bytecode runtime on or off, every
:class:`~repro.runtime.interp.ExecutionResult` — outputs, step count,
final scalars and array snapshots, loop events including two-version
outcomes — and every hook-observable event sequence is identical.
``tests/runtime/test_bytecode_fuzz.py`` and
``tests/integration/test_bytecode_identity.py`` pin this differentially
against the tree walker, exactly as the packed FM kernel is pinned
against the symbolic path.

Hook dispatch is *compiled in only when requested*: the engine compiles
one unit variant per ``(access_hook?, loop_hook?)`` configuration, so
an uninstrumented run pays zero per-access hook branches.

Known vectorization fallback conditions are documented in
``docs/PERF.md`` ("The bytecode runtime").
"""

from __future__ import annotations

import math
from itertools import repeat
from typing import Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.lang.astnodes import (
    ASSUMED,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
    UnOp,
    VarRef,
    walk_exprs,
)
from repro.runtime.interp import (
    ExecutionResult,
    LoopEvent,
    _fmt,
    _ReturnSignal,
)
from repro.runtime.values import ArrayStorage, RuntimeError_

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

#: minimum trip count before the vectorized program is worth the
#: entry-time checks (tiny loops run the scalar instructions)
_VEC_MIN_TRIPS = 8

perf.declare("rt.compile_unit")
perf.declare("rt.vec_loop")
perf.declare("rt.vec_fallback")

#: compiled-unit cache: (id(unit), access_hooked, loop_hooked) -> code.
#: Each entry holds a strong reference to its unit (``code.unit``), so a
#: live entry's id() key cannot be reused; hits re-verify identity
#: anyway, which also covers keys resurrected after a registry reset.
#: The table is dropped wholesale once it grows past the cap (compiling
#: is cheap relative to running).
_code_memo = perf.memo_table("rt.bytecode")
_CODE_MEMO_CAP = 512


class _State:
    """Mutable per-run execution state shared by all compiled closures."""

    __slots__ = (
        "program",
        "inputs",
        "input_pos",
        "plan",
        "access_hook",
        "loop_hook",
        "max_steps",
        "steps",
        "outputs",
        "loop_events",
        "cond_cache",
        "interp",
    )


class _FrameProxy:
    """Frame-shaped view handed to loop hooks (built lazily, hooked
    variants only).  ``scalars`` is the live scalar dict; ``arrays``
    materializes the name -> storage mapping on demand."""

    __slots__ = ("unit", "scalars", "_ar", "_code")

    def __init__(self, code: "_CompiledUnit", sc: dict, ar: list) -> None:
        self.unit = code.unit
        self.scalars = sc
        self._ar = ar
        self._code = code

    @property
    def arrays(self) -> Dict[str, ArrayStorage]:
        return {
            name: self._ar[slot]
            for slot, name, _typ, _dims in self._code.array_specs
        }


class _CompiledUnit:
    """One unit lowered to instruction form for one hook variant."""

    __slots__ = ("unit", "ops", "array_specs", "narrays", "aslot")

    def __init__(self, unit: Subroutine) -> None:
        self.unit = unit
        self.ops: List[Callable] = []
        #: (slot, name, typ, dim closures) in declaration order
        self.array_specs: List[Tuple[int, str, str, list]] = []
        self.narrays = 0
        self.aslot: Dict[str, int] = {}

    def make_frame_arrays(
        self, st: _State, sc: dict, passed: Optional[list] = None
    ) -> list:
        """Resolve declared extents and build the per-frame array slots
        (the compiled analogue of ``Interpreter._new_frame``)."""
        ar: list = [None] * self.narrays
        for slot, name, typ, dims in self.array_specs:
            extents = [
                None if d is None else int(d(st, sc, ar)) for d in dims
            ]
            actual = passed[slot] if passed is not None else None
            if actual is not None:
                ar[slot] = actual.view(name, extents)
            else:
                ar[slot] = ArrayStorage(name, extents, typ)
        return ar


class _Ctx:
    """Compile-time context for one (unit, hook variant)."""

    __slots__ = (
        "unit",
        "program",
        "access_hooked",
        "loop_hooked",
        "aslot",
        "int_typed",
        "array_rank",
        "code",
    )

    def __init__(
        self, unit: Subroutine, program: Program, variant: Tuple[bool, bool]
    ) -> None:
        self.unit = unit
        self.program = program
        self.access_hooked, self.loop_hooked = variant
        self.aslot: Dict[str, int] = {}
        self.array_rank: Dict[str, int] = {}
        self.code: Optional[_CompiledUnit] = None
        # the tree walker coerces on `decl.typ == "integer"` regardless
        # of arrayness, so an integer *array* decl still coerces a
        # same-named scalar assignment/read target
        self.int_typed = {
            name for name, d in unit.decls.items() if d.typ == "integer"
        }
        for name, decl in unit.decls.items():
            if decl.is_array:
                self.aslot[name] = len(self.aslot)
                self.array_rank[name] = decl.rank

    @property
    def variant(self) -> Tuple[bool, bool]:
        return (self.access_hooked, self.loop_hooked)


def _tick(st: _State) -> None:
    st.steps += 1
    if st.steps > st.max_steps:
        raise RuntimeError_(f"step budget exceeded ({st.max_steps})")


# ----------------------------------------------------------------------
# expression compilation
# ----------------------------------------------------------------------
#: sentinel marking "not a compile-time constant"
_NOCONST = object()


def _const_fn(value):
    return lambda st, sc, ar: value


def _truthy(value) -> bool:
    return bool(value)


def _subscript_ops(ctx: _Ctx, ref: ArrayRef) -> List[Callable]:
    return [_compile_expr(s, ctx)[0] for s in ref.subscripts]


def _offset_fn(ctx: _Ctx, ref: ArrayRef) -> Callable:
    """Compile ``ref`` to a closure returning ``(storage, flat offset)``
    with the tree walker's exact evaluation order and error messages:
    subscripts first, then the storage lookup, then per-dimension
    bounds checks (inlined for ranks 1 and 2)."""
    name = ref.name
    subs = _subscript_ops(ctx, ref)
    slot = ctx.aslot.get(name)

    if slot is None:
        def missing(st, sc, ar, subs=subs, name=name):
            for s in subs:
                int(s(st, sc, ar))
            raise RuntimeError_(f"unknown array {name!r}")
        return missing

    rank = ctx.array_rank[name]
    if len(subs) != rank:
        nsubs = len(subs)

        def badrank(st, sc, ar, subs=subs, slot=slot, name=name):
            for s in subs:
                int(s(st, sc, ar))
            arr = ar[slot]
            if arr is None:
                raise RuntimeError_(f"unknown array {name!r}")
            raise RuntimeError_(
                f"array {arr.name}: {nsubs} subscripts for "
                f"rank {len(arr.extents)}"
            )
        return badrank

    if rank == 1:
        s0 = subs[0]

        def off1(st, sc, ar, s0=s0, slot=slot, name=name):
            i0 = int(s0(st, sc, ar))
            arr = ar[slot]
            if arr is None:
                raise RuntimeError_(f"unknown array {name!r}")
            e0 = arr.extents[0]
            if e0 is not None:
                if not 1 <= i0 <= e0:
                    raise RuntimeError_(
                        f"array {arr.name}: subscript {i0} out of bounds "
                        f"1..{e0} in dimension 1"
                    )
            elif i0 < 1:
                raise RuntimeError_(
                    f"array {arr.name}: subscript {i0} < 1 in assumed "
                    f"dimension 1"
                )
            return arr, i0 - 1
        return off1

    if rank == 2:
        s0, s1 = subs

        def off2(st, sc, ar, s0=s0, s1=s1, slot=slot, name=name):
            i0 = int(s0(st, sc, ar))
            i1 = int(s1(st, sc, ar))
            arr = ar[slot]
            if arr is None:
                raise RuntimeError_(f"unknown array {name!r}")
            e0, e1 = arr.extents
            if e0 is not None:
                if not 1 <= i0 <= e0:
                    raise RuntimeError_(
                        f"array {arr.name}: subscript {i0} out of bounds "
                        f"1..{e0} in dimension 1"
                    )
                stride = e0
            else:
                if i0 < 1:
                    raise RuntimeError_(
                        f"array {arr.name}: subscript {i0} < 1 in assumed "
                        f"dimension 1"
                    )
                stride = 1
            if e1 is not None:
                if not 1 <= i1 <= e1:
                    raise RuntimeError_(
                        f"array {arr.name}: subscript {i1} out of bounds "
                        f"1..{e1} in dimension 2"
                    )
            elif i1 < 1:
                raise RuntimeError_(
                    f"array {arr.name}: subscript {i1} < 1 in assumed "
                    f"dimension 2"
                )
            return arr, (i0 - 1) + (i1 - 1) * stride
        return off2

    def offn(st, sc, ar, subs=subs, slot=slot, name=name):
        vals = [int(s(st, sc, ar)) for s in subs]
        arr = ar[slot]
        if arr is None:
            raise RuntimeError_(f"unknown array {name!r}")
        return arr, arr.offset(vals)
    return offn


def _compile_intrinsic(expr: Intrinsic, ctx: _Ctx):
    fns = [_compile_expr(a, ctx) for a in expr.args]
    arg_fns = [f for f, _c in fns]
    consts = [c for _f, c in fns]
    name = expr.name

    if name == "mod":
        if len(arg_fns) == 2:
            f0, f1 = arg_fns

            def mod(st, sc, ar):
                a = f0(st, sc, ar)
                b = f1(st, sc, ar)
                if b == 0:
                    raise RuntimeError_("mod with zero divisor")
                if isinstance(a, int) and isinstance(b, int):
                    return int(math.fmod(a, b))
                return math.fmod(a, b)
            fn = mod
        else:  # arity error surfaces at evaluation, as in the walker
            def mod_bad(st, sc, ar):
                args = [f(st, sc, ar) for f in arg_fns]
                a, b = args
                raise RuntimeError_("mod with zero divisor")
            fn = mod_bad
    elif name == "min":
        if len(arg_fns) == 2:
            f0, f1 = arg_fns
            fn = lambda st, sc, ar: min(f0(st, sc, ar), f1(st, sc, ar))
        else:
            fn = lambda st, sc, ar: min([f(st, sc, ar) for f in arg_fns])
    elif name == "max":
        if len(arg_fns) == 2:
            f0, f1 = arg_fns
            fn = lambda st, sc, ar: max(f0(st, sc, ar), f1(st, sc, ar))
        else:
            fn = lambda st, sc, ar: max([f(st, sc, ar) for f in arg_fns])
    elif name == "abs":
        def fn(st, sc, ar):
            args = [f(st, sc, ar) for f in arg_fns]
            return abs(args[0])
    else:
        def fn(st, sc, ar):
            for f in arg_fns:
                f(st, sc, ar)
            raise RuntimeError_(f"unknown intrinsic {name!r}")
        return fn, _NOCONST

    if all(c is not _NOCONST for c in consts):
        try:
            folded = fn(None, None, None)
        except Exception:  # fold only total expressions; errors stay runtime
            return fn, _NOCONST
        return _const_fn(folded), folded
    return fn, _NOCONST


def _compile_binop(expr: BinOp, ctx: _Ctx):
    op = expr.op
    lf, lc = _compile_expr(expr.left, ctx)
    rf, rc = _compile_expr(expr.right, ctx)

    if op == "and":
        fn = lambda st, sc, ar: (
            1 if _truthy(lf(st, sc, ar)) and _truthy(rf(st, sc, ar)) else 0
        )
    elif op == "or":
        fn = lambda st, sc, ar: (
            1 if _truthy(lf(st, sc, ar)) or _truthy(rf(st, sc, ar)) else 0
        )
    elif op == "+":
        fn = lambda st, sc, ar: lf(st, sc, ar) + rf(st, sc, ar)
    elif op == "-":
        fn = lambda st, sc, ar: lf(st, sc, ar) - rf(st, sc, ar)
    elif op == "*":
        fn = lambda st, sc, ar: lf(st, sc, ar) * rf(st, sc, ar)
    elif op == "/":
        def fn(st, sc, ar):
            a = lf(st, sc, ar)
            b = rf(st, sc, ar)
            if b == 0:
                raise RuntimeError_("division by zero")
            if isinstance(a, int) and isinstance(b, int):
                return int(a / b)  # Fortran truncation toward zero
            return a / b
    elif op == "**":
        fn = lambda st, sc, ar: lf(st, sc, ar) ** rf(st, sc, ar)
    elif op == "<":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) < rf(st, sc, ar) else 0
    elif op == "<=":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) <= rf(st, sc, ar) else 0
    elif op == ">":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) > rf(st, sc, ar) else 0
    elif op == ">=":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) >= rf(st, sc, ar) else 0
    elif op == "==":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) == rf(st, sc, ar) else 0
    elif op == "!=":
        fn = lambda st, sc, ar: 1 if lf(st, sc, ar) != rf(st, sc, ar) else 0
    else:
        def fn(st, sc, ar):
            lf(st, sc, ar)
            rf(st, sc, ar)
            raise RuntimeError_(f"unknown operator {op!r}")
        return fn, _NOCONST

    if lc is not _NOCONST and rc is not _NOCONST:
        try:
            folded = fn(None, None, None)
        except Exception:  # fold only total expressions; errors stay runtime
            return fn, _NOCONST
        return _const_fn(folded), folded
    return fn, _NOCONST


def _compile_expr(expr: Expr, ctx: _Ctx):
    """Compile to ``(closure, const)`` — *const* is the folded value
    when the whole subtree is a compile-time constant, else _NOCONST."""
    if isinstance(expr, Num):
        v = expr.value
        return _const_fn(v), v
    if isinstance(expr, VarRef):
        name = expr.name
        return (lambda st, sc, ar: sc.get(name, 0)), _NOCONST
    if isinstance(expr, ArrayRef):
        off = _offset_fn(ctx, expr)
        if ctx.access_hooked:
            def readh(st, sc, ar, off=off):
                arr, o = off(st, sc, ar)
                st.access_hook("r", arr, o)
                return arr.data.get(o, 0.0)
            return readh, _NOCONST

        def read(st, sc, ar, off=off):
            arr, o = off(st, sc, ar)
            return arr.data.get(o, 0.0)
        return read, _NOCONST
    if isinstance(expr, UnOp):
        f, c = _compile_expr(expr.operand, ctx)
        if expr.op == "-":
            if c is not _NOCONST:
                return _const_fn(-c), -c
            return (lambda st, sc, ar: -f(st, sc, ar)), _NOCONST
        if c is not _NOCONST:
            v = 0 if _truthy(c) else 1
            return _const_fn(v), v
        return (lambda st, sc, ar: 0 if _truthy(f(st, sc, ar)) else 1), _NOCONST
    if isinstance(expr, Intrinsic):
        return _compile_intrinsic(expr, ctx)
    if isinstance(expr, BinOp):
        return _compile_binop(expr, ctx)

    def bad(st, sc, ar):
        raise RuntimeError_(f"cannot evaluate {expr!r}")
    return bad, _NOCONST


# ----------------------------------------------------------------------
# statement compilation
# ----------------------------------------------------------------------
def _compile_body(body: List[Stmt], ctx: _Ctx) -> List[Callable]:
    return [_compile_stmt(s, ctx) for s in body]


def _compile_stmt(stmt: Stmt, ctx: _Ctx) -> Callable:
    if isinstance(stmt, Assign):
        return _compile_assign(stmt, ctx)
    if isinstance(stmt, DoLoop):
        return _compile_do(stmt, ctx)
    if isinstance(stmt, If):
        return _compile_if(stmt, ctx)
    if isinstance(stmt, Call):
        return _compile_call(stmt, ctx)
    if isinstance(stmt, ReadStmt):
        return _compile_read(stmt, ctx)
    if isinstance(stmt, PrintStmt):
        return _compile_print(stmt, ctx)
    if isinstance(stmt, Return):
        def ret(st, sc, ar):
            _tick(st)
            raise _ReturnSignal()
        return ret

    def bad(st, sc, ar):
        _tick(st)
        raise RuntimeError_(f"cannot execute {stmt!r}")
    return bad


def _compile_assign(stmt: Assign, ctx: _Ctx) -> Callable:
    rhs, _c = _compile_expr(stmt.value, ctx)
    if isinstance(stmt.target, VarRef):
        name = stmt.target.name
        if name in ctx.int_typed:
            def assign_i(st, sc, ar):
                _tick(st)
                sc[name] = int(rhs(st, sc, ar))
            return assign_i

        def assign_s(st, sc, ar):
            _tick(st)
            sc[name] = rhs(st, sc, ar)
        return assign_s

    off = _offset_fn(ctx, stmt.target)
    if ctx.access_hooked:
        def assign_ah(st, sc, ar):
            _tick(st)
            v = rhs(st, sc, ar)
            arr, o = off(st, sc, ar)
            arr.data[o] = float(v)
            st.access_hook("w", arr, o)
        return assign_ah

    def assign_a(st, sc, ar):
        _tick(st)
        v = rhs(st, sc, ar)
        arr, o = off(st, sc, ar)
        arr.data[o] = float(v)
    return assign_a


def _compile_if(stmt: If, ctx: _Ctx) -> Callable:
    cond, _c = _compile_expr(stmt.cond, ctx)
    then_ops = _compile_body(stmt.then_body, ctx)
    else_ops = _compile_body(stmt.else_body, ctx)

    def run_if(st, sc, ar):
        _tick(st)
        if cond(st, sc, ar):
            for op in then_ops:
                op(st, sc, ar)
        else:
            for op in else_ops:
                op(st, sc, ar)
    return run_if


def _compile_read(stmt: ReadStmt, ctx: _Ctx) -> Callable:
    items = [(name, name in ctx.int_typed) for name in stmt.names]

    def run_read(st, sc, ar):
        _tick(st)
        for name, coerce in items:
            if st.input_pos >= len(st.inputs):
                raise RuntimeError_(
                    f"read {name}: input exhausted at position "
                    f"{st.input_pos}"
                )
            value = st.inputs[st.input_pos]
            st.input_pos += 1
            sc[name] = int(value) if coerce else value
    return run_read


def _compile_print(stmt: PrintStmt, ctx: _Ctx) -> Callable:
    parts = []
    for a in stmt.args:
        if hasattr(a, "text"):
            parts.append((True, a.text))
        else:
            parts.append((False, _compile_expr(a, ctx)[0]))

    def run_print(st, sc, ar):
        _tick(st)
        out = []
        for is_text, p in parts:
            out.append(p if is_text else _fmt(p(st, sc, ar)))
        st.outputs.append(" ".join(out))
    return run_print


def _compile_call(stmt: Call, ctx: _Ctx) -> Callable:
    """Calls resolve their callee's compiled code on first execution
    (matching the tree walker, which only faults a missing unit when the
    call statement actually runs)."""
    cell: List[Optional[Callable]] = [None]

    def run_call(st, sc, ar):
        _tick(st)
        impl = cell[0]
        if impl is None:
            impl = cell[0] = _build_call(stmt, ctx)
        impl(st, sc, ar)
    return run_call


def _build_call(stmt: Call, ctx: _Ctx) -> Callable:
    callee = ctx.program.units[stmt.name]
    code = _unit_code(callee, ctx.variant, ctx.program)
    binders: List[Callable] = []
    for formal, actual in zip(callee.params, stmt.args):
        formal_decl = callee.decls.get(formal)
        formal_is_array = formal_decl is not None and formal_decl.is_array
        if formal_is_array:
            callee_slot = code.aslot[formal]
            caller_slot = (
                ctx.aslot.get(actual.name)
                if isinstance(actual, VarRef)
                else None
            )
            if caller_slot is None:
                def bad_binder(
                    st, sc, ar, sc2, passed, name=stmt.name, formal=formal
                ):
                    raise RuntimeError_(
                        f"call {name}: formal array {formal!r} needs a "
                        f"whole-array actual"
                    )
                binders.append(bad_binder)
            else:
                def arr_binder(
                    st, sc, ar, sc2, passed, cs=caller_slot, ks=callee_slot
                ):
                    passed[ks] = ar[cs]
                binders.append(arr_binder)
        else:
            argfn, _c = _compile_expr(actual, ctx)

            def sc_binder(st, sc, ar, sc2, passed, formal=formal, fn=argfn):
                sc2[formal] = fn(st, sc, ar)
            binders.append(sc_binder)

    def impl(st, sc, ar):
        sc2: dict = {}
        passed: list = [None] * code.narrays
        for b in binders:
            b(st, sc, ar, sc2, passed)
        ar2 = code.make_frame_arrays(st, sc2, passed)
        try:
            for op in code.ops:
                op(st, sc2, ar2)
        except _ReturnSignal:
            pass
    return impl


# ----------------------------------------------------------------------
# DO loops (scalar instruction loop + optional vectorized program)
# ----------------------------------------------------------------------
def _compile_do(stmt: DoLoop, ctx: _Ctx) -> Callable:
    lo_c, _ = _compile_expr(stmt.lo, ctx)
    hi_c, _ = _compile_expr(stmt.hi, ctx)
    step_c = _compile_expr(stmt.step, ctx)[0] if stmt.step is not None else None
    body_ops = _compile_body(stmt.body, ctx)
    nbody = len(body_ops)
    var = stmt.var
    label = stmt.label
    nid = stmt.nid
    hooked = ctx.loop_hooked
    vec = None
    if not ctx.access_hooked and not ctx.loop_hooked and _np is not None:
        vec = _try_vectorize(stmt, ctx)

    def run_do(st, sc, ar):
        _tick(st)
        lo = int(lo_c(st, sc, ar))
        hi = int(hi_c(st, sc, ar))
        step = int(step_c(st, sc, ar)) if step_c is not None else 1
        if step == 0:
            raise RuntimeError_(f"loop {label}: zero step")

        ran_parallel: Optional[bool] = None
        plan = st.plan
        if plan is not None:
            lp = plan.plan_for(stmt)
            if lp is not None and lp.mode == "two_version":
                cfn = st.cond_cache.get(nid)
                if cfn is None:
                    from repro.codegen.twoversion import predicate_to_expr

                    cfn = _compile_expr(
                        predicate_to_expr(lp.runtime_pred), ctx
                    )[0]
                    st.cond_cache[nid] = cfn
                ran_parallel = _truthy(cfn(st, sc, ar))
            elif lp is not None and lp.mode == "parallel":
                ran_parallel = True

        if step > 0:
            trips = (hi - lo) // step + 1 if lo <= hi else 0
        else:
            trips = (lo - hi) // (-step) + 1 if lo >= hi else 0

        token = None
        if hooked and st.loop_hook is not None:
            st.interp.steps = st.steps
            proxy = _FrameProxy(ctx.code, sc, ar)
            token = st.loop_hook.enter_loop(stmt, proxy, ran_parallel)

        if trips:
            if (
                vec is not None
                and trips >= _VEC_MIN_TRIPS
                and vec.execute(st, sc, ar, lo, step, trips)
            ):
                st.steps += trips * nbody
                sc[var] = lo + trips * step
                perf.bump("rt.vec_loop")
            else:
                i = lo
                hook = st.loop_hook if hooked else None
                if hook is not None:
                    for _ in range(trips):
                        sc[var] = i
                        hook.iter_start(token, i)
                        for op in body_ops:
                            op(st, sc, ar)
                        i += step
                else:
                    for _ in range(trips):
                        sc[var] = i
                        for op in body_ops:
                            op(st, sc, ar)
                        i += step
                sc[var] = i
        else:
            sc[var] = lo

        if hooked and st.loop_hook is not None:
            st.interp.steps = st.steps
            st.loop_hook.exit_loop(token)
        st.loop_events.append(LoopEvent(label, nid, trips, ran_parallel))
    return run_do


# ----------------------------------------------------------------------
# vectorized loop programs
# ----------------------------------------------------------------------
class _VecSite:
    """One distinct (array, subscript tuple) reference in a vector loop."""

    __slots__ = ("name", "slot", "dims", "offs", "data", "arr")

    def __init__(self, name: str, slot: int, dims: list) -> None:
        self.name = name
        self.slot = slot
        self.dims = dims  # [(coeff_fn, base_fn), ...] per dimension
        self.offs: Optional[list] = None  # resolved per execution
        self.data: Optional[dict] = None
        self.arr: Optional[ArrayStorage] = None


class _VecRt:
    """Per-execution runtime environment for vector value programs."""

    __slots__ = ("iv", "inv", "sites", "n")

    def gather(self, idx: int):
        site = self.sites[idx]
        return _np.fromiter(
            map(site.data.get, site.offs, repeat(0.0)),
            _np.float64,
            count=self.n,
        )


class _VecLoop:
    """A compiled whole-iteration-space program for one DO loop."""

    __slots__ = ("sites", "stmts", "invariants", "mod_checks", "write_sites")

    def __init__(self, sites, stmts, invariants, mod_checks, write_sites):
        self.sites = sites
        self.stmts = stmts  # [(target site index, value fn), ...]
        #: loop-invariant scalar subtrees, pre-evaluated at entry so the
        #: compute/scatter phase cannot raise after a partial write
        self.invariants = invariants
        self.mod_checks = mod_checks  # invariant-slot indices of divisors
        self.write_sites = write_sites  # set of written site objects

    # ------------------------------------------------------------------
    def execute(self, st, sc, ar, lo, step, trips) -> bool:
        """Run the whole iteration space; False = fall back to the
        scalar instruction loop (which reproduces exact tree-walker
        behaviour, including any error at its exact iteration)."""
        nbody = len(self.stmts)
        if st.steps + trips * nbody > st.max_steps:
            perf.bump("rt.vec_fallback")
            return False
        last = lo + (trips - 1) * step
        try:
            for site in self.sites:
                arr = ar[site.slot]
                if arr is None:
                    perf.bump("rt.vec_fallback")
                    return False
                site.arr = arr
                site.data = arr.data
            inv_vals = [f(st, sc, ar) for f in self.invariants]
            for k in self.mod_checks:
                if inv_vals[k] == 0:
                    perf.bump("rt.vec_fallback")
                    return False

            iv = None
            for site in self.sites:
                arr = site.arr
                extents = arr.extents
                if len(extents) != len(site.dims):
                    perf.bump("rt.vec_fallback")
                    return False
                offs = None
                stride = 1
                coeff_total = 0
                for k, (cfn, bfn) in enumerate(site.dims):
                    c = cfn(st, sc, ar)
                    b = bfn(st, sc, ar)
                    if type(c) is not int or type(b) is not int:
                        perf.bump("rt.vec_fallback")
                        return False
                    s_a = c * lo + b
                    s_b = c * last + b
                    s_min, s_max = (s_a, s_b) if s_a <= s_b else (s_b, s_a)
                    ext = extents[k]
                    if s_min < 1 or (ext is not None and s_max > ext):
                        perf.bump("rt.vec_fallback")
                        return False
                    if iv is None:
                        iv = _np.arange(trips, dtype=_np.int64) * step + lo
                    dim_off = (c * iv + (b - 1)) * stride
                    offs = dim_off if offs is None else offs + dim_off
                    coeff_total += c * stride
                    if ext is not None:
                        stride *= ext
                site.offs = offs.tolist()
                if site in self.write_sites and coeff_total == 0:
                    perf.bump("rt.vec_fallback")
                    return False

            # cross-name buffer aliasing (formals viewing one actual)
            written_bufs = {
                id(self.sites[i].data): self.sites[i].name
                for i in range(len(self.sites))
                if self.sites[i] in self.write_sites
            }
            for site in self.sites:
                wname = written_bufs.get(id(site.data))
                if wname is not None and wname != site.name:
                    perf.bump("rt.vec_fallback")
                    return False
        except Exception:
            # any entry-check failure (bad subscript type, invariant
            # raising, overflow) → scalar loop, which reproduces the
            # walker's exact behaviour at the exact iteration
            perf.bump("rt.vec_fallback")
            return False

        rt = _VecRt()
        rt.iv, rt.inv, rt.sites, rt.n = iv, inv_vals, self.sites, trips
        for tgt_idx, value_fn in self.stmts:
            res = value_fn(rt)
            if isinstance(res, _np.ndarray):
                out = res.astype(_np.float64, copy=False)
            else:
                out = _np.full(trips, float(res))
            site = self.sites[tgt_idx]
            site.data.update(zip(site.offs, out.tolist()))
        for site in self.sites:  # drop per-execution references
            site.offs = site.data = site.arr = None
        return True


def _expr_uses(e: Expr, loopvar: str) -> Tuple[bool, bool]:
    """(references the loop variable, references any array)."""
    uses_var = uses_array = False
    for sub in walk_exprs(e):
        if isinstance(sub, VarRef) and sub.name == loopvar:
            uses_var = True
        elif isinstance(sub, ArrayRef):
            uses_array = True
    return uses_var, uses_array


def _kfn(v):
    return lambda st, sc, ar: v


def _affine(e: Expr, ctx: _Ctx, loopvar: str):
    """Decompose *e* as ``coeff * i + base`` with loop-invariant closures
    for both parts; returns ``(coeff_fn, base_fn, coeff_is_zero)`` or
    ``None``.  Exactness requires integer values at runtime — verified
    at loop entry before the vector program commits."""
    if isinstance(e, Num):
        return _kfn(0), _kfn(e.value), True
    if isinstance(e, VarRef):
        if e.name == loopvar:
            return _kfn(1), _kfn(0), False
        fn = _compile_expr(e, ctx)[0]
        return _kfn(0), fn, True
    if isinstance(e, UnOp) and e.op == "-":
        sub = _affine(e.operand, ctx, loopvar)
        if sub is None:
            return None
        c, b, z = sub
        return (
            (lambda st, sc, ar: -c(st, sc, ar)),
            (lambda st, sc, ar: -b(st, sc, ar)),
            z,
        )
    if isinstance(e, BinOp) and e.op in ("+", "-"):
        left = _affine(e.left, ctx, loopvar)
        right = _affine(e.right, ctx, loopvar)
        if left is None or right is None:
            return None
        lc, lb, lz = left
        rc, rb, rz = right
        if e.op == "+":
            return (
                (lambda st, sc, ar: lc(st, sc, ar) + rc(st, sc, ar)),
                (lambda st, sc, ar: lb(st, sc, ar) + rb(st, sc, ar)),
                lz and rz,
            )
        return (
            (lambda st, sc, ar: lc(st, sc, ar) - rc(st, sc, ar)),
            (lambda st, sc, ar: lb(st, sc, ar) - rb(st, sc, ar)),
            lz and rz,
        )
    if isinstance(e, BinOp) and e.op == "*":
        left = _affine(e.left, ctx, loopvar)
        right = _affine(e.right, ctx, loopvar)
        if left is not None and right is not None:
            lc, lb, lz = left
            rc, rb, rz = right
            if rz:
                return (
                    (lambda st, sc, ar: lc(st, sc, ar) * rb(st, sc, ar)),
                    (lambda st, sc, ar: lb(st, sc, ar) * rb(st, sc, ar)),
                    lz,
                )
            if lz:
                return (
                    (lambda st, sc, ar: rc(st, sc, ar) * lb(st, sc, ar)),
                    (lambda st, sc, ar: rb(st, sc, ar) * lb(st, sc, ar)),
                    rz,
                )
        return None
    uses_var, uses_array = _expr_uses(e, loopvar)
    if not uses_var and not uses_array:
        return _kfn(0), _compile_expr(e, ctx)[0], True
    return None


class _VecCompiler:
    """Builds the vector program for one straight-line loop body."""

    def __init__(self, ctx: _Ctx, loopvar: str, write_subs: dict) -> None:
        self.ctx = ctx
        self.loopvar = loopvar
        self.write_subs = write_subs  # name -> subscript tuple
        self.sites: List[_VecSite] = []
        self.site_keys: Dict[Tuple, int] = {}
        self.invariants: List[Callable] = []
        self.mod_checks: List[int] = []

    def invariant_slot(self, e: Expr) -> int:
        k = len(self.invariants)
        self.invariants.append(_compile_expr(e, self.ctx)[0])
        return k

    def site_for(self, ref: ArrayRef) -> Optional[int]:
        key = (ref.name, ref.subscripts)
        idx = self.site_keys.get(key)
        if idx is not None:
            return idx
        slot = self.ctx.aslot.get(ref.name)
        if slot is None or self.ctx.array_rank[ref.name] != len(ref.subscripts):
            return None
        dims = []
        for s in ref.subscripts:
            dec = _affine(s, self.ctx, self.loopvar)
            if dec is None:
                return None
            dims.append((dec[0], dec[1]))
        idx = len(self.sites)
        self.sites.append(_VecSite(ref.name, slot, dims))
        self.site_keys[key] = idx
        return idx

    def value(self, e: Expr) -> Optional[Callable]:
        """Compile *e* to ``fn(rt) -> ndarray | scalar``."""
        uses_var, uses_array = _expr_uses(e, self.loopvar)
        if not uses_var and not uses_array:
            # invariant scalar subtree: pre-evaluated once at loop
            # entry (inside the fallback guard, so a raising subtree —
            # division by zero, say — reverts to the scalar loop before
            # anything has been written)
            k = self.invariant_slot(e)
            return lambda rt: rt.inv[k]
        return self._value_node(e)

    def _touches_written(self, e: Expr) -> bool:
        for sub in walk_exprs(e):
            if isinstance(sub, ArrayRef) and sub.name in self.write_subs:
                return True
        return False

    def _value_node(self, e: Expr) -> Optional[Callable]:
        if isinstance(e, Num):
            v = e.value
            return lambda rt: v
        if isinstance(e, VarRef):
            if e.name == self.loopvar:
                return lambda rt: rt.iv
            name = e.name
            return lambda rt: rt.sc.get(name, 0)
        if isinstance(e, ArrayRef):
            if e.name in self.write_subs and (
                e.subscripts != self.write_subs[e.name]
            ):
                return None  # read/write offsets may cross iterations
            idx = self.site_for(e)
            if idx is None:
                return None
            return lambda rt: rt.gather(idx)
        if isinstance(e, UnOp) and e.op == "-":
            f = self.value(e.operand)
            if f is None:
                return None
            return lambda rt: -f(rt)
        if isinstance(e, BinOp) and e.op in ("+", "-", "*"):
            lf = self.value(e.left)
            rf = self.value(e.right)
            if lf is None or rf is None:
                return None
            if e.op == "+":
                return lambda rt: lf(rt) + rf(rt)
            if e.op == "-":
                return lambda rt: lf(rt) - rf(rt)
            return lambda rt: lf(rt) * rf(rt)
        if isinstance(e, Intrinsic):
            return self._value_intrinsic(e)
        return None

    def _value_intrinsic(self, e: Intrinsic) -> Optional[Callable]:
        if e.name == "abs" and len(e.args) >= 1:
            fns = [self.value(a) for a in e.args]
            if any(f is None for f in fns):
                return None
            f0 = fns[0]

            def vabs(rt, fns=fns, f0=f0):
                vals = [f(rt) for f in fns]
                return abs(vals[0])
            return vabs
        if e.name in ("min", "max"):
            fns = [self.value(a) for a in e.args]
            if any(f is None for f in fns):
                return None
            pick_second = _np.less if e.name == "min" else _np.greater

            def vminmax(rt, fns=fns, pick=pick_second):
                acc = fns[0](rt)
                for f in fns[1:]:
                    v = f(rt)
                    if isinstance(acc, _np.ndarray) or isinstance(
                        v, _np.ndarray
                    ):
                        acc = _np.where(pick(v, acc), v, acc)
                    else:
                        acc = v if pick(v, acc) else acc
                return acc
            return vminmax
        if e.name == "mod" and len(e.args) == 2:
            dividend = self.value(e.args[0])
            if dividend is None:
                return None
            div_e = e.args[1]
            div_var, div_arr = _expr_uses(div_e, self.loopvar)
            if div_var or div_arr:
                return None  # divisor must be a loop-invariant scalar
            k = self.invariant_slot(div_e)
            self.mod_checks.append(k)  # entry verifies it is nonzero

            def vmod(rt, dividend=dividend, k=k):
                a = dividend(rt)
                b = rt.inv[k]
                if isinstance(a, _np.ndarray):
                    return _np.fmod(a, b)
                if isinstance(a, int) and isinstance(b, int):
                    return int(math.fmod(a, b))
                return math.fmod(a, b)
            return vmod
        return None


def _try_vectorize(stmt: DoLoop, ctx: _Ctx) -> Optional[_VecLoop]:
    """Compile the loop's whole-iteration-space program, or ``None``
    when the body is not a straight-line affine candidate."""
    if not stmt.body:
        return None
    assigns: List[Assign] = []
    for s in stmt.body:
        if not isinstance(s, Assign) or not isinstance(s.target, ArrayRef):
            return None  # control flow, calls, or scalar carry
        assigns.append(s)

    # all writes (and reads) of one array must share one subscript tuple
    write_subs: Dict[str, Tuple[Expr, ...]] = {}
    for s in assigns:
        prev = write_subs.get(s.target.name)
        if prev is not None and prev != s.target.subscripts:
            return None
        write_subs[s.target.name] = s.target.subscripts

    comp = _VecCompiler(ctx, stmt.var, write_subs)
    stmts = []
    write_sites = set()
    for s in assigns:
        tgt_idx = comp.site_for(s.target)
        if tgt_idx is None:
            return None
        value_fn = comp.value(s.value)
        if value_fn is None:
            return None
        stmts.append((tgt_idx, value_fn))
        write_sites.add(comp.sites[tgt_idx])
    return _VecLoop(
        comp.sites, stmts, comp.invariants, comp.mod_checks, write_sites
    )


# ----------------------------------------------------------------------
# unit compilation and the entry point
# ----------------------------------------------------------------------
def _compile_unit(
    unit: Subroutine, variant: Tuple[bool, bool], program: Program
) -> _CompiledUnit:
    perf.bump("rt.compile_unit")
    ctx = _Ctx(unit, program, variant)
    code = _CompiledUnit(unit)
    ctx.code = code  # loop closures hand it to frame proxies
    code.aslot = ctx.aslot
    code.narrays = len(ctx.aslot)
    for name, decl in unit.decls.items():
        if not decl.is_array:
            continue
        dims = [
            None if d == ASSUMED else _compile_expr(d, ctx)[0]
            for d in decl.dims
        ]
        code.array_specs.append((ctx.aslot[name], name, decl.typ, dims))
    code.ops = _compile_body(unit.body, ctx)
    return code


def _unit_code(
    unit: Subroutine, variant: Tuple[bool, bool], program: Program
) -> _CompiledUnit:
    key = (id(unit), variant[0], variant[1])
    code = _code_memo.data.get(key)
    if code is not None and code.unit is unit:
        _code_memo.hits += 1
        return code
    _code_memo.misses += 1
    code = _compile_unit(unit, variant, program)
    if len(_code_memo.data) >= _CODE_MEMO_CAP:
        _code_memo.data.clear()
    _code_memo.data[key] = code
    return code


def execute(interp) -> ExecutionResult:
    """Run *interp*'s program on the bytecode engine.

    Reuses the Interpreter's configuration and result fields so callers
    (and hooks reading ``interp.steps``) observe the same object state
    as the tree-walking path.
    """
    program = interp.program
    variant = (interp.access_hook is not None, interp.loop_hook is not None)
    st = _State()
    st.program = program
    st.inputs = interp.inputs
    st.input_pos = interp._input_pos
    st.plan = interp.plan
    st.access_hook = interp.access_hook
    st.loop_hook = interp.loop_hook
    st.max_steps = interp.max_steps
    st.steps = interp.steps
    st.outputs = interp.outputs
    st.loop_events = interp.loop_events
    st.cond_cache = {}
    st.interp = interp

    with perf.phase("rt.exec"):
        main = program.main_unit
        code = _unit_code(main, variant, program)
        sc: dict = {}
        ar = code.make_frame_arrays(st, sc)
        try:
            try:
                for op in code.ops:
                    op(st, sc, ar)
            except _ReturnSignal:
                pass
        finally:
            interp.steps = st.steps
            interp._input_pos = st.input_pos

    return ExecutionResult(
        outputs=st.outputs,
        steps=st.steps,
        main_arrays={
            name: ar[slot].snapshot()
            for slot, name, _typ, _dims in code.array_specs
        },
        main_scalars=dict(sc),
        loop_events=st.loop_events,
    )
