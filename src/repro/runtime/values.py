"""Runtime value representation.

Arrays are flat column-major buffers with resolved integer extents —
exactly Fortran's storage model — so passing ``a(10,20)`` to a formal
declared ``x(200)`` (or ``x(10,*)``) works by sequence association, the
behaviour the interprocedural ``Reshape`` analysis reasons about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class RuntimeError_(Exception):
    """Raised on dynamic errors (bad subscript, unset input, step 0)."""


class ArrayStorage:
    """A flat column-major array with 1-based subscripts per dimension.

    ``extents[k] is None`` marks an assumed-size final dimension (the
    view bounds-checks only the leading dimensions).  Views share the
    underlying buffer — whole-array argument passing aliases storage.
    """

    __slots__ = ("name", "extents", "data", "typ")

    def __init__(
        self,
        name: str,
        extents: Sequence[Optional[int]],
        typ: str = "real",
        data: Optional[Dict[int, float]] = None,
    ) -> None:
        self.name = name
        self.extents: Tuple[Optional[int], ...] = tuple(extents)
        self.typ = typ
        # sparse flat storage: unset elements read as 0 (deterministic)
        self.data: Dict[int, float] = data if data is not None else {}

    # ------------------------------------------------------------------
    def offset(self, subscripts: Sequence[int]) -> int:
        """Column-major zero-based flat offset of 1-based subscripts."""
        if len(subscripts) != len(self.extents):
            raise RuntimeError_(
                f"array {self.name}: {len(subscripts)} subscripts for "
                f"rank {len(self.extents)}"
            )
        off = 0
        stride = 1
        for k, (s, ext) in enumerate(zip(subscripts, self.extents)):
            if ext is not None and not (1 <= s <= ext):
                raise RuntimeError_(
                    f"array {self.name}: subscript {s} out of bounds "
                    f"1..{ext} in dimension {k + 1}"
                )
            if ext is None and s < 1:
                raise RuntimeError_(
                    f"array {self.name}: subscript {s} < 1 in assumed "
                    f"dimension {k + 1}"
                )
            off += (s - 1) * stride
            if ext is not None:
                stride *= ext
        return off

    def load(self, subscripts: Sequence[int]) -> float:
        return self.data.get(self.offset(subscripts), 0.0)

    def store(self, subscripts: Sequence[int], value: float) -> int:
        off = self.offset(subscripts)
        self.data[off] = value
        return off

    def view(self, name: str, extents: Sequence[Optional[int]]) -> "ArrayStorage":
        """A reshaped alias sharing this buffer (sequence association)."""
        v = ArrayStorage(name, extents, self.typ, self.data)
        return v

    def snapshot(self) -> Dict[int, float]:
        return dict(self.data)

    def total_declared(self) -> Optional[int]:
        total = 1
        for e in self.extents:
            if e is None:
                return None
            total *= e
        return total

    def __repr__(self) -> str:
        return f"ArrayStorage({self.name}, extents={self.extents}, nnz={len(self.data)})"
