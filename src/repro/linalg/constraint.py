"""Single linear constraints, normalized for structural sharing.

A constraint is ``expr REL 0`` with ``REL`` one of ``<=`` or ``==``.
Strict inequalities over the integers are normalized away at construction:
``e < 0`` becomes ``e + 1 <= 0`` (valid because all region/predicate
constraints in this system range over integer-valued program quantities).

Constraints are **hash-consed** at two levels: a raw memo keyed on the
(interned) input expression short-circuits re-normalization of arguments
seen before, and an intern table on the normalized form guarantees that
structurally equal constraints are pointer-equal.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Mapping, Union

from repro import perf
from repro.symbolic.affine import AffineExpr
from repro.symbolic.simplify import integerize, tighten_le

Number = Union[int, Fraction]

_RAW = perf.memo_table("constraint.raw")
_INTERN = perf.memo_table("constraint.intern")


class Rel(enum.Enum):
    """Constraint relation against zero."""

    LE = "<="
    EQ = "=="


class Constraint:
    """An immutable, interned, normalized linear constraint ``expr REL 0``.

    Normalization:

    * coefficients and constant are scaled to integers with content 1;
    * for ``<=`` constraints, integer tightening divides out the gcd of
      the variable coefficients and floors the constant;
    * for ``==`` constraints with variable-coefficient gcd ``g``, if the
      constant is not divisible by ``g`` the constraint is recorded as
      trivially false (it has no integer solutions).
    """

    __slots__ = ("expr", "rel", "_hash", "_sort_key", "_trivial")

    def __new__(cls, expr: AffineExpr, rel: Rel = Rel.LE) -> "Constraint":
        raw_key = (expr, rel)
        self = _RAW.data.get(raw_key)
        if self is not None:
            _RAW.hits += 1
            return self
        _RAW.misses += 1
        perf.bump("constraint.norm")
        norm = tighten_le(expr) if rel is Rel.LE else integerize(expr)
        key = (norm, rel)
        self = _INTERN.data.get(key)
        if self is None:
            _INTERN.misses += 1
            self = object.__new__(cls)
            object.__setattr__(self, "expr", norm)
            object.__setattr__(self, "rel", rel)
            object.__setattr__(self, "_hash", hash(key))
            object.__setattr__(self, "_sort_key", None)
            object.__setattr__(self, "_trivial", None)
            _INTERN.data[key] = self
        else:
            _INTERN.hits += 1
        _RAW.data[raw_key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constraint is immutable")

    def __reduce__(self):
        # re-intern on unpickle (canonical identity in every process)
        return (Constraint, (self.expr, self.rel))

    # ------------------------------------------------------------------
    # constructors mirroring source-level comparisons
    # ------------------------------------------------------------------
    @staticmethod
    def le(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs <= rhs``"""
        return Constraint(lhs - rhs, Rel.LE)

    @staticmethod
    def lt(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs < rhs`` over the integers: ``lhs - rhs + 1 <= 0``."""
        return Constraint(lhs - rhs + 1, Rel.LE)

    @staticmethod
    def ge(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs >= rhs``"""
        return Constraint(rhs - lhs, Rel.LE)

    @staticmethod
    def gt(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs > rhs`` over the integers."""
        return Constraint(rhs - lhs + 1, Rel.LE)

    @staticmethod
    def eq(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs == rhs``"""
        return Constraint(lhs - rhs, Rel.EQ)

    # ------------------------------------------------------------------
    # classification (computed once; constraints are interned)
    # ------------------------------------------------------------------
    def _classify(self) -> str:
        if self.expr.is_constant():
            c = self.expr.constant
            if self.rel is Rel.LE:
                return "taut" if c <= 0 else "contra"
            return "taut" if c == 0 else "contra"
        if self.rel is Rel.EQ:
            # integer-infeasible equality: gcd of coefficients does not
            # divide the constant (expr already integerized)
            from math import gcd

            g = 0
            for _, c in self.expr.terms():
                g = gcd(g, abs(int(c)))
            if g > 1 and int(self.expr.constant) % g != 0:
                return "contra"
        return "open"

    def _classification(self) -> str:
        if self._trivial is None:
            object.__setattr__(self, "_trivial", self._classify())
        return self._trivial

    def is_tautology(self) -> bool:
        """True iff the constraint holds for every assignment."""
        return self._classification() == "taut"

    def is_contradiction(self) -> bool:
        """True iff the constraint holds for no integer assignment."""
        return self._classification() == "contra"

    def sort_key(self):
        """A cheap deterministic ordering key (structural, not textual)."""
        if self._sort_key is None:
            key = (
                self.rel.value,
                tuple(
                    (v, c.numerator, c.denominator)
                    for v, c in self.expr.terms()
                ),
                self.expr.constant.numerator,
                self.expr.constant.denominator,
            )
            object.__setattr__(self, "_sort_key", key)
        return self._sort_key

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def negate(self) -> "Constraint":
        """Negation of a ``<=`` constraint over the integers.

        ``not (e <= 0)`` is ``e >= 1`` i.e. ``-e + 1 <= 0``.  Negating an
        equality is not convex; callers handle ``==`` at the formula level
        (it splits into two ``<`` branches).
        """
        if self.rel is Rel.EQ:
            raise ValueError("cannot negate an equality into one constraint")
        return Constraint(-self.expr + 1, Rel.LE)

    def substitute(
        self, bindings: Mapping[str, Union[AffineExpr, Number]]
    ) -> "Constraint":
        new = self.expr.substitute(bindings)
        if new is self.expr:
            return self
        return Constraint(new, self.rel)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        new = self.expr.rename(mapping)
        if new is self.expr:
            return self
        return Constraint(new, self.rel)

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        v = self.expr.evaluate(env)
        return v <= 0 if self.rel is Rel.LE else v == 0

    def variables(self):
        return self.expr.variables()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Constraint):
            return NotImplemented
        # distinct-but-equal instances only exist across a cache reset
        return self.rel is other.rel and self.expr == other.expr

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({self})"

    def __str__(self) -> str:
        return f"{self.expr} {self.rel.value} 0"


TRUE = Constraint(AffineExpr.ZERO, Rel.LE)
FALSE = Constraint(AffineExpr.ONE, Rel.LE)


def _reseed() -> None:
    for c in (TRUE, FALSE):
        _INTERN.data[(c.expr, c.rel)] = c
        _RAW.data[(c.expr, c.rel)] = c


perf.on_reset(_reseed)
