"""Single linear constraints, normalized for structural sharing.

A constraint is ``expr REL 0`` with ``REL`` one of ``<=`` or ``==``.
Strict inequalities over the integers are normalized away at construction:
``e < 0`` becomes ``e + 1 <= 0`` (valid because all region/predicate
constraints in this system range over integer-valued program quantities).
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Mapping, Union

from repro.symbolic.affine import AffineExpr
from repro.symbolic.simplify import integerize, tighten_le

Number = Union[int, Fraction]


class Rel(enum.Enum):
    """Constraint relation against zero."""

    LE = "<="
    EQ = "=="


class Constraint:
    """An immutable, normalized linear constraint ``expr REL 0``.

    Normalization:

    * coefficients and constant are scaled to integers with content 1;
    * for ``<=`` constraints, integer tightening divides out the gcd of
      the variable coefficients and floors the constant;
    * for ``==`` constraints with variable-coefficient gcd ``g``, if the
      constant is not divisible by ``g`` the constraint is recorded as
      trivially false (it has no integer solutions).
    """

    __slots__ = ("expr", "rel", "_hash", "_sort_key", "_trivial")

    def __init__(self, expr: AffineExpr, rel: Rel = Rel.LE) -> None:
        if rel is Rel.LE:
            expr = tighten_le(expr)
        else:
            expr = integerize(expr)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "rel", rel)
        object.__setattr__(self, "_hash", hash((expr, rel)))
        object.__setattr__(self, "_sort_key", None)
        object.__setattr__(self, "_trivial", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constraint is immutable")

    # ------------------------------------------------------------------
    # constructors mirroring source-level comparisons
    # ------------------------------------------------------------------
    @staticmethod
    def le(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs <= rhs``"""
        return Constraint(lhs - rhs, Rel.LE)

    @staticmethod
    def lt(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs < rhs`` over the integers: ``lhs - rhs + 1 <= 0``."""
        return Constraint(lhs - rhs + 1, Rel.LE)

    @staticmethod
    def ge(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs >= rhs``"""
        return Constraint(rhs - lhs, Rel.LE)

    @staticmethod
    def gt(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs > rhs`` over the integers."""
        return Constraint(rhs - lhs + 1, Rel.LE)

    @staticmethod
    def eq(lhs: AffineExpr, rhs: AffineExpr) -> "Constraint":
        """``lhs == rhs``"""
        return Constraint(lhs - rhs, Rel.EQ)

    # ------------------------------------------------------------------
    # classification (computed once; constraints are immutable)
    # ------------------------------------------------------------------
    def _classify(self) -> str:
        if self.expr.is_constant():
            c = self.expr.constant
            if self.rel is Rel.LE:
                return "taut" if c <= 0 else "contra"
            return "taut" if c == 0 else "contra"
        if self.rel is Rel.EQ:
            # integer-infeasible equality: gcd of coefficients does not
            # divide the constant (expr already integerized)
            from math import gcd

            g = 0
            for _, c in self.expr.terms():
                g = gcd(g, abs(int(c)))
            if g > 1 and int(self.expr.constant) % g != 0:
                return "contra"
        return "open"

    def _classification(self) -> str:
        if self._trivial is None:
            object.__setattr__(self, "_trivial", self._classify())
        return self._trivial

    def is_tautology(self) -> bool:
        """True iff the constraint holds for every assignment."""
        return self._classification() == "taut"

    def is_contradiction(self) -> bool:
        """True iff the constraint holds for no integer assignment."""
        return self._classification() == "contra"

    def sort_key(self):
        """A cheap deterministic ordering key (structural, not textual)."""
        if self._sort_key is None:
            key = (
                self.rel.value,
                tuple(
                    (v, c.numerator, c.denominator)
                    for v, c in self.expr.terms()
                ),
                self.expr.constant.numerator,
                self.expr.constant.denominator,
            )
            object.__setattr__(self, "_sort_key", key)
        return self._sort_key

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def negate(self) -> "Constraint":
        """Negation of a ``<=`` constraint over the integers.

        ``not (e <= 0)`` is ``e >= 1`` i.e. ``-e + 1 <= 0``.  Negating an
        equality is not convex; callers handle ``==`` at the formula level
        (it splits into two ``<`` branches).
        """
        if self.rel is Rel.EQ:
            raise ValueError("cannot negate an equality into one constraint")
        return Constraint(-self.expr + 1, Rel.LE)

    def substitute(
        self, bindings: Mapping[str, Union[AffineExpr, Number]]
    ) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.rel)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.rel)

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        v = self.expr.evaluate(env)
        return v <= 0 if self.rel is Rel.LE else v == 0

    def variables(self):
        return self.expr.variables()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.rel is other.rel and self.expr == other.expr

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({self})"

    def __str__(self) -> str:
        return f"{self.expr} {self.rel.value} 0"


TRUE = Constraint(AffineExpr.ZERO, Rel.LE)
FALSE = Constraint(AffineExpr.ONE, Rel.LE)
