"""Emptiness testing for linear systems.

``is_rationally_feasible`` runs Fourier–Motzkin to the ground and checks
the resulting variable-free constraints.  ``is_feasible`` is the public
entry point used by the dependence and privatization tests; it is the
rational test plus the gcd-based integer tightening already built into
constraint normalization, i.e. it may answer *feasible* for an
integer-empty system (conservative toward reporting dependences) but never
answers *infeasible* for a system with integer points.
"""

from __future__ import annotations

from functools import lru_cache

from repro import perf
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.service.budgets import checkpoint


@lru_cache(maxsize=16384)
def _feasible_cached(system: LinearSystem) -> bool:
    checkpoint()
    perf.bump("feasibility.ground")
    if system.is_universe():
        return True
    if system.is_trivially_empty():
        return False
    ground = eliminate_all(system, system.variables())
    # After eliminating every variable only constant constraints remain;
    # LinearSystem construction already folds tautologies/contradictions.
    return not ground.is_trivially_empty()


def is_rationally_feasible(system: LinearSystem) -> bool:
    """True iff the system has a rational solution."""
    return _feasible_cached(system)


def is_feasible(system: LinearSystem) -> bool:
    """Conservative integer feasibility (superset of the truth).

    Sound for the analysis: an ``False`` answer guarantees the system has
    no integer points.
    """
    return _feasible_cached(system)


def clear_cache() -> None:
    """Reset the feasibility memo table (used by benchmarks)."""
    _feasible_cached.cache_clear()


def cache_stats():
    """(hits, misses, currsize) of the feasibility memo table."""
    info = _feasible_cached.cache_info()
    return info.hits, info.misses, info.currsize


def _registry_stats():
    info = _feasible_cached.cache_info()
    total = info.hits + info.misses
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "hit_rate": (info.hits / total) if total else 0.0,
    }


perf.register_cache(
    "feasibility.is_feasible", _registry_stats, clear_cache, obj=_feasible_cached
)
