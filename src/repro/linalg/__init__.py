"""Integer linear-inequality substrate.

This package provides the exact machinery that SUIF obtained from its
Omega/Fourier–Motzkin substrate:

* :class:`~repro.linalg.constraint.Constraint` — a single normalized
  ``e <= 0`` or ``e == 0`` over affine expressions;
* :class:`~repro.linalg.system.LinearSystem` — a conjunction of
  constraints (a convex polyhedron, interpreted over the integers);
* :mod:`~repro.linalg.fourier_motzkin` — exact projection (variable
  elimination) with integer tightening, dispatching to the packed
  integer-matrix kernel in :mod:`~repro.linalg.packed` by default
  (``REPRO_PACKED_KERNEL=0`` selects the legacy symbolic path;
  results are identical either way);
* :mod:`~repro.linalg.feasibility` — emptiness testing;
* :mod:`~repro.linalg.implication` — containment and entailment tests.
"""

from repro.linalg.constraint import Constraint, Rel
from repro.linalg.system import LinearSystem
from repro.linalg.fourier_motzkin import eliminate, eliminate_all
from repro.linalg.feasibility import is_feasible, is_rationally_feasible
from repro.linalg.implication import entails, system_implies
from repro.linalg.intervals import classify_constraints

__all__ = [
    "Constraint",
    "Rel",
    "LinearSystem",
    "eliminate",
    "eliminate_all",
    "is_feasible",
    "is_rationally_feasible",
    "entails",
    "system_implies",
    "classify_constraints",
]
