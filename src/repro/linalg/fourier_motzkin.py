"""Fourier–Motzkin variable elimination.

Projection is **exact over the rationals** and a **superset over the
integers** (the real shadow).  Both directions the analysis relies on are
sound with this choice:

* *independence / coverage proofs* show a system infeasible; rational
  infeasibility implies integer infeasibility, so proofs are never wrong;
* *dependence reports* may be conservative (a rationally-feasible but
  integer-empty conflict system reports a dependence that does not exist),
  which can only suppress a parallelization, never break one.

Constraint normalization in :class:`~repro.linalg.constraint.Constraint`
additionally applies gcd-based integer tightening to every produced
inequality, which recovers exactness for the common single-variable cases
(e.g. ``2*i <= 5`` becomes ``i <= 2``).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.linalg.constraint import Constraint, Rel
from repro.linalg.system import LinearSystem

# Pair-combination blowup guard: systems beyond this many constraints fall
# back to dropping the variable's constraints entirely (a coarser but still
# sound superset).
MAX_CONSTRAINTS = 600


def _split_bounds(
    system: LinearSystem, var: str
) -> Tuple[List[Constraint], List[Constraint], List[Constraint], List[Constraint]]:
    """Partition constraints by their relation to *var*.

    Returns (lower bounds, upper bounds, equalities containing var,
    constraints not mentioning var).  For a ``<=`` constraint
    ``a*var + rest <= 0``: ``a > 0`` makes it an upper bound on var,
    ``a < 0`` a lower bound.
    """
    lowers: List[Constraint] = []
    uppers: List[Constraint] = []
    eqs: List[Constraint] = []
    others: List[Constraint] = []
    for c in system:
        a = c.expr.coeff(var)
        if a == 0:
            others.append(c)
        elif c.rel is Rel.EQ:
            eqs.append(c)
        elif a > 0:
            uppers.append(c)
        else:
            lowers.append(c)
    return lowers, uppers, eqs, others


def eliminate(system: LinearSystem, var: str) -> LinearSystem:
    """Project *var* out of *system*.

    Strategy: if an equality pins ``var`` with a unit coefficient, solve
    and substitute (exact over the integers).  Otherwise rewrite remaining
    equalities as inequality pairs and combine every lower bound with every
    upper bound.
    """
    if var not in system.variables():
        return system
    lowers, uppers, eqs, others = _split_bounds(system, var)

    # Exact substitution via a unit-coefficient equality.
    from repro.symbolic.affine import AffineExpr

    for eq in eqs:
        a = eq.expr.coeff(var)
        if abs(a) == 1:
            # a*var + rest == 0  =>  var = -rest/a  (a is ±1)
            rest = eq.expr + AffineExpr.var(var, -a)
            solution = -rest if a == 1 else rest
            remaining = [c for c in system if c is not eq]
            return LinearSystem(
                c.substitute({var: solution}) for c in remaining
            )

    # Demote equalities to inequality pairs.
    for eq in eqs:
        a = eq.expr.coeff(var)
        le = Constraint(eq.expr, Rel.LE)
        ge = Constraint(-eq.expr, Rel.LE)
        if a > 0:
            uppers.append(le)
            lowers.append(ge)
        else:
            lowers.append(le)
            uppers.append(ge)

    if len(lowers) * len(uppers) > MAX_CONSTRAINTS * 4:
        # Combinatorial blowup: drop the variable's constraints (sound
        # superset).  In practice region systems stay tiny.
        return LinearSystem(others)

    combined: List[Constraint] = list(others)
    for lo in lowers:
        a_lo = lo.expr.coeff(var)  # negative
        for up in uppers:
            a_up = up.expr.coeff(var)  # positive
            # lo: a_lo*var + r_lo <= 0  =>  var >= r_lo / (-a_lo)
            # up: a_up*var + r_up <= 0  =>  var <= -r_up / a_up
            # combine: a_up * r_lo - a_lo * r_up <= 0 (note -a_lo > 0)
            new_expr = lo.expr * a_up - up.expr * a_lo
            # the var terms cancel: a_lo*a_up - a_up*a_lo = 0
            combined.append(Constraint(new_expr, Rel.LE))
    result = LinearSystem(combined)
    if len(result) > MAX_CONSTRAINTS:
        result = result.simplified()
    return result


def eliminate_all(system: LinearSystem, variables: Iterable[str]) -> LinearSystem:
    """Project out *variables* one at a time, fewest-occurrences first.

    The ordering heuristic keeps intermediate systems small.
    """
    todo = [v for v in variables if v in system.variables()]
    current = system
    while todo:
        # re-rank each round: elimination changes occurrence counts
        counts = {}
        live = current.variables()
        todo = [v for v in todo if v in live]
        if not todo:
            break
        for v in todo:
            n_lo = n_up = 0
            for c in current:
                a = c.expr.coeff(v)
                if a > 0:
                    n_up += 1
                elif a < 0:
                    n_lo += 1
            counts[v] = n_lo * n_up
        todo.sort(key=lambda v: (counts[v], v))
        var = todo.pop(0)
        current = eliminate(current, var)
    return current
