"""Fourier–Motzkin variable elimination.

Projection is **exact over the rationals** and a **superset over the
integers** (the real shadow).  Both directions the analysis relies on are
sound with this choice:

* *independence / coverage proofs* show a system infeasible; rational
  infeasibility implies integer infeasibility, so proofs are never wrong;
* *dependence reports* may be conservative (a rationally-feasible but
  integer-empty conflict system reports a dependence that does not exist),
  which can only suppress a parallelization, never break one.

Constraint normalization in :class:`~repro.linalg.constraint.Constraint`
additionally applies gcd-based integer tightening to every produced
inequality, which recovers exactness for the common single-variable cases
(e.g. ``2*i <= 5`` becomes ``i <= 2``).

Both :func:`eliminate` and :func:`eliminate_all` are memoized on the
interned identity of their arguments; region projection repeatedly
eliminates the same loop indices from the same systems, and the memo
turns those repeats into dictionary lookups.

Two kernels implement the projection itself.  The **packed** kernel
(:mod:`repro.linalg.packed`, the default) lowers the system once into a
dense integer-matrix form and runs the whole pipeline there, re-interning
only final results; the **legacy** kernel below materializes interned
symbolic objects for every intermediate bound pair.  Both produce
pointer-identical results and identical ``fm.*`` counter deltas; the
switch is ``REPRO_PACKED_KERNEL`` / :func:`repro.perf.set_packed_kernel`.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Iterable, List, Tuple

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.system import LinearSystem
from repro.service.budgets import charge_fm

# Pair-combination blowup guard: systems beyond this many constraints fall
# back to dropping the variable's constraints entirely (a coarser but still
# sound superset).
MAX_CONSTRAINTS = 600

# Intermediate systems larger than this get a cheap pairwise-redundancy
# sweep between eliminations; small systems are left untouched so their
# canonical forms (and rendered predicates) match the unswept pipeline.
SIMPLIFY_THRESHOLD = 32

_ELIM = perf.memo_table("fm.eliminate", cap=8192)
_ELIM_ALL = perf.memo_table("fm.eliminate_all", cap=8192)

perf.declare("fm.fallback_drop")

#: cap on remembered analysis contexts: a long-lived ``repro serve``
#: process sees an unbounded stream of context labels, so the warned set
#: evicts oldest-first instead of growing forever
_WARNED_CONTEXTS_MAX = 512

#: analysis-context labels (procedure / loop) already warned about; the
#: warning fires once per context, further drops there only count.  A
#: dict (insertion-ordered) used as a bounded FIFO set.
_warned_contexts: dict = {}


def _reset_warned() -> None:
    _warned_contexts.clear()


perf.on_reset(_reset_warned)


def _mark_warned(ctx: str) -> bool:
    """Record *ctx* as warned-about; True when it was new (warn now)."""
    if ctx in _warned_contexts:
        return False
    if len(_warned_contexts) >= _WARNED_CONTEXTS_MAX:
        _warned_contexts.pop(next(iter(_warned_contexts)))
    _warned_contexts[ctx] = True
    return True


#: when set, fallback warnings are appended here instead of emitted
#: (process-executor workers capture, the parent replays)
_capture: list = None  # type: ignore[assignment]


@contextmanager
def capture_fallback_warnings():
    """Collect fallback warnings as ``(context, message)`` records.

    Pool workers run tasks under this context manager and ship the
    records to the parent instead of warning on their own stderr; the
    parent replays them through :func:`replay_fallback_warnings`, whose
    dedup set spans *all* workers — so a context that trips in four
    workers still warns exactly once, same as the serial path.  The
    worker-local ``_warned_contexts`` set still dedups what gets
    captured, keeping shipped records small.
    """
    global _capture
    previous = _capture
    records: list = []
    _capture = records
    try:
        yield records
    finally:
        _capture = previous


def replay_fallback_warnings(records) -> None:
    """Re-emit captured worker warnings, once per analysis context."""
    for ctx, message in records:
        if _mark_warned(ctx):
            warnings.warn(message, RuntimeWarning, stacklevel=2)


_packed_mod = None


def _packed():
    """Lazy import of the packed kernel (it imports our constants)."""
    global _packed_mod
    if _packed_mod is None:
        from repro.linalg import packed

        _packed_mod = packed
    return _packed_mod


def _note_fallback(var: str, n_pairs: int) -> None:
    """Record a precision-losing fallback drop.

    Drops are attributed to the procedure/loop being analyzed via the
    perf analysis-context stack: one warning per context (not one per FM
    call), with per-context totals in the ``fm.fallback_drop[<ctx>]``
    counters that ``--profile`` reports.
    """
    ctx = perf.current_context()
    perf.bump("fm.fallback_drop")
    perf.bump(f"fm.fallback_drop[{ctx}]")
    if _mark_warned(ctx):
        message = (
            "Fourier-Motzkin elimination of %r in %s would combine %d bound "
            "pairs (> %d); dropping the variable's constraints instead. The "
            "result is a sound superset but loses precision. Further drops "
            "here are counted in perf counter 'fm.fallback_drop[%s]' "
            "without warning." % (var, ctx, n_pairs, MAX_CONSTRAINTS * 4, ctx)
        )
        if _capture is not None:
            _capture.append((ctx, message))
        else:
            warnings.warn(message, RuntimeWarning, stacklevel=3)


def _split_bounds(
    system: LinearSystem, var: str
) -> Tuple[List[Constraint], List[Constraint], List[Constraint], List[Constraint]]:
    """Partition constraints by their relation to *var*.

    Returns (lower bounds, upper bounds, equalities containing var,
    constraints not mentioning var).  For a ``<=`` constraint
    ``a*var + rest <= 0``: ``a > 0`` makes it an upper bound on var,
    ``a < 0`` a lower bound.
    """
    lowers: List[Constraint] = []
    uppers: List[Constraint] = []
    eqs: List[Constraint] = []
    others: List[Constraint] = []
    for c in system:
        a = c.expr.coeff(var)
        if a == 0:
            others.append(c)
        elif c.rel is Rel.EQ:
            eqs.append(c)
        elif a > 0:
            uppers.append(c)
        else:
            lowers.append(c)
    return lowers, uppers, eqs, others


def eliminate(system: LinearSystem, var: str) -> LinearSystem:
    """Project *var* out of *system* (memoized).

    Strategy: if an equality pins ``var`` with a unit coefficient, solve
    and substitute (exact over the integers).  Otherwise rewrite remaining
    equalities as inequality pairs and combine every lower bound with every
    upper bound.
    """
    if var not in system.variables():
        return system
    if perf.packed_kernel_enabled():
        # the packed kernel keeps its own per-step memo (fm.packed.reuse)
        # keyed on the canonical packed form, bijective with (system, var)
        return _packed().eliminate_packed(system, var)
    key = (system, var)
    cached = _ELIM.data.get(key)
    if cached is not None:
        _ELIM.hits += 1
        return cached
    _ELIM.misses += 1
    result = _eliminate_uncached(system, var)
    _ELIM.data[key] = result
    return result


def _eliminate_uncached(system: LinearSystem, var: str) -> LinearSystem:
    perf.bump("fm.eliminate")
    lowers, uppers, eqs, others = _split_bounds(system, var)

    # Exact substitution via a unit-coefficient equality.
    from repro.symbolic.affine import AffineExpr

    for eq in eqs:
        a = eq.expr.coeff(var)
        if abs(a) == 1:
            # a*var + rest == 0  =>  var = -rest/a  (a is ±1)
            rest = eq.expr + AffineExpr.var(var, -a)
            solution = -rest if a == 1 else rest
            remaining = [c for c in system if c is not eq]
            return LinearSystem(
                c.substitute({var: solution}) for c in remaining
            )

    # Demote equalities to inequality pairs.
    for eq in eqs:
        a = eq.expr.coeff(var)
        le = Constraint(eq.expr, Rel.LE)
        ge = Constraint(-eq.expr, Rel.LE)
        if a > 0:
            uppers.append(le)
            lowers.append(ge)
        else:
            lowers.append(le)
            uppers.append(ge)

    n_pairs = len(lowers) * len(uppers)
    if n_pairs > MAX_CONSTRAINTS * 4:
        # Combinatorial blowup: drop the variable's constraints (sound
        # superset).  In practice region systems stay tiny.
        _note_fallback(var, n_pairs)
        return LinearSystem(others)

    charge_fm(n_pairs)
    combined: List[Constraint] = list(others)
    for lo in lowers:
        a_lo = lo.expr.coeff(var)  # negative
        for up in uppers:
            a_up = up.expr.coeff(var)  # positive
            # lo: a_lo*var + r_lo <= 0  =>  var >= r_lo / (-a_lo)
            # up: a_up*var + r_up <= 0  =>  var <= -r_up / a_up
            # combine: a_up * r_lo - a_lo * r_up <= 0 (note -a_lo > 0)
            new_expr = lo.expr * a_up - up.expr * a_lo
            # the var terms cancel: a_lo*a_up - a_up*a_lo = 0
            combined.append(Constraint(new_expr, Rel.LE))
    perf.bump("fm.pair_combine", n_pairs)
    result = LinearSystem(combined)
    if len(result) > MAX_CONSTRAINTS:
        result = result.simplified()
    return result


def eliminate_all(system: LinearSystem, variables: Iterable[str]) -> LinearSystem:
    """Project out *variables* one at a time, cheapest-first (memoized).

    The ordering heuristic minimizes the expected constraint growth each
    round: variables pinned by a unit-coefficient equality are eliminated
    first (exact substitution, no growth), then the variable with the
    smallest lower-bound × upper-bound product.
    """
    todo0 = tuple(sorted(v for v in set(variables) if v in system.variables()))
    if not todo0:
        return system
    key = (system, todo0)
    cached = _ELIM_ALL.data.get(key)
    if cached is not None:
        _ELIM_ALL.hits += 1
        return cached
    _ELIM_ALL.misses += 1
    if perf.packed_kernel_enabled():
        current = _packed().eliminate_all_packed(system, todo0)
    else:
        current = _eliminate_all_legacy(system, todo0)
    _ELIM_ALL.data[key] = current
    return current


def _eliminate_all_legacy(
    system: LinearSystem, todo0: Tuple[str, ...]
) -> LinearSystem:
    todo = list(todo0)
    current = system
    while todo:
        # re-rank each round: elimination changes occurrence counts
        live = current.variables()
        todo = [v for v in todo if v in live]
        if not todo:
            break
        costs = {}
        for v in todo:
            n_lo = n_up = 0
            unit_eq = False
            for c in current:
                a = c.expr.coeff(v)
                if a == 0:
                    continue
                if c.rel is Rel.EQ:
                    if abs(a) == 1:
                        unit_eq = True
                    n_lo += 1
                    n_up += 1
                elif a > 0:
                    n_up += 1
                else:
                    n_lo += 1
            costs[v] = (0 if unit_eq else 1, n_lo * n_up)
        todo.sort(key=lambda v: (costs[v], v))
        var = todo.pop(0)
        current = eliminate(current, var)
        if len(current) > SIMPLIFY_THRESHOLD:
            current = current.simplified()
    return current
