"""Conjunctions of linear constraints (convex integer polyhedra).

A :class:`LinearSystem` is the workhorse of the region representation: an
array region is a system over the dimension variables, loop indices and
symbolic parameters.  Systems are immutable; all operations return new
systems.  Redundant duplicate constraints are removed at construction and a
cheap pairwise-redundancy sweep is available via :meth:`simplified`.

Construction is **hash-consed**: a raw memo keyed on the input constraint
tuple skips re-canonicalization of sequences seen before, and an intern
table on the canonical sorted tuple makes structurally equal systems
pointer-equal (O(1) equality/hash for all downstream memo keys).
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.symbolic.affine import AffineExpr

Number = Union[int, Fraction]

_RAW = perf.memo_table("system.raw")
_INTERN = perf.memo_table("system.intern")
_RENAME = perf.memo_table("system.rename")


class LinearSystem:
    """An immutable, interned conjunction of :class:`Constraint`.

    The empty conjunction is the universe (always true).  A system that
    contains a contradictory constraint normalizes to the canonical
    *false* system.
    """

    __slots__ = ("_constraints", "_hash", "_vars")

    def __new__(cls, constraints: Iterable[Constraint] = ()) -> "LinearSystem":
        raw = (
            constraints
            if type(constraints) is tuple
            else tuple(constraints)
        )
        self = _RAW.data.get(raw)
        if self is not None:
            _RAW.hits += 1
            return self
        _RAW.misses += 1
        perf.bump("system.norm")
        kept = []
        seen = set()
        false = False
        for c in raw:
            if c.is_tautology():
                continue
            if c.is_contradiction():
                false = True
                break
            if c not in seen:
                seen.add(c)
                kept.append(c)
        if false:
            from repro.linalg.constraint import FALSE

            kept = [FALSE]
        kept.sort(key=Constraint.sort_key)
        canonical = tuple(kept)
        self = _INTERN.data.get(canonical)
        if self is None:
            _INTERN.misses += 1
            self = object.__new__(cls)
            object.__setattr__(self, "_constraints", canonical)
            object.__setattr__(self, "_hash", hash(canonical))
            object.__setattr__(self, "_vars", None)
            _INTERN.data[canonical] = self
        else:
            _INTERN.hits += 1
        _RAW.data[raw] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LinearSystem is immutable")

    def __reduce__(self):
        # re-intern on unpickle (canonical identity in every process)
        return (LinearSystem, (self._constraints,))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def universe() -> "LinearSystem":
        return _UNIVERSE

    @staticmethod
    def empty() -> "LinearSystem":
        """The canonical infeasible system."""
        return _EMPTY

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    def is_universe(self) -> bool:
        return not self._constraints

    def is_trivially_empty(self) -> bool:
        """Syntactic check: contains the canonical false constraint.

        For a semantic emptiness test use
        :func:`repro.linalg.feasibility.is_feasible`.
        """
        return any(c.is_contradiction() for c in self._constraints)

    def variables(self) -> FrozenSet[str]:
        cached = self._vars
        if cached is None:
            vs: set = set()
            for c in self._constraints:
                vs.update(c.variables())
            cached = frozenset(vs)
            object.__setattr__(self, "_vars", cached)
        return cached

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def conjoin(self, other: Union["LinearSystem", Constraint]) -> "LinearSystem":
        """Conjunction (polyhedron intersection)."""
        if isinstance(other, Constraint):
            return LinearSystem(self._constraints + (other,))
        if not other._constraints:
            return self
        if not self._constraints:
            return other
        return LinearSystem(self._constraints + other._constraints)

    __and__ = conjoin

    def substitute(
        self, bindings: Mapping[str, Union[AffineExpr, Number]]
    ) -> "LinearSystem":
        return LinearSystem(
            tuple(c.substitute(bindings) for c in self._constraints)
        )

    def rename(self, mapping: Mapping[str, str]) -> "LinearSystem":
        """Rename variables (memoized on the interned system + mapping).

        Region summaries are re-instantiated with the same index
        renamings at every call site, so warm analyses replay identical
        rename chains; the memo turns those into dictionary lookups.
        """
        if not self._constraints:
            return self
        key = (self, tuple(sorted(mapping.items())))
        cached = _RENAME.data.get(key)
        if cached is not None:
            _RENAME.hits += 1
            return cached
        _RENAME.misses += 1
        result = LinearSystem(
            tuple(c.rename(mapping) for c in self._constraints)
        )
        _RENAME.data[key] = result
        return result

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        return all(c.evaluate(env) for c in self._constraints)

    def partition_by_vars(
        self, vars_of_interest: FrozenSet[str]
    ) -> Tuple["LinearSystem", "LinearSystem"]:
        """Split into (constraints touching *vars_of_interest*, the rest)."""
        touching, rest = [], []
        for c in self._constraints:
            if any(v in vars_of_interest for v in c.variables()):
                touching.append(c)
            else:
                rest.append(c)
        return LinearSystem(tuple(touching)), LinearSystem(tuple(rest))

    # ------------------------------------------------------------------
    # simplification
    # ------------------------------------------------------------------
    def simplified(self) -> "LinearSystem":
        """Drop constraints pairwise implied by a single other constraint.

        Two ``<=`` constraints with the same variable part keep only the
        tighter one; a ``<=`` implied by an ``==`` on the same expression
        is dropped.  This is the cheap O(n²) sweep used after unions and
        substitutions; full redundancy elimination (via feasibility) is
        done lazily by :func:`repro.linalg.implication.remove_redundant`.
        """
        by_varpart = {}
        eqs = []
        for c in self._constraints:
            var_part = c.expr - c.expr.constant
            if c.rel is Rel.EQ:
                eqs.append(c)
                continue
            key = var_part
            prev = by_varpart.get(key)
            if prev is None or c.expr.constant > prev.expr.constant:
                # larger constant = tighter upper bound for e + c <= 0
                by_varpart[key] = c
        eq_exprs = {c.expr - c.expr.constant: c.expr.constant for c in eqs}
        kept = list(eqs)
        for var_part, c in sorted(
            by_varpart.items(), key=lambda kv: kv[0].sort_key()
        ):
            if var_part in eq_exprs and -eq_exprs[var_part] >= -c.expr.constant:
                # equality pins e == -k; the inequality e <= -c is implied
                # when -k <= -c.expr.constant  <=>  k >= c.expr.constant
                if eq_exprs[var_part] >= c.expr.constant:
                    continue
            neg = -var_part
            if neg in eq_exprs:
                # e == k implies -e <= -k i.e. covers var_part = -e
                if -eq_exprs[neg] >= c.expr.constant:
                    continue
            kept.append(c)
        return LinearSystem(tuple(kept))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinearSystem):
            return NotImplemented
        # distinct-but-equal instances only exist across a cache reset
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_universe():
            return "LinearSystem(universe)"
        return f"LinearSystem({{{'; '.join(map(str, self._constraints))}}})"

    def __str__(self) -> str:
        if self.is_universe():
            return "true"
        return " ∧ ".join(map(str, self._constraints))


_UNIVERSE = LinearSystem(())
from repro.linalg.constraint import FALSE as _FALSE_C  # noqa: E402

_EMPTY = LinearSystem((_FALSE_C,))


def _reseed() -> None:
    for s in (_UNIVERSE, _EMPTY):
        _INTERN.data[s._constraints] = s
        _RAW.data[s._constraints] = s


perf.on_reset(_reseed)
