"""Entailment and containment between systems.

All proofs go through infeasibility of a conjunction with a negated
constraint; since rational infeasibility implies integer infeasibility,
every ``True`` answer is a real proof.  ``False`` means "could not prove",
never "disproved".
"""

from __future__ import annotations

from typing import Iterable

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.system import LinearSystem

#: the predicate oracle's entailment cache — it lives down here (the
#: switch is in dependency-free `repro.perf`) because `linalg` must not
#: import the predicates layer; `_drop_entailed_linear` and
#: `remove_redundant` both route through it
_ENTAILS = perf.memo_table("pred.oracle.entails", cap=32768)


def entails(system: LinearSystem, constraint: Constraint) -> bool:
    """Does every integer point of *system* satisfy *constraint*?

    Proven by showing ``system ∧ ¬constraint`` infeasible.  Equalities
    split into the two strict sides.  Memoized while the predicate
    oracle is enabled (a pure cost optimization — the booleans are
    identical either way).
    """
    if constraint.is_tautology():
        return True
    if system.is_trivially_empty():
        return True
    if not perf.pred_oracle_enabled():
        return _entails_uncached(system, constraint)
    key = (system, constraint)
    hit = _ENTAILS.data.get(key, perf.MISS)
    if hit is not perf.MISS:
        _ENTAILS.hits += 1
        return hit
    _ENTAILS.misses += 1
    result = _entails_uncached(system, constraint)
    _ENTAILS.data[key] = result
    return result


def _entails_uncached(system: LinearSystem, constraint: Constraint) -> bool:
    if constraint.rel is Rel.EQ:
        lt = Constraint(constraint.expr + 1, Rel.LE)  # expr <= -1
        gt = Constraint(-constraint.expr + 1, Rel.LE)  # expr >= 1
        return not is_feasible(system.conjoin(lt)) and not is_feasible(
            system.conjoin(gt)
        )
    return not is_feasible(system.conjoin(constraint.negate()))


def system_implies(antecedent: LinearSystem, consequent: LinearSystem) -> bool:
    """Does *antecedent* ⊆ *consequent* hold (as point sets)?"""
    return all(entails(antecedent, c) for c in consequent)


def systems_equivalent(a: LinearSystem, b: LinearSystem) -> bool:
    """Mutual containment."""
    return system_implies(a, b) and system_implies(b, a)


def remove_redundant(system: LinearSystem) -> LinearSystem:
    """Drop constraints entailed by the remaining ones.

    One pass: each constraint is tested against the conjunction of the
    already-kept prefix and the not-yet-visited suffix.  This computes
    the same fixpoint as the classic remove-one-and-restart loop —
    entailment is monotone in the constraint set, so a constraint kept
    against the full set stays non-entailed after later removals — but
    with one entailment test per constraint instead of O(n²) restarts
    (each a feasibility call), and every test lands in the oracle's
    entailment cache.
    """
    kept = list(system.constraints)
    out: list = []
    for i, c in enumerate(kept):
        rest = LinearSystem(out + kept[i + 1 :])
        if not entails(rest, c):
            out.append(c)
    return LinearSystem(out)


def any_entailed(system: LinearSystem, candidates: Iterable[Constraint]) -> bool:
    """True if *system* entails at least one of *candidates*."""
    return any(entails(system, c) for c in candidates)
