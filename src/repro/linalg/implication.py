"""Entailment and containment between systems.

All proofs go through infeasibility of a conjunction with a negated
constraint; since rational infeasibility implies integer infeasibility,
every ``True`` answer is a real proof.  ``False`` means "could not prove",
never "disproved".
"""

from __future__ import annotations

from typing import Iterable

from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.system import LinearSystem


def entails(system: LinearSystem, constraint: Constraint) -> bool:
    """Does every integer point of *system* satisfy *constraint*?

    Proven by showing ``system ∧ ¬constraint`` infeasible.  Equalities
    split into the two strict sides.
    """
    if constraint.is_tautology():
        return True
    if system.is_trivially_empty():
        return True
    if constraint.rel is Rel.EQ:
        lt = Constraint(constraint.expr + 1, Rel.LE)  # expr <= -1
        gt = Constraint(-constraint.expr + 1, Rel.LE)  # expr >= 1
        return not is_feasible(system.conjoin(lt)) and not is_feasible(
            system.conjoin(gt)
        )
    return not is_feasible(system.conjoin(constraint.negate()))


def system_implies(antecedent: LinearSystem, consequent: LinearSystem) -> bool:
    """Does *antecedent* ⊆ *consequent* hold (as point sets)?"""
    return all(entails(antecedent, c) for c in consequent)


def systems_equivalent(a: LinearSystem, b: LinearSystem) -> bool:
    """Mutual containment."""
    return system_implies(a, b) and system_implies(b, a)


def remove_redundant(system: LinearSystem) -> LinearSystem:
    """Drop constraints entailed by the remaining ones.

    Quadratic in the number of constraints with a feasibility call per
    candidate; used when canonicalizing summaries for display and for
    structural comparisons, not on the analysis hot path.
    """
    kept = list(system.constraints)
    changed = True
    while changed:
        changed = False
        for i, c in enumerate(kept):
            rest = LinearSystem(kept[:i] + kept[i + 1 :])
            if entails(rest, c):
                kept.pop(i)
                changed = True
                break
    return LinearSystem(kept)


def any_entailed(system: LinearSystem, candidates: Iterable[Constraint]) -> bool:
    """True if *system* entails at least one of *candidates*."""
    return any(entails(system, c) for c in candidates)
