"""Single-variable interval (box) reasoning over linear constraints.

This is tier 1 of the predicate oracle (`repro.predicates.oracle`): a
cheap bounds abstraction that can *refute* or *prove* rational
feasibility of a conjunction without eliminating any variables.  The
contract that makes it usable as a fast path in front of the exact
Fourier–Motzkin test:

* every definitive answer agrees with ``is_feasible`` on the same
  (already normalized) constraints — ``INFEASIBLE`` is returned only
  when the box derived from the single-variable constraints is
  rationally empty or excludes some constraint entirely (both of which
  FM also detects), and ``FEASIBLE`` only when *every* constraint holds
  at *every* point of a nonempty box (so a rational witness exists);
* everything else is ``UNKNOWN`` and falls through to the exact path.

All arithmetic is exact (``int``/``Fraction``), mirroring the substrate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple

from repro.linalg.constraint import Constraint, Rel

#: classification results
INFEASIBLE = "infeasible"
FEASIBLE = "feasible"
UNKNOWN = "unknown"

_Bound = Optional[Fraction]


def _box_of(
    constraints: Iterable[Constraint],
) -> Optional[Tuple[Dict[str, Fraction], Dict[str, Fraction]]]:
    """Lower/upper bounds per variable from the single-variable rows.

    Returns ``None`` when the box is already rationally empty.
    """
    lo: Dict[str, Fraction] = {}
    hi: Dict[str, Fraction] = {}
    for c in constraints:
        terms = c.expr.terms()
        if len(terms) != 1:
            continue
        (var, coeff) = terms[0]
        # coeff·var + k  REL  0
        bound = Fraction(-c.expr.constant, coeff)
        if c.rel is Rel.EQ:
            if var not in lo or bound > lo[var]:
                lo[var] = bound
            if var not in hi or bound < hi[var]:
                hi[var] = bound
        elif coeff > 0:  # var <= -k/coeff
            if var not in hi or bound < hi[var]:
                hi[var] = bound
        else:  # var >= -k/coeff
            if var not in lo or bound > lo[var]:
                lo[var] = bound
    for var, lower in lo.items():
        upper = hi.get(var)
        if upper is not None and lower > upper:
            return None
    return lo, hi


def _expr_range(
    expr, lo: Dict[str, Fraction], hi: Dict[str, Fraction]
) -> Tuple[_Bound, _Bound]:
    """Exact (min, max) of an affine expression over the box; ``None``
    marks an unbounded side."""
    mn: _Bound = Fraction(expr.constant)
    mx: _Bound = Fraction(expr.constant)
    for var, coeff in expr.terms():
        if coeff > 0:
            at_min, at_max = lo.get(var), hi.get(var)
        else:
            at_min, at_max = hi.get(var), lo.get(var)
        mn = None if (mn is None or at_min is None) else mn + coeff * at_min
        mx = None if (mx is None or at_max is None) else mx + coeff * at_max
    return mn, mx


def classify_constraints(constraints: Iterable[Constraint]) -> str:
    """Classify a conjunction of normalized constraints by interval
    reasoning alone: ``INFEASIBLE`` / ``FEASIBLE`` / ``UNKNOWN``.

    Definitive answers agree with the exact rational feasibility test on
    the same constraints (see the module docstring).
    """
    rows = []
    for c in constraints:
        # mirror LinearSystem construction exactly: trivially-true rows
        # are dropped, trivially-false ones (including gcd-infeasible
        # equalities) collapse the whole system
        if c.is_tautology():
            continue
        if c.is_contradiction():
            return INFEASIBLE
        rows.append(c)
    box = _box_of(rows)
    if box is None:
        return INFEASIBLE
    lo, hi = box
    definite = True
    for c in rows:
        mn, mx = _expr_range(c.expr, lo, hi)
        if c.rel is Rel.LE:
            if mn is not None and mn > 0:
                return INFEASIBLE
            if mx is None or mx > 0:
                definite = False
        else:  # EQ
            if (mn is not None and mn > 0) or (mx is not None and mx < 0):
                return INFEASIBLE
            if not (mn == 0 and mx == 0):
                definite = False
    return FEASIBLE if definite else UNKNOWN
