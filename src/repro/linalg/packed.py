"""Packed integer-matrix Fourier–Motzkin kernel.

The legacy kernel in :mod:`repro.linalg.fourier_motzkin` materializes a
fully interned :class:`~repro.symbolic.affine.AffineExpr` +
:class:`~repro.linalg.constraint.Constraint` +
:class:`~repro.linalg.system.LinearSystem` object for every intermediate
bound pair, so elimination time is dominated by object construction and
intern-table traffic rather than arithmetic.  This module lowers an
interned system **once** into a packed dense form — a shared variable
order plus rows of plain integer coefficients — and runs the whole
elimination pipeline (gcd normalization and integer tightening,
duplicate/trivial-row dropping, batched lower×upper pair combination,
the min-pair-product elimination-order heuristic, the
``SIMPLIFY_THRESHOLD`` redundancy sweep, and ground feasibility) on that
form, re-interning ``Constraint``/``LinearSystem`` objects only for the
final projected system.

**Identical-results contract.**  Every helper here is a line-for-line
mirror of one normalization step of the symbolic path:

* ``_norm_le_row`` ≡ :func:`repro.symbolic.simplify.tighten_le` (content-1
  scaling plus gcd tightening with a floored constant);
* ``_norm_eq_row`` ≡ :func:`repro.symbolic.simplify.integerize`;
* ``_row_class``   ≡ ``Constraint._classify`` (tautology / integer
  contradiction detection);
* ``_canon``       ≡ ``LinearSystem.__new__`` canonicalization
  (taut/contra folding, dedup, sort by the constraint sort key);
* ``_simplify_rows`` ≡ ``LinearSystem.simplified``;
* ``_eliminate_rows`` ≡ ``fourier_motzkin._eliminate_uncached`` including
  the ``MAX_CONSTRAINTS`` fallback-drop semantics, ``charge_fm`` budget
  checkpoints and ``fm.eliminate``/``fm.pair_combine``/
  ``fm.fallback_drop`` counter accounting.

Because the mirrored pipeline produces the same canonical constraint
tuples at every materialization boundary, lifting the final packed form
back through the hash-consing constructors yields **pointer-equal**
interned results — experiment tables, cached summaries and rendered
predicates are byte-identical with the kernel on or off
(``REPRO_PACKED_KERNEL`` / :func:`repro.perf.set_packed_kernel`).

A NumPy fast path batches the lower×upper pair combination on int64
matrices when NumPy is importable and the coefficient magnitudes provably
cannot overflow; it is auto-detected and never required — the pure-tuple
path computes identical rows.

Memo tables (registered with :mod:`repro.perf`):

``fm.packed.lower``
    the system ⇄ packed bijection, stored in both directions: an interned
    ``LinearSystem`` keys its packed form, and a canonical packed form
    keys its (re-)interned system, so repeated lowering *and* lifting of
    the same value are dictionary lookups;
``fm.packed.reuse``
    per-step elimination results keyed on ``(canonical packed form,
    variable)``.  The key is a pure function of the underlying constraint
    set, exactly like the legacy ``fm.eliminate`` key on the interned
    intermediate system, so the packed path reuses work across queries
    with the same hit/miss structure — which is what keeps per-call
    ``fm.*`` counter deltas identical between the two kernels.
"""

from __future__ import annotations

import operator
from math import gcd
from typing import Dict, Iterable, List, Tuple

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.fourier_motzkin import (
    MAX_CONSTRAINTS,
    SIMPLIFY_THRESHOLD,
    _note_fallback,
)
from repro.linalg.system import LinearSystem
from repro.service.budgets import charge_fm
from repro.symbolic.affine import AffineExpr

try:  # optional batched pair-combination; the tuple path is always exact
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

#: minimum lower×upper pair count before the NumPy batch path pays for
#: its array round trip
_NUMPY_MIN_PAIRS = 64
#: int64 safety bound for one product term in a combined coefficient
#: (two such terms are summed, so each must stay below 2**62)
_INT64_SAFE = 2**62

_LOWER = perf.memo_table("fm.packed.lower")
_REUSE = perf.memo_table("fm.packed.reuse")

#: a packed row is ``(is_eq, coeffs, const)`` with integer coefficients
#: aligned to the packed system's variable order
Row = Tuple[bool, Tuple[int, ...], int]
#: a packed system is ``(variable order, canonically sorted rows)``
Packed = Tuple[Tuple[str, ...], Tuple[Row, ...]]

#: canonical infeasible packed system — mirrors ``LinearSystem.empty()``
#: (the single FALSE constraint ``1 <= 0``, which mentions no variables)
_FALSE_PACKED: Packed = ((), ((False, (), 1),))

_TAUT, _OPEN, _CONTRA = -1, 0, 1


# ----------------------------------------------------------------------
# row normalization (mirrors Constraint.__new__ on all-integer input)
# ----------------------------------------------------------------------
def _norm_le_row(
    coeffs: Tuple[int, ...], const: int
) -> Tuple[Tuple[int, ...], int]:
    """Mirror of ``tighten_le`` on an all-integer ``expr <= 0`` row."""
    # integerize (all-int fast path): divide out the overall content,
    # constant included
    g = const if const >= 0 else -const
    for c in coeffs:
        g = gcd(g, c if c >= 0 else -c)
    if g > 1:
        coeffs = tuple(c // g for c in coeffs)
        const //= g
    if not any(coeffs):
        return coeffs, const
    # gcd tightening: primitive variable part, floored constant
    g2 = 0
    for c in coeffs:
        g2 = gcd(g2, c if c >= 0 else -c)
    if g2 > 1:
        coeffs = tuple(c // g2 for c in coeffs)
        const = -((-const) // g2)
    return coeffs, const


def _norm_eq_row(
    coeffs: Tuple[int, ...], const: int
) -> Tuple[Tuple[int, ...], int]:
    """Mirror of ``integerize`` on an all-integer ``expr == 0`` row."""
    g = const if const >= 0 else -const
    for c in coeffs:
        g = gcd(g, c if c >= 0 else -c)
    if g > 1:
        coeffs = tuple(c // g for c in coeffs)
        const //= g
    return coeffs, const


def _row_class(is_eq: bool, coeffs: Tuple[int, ...], const: int) -> int:
    """Mirror of ``Constraint._classify`` on a normalized row."""
    if not any(coeffs):
        if is_eq:
            return _TAUT if const == 0 else _CONTRA
        return _TAUT if const <= 0 else _CONTRA
    if is_eq:
        g = 0
        for c in coeffs:
            g = gcd(g, c if c >= 0 else -c)
        if g > 1 and const % g != 0:
            return _CONTRA
    return _OPEN


def _row_sort_key(vars_: Tuple[str, ...], row: Row):
    """Mirror of ``Constraint.sort_key`` (structural, denominators are 1)."""
    is_eq, coeffs, const = row
    return (
        "==" if is_eq else "<=",
        tuple((vars_[i], c, 1) for i, c in enumerate(coeffs) if c),
        const,
        1,
    )


def _canon(vars_: Tuple[str, ...], rows: Iterable[Row]) -> Packed:
    """Mirror of ``LinearSystem.__new__`` canonicalization.

    Drops tautologies, folds any contradiction to the canonical false
    system, deduplicates, compresses to the live variable columns and
    sorts rows by the constraint sort key — so a canonical packed form is
    a bijective image of the interned system it lifts to.
    """
    kept: List[Row] = []
    seen = set()
    for row in rows:
        cls = _row_class(*row)
        if cls == _TAUT:
            continue
        if cls == _CONTRA:
            return _FALSE_PACKED
        if row not in seen:
            seen.add(row)
            kept.append(row)
    if not kept:
        return ((), ())
    n = len(vars_)
    live = [i for i in range(n) if any(r[1][i] for r in kept)]
    if len(live) != n:
        vars_ = tuple(vars_[i] for i in live)
        kept = [
            (is_eq, tuple(coeffs[i] for i in live), const)
            for is_eq, coeffs, const in kept
        ]
    kept.sort(key=lambda r: _row_sort_key(vars_, r))
    return (vars_, tuple(kept))


# ----------------------------------------------------------------------
# lowering / lifting (the only places symbolic objects are touched)
# ----------------------------------------------------------------------
def lower(system: LinearSystem) -> Packed:
    """Lower an interned system to its canonical packed form (memoized).

    Normalized constraints are all-integer by construction
    (:func:`~repro.symbolic.simplify.tighten_le` /
    :func:`~repro.symbolic.simplify.integerize`); ``operator.index``
    guards the invariant rather than silently truncating.
    """
    cached = _LOWER.data.get(system)
    if cached is not None:
        _LOWER.hits += 1
        return cached
    _LOWER.misses += 1
    vars_ = tuple(sorted(system.variables()))
    index = {v: i for i, v in enumerate(vars_)}
    zeros = [0] * len(vars_)
    rows: List[Row] = []
    for c in system:
        coeffs = zeros[:]
        for v, cf in c.expr.terms():
            coeffs[index[v]] = operator.index(cf)
        rows.append(
            (c.rel is Rel.EQ, tuple(coeffs), operator.index(c.expr.constant))
        )
    packed: Packed = (vars_, tuple(rows))
    _LOWER.data[system] = packed
    _LOWER.data.setdefault(packed, system)
    return packed


def lift(packed: Packed) -> LinearSystem:
    """Re-intern a canonical packed form as a ``LinearSystem`` (memoized).

    Rows are already normalized and canonically ordered, so the interning
    constructors are no-op re-normalizations and the result is pointer
    equal to what the legacy pipeline would have produced.
    """
    cached = _LOWER.data.get(packed)
    if cached is not None:
        _LOWER.hits += 1
        return cached
    _LOWER.misses += 1
    vars_, rows = packed
    constraints = []
    for is_eq, coeffs, const in rows:
        expr = AffineExpr(
            {v: c for v, c in zip(vars_, coeffs) if c}, const
        )
        constraints.append(Constraint(expr, Rel.EQ if is_eq else Rel.LE))
    system = LinearSystem(tuple(constraints))
    _LOWER.data[packed] = system
    _LOWER.data.setdefault(system, packed)
    return system


# ----------------------------------------------------------------------
# the elimination pipeline
# ----------------------------------------------------------------------
def _combine_pairs_scalar(
    lowers: List[Row], uppers: List[Row], vi: int
) -> List[Row]:
    out: List[Row] = []
    for lo in lowers:
        lc, lk = lo[1], lo[2]
        a_lo = lc[vi]  # negative
        for up in uppers:
            uc, uk = up[1], up[2]
            a_up = uc[vi]  # positive
            coeffs = tuple(
                x * a_up - y * a_lo for x, y in zip(lc, uc)
            )
            nc, nk = _norm_le_row(coeffs, lk * a_up - uk * a_lo)
            out.append((False, nc, nk))
    return out


def _combine_pairs_numpy(
    lowers: List[Row], uppers: List[Row], vi: int
) -> List[Row]:
    """Batched pair combination + row normalization on int64 matrices.

    Produces exactly the rows of :func:`_combine_pairs_scalar` (callers
    pre-check the overflow bound); only the batching differs.
    """
    ncols = len(lowers[0][1]) + 1  # coefficients plus the constant column
    lo_m = _np.empty((len(lowers), ncols), dtype=_np.int64)
    up_m = _np.empty((len(uppers), ncols), dtype=_np.int64)
    for i, (_, coeffs, const) in enumerate(lowers):
        lo_m[i, :-1] = coeffs
        lo_m[i, -1] = const
    for i, (_, coeffs, const) in enumerate(uppers):
        up_m[i, :-1] = coeffs
        up_m[i, -1] = const
    a_lo = lo_m[:, vi]  # negative
    a_up = up_m[:, vi]  # positive
    # combined[i, j] = lowers[i] * a_up[j] - uppers[j] * a_lo[i]
    m = (
        lo_m[:, None, :] * a_up[None, :, None]
        - up_m[None, :, :] * a_lo[:, None, None]
    ).reshape(-1, ncols)
    # integerize: divide out the overall content (constant included)
    g = _np.gcd.reduce(_np.abs(m), axis=1)
    _np.maximum(g, 1, out=g)
    m //= g[:, None]
    # tighten: primitive variable part, floored constant
    g2 = _np.gcd.reduce(_np.abs(m[:, :-1]), axis=1)
    _np.maximum(g2, 1, out=g2)
    coeffs_t = m[:, :-1] // g2[:, None]
    const_t = -((-m[:, -1]) // g2)
    rows = coeffs_t.tolist()
    consts = const_t.tolist()
    return [
        (False, tuple(row), const) for row, const in zip(rows, consts)
    ]


def _numpy_combinable(lowers: List[Row], uppers: List[Row], vi: int) -> bool:
    """True when the int64 batch path provably cannot overflow."""
    if _np is None or len(lowers) * len(uppers) < _NUMPY_MIN_PAIRS:
        return False

    def _max_abs(rows: List[Row]) -> int:
        m = 1
        for _, coeffs, const in rows:
            for c in coeffs:
                a = c if c >= 0 else -c
                if a > m:
                    m = a
            a = const if const >= 0 else -const
            if a > m:
                m = a
        return m

    max_lo = _max_abs(lowers)
    max_up = _max_abs(uppers)
    max_alo = max(-lo[1][vi] for lo in lowers)
    max_aup = max(up[1][vi] for up in uppers)
    return max_lo * max_aup < _INT64_SAFE and max_up * max_alo < _INT64_SAFE


def _eliminate_rows(packed: Packed, var: str) -> Packed:
    """Mirror of ``fourier_motzkin._eliminate_uncached`` on packed rows."""
    perf.bump("fm.eliminate")
    vars_, rows = packed
    vi = vars_.index(var)
    lowers: List[Row] = []
    uppers: List[Row] = []
    eqs: List[Row] = []
    others: List[Row] = []
    for row in rows:
        a = row[1][vi]
        if a == 0:
            others.append(row)
        elif row[0]:
            eqs.append(row)
        elif a > 0:
            uppers.append(row)
        else:
            lowers.append(row)

    # Exact substitution via a unit-coefficient equality.
    for eq in eqs:
        a = eq[1][vi]
        if a == 1 or a == -1:
            # a*var + rest == 0  =>  var = -rest/a  (a is ±1)
            if a == 1:
                sol = tuple(
                    0 if i == vi else -c for i, c in enumerate(eq[1])
                )
                sol_const = -eq[2]
            else:
                sol = tuple(
                    0 if i == vi else c for i, c in enumerate(eq[1])
                )
                sol_const = eq[2]
            out: List[Row] = []
            for row in rows:
                if row is eq:
                    continue
                b = row[1][vi]
                if b == 0:
                    out.append(row)
                    continue
                coeffs = tuple(
                    0 if i == vi else c + b * s
                    for i, (c, s) in enumerate(zip(row[1], sol))
                )
                const = row[2] + b * sol_const
                if row[0]:
                    nc, nk = _norm_eq_row(coeffs, const)
                else:
                    nc, nk = _norm_le_row(coeffs, const)
                out.append((row[0], nc, nk))
            return _canon(vars_, out)

    # Demote equalities to inequality pairs.
    for eq in eqs:
        a = eq[1][vi]
        le = (False,) + _norm_le_row(eq[1], eq[2])
        ge = (False,) + _norm_le_row(
            tuple(-c for c in eq[1]), -eq[2]
        )
        if a > 0:
            uppers.append(le)
            lowers.append(ge)
        else:
            lowers.append(le)
            uppers.append(ge)

    n_pairs = len(lowers) * len(uppers)
    if n_pairs > MAX_CONSTRAINTS * 4:
        # Combinatorial blowup: drop the variable's constraints (sound
        # superset) — same fallback, warning and counters as the legacy
        # kernel.
        _note_fallback(var, n_pairs)
        return _canon(vars_, others)

    charge_fm(n_pairs)
    combined: List[Row] = list(others)
    if _numpy_combinable(lowers, uppers, vi):
        combined.extend(_combine_pairs_numpy(lowers, uppers, vi))
    else:
        combined.extend(_combine_pairs_scalar(lowers, uppers, vi))
    perf.bump("fm.pair_combine", n_pairs)
    result = _canon(vars_, combined)
    if len(result[1]) > MAX_CONSTRAINTS:
        result = _simplify_rows(result)
    return result


def _simplify_rows(packed: Packed) -> Packed:
    """Mirror of ``LinearSystem.simplified`` on packed rows."""
    vars_, rows = packed
    by_varpart: Dict[Tuple[int, ...], Row] = {}
    eqs: List[Row] = []
    for row in rows:
        if row[0]:
            eqs.append(row)
            continue
        prev = by_varpart.get(row[1])
        if prev is None or row[2] > prev[2]:
            # larger constant = tighter upper bound for e + c <= 0
            by_varpart[row[1]] = row
    eq_consts = {coeffs: const for _, coeffs, const in eqs}
    kept = list(eqs)
    for var_part, row in by_varpart.items():
        const = row[2]
        if var_part in eq_consts and -eq_consts[var_part] >= -const:
            if eq_consts[var_part] >= const:
                continue
        neg = tuple(-c for c in var_part)
        if neg in eq_consts and -eq_consts[neg] >= const:
            continue
        kept.append(row)
    return _canon(vars_, kept)


def _eliminate_step(packed: Packed, var: str) -> Packed:
    """One memoized elimination step on a canonical packed form."""
    key = (packed, var)
    cached = _REUSE.data.get(key)
    if cached is not None:
        _REUSE.hits += 1
        return cached
    _REUSE.misses += 1
    result = _eliminate_rows(packed, var)
    _REUSE.data[key] = result
    return result


# ----------------------------------------------------------------------
# entry points (called from repro.linalg.fourier_motzkin dispatch)
# ----------------------------------------------------------------------
def eliminate_packed(system: LinearSystem, var: str) -> LinearSystem:
    """Packed-kernel body of :func:`~repro.linalg.fourier_motzkin.eliminate`.

    The caller has already handled the ``var`` ∉ ``system`` fast path.
    """
    return lift(_eliminate_step(lower(system), var))


def eliminate_all_packed(
    system: LinearSystem, todo0: Tuple[str, ...]
) -> LinearSystem:
    """Packed-kernel body of
    :func:`~repro.linalg.fourier_motzkin.eliminate_all`.

    Same cheapest-first heuristic as the legacy loop (unit-coefficient
    equalities first, then minimal lower×upper pair product, ties by
    name), same ``SIMPLIFY_THRESHOLD`` sweep between rounds; the caller
    owns the ``fm.eliminate_all`` memo.
    """
    current = lower(system)
    todo = list(todo0)
    while todo:
        vars_, rows = current
        # re-rank each round: elimination changes occurrence counts
        live = set(vars_)
        todo = [v for v in todo if v in live]
        if not todo:
            break
        costs = {}
        for v in todo:
            vi = vars_.index(v)
            n_lo = n_up = 0
            unit_eq = False
            for row in rows:
                a = row[1][vi]
                if a == 0:
                    continue
                if row[0]:
                    if a == 1 or a == -1:
                        unit_eq = True
                    n_lo += 1
                    n_up += 1
                elif a > 0:
                    n_up += 1
                else:
                    n_lo += 1
            costs[v] = (0 if unit_eq else 1, n_lo * n_up)
        todo.sort(key=lambda v: (costs[v], v))
        var = todo.pop(0)
        current = _eliminate_step(current, var)
        if len(current[1]) > SIMPLIFY_THRESHOLD:
            current = _simplify_rows(current)
    return lift(current)
