"""Semantic operations on predicates: unsatisfiability, implication,
equivalence and feasibility-backed simplification.

All answers are *sound but incomplete*: ``is_unsat`` returning ``True`` is
a proof; returning ``False`` means "could not prove".  Opaque and
divisibility atoms are treated as free booleans (a relaxation, hence
sound for unsat proofs); linear atoms go through the exact Fourier–Motzkin
substrate.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro import perf
from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import is_feasible
from repro.linalg.implication import entails
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    FALSE,
    NotPred,
    OrPred,
    Predicate,
    TRUE,
    p_and,
    p_not,
    p_or,
)

# Bound on the number of DNF disjuncts explored before giving up.
MAX_DNF = 256

Literal = Predicate  # Atom | NotPred
Conjunct = FrozenSet[Literal]


def to_dnf(pred: Predicate, limit: int = MAX_DNF) -> Optional[List[Conjunct]]:
    """Expand an NNF formula into a list of literal conjuncts.

    Returns ``None`` when the expansion exceeds *limit* (callers must then
    be conservative).
    """
    if pred.is_false():
        return []
    if pred.is_true():
        return [frozenset()]
    if isinstance(pred, (Atom, NotPred)):
        return [frozenset([pred])]
    if isinstance(pred, OrPred):
        out: List[Conjunct] = []
        for op in pred.operands:
            sub = to_dnf(op, limit)
            if sub is None:
                return None
            out.extend(sub)
            if len(out) > limit:
                return None
        return out
    if isinstance(pred, AndPred):
        acc: List[Conjunct] = [frozenset()]
        for op in pred.operands:
            sub = to_dnf(op, limit)
            if sub is None:
                return None
            acc = [a | b for a in acc for b in sub]
            if len(acc) > limit:
                return None
        return acc
    raise TypeError(f"unknown predicate node {type(pred).__name__}")


def conjunct_infeasible(conj: Conjunct) -> bool:
    """Is a single conjunct of literals contradictory?

    Checks boolean complements on opaque/div literals and exact
    infeasibility of the conjoined linear atoms.
    """
    positives = set()
    negatives = set()
    constraints = []
    for lit in conj:
        if isinstance(lit, Atom):
            if isinstance(lit.atom, LinAtom):
                constraints.append(lit.atom.constraint)
            else:
                positives.add(lit.atom)
        elif isinstance(lit, NotPred):
            negatives.add(lit.operand.atom)
        else:  # pragma: no cover - literals are atoms by construction
            raise TypeError(f"not a literal: {lit!r}")
    if positives & negatives:
        return True
    if constraints:
        # conjuncts are frozensets: sort so the constructed system (and
        # every op count derived from it) is hash-seed independent
        constraints.sort(key=Constraint.sort_key)
        return not is_feasible(LinearSystem(constraints))
    return False


# The semantic queries delegate to the tiered, memoized oracle
# (repro.predicates.oracle); the oracle imports this module's ground
# machinery (to_dnf / conjunct_infeasible), so the reference is resolved
# lazily to break the cycle.  With the oracle disabled
# (REPRO_PRED_ORACLE=0) the queries run the original uncached path —
# either way the booleans are identical.

_oracle = None


def _get_oracle():
    global _oracle
    if _oracle is None:
        from repro.predicates import oracle

        _oracle = oracle
    return _oracle


def is_unsat(pred: Predicate) -> bool:
    """Sound unsatisfiability: ``True`` is a proof of unsatisfiability."""
    return _get_oracle().is_unsat(pred)


def implies(p: Predicate, q: Predicate) -> bool:
    """Sound implication test: ``p → q`` proven via unsat of ``p ∧ ¬q``."""
    return _get_oracle().implies(p, q)


def equivalent(p: Predicate, q: Predicate) -> bool:
    """Sound (incomplete) logical equivalence."""
    return _get_oracle().equivalent(p, q)


def linear_system_of(conj: Conjunct) -> LinearSystem:
    """The conjunction of the linear atoms of a conjunct."""
    constraints = [
        lit.atom.constraint
        for lit in conj
        if isinstance(lit, Atom) and isinstance(lit.atom, LinAtom)
    ]
    constraints.sort(key=Constraint.sort_key)
    return LinearSystem(constraints)


_SIMPLIFY = perf.memo_table("pred.oracle.simplify", cap=32768)


def simplify(pred: Predicate) -> Predicate:
    """Feasibility-backed cleanup.

    * conjunctions of linear atoms collapse to FALSE when infeasible and
      drop atoms entailed by the rest;
    * disjunctions drop branches implied by another branch (absorption);
    * unsatisfiable formulas collapse to FALSE; valid ones to TRUE.

    Bounded: the global checks only run when the DNF stays small.
    Memoized (whole-result) while the predicate oracle is enabled.
    """
    use_memo = perf.pred_oracle_enabled()
    if use_memo:
        hit = _SIMPLIFY.data.get(pred, perf.MISS)
        if hit is not perf.MISS:
            _SIMPLIFY.hits += 1
            return hit
        _SIMPLIFY.misses += 1
    result = _simplify_uncached(pred)
    if use_memo:
        _SIMPLIFY.data[pred] = result
    return result


def _simplify_uncached(pred: Predicate) -> Predicate:
    pred = _simplify_node(pred)
    if pred.is_true() or pred.is_false():
        return pred
    if is_unsat(pred):
        return FALSE
    if is_unsat(p_not(pred)):
        return TRUE
    return pred


def _simplify_node(pred: Predicate) -> Predicate:
    if isinstance(pred, AndPred):
        ops = [_simplify_node(op) for op in pred.operands]
        ops = _drop_entailed_linear(ops)
        return p_and(*ops)
    if isinstance(pred, OrPred):
        ops = [_simplify_node(op) for op in pred.operands]
        kept: List[Predicate] = []
        for op in ops:
            if any(implies(op, other) for other in kept):
                continue
            kept = [k for k in kept if not implies(k, op)]
            kept.append(op)
        return p_or(*kept)
    return pred


def _drop_entailed_linear(ops: Iterable[Predicate]) -> List[Predicate]:
    """Within a conjunction, drop linear atoms entailed by the others."""
    ops = list(ops)
    lin_idx = [
        i
        for i, op in enumerate(ops)
        if isinstance(op, Atom) and isinstance(op.atom, LinAtom)
    ]
    if len(lin_idx) < 2:
        return ops
    keep = set(range(len(ops)))
    for i in lin_idx:
        others = LinearSystem(
            ops[j].atom.constraint for j in lin_idx if j != i and j in keep
        )
        if entails(others, ops[i].atom.constraint):
            keep.discard(i)
    return [ops[i] for i in sorted(keep)]
