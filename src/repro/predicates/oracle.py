"""Tiered predicate oracle: memoized `is_unsat` / `implies` / `equivalent`.

The predicate layer's semantic queries all reduce to unsatisfiability of
a DNF expansion, conjunct by conjunct.  This module answers them through
three tiers, cheapest first, with every result memoized in
predicate-keyed tables:

* **tier 0 — structural**: boolean complements among opaque/divisibility
  literals, pairwise structural complements among linear atoms
  (``c ∧ ¬c``), and syntactic conjunct subsumption (a conjunct that is a
  superset of one already proven infeasible is infeasible);
* **tier 1 — intervals**: the single-variable bounds abstraction of
  :mod:`repro.linalg.intervals`, which refutes or proves rational
  feasibility without eliminating any variables;
* **tier 2 — exact**: the Fourier–Motzkin feasibility kernel, exactly as
  the ground path in :mod:`repro.predicates.simplify` invokes it.

The oracle is a pure cost optimization: tiers 0 and 1 only answer when
their verdict provably coincides with tier 2 (see the agreement argument
in ``intervals.py``), and the DNF expansion (including its abort bound)
is byte-identical to the ground path's — so enabling or disabling the
oracle (``REPRO_PRED_ORACLE`` / :func:`set_enabled`) never changes a
query result, only its cost.

Budget contract (mirrors the PR 2 summary-cache contract): tier 2 runs
under `service.budgets` checkpoints inside the feasibility kernel; a
``BudgetExceeded`` escaping a query aborts it *before* any memo store,
so degraded (budget-interrupted) answers are never cached, while memo
hits stay free under any budget.

Counters (visible under ``--profile``): ``pred.oracle.tier0`` /
``tier1`` / ``tier2`` count which tier settled each conjunct;
``pred.oracle.unsat`` / ``implies`` / ``conjunct`` / ``dnf`` /
``negate`` are the memo tables, reset by ``perf.reset_all_caches()``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro import perf
from repro.linalg import intervals
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.feasibility import is_feasible
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import LinAtom
from repro.predicates.formula import (
    Atom,
    NotPred,
    Predicate,
    p_and,
    p_not,
)
from repro.predicates.simplify import conjunct_infeasible, to_dnf

Conjunct = FrozenSet[Predicate]

perf.declare("pred.oracle.tier0")
perf.declare("pred.oracle.tier1")
perf.declare("pred.oracle.tier2")

_UNSAT = perf.memo_table("pred.oracle.unsat", cap=32768)
_IMPLIES = perf.memo_table("pred.oracle.implies", cap=32768)
_CONJUNCT = perf.memo_table("pred.oracle.conjunct", cap=32768)
_DNF = perf.memo_table("pred.oracle.dnf", cap=32768)
_NEGATE = perf.memo_table("pred.oracle.negate", cap=32768)

_MISS = perf.MISS


def enabled() -> bool:
    """Is the tiered/memoized path active?  (Disabled = ground path.)"""
    return perf.pred_oracle_enabled()


def set_enabled(flag: Optional[bool]) -> None:
    """Force the oracle on/off; ``None`` re-reads ``REPRO_PRED_ORACLE``."""
    perf.set_pred_oracle(flag)


# ----------------------------------------------------------------------
# ground reference (the pre-oracle implementation, verbatim)
# ----------------------------------------------------------------------


def ground_is_unsat(pred: Predicate) -> bool:
    """The uncached, untiered unsatisfiability test (reference path)."""
    if pred.is_false():
        return True
    if pred.is_true():
        return False
    dnf = to_dnf(pred)
    if dnf is None:
        return False
    return all(conjunct_infeasible(c) for c in dnf)


# ----------------------------------------------------------------------
# cached DNF
# ----------------------------------------------------------------------


def cached_dnf(pred: Predicate) -> Optional[Tuple[Conjunct, ...]]:
    """`to_dnf` with the default bound, memoized; ``None`` on abort."""
    if not enabled():
        dnf = to_dnf(pred)
        return None if dnf is None else tuple(dnf)
    hit = _DNF.data.get(pred, _MISS)
    if hit is not _MISS:
        _DNF.hits += 1
        return hit
    _DNF.misses += 1
    dnf = to_dnf(pred)
    result = None if dnf is None else tuple(dnf)
    _DNF.data[pred] = result
    return result


# ----------------------------------------------------------------------
# per-conjunct tiers
# ----------------------------------------------------------------------


def _conjunct_unsat_uncached(conj: Conjunct) -> bool:
    positives = set()
    negatives = set()
    constraints: List[Constraint] = []
    for lit in conj:
        if isinstance(lit, Atom):
            if isinstance(lit.atom, LinAtom):
                constraints.append(lit.atom.constraint)
            else:
                positives.add(lit.atom)
        elif isinstance(lit, NotPred):
            negatives.add(lit.operand.atom)
        else:  # pragma: no cover - literals are atoms by construction
            raise TypeError(f"not a literal: {lit!r}")
    if positives & negatives:
        perf.bump("pred.oracle.tier0")
        return True
    if not constraints:
        perf.bump("pred.oracle.tier0")
        return False
    # tier 0: pairwise structural complements (c ∧ ¬c is infeasible)
    cset = frozenset(constraints)
    for c in cset:
        if c.rel is Rel.LE and c.negate() in cset:
            perf.bump("pred.oracle.tier0")
            return True
    # tier 1: interval/box reasoning, exact whenever definitive
    verdict = intervals.classify_constraints(constraints)
    if verdict == intervals.INFEASIBLE:
        perf.bump("pred.oracle.tier1")
        return True
    if verdict == intervals.FEASIBLE:
        perf.bump("pred.oracle.tier1")
        return False
    # tier 2: the exact kernel, invoked exactly as the ground path does
    perf.bump("pred.oracle.tier2")
    constraints.sort(key=Constraint.sort_key)
    return not is_feasible(LinearSystem(constraints))


def conjunct_unsat(conj: Conjunct) -> bool:
    """Tiered, memoized contradiction test for one literal conjunct.

    Always agrees with :func:`repro.predicates.simplify.conjunct_infeasible`.
    """
    if not enabled():
        return conjunct_infeasible(conj)
    hit = _CONJUNCT.data.get(conj, _MISS)
    if hit is not _MISS:
        _CONJUNCT.hits += 1
        return hit
    _CONJUNCT.misses += 1
    result = _conjunct_unsat_uncached(conj)
    _CONJUNCT.data[conj] = result
    return result


# ----------------------------------------------------------------------
# the public queries
# ----------------------------------------------------------------------


def is_unsat(pred: Predicate) -> bool:
    """Sound unsatisfiability; identical to the ground path's answer."""
    if pred.is_false():
        return True
    if pred.is_true():
        return False
    if not enabled():
        return ground_is_unsat(pred)
    hit = _UNSAT.data.get(pred, _MISS)
    if hit is not _MISS:
        _UNSAT.hits += 1
        return hit
    _UNSAT.misses += 1
    dnf = cached_dnf(pred)
    if dnf is None:
        result = False  # expansion aborted: cannot prove (ground behavior)
    else:
        result = True
        proven: List[Conjunct] = []
        for conj in dnf:
            # tier 0: syntactic subsumption against proven conjuncts
            if any(p <= conj for p in proven):
                perf.bump("pred.oracle.tier0")
                continue
            if conjunct_unsat(conj):
                proven.append(conj)
                continue
            result = False
            break
    _UNSAT.data[pred] = result
    return result


def _negated(q: Predicate) -> Predicate:
    if not enabled():
        return p_not(q)
    hit = _NEGATE.data.get(q, _MISS)
    if hit is not _MISS:
        _NEGATE.hits += 1
        return hit
    _NEGATE.misses += 1
    result = p_not(q)
    _NEGATE.data[q] = result
    return result


def implies(p: Predicate, q: Predicate) -> bool:
    """Sound implication (``p → q`` proven via unsat of ``p ∧ ¬q``)."""
    if p.is_false() or q.is_true():
        return True
    if not enabled():
        return ground_is_unsat(p_and(p, p_not(q)))
    key = (p, q)
    hit = _IMPLIES.data.get(key, _MISS)
    if hit is not _MISS:
        _IMPLIES.hits += 1
        return hit
    _IMPLIES.misses += 1
    result = is_unsat(p_and(p, _negated(q)))
    _IMPLIES.data[key] = result
    return result


def equivalent(p: Predicate, q: Predicate) -> bool:
    """Sound (incomplete) logical equivalence: implication both ways."""
    return implies(p, q) and implies(q, p)
