"""Predicate atoms.

Three atom kinds cover the paper's needs:

* :class:`LinAtom` — an affine constraint (``e <= 0`` or ``e == 0``); the
  compiler can reason about these exactly (embedding/extraction).
* :class:`DivAtom` — divisibility ``modulus | expr``; produced by the
  interprocedural ``Reshape`` operation ("an entire array is written if
  the problem size is divisible by one of the dimension sizes in the
  callee").
* :class:`OpaqueAtom` — an uninterpreted run-time-evaluable boolean over
  scalar variables (e.g. the guard ``a(k) > 0`` with a non-affine
  subexpression).  Two opaque atoms are the same atom iff their canonical
  keys are equal.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Optional, Tuple, Union

from repro.linalg.constraint import Constraint
from repro.symbolic.affine import AffineExpr

Number = Union[int, Fraction]


class LinAtom:
    """An affine-comparison atom wrapping a normalized constraint."""

    __slots__ = ("constraint",)

    def __init__(self, constraint: Constraint) -> None:
        object.__setattr__(self, "constraint", constraint)

    def __setattr__(self, name, value):
        raise AttributeError("LinAtom is immutable")

    def __reduce__(self):
        return (LinAtom, (self.constraint,))

    # convenience constructors mirroring Constraint's
    @staticmethod
    def le(lhs: AffineExpr, rhs: AffineExpr) -> "LinAtom":
        return LinAtom(Constraint.le(lhs, rhs))

    @staticmethod
    def lt(lhs: AffineExpr, rhs: AffineExpr) -> "LinAtom":
        return LinAtom(Constraint.lt(lhs, rhs))

    @staticmethod
    def ge(lhs: AffineExpr, rhs: AffineExpr) -> "LinAtom":
        return LinAtom(Constraint.ge(lhs, rhs))

    @staticmethod
    def gt(lhs: AffineExpr, rhs: AffineExpr) -> "LinAtom":
        return LinAtom(Constraint.gt(lhs, rhs))

    @staticmethod
    def eq(lhs: AffineExpr, rhs: AffineExpr) -> "LinAtom":
        return LinAtom(Constraint.eq(lhs, rhs))

    def variables(self) -> Tuple[str, ...]:
        return self.constraint.variables()

    def substitute(self, bindings) -> "LinAtom":
        return LinAtom(self.constraint.substitute(bindings))

    def rename(self, mapping) -> "LinAtom":
        return LinAtom(self.constraint.rename(mapping))

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        return self.constraint.evaluate(env)

    def __eq__(self, other):
        return isinstance(other, LinAtom) and self.constraint == other.constraint

    def __hash__(self):
        return hash(("LinAtom", self.constraint))

    def __repr__(self):
        return f"LinAtom({self.constraint})"

    def __str__(self):
        return str(self.constraint)


class DivAtom:
    """``modulus | expr`` — *expr* is divisible by *modulus* (> 1)."""

    __slots__ = ("expr", "modulus")

    def __init__(self, expr: AffineExpr, modulus: int) -> None:
        if modulus <= 1:
            raise ValueError(f"modulus must exceed 1, got {modulus}")
        if not expr.is_integral():
            raise ValueError("divisibility atom requires an integral expression")
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "modulus", modulus)

    def __setattr__(self, name, value):
        raise AttributeError("DivAtom is immutable")

    def __reduce__(self):
        return (DivAtom, (self.expr, self.modulus))

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def substitute(self, bindings) -> "DivAtom":
        new = self.expr.substitute(bindings)
        return DivAtom(new, self.modulus)

    def rename(self, mapping) -> "DivAtom":
        return DivAtom(self.expr.rename(mapping), self.modulus)

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        v = self.expr.evaluate(env)
        return v.denominator == 1 and int(v) % self.modulus == 0

    def __eq__(self, other):
        return (
            isinstance(other, DivAtom)
            and self.modulus == other.modulus
            and self.expr == other.expr
        )

    def __hash__(self):
        return hash(("DivAtom", self.expr, self.modulus))

    def __repr__(self):
        return f"DivAtom({self.modulus} | {self.expr})"

    def __str__(self):
        return f"({self.expr}) mod {self.modulus} == 0"


class OpaqueAtom:
    """An uninterpreted boolean over the named scalar *reads*.

    *key* is the canonical identity (typically the pretty-printed source
    expression); *reads* lists the scalar variables the expression consults,
    which the run-time-test legality check uses ("only scalars that are not
    written inside the candidate loop may appear in a run-time test").
    """

    __slots__ = ("key", "reads")

    def __init__(self, key: str, reads: Tuple[str, ...] = ()) -> None:
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "reads", tuple(sorted(set(reads))))

    def __setattr__(self, name, value):
        raise AttributeError("OpaqueAtom is immutable")

    def __reduce__(self):
        return (OpaqueAtom, (self.key, self.reads))

    def variables(self) -> Tuple[str, ...]:
        return self.reads

    def substitute(self, bindings) -> "OpaqueAtom":
        # opaque atoms do not participate in affine substitution
        return self

    def rename(self, mapping: Mapping[str, str]) -> "OpaqueAtom":
        if not any(r in mapping for r in self.reads):
            return self
        key = self.key
        for old, new in mapping.items():
            key = key.replace(old, new)
        return OpaqueAtom(key, tuple(mapping.get(r, r) for r in self.reads))

    def evaluate(
        self,
        env: Mapping[str, Number],
        opaque_eval: Optional[Callable[["OpaqueAtom", Mapping[str, Number]], bool]] = None,
    ) -> bool:
        if opaque_eval is None:
            raise ValueError(
                f"opaque atom {self.key!r} requires an opaque_eval callback"
            )
        return bool(opaque_eval(self, env))

    def __eq__(self, other):
        return isinstance(other, OpaqueAtom) and self.key == other.key

    def __hash__(self):
        return hash(("OpaqueAtom", self.key))

    def __repr__(self):
        return f"OpaqueAtom({self.key!r})"

    def __str__(self):
        return self.key


AtomKind = Union[LinAtom, DivAtom, OpaqueAtom]
