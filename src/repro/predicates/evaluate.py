"""Concrete evaluation of predicates against a scalar environment.

Used in two places:

* the **interpreter**, to execute generated run-time tests exactly the
  way the two-version loop would at run time;
* **tests**, to cross-check symbolic simplification against truth tables.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Optional, Union

from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    NotPred,
    OrPred,
    Predicate,
)

Number = Union[int, Fraction]
OpaqueEval = Callable[[OpaqueAtom, Mapping[str, Number]], bool]


def evaluate(
    pred: Predicate,
    env: Mapping[str, Number],
    opaque_eval: Optional[OpaqueEval] = None,
) -> bool:
    """Evaluate *pred* under *env*.

    ``opaque_eval`` resolves opaque atoms; omit it when the formula is
    known to be opaque-free (a ``ValueError`` is raised otherwise rather
    than guessing).
    """
    if pred.is_true():
        return True
    if pred.is_false():
        return False
    if isinstance(pred, Atom):
        atom = pred.atom
        if isinstance(atom, (LinAtom, DivAtom)):
            return atom.evaluate(env)
        return atom.evaluate(env, opaque_eval)
    if isinstance(pred, NotPred):
        return not evaluate(pred.operand, env, opaque_eval)
    if isinstance(pred, AndPred):
        return all(evaluate(op, env, opaque_eval) for op in pred.operands)
    if isinstance(pred, OrPred):
        return any(evaluate(op, env, opaque_eval) for op in pred.operands)
    raise TypeError(f"unknown predicate node {type(pred).__name__}")
