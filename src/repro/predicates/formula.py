"""Predicate formulas in negation normal form.

The constructors :func:`p_and`, :func:`p_or`, :func:`p_not` perform local
(cheap, purely structural) normalization: constant folding, flattening of
nested conjunctions/disjunctions, duplicate removal and complementary-
literal detection.  Semantic simplification (feasibility-backed) lives in
:mod:`repro.predicates.simplify`.

Negations are pushed to the leaves.  Negating a ``<=`` linear atom yields
another linear atom; negating an equality yields a disjunction of the two
strict sides; ``DivAtom`` and ``OpaqueAtom`` negations stay as ``NotPred``
literals.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple, Union

from repro.linalg.constraint import Constraint, Rel
from repro.predicates.atoms import AtomKind, DivAtom, LinAtom, OpaqueAtom


class Predicate:
    """Base class; all formula nodes are immutable and hashable."""

    __slots__ = ()

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def is_true(self) -> bool:
        return isinstance(self, _TruePred)

    def is_false(self) -> bool:
        return isinstance(self, _FalsePred)

    def substitute(self, bindings) -> "Predicate":
        raise NotImplementedError

    def rename(self, mapping) -> "Predicate":
        raise NotImplementedError

    # boolean sugar
    def __and__(self, other: "Predicate") -> "Predicate":
        return p_and(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return p_or(self, other)

    def __invert__(self) -> "Predicate":
        return p_not(self)


class _TruePred(Predicate):
    __slots__ = ()

    def __reduce__(self):
        return (_TruePred, ())

    def variables(self):
        return frozenset()

    def substitute(self, bindings):
        return self

    def rename(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, _TruePred)

    def __hash__(self):
        return hash("_TruePred")

    def __repr__(self):
        return "TRUE"

    __str__ = __repr__


class _FalsePred(Predicate):
    __slots__ = ()

    def __reduce__(self):
        return (_FalsePred, ())

    def variables(self):
        return frozenset()

    def substitute(self, bindings):
        return self

    def rename(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, _FalsePred)

    def __hash__(self):
        return hash("_FalsePred")

    def __repr__(self):
        return "FALSE"

    __str__ = __repr__


TRUE = _TruePred()
FALSE = _FalsePred()


class Atom(Predicate):
    """A positive literal wrapping one atom."""

    __slots__ = ("atom", "_hash", "_vars", "_str")

    def __init__(self, atom: AtomKind) -> None:
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "_hash", hash(("Atom", atom)))
        object.__setattr__(self, "_vars", None)
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        return (Atom, (self.atom,))

    def variables(self):
        vs = self._vars
        if vs is None:
            vs = frozenset(self.atom.variables())
            object.__setattr__(self, "_vars", vs)
        return vs

    def substitute(self, bindings):
        new = self.atom.substitute(bindings)
        if isinstance(new, LinAtom):
            if new.constraint.is_tautology():
                return TRUE
            if new.constraint.is_contradiction():
                return FALSE
        return Atom(new)

    def rename(self, mapping):
        return Atom(self.atom.rename(mapping))

    def __eq__(self, other):
        return isinstance(other, Atom) and self.atom == other.atom

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Atom({self.atom!r})"

    def __str__(self):
        s = self._str
        if s is None:
            s = str(self.atom)
            object.__setattr__(self, "_str", s)
        return s


class NotPred(Predicate):
    """A negative literal (only over DivAtom / OpaqueAtom)."""

    __slots__ = ("operand", "_hash", "_str")

    def __init__(self, operand: Atom) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "_hash", hash(("NotPred", operand)))
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name, value):
        raise AttributeError("NotPred is immutable")

    def __reduce__(self):
        return (NotPred, (self.operand,))

    def variables(self):
        return self.operand.variables()

    def substitute(self, bindings):
        inner = self.operand.substitute(bindings)
        return p_not(inner)

    def rename(self, mapping):
        return NotPred(self.operand.rename(mapping))

    def __eq__(self, other):
        return isinstance(other, NotPred) and self.operand == other.operand

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"NotPred({self.operand!r})"

    def __str__(self):
        s = self._str
        if s is None:
            s = f"¬({self.operand})"
            object.__setattr__(self, "_str", s)
        return s


class _NaryPred(Predicate):
    __slots__ = ("operands", "_hash", "_vars", "_str")

    def __init__(self, operands: Tuple[Predicate, ...]) -> None:
        object.__setattr__(self, "operands", operands)
        object.__setattr__(
            self, "_hash", hash((type(self).__name__, operands))
        )
        object.__setattr__(self, "_vars", None)
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name, value):
        raise AttributeError("predicate nodes are immutable")

    def __reduce__(self):
        return (type(self), (self.operands,))

    def variables(self):
        vs = self._vars
        if vs is None:
            acc: set = set()
            for op in self.operands:
                acc |= op.variables()
            vs = frozenset(acc)
            object.__setattr__(self, "_vars", vs)
        return vs

    def __eq__(self, other):
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self):
        return self._hash

    def _render(self, sep: str) -> str:
        s = self._str
        if s is None:
            s = "(" + sep.join(map(str, self.operands)) + ")"
            object.__setattr__(self, "_str", s)
        return s


class AndPred(_NaryPred):
    __slots__ = ()

    def substitute(self, bindings):
        return p_and(*(op.substitute(bindings) for op in self.operands))

    def rename(self, mapping):
        return p_and(*(op.rename(mapping) for op in self.operands))

    def __repr__(self):
        return f"AndPred({', '.join(map(repr, self.operands))})"

    def __str__(self):
        return self._render(" ∧ ")


class OrPred(_NaryPred):
    __slots__ = ()

    def substitute(self, bindings):
        return p_or(*(op.substitute(bindings) for op in self.operands))

    def rename(self, mapping):
        return p_or(*(op.rename(mapping) for op in self.operands))

    def __repr__(self):
        return f"OrPred({', '.join(map(repr, self.operands))})"

    def __str__(self):
        return self._render(" ∨ ")


# ----------------------------------------------------------------------
# smart constructors
# ----------------------------------------------------------------------
def p_atom(atom: AtomKind) -> Predicate:
    """Wrap an atom, folding trivially-true/false linear atoms."""
    if isinstance(atom, LinAtom):
        if atom.constraint.is_tautology():
            return TRUE
        if atom.constraint.is_contradiction():
            return FALSE
    return Atom(atom)


def _complementary(a: Predicate, b: Predicate) -> bool:
    """Structural complement check for literals."""
    if isinstance(a, NotPred) and a.operand == b:
        return True
    if isinstance(b, NotPred) and b.operand == a:
        return True
    if isinstance(a, Atom) and isinstance(b, Atom):
        la, lb = a.atom, b.atom
        if isinstance(la, LinAtom) and isinstance(lb, LinAtom):
            if la.constraint.rel is Rel.LE and lb.constraint.rel is Rel.LE:
                return la.constraint.negate() == lb.constraint
    return False


def p_and(*preds: Predicate) -> Predicate:
    """Conjunction with flattening, dedup and complement detection."""
    flat = []
    for p in preds:
        if p.is_false():
            return FALSE
        if p.is_true():
            continue
        if isinstance(p, AndPred):
            flat.extend(p.operands)
        else:
            flat.append(p)
    unique = []
    seen = set()
    for p in flat:
        if p in seen:
            continue
        if any(_complementary(p, q) for q in unique):
            return FALSE
        seen.add(p)
        unique.append(p)
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=str)
    return AndPred(tuple(unique))


def p_or(*preds: Predicate) -> Predicate:
    """Disjunction with flattening, dedup and complement detection."""
    flat = []
    for p in preds:
        if p.is_true():
            return TRUE
        if p.is_false():
            continue
        if isinstance(p, OrPred):
            flat.extend(p.operands)
        else:
            flat.append(p)
    unique = []
    seen = set()
    for p in flat:
        if p in seen:
            continue
        if any(_complementary(p, q) for q in unique):
            return TRUE
        seen.add(p)
        unique.append(p)
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=str)
    return OrPred(tuple(unique))


def p_not(pred: Predicate) -> Predicate:
    """Negation, pushed to the leaves (NNF)."""
    if pred.is_true():
        return FALSE
    if pred.is_false():
        return TRUE
    if isinstance(pred, NotPred):
        return pred.operand
    if isinstance(pred, Atom):
        atom = pred.atom
        if isinstance(atom, LinAtom):
            c = atom.constraint
            if c.rel is Rel.LE:
                return Atom(LinAtom(c.negate()))
            # ¬(e == 0)  ≡  e <= -1  ∨  e >= 1
            lt = LinAtom(Constraint(c.expr + 1, Rel.LE))
            gt = LinAtom(Constraint(-c.expr + 1, Rel.LE))
            return p_or(p_atom(lt), p_atom(gt))
        return NotPred(pred)
    if isinstance(pred, AndPred):
        return p_or(*(p_not(op) for op in pred.operands))
    if isinstance(pred, OrPred):
        return p_and(*(p_not(op) for op in pred.operands))
    raise TypeError(f"unknown predicate node {type(pred).__name__}")


def literals(pred: Predicate) -> Iterable[Predicate]:
    """Iterate the literal leaves of an NNF formula."""
    if isinstance(pred, (Atom, NotPred)):
        yield pred
    elif isinstance(pred, (AndPred, OrPred)):
        for op in pred.operands:
            yield from literals(op)


PredicateLike = Union[Predicate, AtomKind]
