"""The predicate language of predicated array data-flow analysis.

Predicates are boolean formulas over two kinds of atoms:

* **linear atoms** — affine comparisons the compiler fully understands
  (``x > 5``, ``d < 2``, ``n mod … `` via divisibility atoms);  these can
  be *embedded* into array-region inequality systems and *extracted* from
  region operations;
* **opaque atoms** — arbitrary run-time-evaluable scalar expressions the
  compiler treats as uninterpreted booleans.  These are what lets the
  paper derive "run-time evaluable predicates consisting of arbitrary
  program statements" (Section 2), beyond what Gu/Li/Lee-style guarded
  analysis can represent.

The formula layer keeps negation normal form (negations only on atoms),
folds constants, and provides sound (possibly incomplete) implication and
unsatisfiability tests backed by the linear substrate.
"""

from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    FALSE,
    NotPred,
    OrPred,
    Predicate,
    TRUE,
    p_and,
    p_atom,
    p_not,
    p_or,
)
from repro.predicates import oracle
from repro.predicates.simplify import implies, is_unsat, equivalent, simplify
from repro.predicates.evaluate import evaluate

__all__ = [
    "LinAtom",
    "OpaqueAtom",
    "DivAtom",
    "Predicate",
    "Atom",
    "NotPred",
    "AndPred",
    "OrPred",
    "TRUE",
    "FALSE",
    "p_and",
    "p_or",
    "p_not",
    "p_atom",
    "implies",
    "is_unsat",
    "equivalent",
    "simplify",
    "evaluate",
    "oracle",
]
