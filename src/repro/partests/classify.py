"""Mechanism attribution for predicated-analysis wins.

For every loop the predicated analysis parallelizes but the base
analysis does not, re-run the analysis with each feature ablated; a
feature is *necessary* for the win when its removal loses the loop.
This is measured (not inferred from the pattern that generated the
loop), so it doubles as an end-to-end check that each mechanism is
actually load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.arraydf.options import AnalysisOptions
from repro.lang.astnodes import Program
from repro.partests.driver import analyze_program

WIN_STATUSES = ("parallel", "parallel_private", "runtime")

ABLATIONS: Dict[str, Callable[[AnalysisOptions], AnalysisOptions]] = {
    "embedding": lambda o: o.without(embedding=False),
    "extraction": lambda o: o.without(extraction=False),
    "runtime_tests": lambda o: o.without(runtime_tests=False),
    "interprocedural": lambda o: o.without(interprocedural=False),
}


@dataclass
class LoopClassification:
    """One predicated win and the features it needs."""

    label: str
    status: str  # predicated status
    base_status: str
    necessary: List[str] = field(default_factory=list)

    @property
    def mechanism(self) -> str:
        """Headline mechanism: the first necessary feature, in a fixed
        priority order (run-time tests < others, since a test is the
        delivery vehicle while embedding/extraction produce the
        predicate)."""
        for feature in ("interprocedural", "embedding", "extraction"):
            if feature in self.necessary:
                return feature
        if "runtime_tests" in self.necessary:
            return "runtime_tests"
        return "correlation"  # predicates alone (branch correlation)


def classify_wins(
    program_factory: Callable[[], Program],
    opts: Optional[AnalysisOptions] = None,
) -> List[LoopClassification]:
    """Classify every predicated win in a program by ablation.

    *program_factory* must return a fresh AST per call (analyses do not
    mutate, but fresh parses keep the runs independent).
    """
    from repro.service.cache import default_cache

    cache = default_cache()
    opts = opts or AnalysisOptions.predicated()
    base = analyze_program(program_factory(), AnalysisOptions.base(), cache=cache)
    pred = analyze_program(program_factory(), opts, cache=cache)
    base_status = {l.label: l.status for l in base.loops}
    wins = [
        l
        for l in pred.loops
        if l.status in WIN_STATUSES
        and base_status.get(l.label) not in WIN_STATUSES
        and base_status.get(l.label) != "not_candidate"
    ]
    if not wins:
        return []

    ablated_status: Dict[str, Dict[str, str]] = {}
    for feature, strip in ABLATIONS.items():
        res = analyze_program(program_factory(), strip(opts), cache=cache)
        ablated_status[feature] = {l.label: l.status for l in res.loops}

    out: List[LoopClassification] = []
    for l in wins:
        necessary = [
            feature
            for feature in ABLATIONS
            if ablated_status[feature].get(l.label) not in WIN_STATUSES
        ]
        out.append(
            LoopClassification(
                label=l.label,
                status=l.status,
                base_status=base_status[l.label],
                necessary=necessary,
            )
        )
    return out
