"""Dependence and privatization testing, run-time test derivation.

Consumes the per-loop :class:`~repro.arraydf.analysis.LoopSummary`
values and decides, per candidate loop:

* **parallel** — independent as-is;
* **parallel after privatization** — cross-iteration conflicts vanish
  when listed arrays (and scalars) get per-iteration private copies;
* **run-time test** — parallel under a derived predicate evaluable
  before the loop (the paper's headline mechanism);
* **serial** — no strategy proved safe.
"""

from repro.partests.dependence import (
    ArrayVerdict,
    LoopVerdict,
    test_loop,
)
from repro.partests.driver import (
    ParallelizationDriver,
    ProgramResult,
    analyze_program,
)
from repro.partests.runtime_tests import is_runtime_evaluable, render_predicate

__all__ = [
    "ArrayVerdict",
    "LoopVerdict",
    "test_loop",
    "ParallelizationDriver",
    "ProgramResult",
    "analyze_program",
    "is_runtime_evaluable",
    "render_predicate",
]
