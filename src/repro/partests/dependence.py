"""Cross-iteration dependence and privatization testing.

Given a loop's per-iteration body value ``v(i)``, two symbolic
iterations ``i1 < i2`` are materialized by renaming the index, and the
conflict systems are tested for feasibility:

* **independence**: no overlap between ``W(i1)``/``W(i2)``,
  ``W(i1)``/``R(i2)`` or ``R(i1)``/``W(i2)``;
* **privatization**: overlaps exist but no cross-iteration *flow* into
  an exposed read — ``W(i1) ∩ E(i2) = ∅``.

The predicated twist: each side may carry guarded refinements.  An
over-approximating guarded pair ⟨p, S⟩ means accesses are within ``S``
whenever ``p`` holds, so the loop is conflict-free *under* the
disjunction of all guard combinations whose refined systems are
infeasible::

    parallel_condition = ∨_{k,l} (p_k ∧ p_l ∧ [S_k(i1) ∩ S_l(i2) = ∅])

Affine guard conjuncts mentioning the index are *embedded* into the
conflict system (after renaming to the corresponding iteration copy);
residual guards must be loop-invariant to participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.arraydf.analysis import LoopSummary
from repro.arraydf.embedding import split_linear_conjuncts
from repro.arraydf.options import AnalysisOptions
from repro.arraydf.values import GuardedSummary
from repro.ir.symboltable import SymbolTable
from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import is_feasible
from repro.linalg.system import LinearSystem
from repro.predicates.formula import (
    FALSE,
    Predicate,
    TRUE,
    p_and,
    p_or,
)
from repro.predicates.simplify import simplify
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr


@dataclass
class ArrayVerdict:
    """Per-array outcome of the loop tests."""

    array: str
    independent_under: Predicate
    privatizable_under: Predicate
    copy_in: Optional[SummarySet] = None  # exposed region needing init

    @property
    def parallel_under(self) -> Predicate:
        return simplify(p_or(self.independent_under, self.privatizable_under))

    @property
    def needs_privatization(self) -> bool:
        return not self.independent_under.is_true() and not (
            self.privatizable_under.is_false()
        )


@dataclass
class LoopVerdict:
    """Outcome of the dependence/privatization tests for one loop."""

    summary: LoopSummary
    array_verdicts: Dict[str, ArrayVerdict] = field(default_factory=dict)
    scalar_obstacles: FrozenSet[str] = frozenset()
    reduction_scalars: FrozenSet[str] = frozenset()
    private_scalars: FrozenSet[str] = frozenset()

    @property
    def parallel_condition(self) -> Predicate:
        """Predicate under which the loop is safely parallel."""
        if self.scalar_obstacles:
            return FALSE
        cond: Predicate = TRUE
        for v in self.array_verdicts.values():
            cond = p_and(cond, v.parallel_under)
        return simplify(cond)

    @property
    def private_arrays(self) -> List[str]:
        return sorted(
            a
            for a, v in self.array_verdicts.items()
            if not v.independent_under.is_true()
            and not v.privatizable_under.is_false()
        )


# ----------------------------------------------------------------------
# guard handling
# ----------------------------------------------------------------------


GuardedCases = Tuple[Predicate, List[Tuple[SummarySet, LinearSystem]]]


def _prepare_guarded(
    alts: Sequence[GuardedSummary],
    default_summary: SummarySet,
    index: str,
    iter_name: str,
    volatile: frozenset,
    embedding: bool,
) -> List[GuardedCases]:
    """Rename one side's guarded summaries to an iteration copy.

    Each usable alternative becomes ``(loop-entry guard, cases)`` where
    the cases — ``(summary, embedded system)`` pairs produced by
    :func:`split_guard_cases` — jointly bound *every* iteration (the
    refined summary where the index-dependent guard part held, the
    default elsewhere).  Alternatives with volatile non-linear guards
    are dropped; the TRUE default always survives.
    """
    from repro.arraydf.embedding import split_guard_cases

    out: List[GuardedCases] = []
    rename = {index: iter_name}
    for g in alts:
        split = split_guard_cases(
            g.pred, g.summary, default_summary, volatile, embedding
        )
        if split is None:
            continue
        pred, cases = split
        if pred.variables() & volatile:
            continue
        out.append(
            (
                pred,
                [
                    (s.rename_vars(rename), sys.rename(rename))
                    for s, sys in cases
                ],
            )
        )
    return out


def _conflict_systems(
    s1: SummarySet,
    s2: SummarySet,
    array: str,
    base: LinearSystem,
    guards: LinearSystem,
) -> List[LinearSystem]:
    """The feasible conflict systems between s1(i1) and s2(i2).

    Region dimension variables are shared between the two sides — both
    describe elements of the same array — while iteration-dependent
    parts were renamed apart by the caller.  An empty list means the two
    sides are provably disjoint.
    """
    out = []
    for a in s1.regions(array):
        for b in s2.regions(array):
            system = a.system & b.system & base & guards
            if is_feasible(system):
                out.append(system)
    return out


def _extract_breaking(
    conflicts: List[LinearSystem],
    iter_vars: Tuple[str, str],
    trivial_filter,
) -> Predicate:
    """Predicate extraction from dependence testing.

    Each conflict system is non-empty only if its projection onto the
    symbolic parameters (dimension variables and both iteration copies
    eliminated) is satisfiable; the conjunction of the negated
    projections is a sufficient condition for independence — the
    paper's boundary-condition run-time tests.
    """
    from repro.arraydf.extraction import MAX_ATOMS, MAX_PIECES
    from repro.linalg.fourier_motzkin import eliminate_all
    from repro.predicates.atoms import LinAtom
    from repro.predicates.formula import p_atom, p_not
    from repro.symbolic.terms import is_dim_var

    if len(conflicts) > MAX_PIECES:
        return FALSE
    negs: List[Predicate] = []
    for system in conflicts:
        to_drop = [
            v
            for v in system.variables()
            if is_dim_var(v) or v in iter_vars
        ]
        params = eliminate_all(system, to_drop)
        if params.is_universe() or len(params) > MAX_ATOMS:
            return FALSE
        conj = p_and(*(p_atom(LinAtom(c)) for c in params))
        negs.append(p_not(conj))
    breaking = p_and(*negs)
    if breaking.is_false() or breaking.is_true():
        return FALSE
    if trivial_filter is not None and trivial_filter(breaking):
        return FALSE
    return breaking


def _no_conflict_condition(
    side1: List[GuardedCases],
    side2: List[GuardedCases],
    array: str,
    base: LinearSystem,
    iter_vars: Tuple[str, str],
    opts: AnalysisOptions,
    trivial_filter=None,
) -> Predicate:
    """∨ over guard combinations proving the two sides disjoint.

    A combination is conflict-free only if *every* cross pair of its
    iteration-covering cases is; when conflicts remain, predicate
    extraction contributes the combination guarded by the breaking
    condition of all its conflict systems.
    """
    cond: Predicate = FALSE
    for p1, cases1 in side1:
        for p2, cases2 in side2:
            guard_pred = p_and(p1, p2)
            if guard_pred.is_false():
                continue
            conflicts: List[LinearSystem] = []
            for s1, g1 in cases1:
                for s2, g2 in cases2:
                    conflicts.extend(
                        _conflict_systems(s1, s2, array, base, g1 & g2)
                    )
            if not conflicts:
                cond = p_or(cond, guard_pred)
            elif opts.predicates and opts.extraction:
                breaking = _extract_breaking(
                    conflicts, iter_vars, trivial_filter
                )
                if not breaking.is_false():
                    cond = p_or(cond, p_and(guard_pred, breaking))
            if cond.is_true():
                return TRUE
    return cond


# ----------------------------------------------------------------------
# the loop test
# ----------------------------------------------------------------------


def test_loop(
    summary: LoopSummary,
    symtab: SymbolTable,
    opts: AnalysisOptions,
) -> LoopVerdict:
    """Run the dependence and privatization tests on one loop."""
    info = summary.info
    loop = summary.loop
    body = summary.body_value
    verdict = LoopVerdict(summary=summary)

    # ---- scalar dependences -------------------------------------------
    inner_indices = {
        s.var
        for s in _inner_loops(loop)
    }
    obstacles = set()
    reductions = set()
    privates = set()
    for name in sorted(body.scalar_writes | info.scalar_writes):
        if name == loop.var or name in inner_indices:
            continue
        if not symtab.is_scalar(name):
            continue
        if name in info.reductions:
            reductions.add(name)
        elif name in info.scalar_exposed_reads:
            obstacles.add(name)
        else:
            privates.add(name)
    verdict.scalar_obstacles = frozenset(obstacles)
    verdict.reduction_scalars = frozenset(reductions)
    verdict.private_scalars = frozenset(privates)

    # ---- array dependences ---------------------------------------------
    index = loop.var
    i1, i2 = f"{index}__it1", f"{index}__it2"
    space = info.iteration_space()
    base = (
        space.rename({index: i1})
        & space.rename({index: i2})
        & LinearSystem(
            [Constraint.lt(AffineExpr.var(i1), AffineExpr.var(i2))]
        )
    )

    volatile = (
        frozenset([index])
        | body.scalar_writes
        | frozenset(body.w.arrays())
    )

    # The loop executes only where its reaching path predicate holds
    # (the forward conjunction of tests along control-flow paths); the
    # loop-invariant affine conjuncts strengthen every conflict system.
    if opts.predicates and not summary.path_pred.is_true():
        split = split_linear_conjuncts(summary.path_pred)
        if split is not None:
            path_sys, _residue = split
            base = base & LinearSystem(
                c
                for c in path_sys
                if not (set(c.variables()) & volatile)
            )

    use_preds = opts.predicates
    w_alts = body.w_alts if use_preds else body.w_alts[-1:]
    e_alts = body.e if use_preds else body.e[-1:]
    e_default = body.exposed_default()

    w1 = _prepare_guarded(w_alts, body.w, index, i1, volatile, opts.embedding)
    w2 = _prepare_guarded(w_alts, body.w, index, i2, volatile, opts.embedding)
    # flow for privatization runs from the execution-earlier iteration
    # into the execution-later one; with a negative step the larger
    # index (i2) executes first, so the roles swap
    if info.step is not None and info.step < 0:
        flow_w, flow_e = w2, _prepare_guarded(
            e_alts, e_default, index, i1, volatile, opts.embedding
        )
    else:
        flow_w, flow_e = w1, _prepare_guarded(
            e_alts, e_default, index, i2, volatile, opts.embedding
        )
    r1 = [
        (
            TRUE,
            [(body.r.rename_vars({index: i1}), LinearSystem.universe())],
        )
    ]
    r2 = [
        (
            TRUE,
            [(body.r.rename_vars({index: i2}), LinearSystem.universe())],
        )
    ]

    # Profitability: reject breaking conditions that only hold when the
    # loop is trivially short, or when they empty all of the loop's array
    # accesses (a test that passes only for do-nothing executions is
    # useless as a run-time parallelization guard).
    work_systems = [
        r.system & space
        for r in list(body.w.all_regions()) + list(body.r.all_regions())
    ]

    def trivial_filter(breaking: Predicate) -> bool:
        from repro.predicates.atoms import LinAtom
        from repro.predicates.formula import p_atom
        from repro.predicates.oracle import cached_dnf, conjunct_unsat
        from repro.predicates.simplify import is_unsat, linear_system_of

        if info.lo_affine is not None and info.hi_affine is not None:
            # iteration-count span respects execution direction
            if info.step is not None and info.step < 0:
                span = info.lo_affine - info.hi_affine
            else:
                span = info.hi_affine - info.lo_affine
            nontrivial = p_atom(LinAtom.ge(span, AffineExpr.const(2)))
            if is_unsat(p_and(breaking, nontrivial)):
                return True
        if not work_systems:
            return False
        dnf = cached_dnf(breaking)
        if dnf is None:
            return False
        for conj in dnf:
            if conjunct_unsat(conj):
                continue
            cond_sys = linear_system_of(conj)
            for ws in work_systems:
                if is_feasible(ws & cond_sys):
                    return False  # some disjunct permits real work
        return True

    def drop_workless(pred: Predicate) -> Predicate:
        """Remove disjuncts that only hold when the loop does no work.

        A run-time test passing exclusively on empty executions is not a
        parallelization win; the paper's derived tests guard loops that
        actually run.  Disjuncts whose linear part admits at least one
        array access (or that contain opaque atoms we cannot evaluate)
        are kept.
        """
        from repro.predicates.oracle import (
            cached_dnf as _dnf,
            conjunct_unsat as _ci,
        )
        from repro.predicates.simplify import linear_system_of as _ls
        from repro.predicates.atoms import LinAtom
        from repro.predicates.formula import Atom

        if pred.is_true() or pred.is_false() or not work_systems:
            return pred
        dnf = _dnf(pred)
        if dnf is None:
            return pred
        kept = []
        for conj in dnf:
            if _ci(conj):
                continue
            has_opaque = any(
                not (isinstance(l, Atom) and isinstance(l.atom, LinAtom))
                for l in conj
            )
            cond_sys = _ls(conj)
            allows_work = any(
                is_feasible(ws & cond_sys) for ws in work_systems
            )
            if allows_work or has_opaque:
                kept.append(p_and(*conj))
        return p_or(*kept)

    iters = (i1, i2)
    for array in sorted(body.w.arrays()):
        indep = p_and(
            _no_conflict_condition(
                w1, w2, array, base, iters, opts, trivial_filter
            ),
            _no_conflict_condition(
                w1, r2, array, base, iters, opts, trivial_filter
            ),
            _no_conflict_condition(
                r1, w2, array, base, iters, opts, trivial_filter
            ),
        )
        indep = simplify(drop_workless(simplify(indep)))
        if indep.is_true():
            verdict.array_verdicts[array] = ArrayVerdict(
                array, TRUE, FALSE
            )
            continue
        no_flow = simplify(
            drop_workless(
                simplify(
                    _no_conflict_condition(
                        flow_w, flow_e, array, base, iters, opts, trivial_filter
                    )
                )
            )
        )
        det = _deterministic_writes_condition(body, array, volatile, opts)
        priv = simplify(p_and(no_flow, det))
        copy_in = None
        if not priv.is_false():
            copy_in = summary.loop_value.exposed_default().restricted_to(array)
        verdict.array_verdicts[array] = ArrayVerdict(
            array, indep, priv, copy_in
        )

    return verdict


def _deterministic_writes_condition(
    body, array: str, volatile: frozenset, opts: AnalysisOptions
) -> Predicate:
    """Condition under which one iteration's writes to *array* are a
    deterministic region (may-write ⊆ must-write).

    Privatization finalizes by copying the last iteration's private
    region back; that is only correct when every iteration overwrites
    the same (iteration-indexed) region it may touch — e.g. a scatter
    ``a(idx(i)) = …`` has an unbounded may-write, no must-write, and is
    *not* privatizable even though it carries no flow.
    """
    cond: Predicate = FALSE
    for gw in body.w_alts:
        if gw.pred.variables() & volatile:
            continue
        may = gw.summary.restricted_to(array)
        for gm in body.m:
            if gm.pred.variables() & volatile:
                continue
            pred = p_and(gw.pred, gm.pred)
            if pred.is_false():
                continue
            if gm.summary.restricted_to(array).covers(may):
                cond = p_or(cond, pred)
                if cond.is_true():
                    return TRUE
        if not opts.predicates:
            break  # base analysis: defaults only
    return cond


def _inner_loops(loop):
    from repro.lang.astnodes import DoLoop, walk_stmts

    return [s for s in walk_stmts(loop.body) if isinstance(s, DoLoop)]
