"""The parallelization driver: program in, per-loop decisions out.

This is the top of the compiler stack — the piece the paper's tables
summarize.  For every loop it reports one of:

``parallel``
    independent at compile time, no transformations needed;
``parallel_private``
    parallel after array/scalar privatization (and reduction handling);
``runtime``
    parallel under a derived predicate, guarded by a low-cost run-time
    test (two-version loop);
``serial``
    no strategy proved safe;
``not_candidate``
    ineligible (I/O, early return, non-invariant bounds, non-constant
    step).

Loops nested inside a loop already parallelized at an outer level are
flagged ``enclosed`` (SUIF exploits a single level of parallelism).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import perf
from repro.arraydf.analysis import ArrayDataflow, LoopSummary
from repro.arraydf.options import AnalysisOptions
from repro.lang.astnodes import DoLoop, Program, walk_stmts
from repro.partests.dependence import LoopVerdict, test_loop
from repro.partests.runtime_tests import (
    is_runtime_evaluable,
    render_predicate,
    test_cost,
)
from repro.predicates.formula import Predicate, TRUE


@dataclass
class LoopResult:
    """Final decision for one loop."""

    label: str
    unit: str
    loop: DoLoop
    status: str  # parallel | parallel_private | runtime | serial | not_candidate
    condition: Optional[Predicate] = None
    runtime_test: Optional[str] = None  # rendered source text
    runtime_cost: int = 0
    private_arrays: List[str] = field(default_factory=list)
    private_scalars: List[str] = field(default_factory=list)
    reduction_scalars: List[str] = field(default_factory=list)
    reason: str = ""
    depth: int = 0
    enclosed: bool = False  # nested inside a parallelized loop
    verdict: Optional[LoopVerdict] = None

    @property
    def is_parallelized(self) -> bool:
        return self.status in ("parallel", "parallel_private", "runtime")

    @property
    def is_outer_parallel(self) -> bool:
        return self.is_parallelized and not self.enclosed


@dataclass
class ProgramResult:
    """All loop decisions for one program, plus analysis timing."""

    program: Program
    options: AnalysisOptions
    loops: List[LoopResult] = field(default_factory=list)
    analysis_seconds: float = 0.0

    # -- counters used by the experiment tables ----------------------------
    def count(self, *statuses: str) -> int:
        return sum(1 for l in self.loops if l.status in statuses)

    @property
    def total_loops(self) -> int:
        return len(self.loops)

    @property
    def candidate_loops(self) -> int:
        return sum(1 for l in self.loops if l.status != "not_candidate")

    @property
    def parallelized(self) -> int:
        return sum(1 for l in self.loops if l.is_parallelized)

    @property
    def outer_parallelized(self) -> int:
        return sum(1 for l in self.loops if l.is_outer_parallel)

    @property
    def runtime_tested(self) -> int:
        return self.count("runtime")

    def by_label(self) -> Dict[str, LoopResult]:
        return {l.label: l for l in self.loops}

    def parallel_labels(self) -> List[str]:
        return [l.label for l in self.loops if l.is_parallelized]


class ParallelizationDriver:
    """Runs the full pipeline for one program."""

    def __init__(
        self, program: Program, opts: Optional[AnalysisOptions] = None
    ) -> None:
        self.program = program
        self.opts = opts or AnalysisOptions.predicated()

    def run(self) -> ProgramResult:
        start = time.perf_counter()
        with perf.phase("driver.arraydf"):
            dataflow = ArrayDataflow(self.program, self.opts).run()
        result = ProgramResult(self.program, self.opts)

        with perf.phase("driver.decide"):
            for unit_name, unit in self.program.units.items():
                summary = dataflow.units[unit_name]
                symtab = dataflow.symtabs[unit_name]
                for loop, loop_summary in summary.loops.items():
                    result.loops.append(
                        self._decide(loop_summary, symtab)
                    )
            self._mark_enclosed(result)
        result.analysis_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    def _decide(self, summary: LoopSummary, symtab) -> LoopResult:
        loop = summary.loop
        info = summary.info
        base = LoopResult(
            label=loop.label,
            unit=summary.unit_name,
            loop=loop,
            status="serial",
            depth=summary.info.region.loop_depth(),
        )
        if not info.is_candidate:
            base.status = "not_candidate"
            base.reason = (
                "io" if info.has_io
                else "return" if info.has_return
                else "bounds" if not info.bounds_invariant
                else "step"
            )
            return base

        verdict = test_loop(summary, symtab, self.opts)
        base.verdict = verdict
        base.private_scalars = sorted(verdict.private_scalars)
        base.reduction_scalars = sorted(verdict.reduction_scalars)

        if verdict.scalar_obstacles:
            base.status = "serial"
            base.reason = "scalar dependence: " + ", ".join(
                sorted(verdict.scalar_obstacles)
            )
            return base

        cond = verdict.parallel_condition
        # the loop runs only where its path predicate holds: a residual
        # condition implied by the path needs no run-time test
        if (
            self.opts.predicates
            and not cond.is_true()
            and not cond.is_false()
            and not summary.path_pred.is_true()
        ):
            from repro.predicates.simplify import implies

            if implies(summary.path_pred, cond):
                cond = TRUE
        base.condition = cond
        base.private_arrays = verdict.private_arrays

        if cond.is_true():
            base.status = (
                "parallel_private"
                if base.private_arrays or base.reduction_scalars
                else "parallel"
            )
            return base
        if cond.is_false():
            base.status = "serial"
            base.reason = "array dependence"
            return base

        # residual predicate: candidate run-time test
        clobbered = (
            frozenset([loop.var])
            | summary.body_value.scalar_writes
            | frozenset(summary.body_value.w.arrays())
        )
        if self.opts.runtime_tests and is_runtime_evaluable(cond, clobbered):
            base.status = "runtime"
            base.runtime_test = render_predicate(cond)
            base.runtime_cost = test_cost(cond)
            if base.private_arrays or base.reduction_scalars:
                # the guarded parallel version also privatizes
                pass
            return base
        base.status = "serial"
        base.reason = "unprovable predicate: " + str(cond)
        return base

    def _mark_enclosed(self, result: ProgramResult) -> None:
        """Flag every loop nested inside a parallelized loop."""
        enclosed_ids = set()
        for l in result.loops:
            if l.is_parallelized:
                for s in walk_stmts(l.loop.body):
                    if isinstance(s, DoLoop):
                        enclosed_ids.add(id(s))
        for l in result.loops:
            if id(l.loop) in enclosed_ids:
                l.enclosed = True


def analyze_program(
    program: Program, opts: Optional[AnalysisOptions] = None
) -> ProgramResult:
    """One-call convenience wrapper."""
    return ParallelizationDriver(program, opts).run()
