"""The parallelization driver: program in, per-loop decisions out.

This is the top of the compiler stack — the piece the paper's tables
summarize.  For every loop it reports one of:

``parallel``
    independent at compile time, no transformations needed;
``parallel_private``
    parallel after array/scalar privatization (and reduction handling);
``runtime``
    parallel under a derived predicate, guarded by a low-cost run-time
    test (two-version loop);
``serial``
    no strategy proved safe;
``not_candidate``
    ineligible (I/O, early return, non-invariant bounds, non-constant
    step).

Loops nested inside a loop already parallelized at an outer level are
flagged ``enclosed`` (SUIF exploits a single level of parallelism).

The driver carries the serving-substrate hooks through the pipeline:

* a :class:`~repro.service.cache.SummaryCache` is handed to the
  data-flow walker and additionally caches per-unit *decisions* (the
  dependence/privatization outcomes) under the same content keys;
* a tripped :class:`~repro.service.budgets.Budget` demotes the loop
  being decided to ``serial`` ("not proven parallel") instead of
  aborting the request — sound, counted in ``budget.degraded_loop``,
  and never written back to the cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.arraydf.analysis import ArrayDataflow, LoopSummary
from repro.arraydf.options import AnalysisOptions
from repro.lang.astnodes import DoLoop, Program, walk_stmts
from repro.partests.dependence import LoopVerdict, test_loop
from repro.partests.runtime_tests import (
    is_runtime_evaluable,
    render_predicate,
    test_cost,
)
from repro.predicates.formula import Predicate, TRUE
from repro.service.budgets import BudgetExceeded
from repro.service.cache import SummaryCache, program_key


@dataclass
class LoopResult:
    """Final decision for one loop."""

    label: str
    unit: str
    loop: DoLoop
    status: str  # parallel | parallel_private | runtime | serial | not_candidate
    condition: Optional[Predicate] = None
    runtime_test: Optional[str] = None  # rendered source text
    runtime_cost: int = 0
    private_arrays: List[str] = field(default_factory=list)
    private_scalars: List[str] = field(default_factory=list)
    reduction_scalars: List[str] = field(default_factory=list)
    reason: str = ""
    depth: int = 0
    enclosed: bool = False  # nested inside a parallelized loop
    verdict: Optional[LoopVerdict] = None

    @property
    def is_parallelized(self) -> bool:
        return self.status in ("parallel", "parallel_private", "runtime")

    @property
    def is_outer_parallel(self) -> bool:
        return self.is_parallelized and not self.enclosed


@dataclass
class ProgramResult:
    """All loop decisions for one program, plus analysis timing."""

    program: Program
    options: AnalysisOptions
    loops: List[LoopResult] = field(default_factory=list)
    analysis_seconds: float = 0.0

    # -- counters used by the experiment tables ----------------------------
    def count(self, *statuses: str) -> int:
        return sum(1 for l in self.loops if l.status in statuses)

    @property
    def total_loops(self) -> int:
        return len(self.loops)

    @property
    def candidate_loops(self) -> int:
        return sum(1 for l in self.loops if l.status != "not_candidate")

    @property
    def parallelized(self) -> int:
        return sum(1 for l in self.loops if l.is_parallelized)

    @property
    def outer_parallelized(self) -> int:
        return sum(1 for l in self.loops if l.is_outer_parallel)

    @property
    def runtime_tested(self) -> int:
        return self.count("runtime")

    def by_label(self) -> Dict[str, LoopResult]:
        return {l.label: l for l in self.loops}

    def parallel_labels(self) -> List[str]:
        return [l.label for l in self.loops if l.is_parallelized]


class ParallelizationDriver:
    """Runs the full compile flow for one program.

    :meth:`run` is a thin shim over the pass pipeline
    (:func:`repro.pipeline.run_pipeline`): scalar propagation, the
    array data-flow walk, per-loop decisions and the enclosed marking
    all execute as scheduled passes, with *jobs* workers running
    independent callgraph subtrees concurrently — on threads by
    default, or on real cores under ``executor="process"`` /
    ``REPRO_EXECUTOR=process`` (results are byte-identical for any job
    count and either executor).  :meth:`run_legacy` keeps the original
    monolithic path — the pinned reference the integration tests
    compare the pipeline against, also selectable process-wide via
    ``REPRO_PIPELINE=0``; it is always serial and ignores *executor*.
    """

    def __init__(
        self,
        program: Program,
        opts: Optional[AnalysisOptions] = None,
        cache: Optional[SummaryCache] = None,
        jobs: Optional[int] = 1,
        executor: Optional[str] = None,
    ) -> None:
        self.program = program
        self.opts = opts or AnalysisOptions.predicated()
        self.cache = cache
        self.jobs = jobs
        self.executor = executor
        self._degraded = False

    def run(self) -> ProgramResult:
        from repro.pipeline import pipeline_enabled, run_pipeline

        if not pipeline_enabled():
            return self.run_legacy()
        ctx = run_pipeline(
            self.program,
            self.opts,
            cache=self.cache,
            jobs=self.jobs,
            executor=self.executor,
        )
        self._degraded = ctx.degraded or bool(
            ctx.has("engine") and ctx.engine.tainted_units
        )
        return ctx.get("result")

    @property
    def degraded(self) -> bool:
        """Did the last :meth:`run` degrade under a budget anywhere?

        Covers both granularities — budget-demoted loop decisions and
        budget-demoted (tainted) unit summaries — including degradation
        that happened inside process-executor workers, whose taint flags
        travel back in the merged payloads.  The service layer reports
        this per job; it is deterministic for a given cache state, unlike
        a delta over the process-global ``budget.*`` counters, which
        concurrent jobs would cross-contaminate.
        """
        return self._degraded

    def run_legacy(self) -> ProgramResult:
        start = time.perf_counter()
        # program-level fast path: when nothing changed, one load covers
        # the whole pipeline (no scalar propagation, no data-flow walk);
        # an edit anywhere falls through to the per-unit incremental path
        pkey = None
        if self.cache is not None:
            pkey = program_key(self.program, self.opts)
            payload = self.cache.load(pkey, "program")
            if payload is not None:
                with perf.phase("driver.rebind"):
                    result = self._rebind_program(payload)
                if result is not None:
                    result.analysis_seconds = time.perf_counter() - start
                    return result

        with perf.phase("driver.arraydf"):
            dataflow = ArrayDataflow(
                self.program, self.opts, cache=self.cache
            ).run()
        if dataflow.tainted_units:
            self._degraded = True
        result = ProgramResult(self.program, self.opts)

        unit_rows: List = []
        with perf.phase("driver.decide"):
            for unit_name, unit in self.program.units.items():
                summary = dataflow.units[unit_name]
                symtab = dataflow.symtabs[unit_name]
                decided = self._decide_unit(
                    dataflow, unit_name, summary, symtab
                )
                unit_rows.append((unit_name, decided))
                result.loops.extend(decided)
            self._mark_enclosed(result)
        if (
            self.cache is not None
            and not self._degraded
            and not dataflow.tainted_units
        ):
            self.cache.store(
                pkey,
                "program",
                [(name, _decision_rows(rows)) for name, rows in unit_rows],
            )
        result.analysis_seconds = time.perf_counter() - start
        return result

    def _rebind_program(self, payload) -> Optional[ProgramResult]:
        """Reattach a cached whole-program payload to the current parse.

        Loop decisions are matched by label against the *unpropagated*
        program (labels are stable across scalar propagation); the
        ``enclosed`` flags are derived state and recomputed.  Returns
        ``None`` — a miss — on any shape mismatch.
        """
        result = ProgramResult(self.program, self.opts)
        try:
            if len(payload) != len(self.program.units):
                return None
            for unit_name, rows in payload:
                unit = self.program.units.get(unit_name)
                if unit is None:
                    return None
                loops_by_label = {
                    s.label: s
                    for s in walk_stmts(unit.body)
                    if isinstance(s, DoLoop)
                }
                rebound = _rebind_rows(rows, loops_by_label, {}, unit_name)
                if rebound is None:
                    return None
                result.loops.extend(rebound)
        except (TypeError, ValueError):
            return None
        self._mark_enclosed(result)
        return result

    def _decide_unit(
        self, dataflow: ArrayDataflow, unit_name: str, summary, symtab
    ) -> List[LoopResult]:
        out, degraded = decide_unit(
            dataflow, unit_name, summary, symtab, self.opts, self.cache
        )
        if degraded:
            self._degraded = True
        return out

    # ------------------------------------------------------------------
    def _decide(self, summary: LoopSummary, symtab) -> LoopResult:
        return decide_loop(summary, symtab, self.opts)

    def _mark_enclosed(self, result: ProgramResult) -> None:
        mark_enclosed(result)


def decide_unit(
    dataflow: ArrayDataflow,
    unit_name: str,
    summary,
    symtab,
    opts: AnalysisOptions,
    cache: Optional[SummaryCache] = None,
    screen=None,
) -> Tuple[List[LoopResult], bool]:
    """Decide every loop of one unit, via the decisions cache.

    Decisions are a pure function of the unit's summary key (they read
    only the loop summaries, the symbol table and the options), so they
    share it.  Budget-degraded loops — and every loop of a unit whose
    summary was degraded — stay out of the cache.  Returns the loop
    results plus whether any loop was budget-degraded.

    With a :class:`~repro.arraydf.screen.UnitScreen` attached, loops the
    tier-0 screen proved independent take their pre-made ``parallel``
    row after a cheap cross-check against the real summary (write set
    and scalar classes must match the prediction — ``screen.agree``),
    skipping the full dependence test; any mismatch falls back to
    :func:`decide_loop` (``screen.disagree``), keeping results identical
    by construction.
    """
    key = dataflow.unit_keys.get(unit_name)
    cacheable = (
        cache is not None
        and key is not None
        and unit_name not in dataflow.tainted_units
    )
    if cacheable:
        rows = cache.load(key, "decisions")
        if rows is not None:
            rebound = _rebind_decisions(rows, summary, unit_name)
            if rebound is not None:
                return rebound, False
    screen_rows = screen.rows if screen is not None else {}
    out: List[LoopResult] = []
    degraded = False
    for loop, loop_summary in summary.loops.items():
        row = screen_rows.get(loop.label)
        if row is not None and row["status"] == "parallel":
            screened = _screened_result(row, loop_summary, symtab, unit_name)
            if screened is not None:
                perf.bump("screen.agree")
                out.append(screened)
                continue
            perf.bump("screen.disagree")
        if loop_summary.elided:
            # the walk skipped this loop's projection on the screen's
            # word; the full test needs the real projected value
            from repro.arraydf.analysis import reproject_loop

            loop_summary.loop_value = reproject_loop(loop_summary, opts)
            loop_summary.elided = False
        try:
            with perf.analysis_context(loop_summary.label):
                out.append(decide_loop(loop_summary, symtab, opts))
        except BudgetExceeded:
            perf.bump("budget.degraded_loop")
            degraded = True
            out.append(
                LoopResult(
                    label=loop.label,
                    unit=unit_name,
                    loop=loop,
                    status="serial",
                    reason="budget exhausted: not proven parallel",
                    depth=loop_summary.info.region.loop_depth(),
                )
            )
    if cacheable and not degraded:
        cache.store(key, "decisions", _decision_rows(out))
    return out, degraded


def decide_loop(summary: LoopSummary, symtab, opts: AnalysisOptions) -> LoopResult:
    """The parallelization decision for one loop (pure)."""
    loop = summary.loop
    info = summary.info
    base = LoopResult(
        label=loop.label,
        unit=summary.unit_name,
        loop=loop,
        status="serial",
        depth=summary.info.region.loop_depth(),
    )
    if not info.is_candidate:
        base.status = "not_candidate"
        base.reason = (
            "io" if info.has_io
            else "return" if info.has_return
            else "bounds" if not info.bounds_invariant
            else "step"
        )
        return base

    verdict = test_loop(summary, symtab, opts)
    base.verdict = verdict
    base.private_scalars = sorted(verdict.private_scalars)
    base.reduction_scalars = sorted(verdict.reduction_scalars)

    if verdict.scalar_obstacles:
        base.status = "serial"
        base.reason = "scalar dependence: " + ", ".join(
            sorted(verdict.scalar_obstacles)
        )
        return base

    cond = verdict.parallel_condition
    # the loop runs only where its path predicate holds: a residual
    # condition implied by the path needs no run-time test
    if (
        opts.predicates
        and not cond.is_true()
        and not cond.is_false()
        and not summary.path_pred.is_true()
    ):
        from repro.predicates.simplify import implies

        if implies(summary.path_pred, cond):
            cond = TRUE
    base.condition = cond
    base.private_arrays = verdict.private_arrays

    if cond.is_true():
        base.status = (
            "parallel_private"
            if base.private_arrays or base.reduction_scalars
            else "parallel"
        )
        return base
    if cond.is_false():
        base.status = "serial"
        base.reason = "array dependence"
        return base

    # residual predicate: candidate run-time test
    clobbered = (
        frozenset([loop.var])
        | summary.body_value.scalar_writes
        | frozenset(summary.body_value.w.arrays())
    )
    if opts.runtime_tests and is_runtime_evaluable(cond, clobbered):
        base.status = "runtime"
        base.runtime_test = render_predicate(cond)
        base.runtime_cost = test_cost(cond)
        if base.private_arrays or base.reduction_scalars:
            # the guarded parallel version also privatizes
            pass
        return base
    base.status = "serial"
    base.reason = "unprovable predicate: " + str(cond)
    return base


def _screened_result(
    row, loop_summary: LoopSummary, symtab, unit_name: str
) -> Optional[LoopResult]:
    """Bind a screen-made ``parallel`` row to the loop's real summary.

    The cross-check re-derives from the *actual* body value everything
    the screen predicted from syntax — the written-array set and the
    scalar classification — and refuses the row (``None``) on any
    difference, so a screened decision can never diverge from what
    :func:`decide_loop` would compute.
    """
    from repro.partests.dependence import _inner_loops

    info = loop_summary.info
    body = loop_summary.body_value
    if not info.is_candidate:
        return None
    verdicts, _obstacles, _reductions, privates = row["verdict"]
    if sorted(body.w.arrays()) != sorted(verdicts):
        return None
    inner_indices = {s.var for s in _inner_loops(loop_summary.loop)}
    obstacles, reductions, private_scalars = set(), set(), set()
    for name in sorted(body.scalar_writes | info.scalar_writes):
        if name == loop_summary.loop.var or name in inner_indices:
            continue
        if not symtab.is_scalar(name):
            continue
        if name in info.reductions:
            reductions.add(name)
        elif name in info.scalar_exposed_reads:
            obstacles.add(name)
        else:
            private_scalars.add(name)
    if obstacles or reductions or private_scalars != set(privates):
        return None
    return LoopResult(
        label=row["label"],
        unit=unit_name,
        loop=loop_summary.loop,
        status=row["status"],
        condition=row["condition"],
        runtime_test=row["runtime_test"],
        runtime_cost=row["runtime_cost"],
        private_arrays=list(row["private_arrays"]),
        private_scalars=list(row["private_scalars"]),
        reduction_scalars=list(row["reduction_scalars"]),
        reason=row["reason"],
        depth=row["depth"],
        verdict=LoopVerdict(
            summary=loop_summary,
            array_verdicts=dict(verdicts),
            scalar_obstacles=frozenset(),
            reduction_scalars=frozenset(),
            private_scalars=frozenset(privates),
        ),
    )


def mark_enclosed(result: ProgramResult) -> None:
    """Flag every loop nested inside a parallelized loop."""
    enclosed_ids = set()
    for l in result.loops:
        if l.is_parallelized:
            for s in walk_stmts(l.loop.body):
                if isinstance(s, DoLoop):
                    enclosed_ids.add(id(s))
    for l in result.loops:
        if id(l.loop) in enclosed_ids:
            l.enclosed = True


def _decision_rows(results: List[LoopResult]) -> list:
    """The cacheable projection of one unit's loop decisions.

    AST references (``loop``) and the verdict's loop summary stay out;
    everything else is either plain data or interned symbolic values.
    """
    rows = []
    for r in results:
        verdict_data = None
        if r.verdict is not None:
            v = r.verdict
            verdict_data = (
                v.array_verdicts,
                v.scalar_obstacles,
                v.reduction_scalars,
                v.private_scalars,
            )
        rows.append(
            {
                "label": r.label,
                "status": r.status,
                "condition": r.condition,
                "runtime_test": r.runtime_test,
                "runtime_cost": r.runtime_cost,
                "private_arrays": r.private_arrays,
                "private_scalars": r.private_scalars,
                "reduction_scalars": r.reduction_scalars,
                "reason": r.reason,
                "depth": r.depth,
                "verdict": verdict_data,
            }
        )
    return rows


def _rebind_rows(
    rows, loops_by_label: Dict[str, DoLoop], summaries_by_label, unit_name: str
) -> Optional[List[LoopResult]]:
    """Reattach cached decision rows to the current parse's loops.

    ``summaries_by_label`` supplies the rebound :class:`LoopSummary` per
    label where available (the per-unit path); the program-level path
    passes ``{}`` and verdicts carry no summary.  Returns ``None`` —
    treated as a cache miss — on any shape mismatch.
    """
    if not isinstance(rows, list) or len(rows) != len(loops_by_label):
        return None
    out: List[LoopResult] = []
    try:
        for row in rows:
            loop = loops_by_label.get(row["label"])
            if loop is None:
                return None
            verdict = None
            if row["verdict"] is not None:
                verdicts, obstacles, reductions, privates = row["verdict"]
                verdict = LoopVerdict(
                    summary=summaries_by_label.get(row["label"]),
                    array_verdicts=verdicts,
                    scalar_obstacles=obstacles,
                    reduction_scalars=reductions,
                    private_scalars=privates,
                )
            out.append(
                LoopResult(
                    label=row["label"],
                    unit=unit_name,
                    loop=loop,
                    status=row["status"],
                    condition=row["condition"],
                    runtime_test=row["runtime_test"],
                    runtime_cost=row["runtime_cost"],
                    private_arrays=list(row["private_arrays"]),
                    private_scalars=list(row["private_scalars"]),
                    reduction_scalars=list(row["reduction_scalars"]),
                    reason=row["reason"],
                    depth=row["depth"],
                    verdict=verdict,
                )
            )
    except (KeyError, TypeError, ValueError):
        return None
    return out


def _rebind_decisions(
    rows, summary, unit_name: str
) -> Optional[List[LoopResult]]:
    """Per-unit rebind: match against the unit's (rebound) summaries."""
    summaries_by_label = {ls.label: ls for ls in summary.loops.values()}
    loops_by_label = {l: ls.loop for l, ls in summaries_by_label.items()}
    return _rebind_rows(rows, loops_by_label, summaries_by_label, unit_name)


def analyze_program(
    program: Program,
    opts: Optional[AnalysisOptions] = None,
    cache: Optional[SummaryCache] = None,
    jobs: Optional[int] = 1,
    executor: Optional[str] = None,
) -> ProgramResult:
    """One-call convenience wrapper."""
    return ParallelizationDriver(
        program, opts, cache=cache, jobs=jobs, executor=executor
    ).run()
