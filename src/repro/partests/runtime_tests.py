"""Run-time test legality and rendering.

A residual predicate can guard a two-version loop only if it is
*evaluable before the loop executes*: it may read scalars (and, for
opaque atoms, arrays) whose values the loop does not change, and must
not mention the loop index.  This is the low-cost property the paper
contrasts with inspector/executor schemes — the test is a scalar
expression, not a sweep over array accesses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet

from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import (
    AndPred,
    Atom,
    NotPred,
    OrPred,
    Predicate,
)


def is_runtime_evaluable(pred: Predicate, clobbered: FrozenSet[str]) -> bool:
    """May *pred* be evaluated at loop entry?

    *clobbered* is the set of names whose values the loop may change:
    the loop index, scalars written in the body, arrays written in the
    body.  Generated symbols (``__t…``) are analysis artifacts with no
    run-time value and make a predicate unevaluable.
    """
    for v in pred.variables():
        if v in clobbered:
            return False
        if v.startswith("__"):
            return False
    return True


def _affine_text(expr) -> str:
    """Render an affine expression as mini-Fortran source."""
    parts = []
    for var, coeff in expr.terms():
        c = coeff
        if c.denominator != 1:
            # scale should not occur post-normalization; guard anyway
            term = f"({c.numerator}*{var})/{c.denominator}"
        elif c == 1:
            term = var
        elif c == -1:
            term = f"-{var}"
        else:
            term = f"{int(c)}*{var}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        elif parts:
            parts.append(f"- {term[1:]}")
        else:
            parts.append(term)
    const = expr.constant
    if const != 0 or not parts:
        c = int(const) if const.denominator == 1 else const
        if parts:
            parts.append(f"+ {c}" if const > 0 else f"- {-c}")
        else:
            parts.append(str(c))
    return " ".join(parts)


def render_predicate(pred: Predicate) -> str:
    """Render a predicate as a mini-Fortran boolean expression.

    The output parses back through the front end (used by the
    two-version code generator) as long as the predicate contains no
    generated symbols.
    """
    if pred.is_true():
        return "1 <= 1"
    if pred.is_false():
        return "1 <= 0"
    if isinstance(pred, Atom):
        atom = pred.atom
        if isinstance(atom, LinAtom):
            c = atom.constraint
            lhs = _affine_text(c.expr)
            op = "<=" if c.rel.value == "<=" else "=="
            return f"{lhs} {op} 0"
        if isinstance(atom, DivAtom):
            return f"mod({_affine_text(atom.expr)}, {atom.modulus}) == 0"
        return atom.key
    if isinstance(pred, NotPred):
        return f"not ({render_predicate(pred.operand)})"
    if isinstance(pred, AndPred):
        return " and ".join(f"({render_predicate(p)})" for p in pred.operands)
    if isinstance(pred, OrPred):
        return " or ".join(f"({render_predicate(p)})" for p in pred.operands)
    raise TypeError(f"unknown predicate node {pred!r}")


def test_cost(pred: Predicate) -> int:
    """An abstract cost (atom count) of evaluating the test — the paper's
    'low-cost' claim quantified for the overhead benchmarks."""
    if pred.is_true() or pred.is_false():
        return 0
    if isinstance(pred, Atom):
        return 1
    if isinstance(pred, NotPred):
        return test_cost(pred.operand)
    if isinstance(pred, (AndPred, OrPred)):
        return sum(test_cost(p) for p in pred.operands)
    raise TypeError(f"unknown predicate node {pred!r}")
