"""Normalization helpers shared by the constraint and predicate layers."""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor, gcd
from typing import Tuple

from repro.symbolic.affine import AffineExpr


def integerize(expr: AffineExpr) -> AffineExpr:
    """Scale *expr* by a positive rational so every coefficient *and* the
    constant are integers, with overall content 1.

    Scaling by a positive factor preserves the sign of the expression, so
    this is safe for both ``expr <= 0`` and ``expr == 0`` constraints.
    Already-normalized expressions are returned unchanged (identical
    object), which keeps re-normalization on interned values free.
    """
    if expr.is_integral():
        # all-int fast path: skip the denominator scan entirely
        g = abs(expr.constant)
        for _, c in expr.terms():
            g = gcd(g, abs(c))
        if g > 1:
            return expr / g
        return expr
    dens = [expr.constant.denominator] + [c.denominator for _, c in expr.terms()]
    lcm = 1
    for d in dens:
        lcm = lcm * d // gcd(lcm, d)
    scaled = expr * lcm
    nums = [abs(int(scaled.constant))] + [abs(int(c)) for _, c in scaled.terms()]
    g = 0
    for n in nums:
        g = gcd(g, n)
    if g > 1:
        scaled = scaled / g
    return scaled


def tighten_le(expr: AffineExpr) -> AffineExpr:
    """Integer-tighten an ``expr <= 0`` constraint.

    If the variable coefficients are integers with gcd ``g > 1`` but the
    constant is not divisible by ``g``, the constraint is equivalent (over
    the integers) to one with the constant rounded toward satisfaction:
    ``g*e + c <= 0  <=>  e <= floor(-c/g)  <=>  g*e + g*ceil(c/g)... ``

    We normalize to primitive variable part plus a floored constant.
    """
    e = integerize(expr)
    terms = e.terms()
    if not terms:
        return e
    g = 0
    for _, c in terms:
        g = gcd(g, abs(int(c)))
    if g <= 1:
        return e
    # e = g*e' + c with e' primitive; e <= 0  <=>  e' <= floor(-c/g)
    const = int(e.constant)
    var_part = (e - const) / g
    new_const = -((-const) // g)  # == -floor(Fraction(-const, g))
    return var_part + new_const


def bounds_to_int(lo: Fraction, hi: Fraction) -> Tuple[int, int]:
    """Round a rational interval inward to the contained integer interval.

    Returns ``(ceil(lo), floor(hi))``; the result may be empty
    (``lo > hi``), which callers must check.
    """
    return ceil(lo), floor(hi)
