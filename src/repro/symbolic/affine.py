"""Exact affine expressions ``c0 + c1*x1 + … + cn*xn``.

Coefficients are exact rationals (:class:`fractions.Fraction`); most program
expressions are integral but Fourier–Motzkin elimination introduces rational
coefficients, and exactness is what makes the dependence/privatization tests
sound.

Instances are immutable and hashable; all arithmetic returns new objects.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, Fraction]


_SMALL_FRACTIONS = {i: Fraction(i) for i in range(-32, 33)}


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        # small integers dominate analysis arithmetic; avoid re-boxing
        cached = _SMALL_FRACTIONS.get(value)
        return cached if cached is not None else Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class AffineExpr:
    """An immutable affine expression over named variables.

    The canonical representation stores only non-zero coefficients, sorted
    by variable name, so structural equality coincides with mathematical
    equality.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(
        self,
        coeffs: Optional[Mapping[str, Number]] = None,
        const: Number = 0,
    ) -> None:
        items = []
        if coeffs:
            for var, c in coeffs.items():
                f = _as_fraction(c)
                if f != 0:
                    items.append((var, f))
        items.sort()
        self._coeffs: Tuple[Tuple[str, Fraction], ...] = tuple(items)
        self._const: Fraction = _as_fraction(const)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: Number) -> "AffineExpr":
        """The constant expression *value*."""
        return AffineExpr(None, value)

    @staticmethod
    def var(name: str, coeff: Number = 1) -> "AffineExpr":
        """The expression ``coeff * name``."""
        return AffineExpr({name: coeff}, 0)

    ZERO: "AffineExpr"
    ONE: "AffineExpr"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def constant(self) -> Fraction:
        return self._const

    def coeff(self, var: str) -> Fraction:
        """Coefficient of *var* (zero if absent)."""
        for v, c in self._coeffs:
            if v == var:
                return c
        return Fraction(0)

    def variables(self) -> Tuple[str, ...]:
        """Variables with non-zero coefficient, sorted."""
        return tuple(v for v, _ in self._coeffs)

    def terms(self) -> Tuple[Tuple[str, Fraction], ...]:
        """The (variable, coefficient) pairs, sorted by variable."""
        return self._coeffs

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._const == 0

    def is_integral(self) -> bool:
        """True if all coefficients and the constant are integers."""
        return self._const.denominator == 1 and all(
            c.denominator == 1 for _, c in self._coeffs
        )

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        if isinstance(other, (int, Fraction)):
            return AffineExpr(dict(self._coeffs), self._const + other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        coeffs: Dict[str, Fraction] = dict(self._coeffs)
        for v, c in other._coeffs:
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return AffineExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({v: -c for v, c in self._coeffs}, -self._const)

    def __sub__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        if isinstance(other, (int, Fraction)):
            return AffineExpr(dict(self._coeffs), self._const - other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Number) -> "AffineExpr":
        return (-self) + other

    def __mul__(self, scalar: Number) -> "AffineExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        s = _as_fraction(scalar)
        return AffineExpr(
            {v: c * s for v, c in self._coeffs}, self._const * s
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "AffineExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        s = _as_fraction(scalar)
        if s == 0:
            raise ZeroDivisionError("division of affine expression by zero")
        return self * Fraction(1, 1) * Fraction(s.denominator, s.numerator)

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(
        self, bindings: Mapping[str, Union["AffineExpr", Number]]
    ) -> "AffineExpr":
        """Replace each bound variable with an expression or number.

        Unbound variables are kept.  Substitution is simultaneous, so
        ``{x: y, y: x}`` swaps the two variables.
        """
        result = AffineExpr(None, self._const)
        for v, c in self._coeffs:
            if v in bindings:
                repl = bindings[v]
                if isinstance(repl, (int, Fraction)):
                    repl = AffineExpr.const(repl)
                result = result + repl * c
            else:
                result = result + AffineExpr.var(v, c)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables; unmapped variables are kept."""
        coeffs: Dict[str, Fraction] = {}
        for v, c in self._coeffs:
            nv = mapping.get(v, v)
            coeffs[nv] = coeffs.get(nv, Fraction(0)) + c
        return AffineExpr(coeffs, self._const)

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Evaluate with every variable bound in *env*.

        Raises ``KeyError`` on an unbound variable — callers decide the
        policy for partial environments via :meth:`substitute`.
        """
        total = self._const
        for v, c in self._coeffs:
            total += c * _as_fraction(env[v])
        return total

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------
    def content(self) -> Fraction:
        """The positive gcd-like content of the coefficients.

        For a non-constant expression, returns the positive rational *g*
        such that ``self / g`` has integer coefficients with gcd 1.
        Returns 1 for constant expressions.
        """
        if not self._coeffs:
            return Fraction(1)
        from math import gcd

        nums = [abs(c.numerator) for _, c in self._coeffs]
        dens = [c.denominator for _, c in self._coeffs]
        g_num = 0
        for n in nums:
            g_num = gcd(g_num, n)
        l_den = 1
        for d in dens:
            l_den = l_den * d // gcd(l_den, d)
        return Fraction(g_num, l_den)

    def primitive(self) -> "AffineExpr":
        """Scale so variable coefficients are integers with gcd 1.

        The constant term is scaled along but may remain fractional.
        Constant expressions are returned unchanged.
        """
        g = self.content()
        if g in (0, 1):
            return self
        return self / g

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def sort_key(self):
        """A cheap deterministic ordering key (structural, not textual)."""
        return (
            tuple((v, c.numerator, c.denominator) for v, c in self._coeffs),
            self._const.numerator,
            self._const.denominator,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._coeffs, self._const))
        return self._hash

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts = []
        for v, c in self._coeffs:
            if c == 1:
                term = v
            elif c == -1:
                term = f"-{v}"
            else:
                term = f"{c}*{v}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const != 0 or not parts:
            c = self._const
            if parts:
                parts.append(f"+ {c}" if c > 0 else f"- {-c}")
            else:
                parts.append(str(c))
        return " ".join(parts)


AffineExpr.ZERO = AffineExpr.const(0)
AffineExpr.ONE = AffineExpr.const(1)


def sum_exprs(exprs: Iterable[AffineExpr]) -> AffineExpr:
    """Sum an iterable of affine expressions (zero if empty)."""
    total = AffineExpr.ZERO
    for e in exprs:
        total = total + e
    return total
