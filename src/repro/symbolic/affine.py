"""Exact affine expressions ``c0 + c1*x1 + … + cn*xn``.

Coefficients are exact rationals; most program expressions are integral
but Fourier–Motzkin elimination introduces rational coefficients, and
exactness is what makes the dependence/privatization tests sound.
Integral coefficients are stored as plain ``int`` (``int`` exposes the
same ``numerator``/``denominator`` protocol as :class:`~fractions.Fraction`),
so the dominant all-integer arithmetic never boxes into ``Fraction``.

Instances are immutable and **hash-consed**: the constructor interns every
canonical (coefficients, constant) form in a table registered with
:mod:`repro.perf`, so structurally equal expressions are pointer-equal,
``__eq__`` is an identity check in the common case, and downstream memo
keys hash in O(1) via the precomputed hash.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro import perf

Number = Union[int, Fraction]

_INTERN = perf.memo_table("affine.intern")


def _norm(value: Number) -> Number:
    """Canonicalize a scalar: integral values become plain ``int``."""
    t = type(value)
    if t is int:
        return value
    if t is Fraction:
        return value.numerator if value.denominator == 1 else value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, Fraction):
        return value.numerator if value.denominator == 1 else value
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class AffineExpr:
    """An immutable, interned affine expression over named variables.

    The canonical representation stores only non-zero coefficients, sorted
    by variable name, so structural equality coincides with mathematical
    equality — and by interning, with object identity.
    """

    __slots__ = ("_coeffs", "_const", "_hash", "_integral")

    def __new__(
        cls,
        coeffs: Optional[Mapping[str, Number]] = None,
        const: Number = 0,
    ) -> "AffineExpr":
        items: Tuple[Tuple[str, Number], ...]
        if coeffs:
            pairs = []
            for var, c in coeffs.items():
                c = _norm(c)
                if c:
                    pairs.append((var, c))
            pairs.sort()
            items = tuple(pairs)
        else:
            items = ()
        return cls._make(items, _norm(const))

    @classmethod
    def _make(
        cls, items: Tuple[Tuple[str, Number], ...], const: Number
    ) -> "AffineExpr":
        """Intern a pre-canonicalized (sorted, zero-free, normalized) form."""
        key = (items, const)
        table = _INTERN.data
        self = table.get(key)
        if self is not None:
            _INTERN.hits += 1
            return self
        _INTERN.misses += 1
        perf.bump("affine.new")
        self = object.__new__(cls)
        self._coeffs = items
        self._const = const
        self._hash = hash(key)
        self._integral = type(const) is int and all(
            type(c) is int for _, c in items
        )
        table[key] = self
        return self

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: Number) -> "AffineExpr":
        """The constant expression *value*."""
        return AffineExpr._make((), _norm(value))

    @staticmethod
    def var(name: str, coeff: Number = 1) -> "AffineExpr":
        """The expression ``coeff * name``."""
        c = _norm(coeff)
        if not c:
            return AffineExpr.ZERO
        return AffineExpr._make(((name, c),), 0)

    ZERO: "AffineExpr"
    ONE: "AffineExpr"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def constant(self) -> Number:
        return self._const

    def coeff(self, var: str) -> Number:
        """Coefficient of *var* (zero if absent)."""
        for v, c in self._coeffs:
            if v == var:
                return c
        return 0

    def variables(self) -> Tuple[str, ...]:
        """Variables with non-zero coefficient, sorted."""
        return tuple(v for v, _ in self._coeffs)

    def terms(self) -> Tuple[Tuple[str, Number], ...]:
        """The (variable, coefficient) pairs, sorted by variable."""
        return self._coeffs

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._const == 0

    def is_integral(self) -> bool:
        """True if all coefficients and the constant are integers."""
        return self._integral

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        if isinstance(other, (int, Fraction)):
            if not other:
                return self
            return AffineExpr._make(self._coeffs, _norm(self._const + other))
        if not isinstance(other, AffineExpr):
            return NotImplemented
        if not other._coeffs:
            if not other._const:
                return self
            return AffineExpr._make(
                self._coeffs, _norm(self._const + other._const)
            )
        coeffs: Dict[str, Number] = dict(self._coeffs)
        for v, c in other._coeffs:
            coeffs[v] = coeffs.get(v, 0) + c
        return AffineExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr._make(
            tuple((v, -c) for v, c in self._coeffs), -self._const
        )

    def __sub__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        if isinstance(other, (int, Fraction)):
            if not other:
                return self
            return AffineExpr._make(self._coeffs, _norm(self._const - other))
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Number) -> "AffineExpr":
        return (-self) + other

    def __mul__(self, scalar: Number) -> "AffineExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        s = _norm(scalar)
        if s == 1:
            return self
        if not s:
            return AffineExpr.ZERO
        # variable order is unchanged by scaling, so the canonical form
        # can be built directly
        return AffineExpr._make(
            tuple((v, _norm(c * s)) for v, c in self._coeffs),
            _norm(self._const * s),
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "AffineExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        s = _norm(scalar)
        if s == 0:
            raise ZeroDivisionError("division of affine expression by zero")
        if s == 1:
            return self
        if type(s) is int and self._integral:
            if self._const % s == 0 and all(
                c % s == 0 for _, c in self._coeffs
            ):
                return AffineExpr._make(
                    tuple((v, c // s) for v, c in self._coeffs),
                    self._const // s,
                )
            inv = Fraction(1, s)
        else:
            inv = Fraction(s.denominator, s.numerator)
        return self * inv

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(
        self, bindings: Mapping[str, Union["AffineExpr", Number]]
    ) -> "AffineExpr":
        """Replace each bound variable with an expression or number.

        Unbound variables are kept.  Substitution is simultaneous, so
        ``{x: y, y: x}`` swaps the two variables.
        """
        if not any(v in bindings for v, _ in self._coeffs):
            return self
        coeffs: Dict[str, Number] = {}
        const: Number = self._const
        for v, c in self._coeffs:
            if v in bindings:
                repl = bindings[v]
                if isinstance(repl, (int, Fraction)):
                    const = const + repl * c
                else:
                    const = const + repl._const * c
                    for rv, rc in repl._coeffs:
                        coeffs[rv] = coeffs.get(rv, 0) + rc * c
            else:
                coeffs[v] = coeffs.get(v, 0) + c
        return AffineExpr(coeffs, const)

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables; unmapped variables are kept."""
        if not any(v in mapping for v, _ in self._coeffs):
            return self
        coeffs: Dict[str, Number] = {}
        for v, c in self._coeffs:
            nv = mapping.get(v, v)
            coeffs[nv] = coeffs.get(nv, 0) + c
        return AffineExpr(coeffs, self._const)

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        """Evaluate with every variable bound in *env*.

        Raises ``KeyError`` on an unbound variable — callers decide the
        policy for partial environments via :meth:`substitute`.  Returns
        an exact number (``int`` or ``Fraction``).
        """
        total = self._const
        for v, c in self._coeffs:
            total += c * env[v]
        return total

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------
    def content(self) -> Fraction:
        """The positive gcd-like content of the coefficients.

        For a non-constant expression, returns the positive rational *g*
        such that ``self / g`` has integer coefficients with gcd 1.
        Returns 1 for constant expressions.
        """
        if not self._coeffs:
            return Fraction(1)
        from math import gcd

        nums = [abs(c.numerator) for _, c in self._coeffs]
        dens = [c.denominator for _, c in self._coeffs]
        g_num = 0
        for n in nums:
            g_num = gcd(g_num, n)
        l_den = 1
        for d in dens:
            l_den = l_den * d // gcd(l_den, d)
        return Fraction(g_num, l_den)

    def primitive(self) -> "AffineExpr":
        """Scale so variable coefficients are integers with gcd 1.

        The constant term is scaled along but may remain fractional.
        Constant expressions are returned unchanged.
        """
        g = self.content()
        if g in (0, 1):
            return self
        return self / g

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def sort_key(self):
        """A cheap deterministic ordering key (structural, not textual)."""
        return (
            tuple((v, c.numerator, c.denominator) for v, c in self._coeffs),
            self._const.numerator,
            self._const.denominator,
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AffineExpr):
            return NotImplemented
        # interning makes equal-but-distinct instances possible only
        # across a cache reset; fall back to the structural comparison
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __reduce__(self):
        # re-intern on unpickle (canonical identity in every process)
        return (AffineExpr, (dict(self._coeffs), self._const))

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts = []
        for v, c in self._coeffs:
            if c == 1:
                term = v
            elif c == -1:
                term = f"-{v}"
            else:
                term = f"{c}*{v}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const != 0 or not parts:
            c = self._const
            if parts:
                parts.append(f"+ {c}" if c > 0 else f"- {-c}")
            else:
                parts.append(str(c))
        return " ".join(parts)


AffineExpr.ZERO = AffineExpr.const(0)
AffineExpr.ONE = AffineExpr.const(1)


def _reseed() -> None:
    for e in (AffineExpr.ZERO, AffineExpr.ONE):
        _INTERN.data[(e._coeffs, e._const)] = e


perf.on_reset(_reseed)


def sum_exprs(exprs: Iterable[AffineExpr]) -> AffineExpr:
    """Sum an iterable of affine expressions (zero if empty)."""
    coeffs: Dict[str, Number] = {}
    const: Number = 0
    for e in exprs:
        const = const + e._const
        for v, c in e._coeffs:
            coeffs[v] = coeffs.get(v, 0) + c
    return AffineExpr(coeffs, const)
