"""Exact symbolic affine algebra.

Affine expressions are the lingua franca of the analysis: array subscripts,
loop bounds, region constraints and predicate atoms are all affine
expressions over *program variables* (loop indices, scalar parameters) and
*region variables* (the dimension variables ``__d0``, ``__d1``, … of an
array region).
"""

from repro.symbolic.affine import AffineExpr
from repro.symbolic.terms import (
    dim_var,
    is_dim_var,
    fresh_name,
    FreshNameSource,
)

__all__ = [
    "AffineExpr",
    "dim_var",
    "is_dim_var",
    "fresh_name",
    "FreshNameSource",
]
