"""Variable naming conventions and fresh-name generation.

The analysis distinguishes three kinds of variables by naming convention so
that expressions stay plain ``str``-keyed without a parallel type system:

* **program variables** — ordinary identifiers (``i``, ``n``, ``jlow``);
* **dimension variables** — ``__d0``, ``__d1``, … denote the subscript
  position of an array region (the point described by the region);
* **generated variables** — ``__t<n>`` fresh temporaries created during
  projection, reshape translation and dependence testing (e.g. the primed
  copy of a loop index).
"""

from __future__ import annotations

import itertools
from typing import Iterator

DIM_PREFIX = "__d"
GEN_PREFIX = "__t"


def dim_var(k: int) -> str:
    """Return the name of the *k*-th dimension variable of a region."""
    if k < 0:
        raise ValueError(f"dimension index must be non-negative, got {k}")
    return f"{DIM_PREFIX}{k}"


def is_dim_var(name: str) -> bool:
    """True if *name* is a region dimension variable (``__d<k>``)."""
    return name.startswith(DIM_PREFIX) and name[len(DIM_PREFIX):].isdigit()


def dim_index(name: str) -> int:
    """Inverse of :func:`dim_var`; raises ``ValueError`` on other names."""
    if not is_dim_var(name):
        raise ValueError(f"not a dimension variable: {name!r}")
    return int(name[len(DIM_PREFIX):])


class FreshNameSource:
    """A deterministic source of fresh generated-variable names.

    Each analysis pass owns its own source so that analysis results are
    reproducible run to run (no global mutable counter).
    """

    def __init__(self, prefix: str = GEN_PREFIX) -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str = "") -> str:
        """Return a new name, optionally embedding a readable *hint*."""
        n = next(self._counter)
        if hint:
            return f"{self._prefix}{n}_{hint}"
        return f"{self._prefix}{n}"

    def fresh_many(self, count: int, hint: str = "") -> list:
        return [self.fresh(hint) for _ in range(count)]


_default_source = FreshNameSource()


def fresh_name(hint: str = "") -> str:
    """Module-level convenience fresh name (shared counter).

    Prefer a per-pass :class:`FreshNameSource` in analysis code; this
    helper exists for tests and interactive use.
    """
    return _default_source.fresh(hint)


def is_generated(name: str) -> bool:
    """True if *name* was produced by a :class:`FreshNameSource`."""
    return name.startswith(GEN_PREFIX)


def iter_dim_vars(rank: int) -> Iterator[str]:
    """Yield the dimension variables ``__d0 … __d<rank-1>``."""
    for k in range(rank):
        yield dim_var(k)
