"""Command-line driver.

Usage::

    python -m repro analyze FILE [--base] [--report] [--emit]
                    [--cache DIR] [--profile] [--jobs N]
                    [--executor {thread,process}] [--explain-pipeline]
                    [--max-wall S] [--max-ops N] [--max-fm N]
    python -m repro run FILE [inputs...]
    python -m repro elpd FILE [inputs...]
    python -m repro experiments [fig1|tab1|tab2|tab3|figs|figo|all]
                    [--jobs N] [--profile] [--cache DIR]
    python -m repro serve [--stdio] [--jobs N] [--cache DIR] [--profile]
                    [--executor {thread,process}] [--queue-dir DIR]
    python -m repro serve --http HOST:PORT [--workers N] [--max-queue N]
                    [--queue-dir DIR] [--cache DIR]
                    [--executor {thread,process}]

``analyze`` parses a mini-Fortran source file and prints the
parallelization report (``--base`` switches to the non-predicated
analysis; ``--emit`` additionally prints the two-version transformed
source).  ``run`` interprets the program, reading ``read`` inputs from
the command line.  ``elpd`` runs the dynamic oracle.  ``experiments``
regenerates paper tables/figures.  ``serve`` is the analysis job
service: by default the JSON-lines loop (requests on stdin, one JSON
result per line on stdout); with ``--http HOST:PORT`` the HTTP front
door over the persistent job queue and a worker fleet (see
``docs/SERVICE.md``).

``--cache DIR`` attaches the content-addressed procedure-summary cache;
``--max-wall``/``--max-ops``/``--max-fm`` bound one request's resources
(exhaustion degrades the answer soundly instead of failing).

``analyze`` runs the pass pipeline (``REPRO_PIPELINE=0`` selects the
legacy monolithic path): ``--jobs N`` schedules independent callgraph
subtrees on N workers — threads by default (GIL-bound: little real
overlap), or worker *processes* with ``--executor process`` /
``REPRO_EXECUTOR=process`` — and ``--explain-pipeline`` dumps the pass
graph, the per-unit schedule and per-pass timings as JSON.  Output is
byte-identical for every executor and job count; the execution model is
documented end-to-end in ``docs/EXECUTION.md``.

The module is a small subcommand registry: each command contributes a
``(name, help, configure, run)`` record via :func:`command`, and
:func:`main` assembles the parser from the registry — adding a
subcommand never touches the others' wiring.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


class Command:
    """One subcommand: argparse wiring plus its entry point."""

    def __init__(
        self,
        name: str,
        help: str,
        configure: Optional[Callable[[argparse.ArgumentParser], None]],
        run: Callable[[argparse.Namespace], int],
    ) -> None:
        self.name = name
        self.help = help
        self.configure = configure
        self.run = run


#: registration order is display order in ``--help``
COMMANDS: Dict[str, Command] = {}


def command(name: str, help: str, configure=None):
    """Register the decorated function as subcommand *name*."""

    def register(run):
        COMMANDS[name] = Command(name, help, configure, run)
        return run

    return register


# ----------------------------------------------------------------------
# shared flag groups
# ----------------------------------------------------------------------
def _print_profile(stream=None) -> None:
    import json

    from repro import perf

    print(
        json.dumps(perf.snapshot(), indent=2, sort_keys=True),
        file=stream or sys.stdout,
    )


def _add_cache_flag(p: argparse.ArgumentParser, help: str) -> None:
    p.add_argument("--cache", metavar="DIR", default=None, help=help)


def _add_profile_flag(p: argparse.ArgumentParser, help: str) -> None:
    p.add_argument("--profile", action="store_true", help=help)


def _add_executor_flag(p: argparse.ArgumentParser, help: str) -> None:
    p.add_argument(
        "--executor", choices=["thread", "process"], default=None, help=help
    )


def _parse_inputs(values: List[str]) -> List:
    return [int(v) if "." not in v else float(v) for v in values]


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
def _configure_analyze(p: argparse.ArgumentParser) -> None:
    p.add_argument("file")
    p.add_argument("--base", action="store_true", help="base analysis only")
    p.add_argument(
        "--emit", action="store_true", help="print two-version output"
    )
    _add_cache_flag(
        p,
        "content-addressed summary cache directory (reused across "
        "runs; only edited procedures are re-analyzed)",
    )
    _add_profile_flag(
        p, "append a JSON performance snapshot after the report"
    )
    p.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds (exhaustion degrades soundly)",
    )
    p.add_argument(
        "--max-ops",
        type=int,
        default=None,
        metavar="N",
        help="substrate-operation budget (see perf.total_ops)",
    )
    p.add_argument(
        "--max-fm",
        type=int,
        default=None,
        metavar="N",
        help="Fourier-Motzkin bound-pair budget",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analyze independent callgraph subtrees on N workers "
        "(default: REPRO_JOBS or 1; output is byte-identical for any N)",
    )
    _add_executor_flag(
        p,
        "where --jobs workers run: 'thread' shares one interpreter "
        "(GIL-bound), 'process' uses a pool of worker processes for real "
        "multicore speedup (default: REPRO_EXECUTOR or 'thread'; output "
        "is byte-identical either way)",
    )
    p.add_argument(
        "--explain-pipeline",
        action="store_true",
        help="append a JSON dump of the pass graph, the per-unit schedule "
        "(waves, workers, parallel subtrees) and per-pass timings",
    )


@command("analyze", "analyze a source file", _configure_analyze)
def _cmd_analyze(args) -> int:
    import json

    from repro.arraydf.options import AnalysisOptions
    from repro.codegen.report import format_report
    from repro.lang.parser import parse_program
    from repro.lang.prettyprint import pretty
    from repro.pipeline import pipeline_enabled, run_pipeline
    from repro.service import Budget, budget_scope, default_cache
    from repro.service import set_default_cache_dir

    if args.cache:
        set_default_cache_dir(args.cache)
    source = open(args.file).read()
    opts = AnalysisOptions.base() if args.base else AnalysisOptions.predicated()
    program = parse_program(source)
    budget = Budget(
        max_wall_s=args.max_wall,
        max_ops=args.max_ops,
        max_fm_constraints=args.max_fm,
    )
    goals = ("result", "transformed") if args.emit else ("result",)
    with budget_scope(budget):
        if pipeline_enabled():
            ctx = run_pipeline(
                program,
                opts,
                cache=default_cache(),
                jobs=args.jobs,
                goals=goals,
                explain=args.explain_pipeline,
                executor=args.executor,
            )
            result = ctx.get("result")
            transformed = ctx.get("transformed") if args.emit else None
        else:
            from repro.codegen.plan import build_plan
            from repro.codegen.twoversion import transform_program
            from repro.partests.driver import analyze_program

            ctx = None
            result = analyze_program(program, opts, cache=default_cache())
            transformed = (
                transform_program(program, build_plan(result))
                if args.emit
                else None
            )
    print(format_report(result, title=args.file))
    if transformed is not None:
        print()
        print(pretty(transformed))
    if args.explain_pipeline:
        if ctx is not None and ctx.explain is not None:
            print(json.dumps(ctx.explain, indent=2, sort_keys=True))
        else:
            print(
                '{"error": "pipeline disabled (REPRO_PIPELINE=0): '
                'nothing to explain"}'
            )
    if args.profile:
        _print_profile()
    return 0


# ----------------------------------------------------------------------
# run / elpd
# ----------------------------------------------------------------------
def _configure_run(p: argparse.ArgumentParser) -> None:
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", default=[])


@command("run", "interpret a program", _configure_run)
def _cmd_run(args) -> int:
    from repro.lang.parser import parse_program
    from repro.runtime.interp import run_program

    program = parse_program(open(args.file).read())
    result = run_program(program, _parse_inputs(args.inputs))
    for line in result.outputs:
        print(line)
    print(f"[{result.steps} steps]", file=sys.stderr)
    return 0


@command("elpd", "run the ELPD dynamic oracle", _configure_run)
def _cmd_elpd(args) -> int:
    from repro.lang.parser import parse_program
    from repro.runtime.elpd import run_oracle

    program = parse_program(open(args.file).read())
    report = run_oracle(program, _parse_inputs(args.inputs))
    for label in sorted(report.observations):
        obs = report.observations[label]
        extras = []
        if obs.conflict_arrays:
            extras.append(f"conflicts: {', '.join(sorted(obs.conflict_arrays))}")
        if obs.flow_arrays:
            extras.append(f"flow: {', '.join(sorted(obs.flow_arrays))}")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"{label:<24} {obs.classification}{suffix}")
    return 0


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def _configure_experiments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["fig1", "tab1", "tab2", "tab3", "figs", "figo", "all"],
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan per-program analyses over N worker processes "
        "(output is byte-identical for any N)",
    )
    _add_profile_flag(
        p,
        "append a JSON performance snapshot (counters, phase timers, "
        "cache hit rates) after the tables",
    )
    _add_cache_flag(
        p,
        "summary cache directory shared by the whole run (and by "
        "worker processes under --jobs)",
    )


@command("experiments", "regenerate paper tables/figures", _configure_experiments)
def _cmd_experiments(args) -> int:
    from repro.experiments import (
        fig1_examples,
        fig_overhead,
        fig_speedups,
        table1_loops,
        table2_programs,
        table3_categories,
    )

    modules = {
        "fig1": fig1_examples,
        "tab1": table1_loops,
        "tab2": table2_programs,
        "tab3": table3_categories,
        "figs": fig_speedups,
        "figo": fig_overhead,
    }
    if args.cache:
        from repro.service import set_default_cache_dir

        set_default_cache_dir(args.cache)
    chosen = modules.values() if args.which == "all" else [modules[args.which]]
    for mod in chosen:
        print(mod.run(jobs=args.jobs).format())
        print()
    if args.profile:
        _print_profile()
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _configure_serve(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="start the HTTP front door (POST /v1/jobs, GET /v1/jobs/ID, "
        "GET /v1/jobs/ID/receipt, /v1/healthz, /v1/stats) instead of the "
        "stdin/stdout JSON-lines loop",
    )
    p.add_argument(
        "--stdio",
        action="store_true",
        help="serve the JSON-lines loop on stdin/stdout (the default)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker fleet size for the stdio loop (results stream in "
        "request order; responses are byte-identical for any N)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker fleet size for --http (default 2)",
    )
    p.add_argument(
        "--queue-dir",
        metavar="DIR",
        default=None,
        help="persistent job-queue directory (journal, claims, results, "
        "receipts; survives restarts — interrupted jobs are re-run). "
        "Default: a temporary directory for --stdio, "
        "<cache-dir-or-cwd>/queue for --http",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help="bound on pending jobs; beyond it --http answers 429 with "
        "Retry-After and --stdio applies backpressure (default 256)",
    )
    _add_executor_flag(
        p,
        "run each job's pipeline fan-out on worker processes "
        "('process') instead of threads (responses are byte-identical "
        "either way)",
    )
    _add_cache_flag(p, "summary cache directory shared by all workers")
    _add_profile_flag(
        p, "write a JSON performance snapshot to stderr at exit"
    )


@command(
    "serve",
    "analysis job service: JSON-lines on stdio, or an HTTP front door "
    "with --http HOST:PORT",
    _configure_serve,
)
def _cmd_serve(args) -> int:
    if args.http and args.stdio:
        print("serve: --http and --stdio are mutually exclusive", file=sys.stderr)
        return 2
    if args.http:
        import os

        from repro.service.http import serve_http

        queue_dir = args.queue_dir
        if queue_dir is None:
            base = args.cache or os.getcwd()
            queue_dir = os.path.join(base, "queue")
        serve_http(
            args.http,
            queue_dir=queue_dir,
            workers=args.workers,
            capacity=args.max_queue,
            pipeline_executor=args.executor,
            cache_dir=args.cache,
        )
    else:
        from repro.service.server import serve

        serve(
            sys.stdin,
            sys.stdout,
            jobs=args.jobs,
            cache_dir=args.cache,
            queue_dir=args.queue_dir,
            executor=args.executor,
        )
    if args.profile:
        _print_profile(stream=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predicated array data-flow analysis (PPoPP'99 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for cmd in COMMANDS.values():
        p = sub.add_parser(cmd.name, help=cmd.help)
        if cmd.configure is not None:
            cmd.configure(p)
        p.set_defaults(func=cmd.run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
