"""Command-line driver.

Usage::

    python -m repro analyze FILE [--base] [--report] [--emit]
                    [--cache DIR] [--profile] [--jobs N]
                    [--executor {thread,process}] [--explain-pipeline]
                    [--max-wall S] [--max-ops N] [--max-fm N]
    python -m repro run FILE [inputs...]
    python -m repro elpd FILE [inputs...]
    python -m repro experiments [fig1|tab1|tab2|tab3|figs|figo|all]
                    [--jobs N] [--profile] [--cache DIR]
    python -m repro serve [--jobs N] [--cache DIR] [--profile]

``analyze`` parses a mini-Fortran source file and prints the
parallelization report (``--base`` switches to the non-predicated
analysis; ``--emit`` additionally prints the two-version transformed
source).  ``run`` interprets the program, reading ``read`` inputs from
the command line.  ``elpd`` runs the dynamic oracle.  ``experiments``
regenerates paper tables/figures.  ``serve`` is the JSON-lines analysis
server (requests on stdin, one JSON result per line on stdout).

``--cache DIR`` attaches the content-addressed procedure-summary cache;
``--max-wall``/``--max-ops``/``--max-fm`` bound one request's resources
(exhaustion degrades the answer soundly instead of failing).

``analyze`` runs the pass pipeline (``REPRO_PIPELINE=0`` selects the
legacy monolithic path): ``--jobs N`` schedules independent callgraph
subtrees on N workers — threads by default (GIL-bound: little real
overlap), or worker *processes* with ``--executor process`` /
``REPRO_EXECUTOR=process`` — and ``--explain-pipeline`` dumps the pass
graph, the per-unit schedule and per-pass timings as JSON.  Output is
byte-identical for every executor and job count; the execution model is
documented end-to-end in ``docs/EXECUTION.md``.
"""

from __future__ import annotations

import argparse
import sys


def _print_profile() -> None:
    import json

    from repro import perf

    print(json.dumps(perf.snapshot(), indent=2, sort_keys=True))


def _cmd_analyze(args) -> int:
    import json

    from repro.arraydf.options import AnalysisOptions
    from repro.codegen.report import format_report
    from repro.lang.parser import parse_program
    from repro.lang.prettyprint import pretty
    from repro.pipeline import pipeline_enabled, run_pipeline
    from repro.service import Budget, budget_scope, default_cache
    from repro.service import set_default_cache_dir

    if args.cache:
        set_default_cache_dir(args.cache)
    source = open(args.file).read()
    opts = AnalysisOptions.base() if args.base else AnalysisOptions.predicated()
    program = parse_program(source)
    budget = Budget(
        max_wall_s=args.max_wall,
        max_ops=args.max_ops,
        max_fm_constraints=args.max_fm,
    )
    goals = ("result", "transformed") if args.emit else ("result",)
    with budget_scope(budget):
        if pipeline_enabled():
            ctx = run_pipeline(
                program,
                opts,
                cache=default_cache(),
                jobs=args.jobs,
                goals=goals,
                explain=args.explain_pipeline,
                executor=args.executor,
            )
            result = ctx.get("result")
            transformed = ctx.get("transformed") if args.emit else None
        else:
            from repro.codegen.plan import build_plan
            from repro.codegen.twoversion import transform_program
            from repro.partests.driver import analyze_program

            ctx = None
            result = analyze_program(program, opts, cache=default_cache())
            transformed = (
                transform_program(program, build_plan(result))
                if args.emit
                else None
            )
    print(format_report(result, title=args.file))
    if transformed is not None:
        print()
        print(pretty(transformed))
    if args.explain_pipeline:
        if ctx is not None and ctx.explain is not None:
            print(json.dumps(ctx.explain, indent=2, sort_keys=True))
        else:
            print(
                '{"error": "pipeline disabled (REPRO_PIPELINE=0): '
                'nothing to explain"}'
            )
    if args.profile:
        _print_profile()
    return 0


def _cmd_run(args) -> int:
    from repro.lang.parser import parse_program
    from repro.runtime.interp import run_program

    program = parse_program(open(args.file).read())
    inputs = [int(v) if "." not in v else float(v) for v in args.inputs]
    result = run_program(program, inputs)
    for line in result.outputs:
        print(line)
    print(f"[{result.steps} steps]", file=sys.stderr)
    return 0


def _cmd_elpd(args) -> int:
    from repro.lang.parser import parse_program
    from repro.runtime.elpd import run_oracle

    program = parse_program(open(args.file).read())
    inputs = [int(v) if "." not in v else float(v) for v in args.inputs]
    report = run_oracle(program, inputs)
    for label in sorted(report.observations):
        obs = report.observations[label]
        extras = []
        if obs.conflict_arrays:
            extras.append(f"conflicts: {', '.join(sorted(obs.conflict_arrays))}")
        if obs.flow_arrays:
            extras.append(f"flow: {', '.join(sorted(obs.flow_arrays))}")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"{label:<24} {obs.classification}{suffix}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import (
        fig1_examples,
        fig_overhead,
        fig_speedups,
        table1_loops,
        table2_programs,
        table3_categories,
    )

    modules = {
        "fig1": fig1_examples,
        "tab1": table1_loops,
        "tab2": table2_programs,
        "tab3": table3_categories,
        "figs": fig_speedups,
        "figo": fig_overhead,
    }
    if args.cache:
        from repro.service import set_default_cache_dir

        set_default_cache_dir(args.cache)
    chosen = modules.values() if args.which == "all" else [modules[args.which]]
    for mod in chosen:
        print(mod.run(jobs=args.jobs).format())
        print()
    if args.profile:
        _print_profile()
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import serve

    serve(sys.stdin, sys.stdout, jobs=args.jobs, cache_dir=args.cache)
    if args.profile:
        import json

        from repro import perf

        print(
            json.dumps(perf.snapshot(), indent=2, sort_keys=True),
            file=sys.stderr,
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predicated array data-flow analysis (PPoPP'99 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="analyze a source file")
    p.add_argument("file")
    p.add_argument("--base", action="store_true", help="base analysis only")
    p.add_argument(
        "--emit", action="store_true", help="print two-version output"
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed summary cache directory (reused across "
        "runs; only edited procedures are re-analyzed)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="append a JSON performance snapshot after the report",
    )
    p.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds (exhaustion degrades soundly)",
    )
    p.add_argument(
        "--max-ops",
        type=int,
        default=None,
        metavar="N",
        help="substrate-operation budget (see perf.total_ops)",
    )
    p.add_argument(
        "--max-fm",
        type=int,
        default=None,
        metavar="N",
        help="Fourier-Motzkin bound-pair budget",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analyze independent callgraph subtrees on N workers "
        "(default: REPRO_JOBS or 1; output is byte-identical for any N)",
    )
    p.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="where --jobs workers run: 'thread' shares one interpreter "
        "(GIL-bound), 'process' uses a pool of worker processes for real "
        "multicore speedup (default: REPRO_EXECUTOR or 'thread'; output "
        "is byte-identical either way)",
    )
    p.add_argument(
        "--explain-pipeline",
        action="store_true",
        help="append a JSON dump of the pass graph, the per-unit schedule "
        "(waves, workers, parallel subtrees) and per-pass timings",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("run", help="interpret a program")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", default=[])
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("elpd", help="run the ELPD dynamic oracle")
    p.add_argument("file")
    p.add_argument("inputs", nargs="*", default=[])
    p.set_defaults(func=_cmd_elpd)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["fig1", "tab1", "tab2", "tab3", "figs", "figo", "all"],
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan per-program analyses over N worker processes "
        "(output is byte-identical for any N)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="append a JSON performance snapshot (counters, phase timers, "
        "cache hit rates) after the tables",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="summary cache directory shared by the whole run (and by "
        "worker processes under --jobs)",
    )
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "serve",
        help="JSON-lines analysis server: requests on stdin, one JSON "
        "result per line on stdout",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan requests over N worker processes (results stream in "
        "request order)",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="summary cache directory shared by all workers",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="write a JSON performance snapshot to stderr at EOF",
    )
    p.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
