"""Performance observability: counters, phase timers and the cache registry.

Every memo/intern table in the analysis substrate registers itself here so
that

* ``reset_all_caches()`` restores a genuinely cold state (benchmarks and
  the deterministic cost measurements in FIGO rely on this), and
* ``snapshot()`` reports hit/miss statistics for every table plus the
  event counters (Fourier–Motzkin fallbacks, elimination steps, …) in one
  JSON-able dict for ``--profile``.

The module is dependency-free: the symbolic/linalg/regions layers import
it, never the other way around.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from itertools import islice
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: sentinel for memo lookups (``None`` is a legitimate cached value)
MISS = object()


class Memo:
    """A dict-backed memo table with hit/miss accounting.

    Hot paths access ``data``/``hits``/``misses`` directly instead of
    going through method calls; the object exists so the registry can
    clear and report every table uniformly.

    *cap*, when set, bounds the table for long-lived warm workers:
    :func:`enforce_memo_caps` trims capped tables back down in
    insertion order.  Enforcement runs at run/chunk/job boundaries —
    never per insert — so the direct ``data[key] = value`` hot paths
    stay method-call free.
    """

    __slots__ = ("name", "data", "hits", "misses", "cap")

    def __init__(self, name: str, cap: Optional[int] = None) -> None:
        self.name = name
        self.data: Dict = {}
        self.hits = 0
        self.misses = 0
        self.cap = cap

    def get(self, key, default=None):
        hit = self.data.get(key, MISS)
        if hit is not MISS:
            self.hits += 1
            return hit
        self.misses += 1
        return default

    def clear(self) -> None:
        self.data.clear()
        self.hits = 0
        self.misses = 0

    def trim(self) -> int:
        """Drop oldest entries down to ``cap``; returns entries dropped."""
        cap = self.cap
        if cap is None or len(self.data) <= cap:
            return 0
        data = self.data
        drop = len(data) - cap
        for key in list(islice(iter(data), drop)):
            del data[key]
        return drop

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self.data),
            "hit_rate": (self.hits / total) if total else 0.0,
        }


_memos: Dict[str, Memo] = {}
#: external caches (e.g. ``functools.lru_cache``) as (stats_fn, clear_fn)
_external: Dict[str, Tuple[Callable[[], Dict], Callable[[], None]]] = {}
#: callbacks run after a reset (re-seed interned module singletons)
_reseeders: List[Callable[[], None]] = []
#: identity map of every cache-like *object* known to the registry
#: (``id(obj) -> (name, kind)`` with kind "memo" | "external" |
#: "exempt").  The registry-completeness test scans the package for
#: cache-like objects and fails when one was created without passing
#: through :func:`memo_table`, :func:`register_cache` or
#: :func:`exempt_cache`, so a new memo table cannot silently escape
#: :func:`reset_all_caches`.
_tracked_objects: Dict[int, Tuple[str, str]] = {}


def track_cache_object(obj: object, name: str, kind: str) -> None:
    """Record *obj* as a registry-known cache (identity-keyed)."""
    _tracked_objects[id(obj)] = (name, kind)


def tracked_cache(obj: object) -> Optional[Tuple[str, str]]:
    """The (name, kind) registration of *obj*, or ``None``."""
    return _tracked_objects.get(id(obj))


def exempt_cache(obj: object, name: str, reason: str) -> None:
    """Declare *obj* deliberately outside :func:`reset_all_caches`.

    Use for tables whose content is immutable program text or pure
    configuration (clearing them would only force identical
    recomputation); *reason* documents why at the declaration site.
    """
    track_cache_object(obj, f"{name} (exempt: {reason})", "exempt")

_counters: Dict[str, int] = {}
_phases: Dict[str, float] = {}
#: cache statistics absorbed from worker processes (name -> hits/misses/size)
_foreign: Dict[str, Dict[str, float]] = {}
#: per-thread stack of analysis-context labels ("unit:Ln" /
#: "unit:<proc>"); the top entry attributes substrate events (FM
#: fallback drops, budget trips) to the procedure/loop being analyzed.
#: Thread-local so the pipeline's intra-program worker threads cannot
#: pop each other's labels.
_context_local = threading.local()


def _context_stack() -> List[str]:
    stack = getattr(_context_local, "stack", None)
    if stack is None:
        stack = _context_local.stack = []
    return stack


def memo_table(name: str, cap: Optional[int] = None) -> Memo:
    """Create (or return) the registered memo table *name*.

    *cap* (optional) registers a boundedness cap at the declaration
    site; see :func:`enforce_memo_caps`.
    """
    table = _memos.get(name)
    if table is None:
        table = _memos[name] = Memo(name, cap=cap)
        track_cache_object(table, name, "memo")
    elif cap is not None:
        table.cap = cap
    return table


def set_memo_cap(name: str, cap: Optional[int]) -> None:
    """(Re)bound the registered memo table *name* at *cap* entries."""
    _memos[name].cap = cap


def memo_caps() -> Dict[str, int]:
    """Every capped memo table, mapped to its registered cap."""
    return {n: t.cap for n, t in _memos.items() if t.cap is not None}


def enforce_memo_caps() -> int:
    """Trim every capped memo table back down to its cap.

    Long-lived warm workers keep memo tables alive across runs; this is
    the boundedness half of that bargain.  Trimming is insertion-ordered
    (oldest entries first) and runs only at run/chunk/job boundaries, so
    per-lookup hot paths never pay for it.  Returns (and counts, as
    ``perf.memo_trims``) the entries dropped.
    """
    trimmed = 0
    for table in _memos.values():
        trimmed += table.trim()
    if trimmed:
        bump("perf.memo_trims", trimmed)
    return trimmed


def register_cache(
    name: str,
    stats: Callable[[], Dict],
    clear: Callable[[], None],
    obj: Optional[object] = None,
) -> None:
    """Register an externally managed cache (stats dict + clear fn).

    Pass the cache object itself as *obj* (e.g. the ``lru_cache``
    wrapper) so the registry-completeness test can prove it is covered.
    """
    _external[name] = (stats, clear)
    if obj is not None:
        track_cache_object(obj, name, "external")


def on_reset(callback: Callable[[], None]) -> None:
    """Run *callback* after every :func:`reset_all_caches` (used to
    re-seed interned module singletons like ``AffineExpr.ZERO``)."""
    _reseeders.append(callback)


def reset_all_caches() -> None:
    """Clear every registered memo/intern table and external cache.

    The one entry point benchmarks use to measure cold paths honestly.
    Module singletons are re-interned afterwards so identity stays
    canonical across resets.  Bumps the fleet epoch: warm pool workers
    holding pre-reset memos or interned values must not serve them to
    post-reset runs (§ the warm-fleet contract in ``docs/EXECUTION.md``).
    """
    bump_epoch()
    for table in _memos.values():
        table.clear()
    for _stats, clear in _external.values():
        clear()
    _foreign.clear()
    for callback in _reseeders:
        callback()


# ----------------------------------------------------------------------
# the fleet epoch
# ----------------------------------------------------------------------
# One monotonic integer versions every process-wide cache in the
# substrate: memo/intern tables, the predicate-oracle tiers, the
# worker-side analysis engines.  Anything that can change what those
# caches would hold — a semantic-knob flip, a cache reset — bumps it;
# pool workers compare the epoch shipped with each task against the one
# their warm state was built under and drop everything on a mismatch.
# That is the entire invalidation story for the warm fleet: state is
# valid exactly as long as the epoch it was built under is current.
# (Budgets need no bump: they ship per task, degraded results are never
# cached, and a degraded worker engine is evicted — pinned by
# tests/pipeline/test_warm_fleet.py.)

_epoch = 0


def epoch() -> int:
    """The current fleet epoch (monotonic, process-local)."""
    return _epoch


def bump_epoch() -> int:
    """Invalidate every warm fleet's caches; returns the new epoch."""
    global _epoch
    _epoch += 1
    bump("perf.epoch_bumps")
    return _epoch


# ----------------------------------------------------------------------
# predicate-oracle switch
# ----------------------------------------------------------------------
# The tiered predicate oracle (repro.predicates.oracle) and its caches
# are pure cost optimizations: enabled or disabled, every query returns
# the same boolean.  The switch lives here — not in the predicates
# package — so lower layers (linalg's entailment cache) can consult it
# without importing upward.  Controlled by the REPRO_PRED_ORACLE
# environment variable ("0"/"off"/"false"/"no" disable) or
# programmatically via set_pred_oracle().

_pred_oracle: Optional[bool] = None


def pred_oracle_enabled() -> bool:
    """Is the tiered predicate oracle (and its caches) enabled?"""
    global _pred_oracle
    if _pred_oracle is None:
        raw = os.environ.get("REPRO_PRED_ORACLE", "1").strip().lower()
        _pred_oracle = raw not in ("0", "off", "false", "no")
    return _pred_oracle


def set_pred_oracle(enabled: Optional[bool]) -> None:
    """Force the oracle on/off; ``None`` re-reads the environment."""
    global _pred_oracle
    if _pred_oracle != enabled:
        bump_epoch()  # knob change: warm fleets must not serve old-knob memos
    _pred_oracle = enabled


# ----------------------------------------------------------------------
# packed-kernel switch
# ----------------------------------------------------------------------
# The packed Fourier–Motzkin kernel (repro.linalg.packed) runs variable
# elimination on flat integer coefficient rows instead of interned
# AffineExpr/Constraint/LinearSystem objects.  It is a pure cost
# optimization: on or off, every projected system, feasibility answer
# and fm.* counter is identical.  The switch lives here — not in the
# linalg package — for the same reason as the oracle switch: the
# dependency-free perf layer is importable from anywhere.  Controlled by
# the REPRO_PACKED_KERNEL environment variable ("0"/"off"/"false"/"no"
# disable) or programmatically via set_packed_kernel().

_packed_kernel: Optional[bool] = None


def packed_kernel_enabled() -> bool:
    """Is the packed Fourier–Motzkin kernel enabled?"""
    global _packed_kernel
    if _packed_kernel is None:
        raw = os.environ.get("REPRO_PACKED_KERNEL", "1").strip().lower()
        _packed_kernel = raw not in ("0", "off", "false", "no")
    return _packed_kernel


def set_packed_kernel(enabled: Optional[bool]) -> None:
    """Force the packed kernel on/off; ``None`` re-reads the environment."""
    global _packed_kernel
    if _packed_kernel != enabled:
        bump_epoch()
    _packed_kernel = enabled


# ----------------------------------------------------------------------
# bytecode-runtime switch
# ----------------------------------------------------------------------
# The bytecode runtime (repro.runtime.bytecode) compiles each program
# unit once into pre-bound closures — with a NumPy-vectorized fast path
# for eligible inner loops — and the ELPD oracle packs its shadow state
# into parallel int columns with bulk conflict checks.  It is a pure
# cost optimization: on or off, every ExecutionResult (outputs, steps,
# scalars, arrays, loop events) and every ELPD verdict is identical.
# The switch lives here for the same reason as the kernel switches: the
# dependency-free perf layer is importable from anywhere (the runtime
# *and* the ELPD layer gate on it without importing each other).
# Controlled by the REPRO_BYTECODE environment variable
# ("0"/"off"/"false"/"no" disable) or programmatically via
# set_bytecode().

_bytecode: Optional[bool] = None


def bytecode_enabled() -> bool:
    """Is the bytecode runtime (and the packed ELPD shadow) enabled?"""
    global _bytecode
    if _bytecode is None:
        raw = os.environ.get("REPRO_BYTECODE", "1").strip().lower()
        _bytecode = raw not in ("0", "off", "false", "no")
    return _bytecode


def set_bytecode(enabled: Optional[bool]) -> None:
    """Force the bytecode runtime on/off; ``None`` re-reads the environment."""
    global _bytecode
    if _bytecode != enabled:
        bump_epoch()
    _bytecode = enabled


# ----------------------------------------------------------------------
# dependence-screen switch
# ----------------------------------------------------------------------
# The tier-0 dependence screen (repro.arraydf.screen) classifies each
# loop's array accesses with cheap syntactic/affine facts before the
# predicated analysis runs; loops it proves independent skip region
# summarization and get a pre-made parallel decision.  It is a pure
# cost optimization: on or off, every decision row, plan and experiment
# table is identical — the screen only fires where the full analysis
# provably agrees.  The switch lives here for the same reason as the
# kernel switches: the dependency-free perf layer is importable from
# anywhere.  Controlled by the REPRO_DEP_SCREEN environment variable
# ("0"/"off"/"false"/"no" disable) or programmatically via
# set_dep_screen().

_dep_screen: Optional[bool] = None


def dep_screen_enabled() -> bool:
    """Is the tier-0 dependence screen enabled?"""
    global _dep_screen
    if _dep_screen is None:
        raw = os.environ.get("REPRO_DEP_SCREEN", "1").strip().lower()
        _dep_screen = raw not in ("0", "off", "false", "no")
    return _dep_screen


def set_dep_screen(enabled: Optional[bool]) -> None:
    """Force the dependence screen on/off; ``None`` re-reads the environment."""
    global _dep_screen
    if _dep_screen != enabled:
        bump_epoch()
    _dep_screen = enabled


# ----------------------------------------------------------------------
# warm-fleet switch
# ----------------------------------------------------------------------
# The warm fleet (docs/EXECUTION.md §7) lets pool workers keep the
# interned substrate, the pred.oracle.* / fm.* / region-algebra memo
# tables and content-keyed analysis engines alive *across runs* within
# one fleet epoch, instead of rebuilding per (worker, run).  It is a
# pure cost optimization: warm or cold, every decision row is byte-
# identical — the epoch above invalidates everything a knob change
# could have affected, and degraded state is never retained.  Controlled
# by the REPRO_WARM_FLEET environment variable ("0"/"off"/"false"/"no"
# restore the per-run-nonce engine keys of the cold fleet) or
# programmatically via set_warm_fleet().

_warm_fleet: Optional[bool] = None


def warm_fleet_enabled() -> bool:
    """May pool workers reuse substrate and engines across runs?"""
    global _warm_fleet
    if _warm_fleet is None:
        raw = os.environ.get("REPRO_WARM_FLEET", "1").strip().lower()
        _warm_fleet = raw not in ("0", "off", "false", "no")
    return _warm_fleet


def set_warm_fleet(enabled: Optional[bool]) -> None:
    """Force the warm fleet on/off; ``None`` re-reads the environment."""
    global _warm_fleet
    if _warm_fleet != enabled:
        bump_epoch()
    _warm_fleet = enabled


def bump(name: str, n: int = 1) -> None:
    """Increment event counter *name* by *n*."""
    _counters[name] = _counters.get(name, 0) + n


def declare(name: str) -> None:
    """Ensure *name* appears in snapshots even while zero."""
    _counters.setdefault(name, 0)


def counter(name: str) -> int:
    return _counters.get(name, 0)


def reset_counters() -> None:
    """Zero every event counter and phase timer (keeps declarations)."""
    for name in _counters:
        _counters[name] = 0
    _phases.clear()
    _foreign.clear()


def snapshot_delta(snap: Dict, base: Dict) -> Dict:
    """Subtract *base* from *snap*, clamping at zero.

    Worker processes forked from a warm parent inherit its counters and
    cache statistics; subtracting the parent's snapshot taken at pool
    creation leaves only the work the worker itself performed.  (Under a
    ``spawn`` start method workers begin cold, so the clamp keeps the
    delta correct there too.)
    """
    counters = {
        k: max(0, v - base.get("counters", {}).get(k, 0))
        for k, v in snap.get("counters", {}).items()
    }
    phases = {
        k: max(0.0, v - base.get("phases", {}).get(k, 0.0))
        for k, v in snap.get("phases", {}).items()
    }
    caches = {}
    for name, stats in snap.get("caches", {}).items():
        ref = base.get("caches", {}).get(name, {})
        caches[name] = {
            k: max(0, stats.get(k, 0) - ref.get(k, 0))
            for k in ("hits", "misses", "size")
        }
    return {"counters": counters, "phases": phases, "caches": caches}


def snapshot_max(a: Dict, b: Dict) -> Dict:
    """Field-wise maximum of two snapshots from the *same* process.

    Per-process statistics only grow, so the maximum over any set of a
    worker's snapshots equals its latest one — this lets the driver keep
    one cumulative snapshot per worker PID without ordering assumptions.
    """
    counters = dict(a.get("counters", {}))
    for k, v in b.get("counters", {}).items():
        counters[k] = max(counters.get(k, 0), v)
    phases = dict(a.get("phases", {}))
    for k, v in b.get("phases", {}).items():
        phases[k] = max(phases.get(k, 0.0), v)
    caches = {name: dict(stats) for name, stats in a.get("caches", {}).items()}
    for name, stats in b.get("caches", {}).items():
        ref = caches.setdefault(name, {"hits": 0, "misses": 0, "size": 0})
        for k in ("hits", "misses", "size"):
            ref[k] = max(ref.get(k, 0), stats.get(k, 0))
    return {"counters": counters, "phases": phases, "caches": caches}


def absorb_snapshot(snap: Dict) -> None:
    """Fold a worker process's (delta) snapshot into this process.

    Counters and phase timers add into the local tables; cache
    statistics accumulate in a side table that :func:`snapshot` sums
    onto the local stats, so ``--profile`` reflects work done in worker
    processes under ``--jobs N`` as well.
    """
    for name, value in snap.get("counters", {}).items():
        if value:
            _counters[name] = _counters.get(name, 0) + value
    for name, value in snap.get("phases", {}).items():
        if value:
            _phases[name] = _phases.get(name, 0.0) + value
    for name, stats in snap.get("caches", {}).items():
        agg = _foreign.setdefault(name, {"hits": 0, "misses": 0, "size": 0})
        for k in ("hits", "misses", "size"):
            agg[k] += stats.get(k, 0)


@contextmanager
def analysis_context(label: str) -> Iterator[None]:
    """Attribute substrate events to *label* while the block runs.

    The analysis walker pushes ``unit:<proc>`` around each procedure and
    the driver pushes the loop label around each loop decision, so
    low-level kernels (Fourier–Motzkin) can report *where* a
    precision-losing event happened without depending on the layers
    above them.
    """
    stack = _context_stack()
    stack.append(label)
    try:
        yield
    finally:
        stack.pop()


def current_context() -> str:
    """The innermost analysis-context label, or ``"<toplevel>"``."""
    stack = _context_stack()
    return stack[-1] if stack else "<toplevel>"


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate wall-clock time under *name* in the phase table."""
    start = time.perf_counter()
    try:
        yield
    finally:
        _phases[name] = _phases.get(name, 0.0) + time.perf_counter() - start


def total_ops() -> int:
    """Deterministic substrate-work proxy: the sum of the kernel-level
    event counters.  Used by FIGO for machine-independent cost ratios."""
    return sum(
        v for k, v in _counters.items() if k in _OP_COUNTERS
    )


#: counters that measure substrate kernel work (deterministic given a
#: cold cache state); extend when instrumenting new kernels
_OP_COUNTERS = frozenset(
    {
        "affine.new",
        "constraint.norm",
        "system.norm",
        "fm.eliminate",
        "fm.pair_combine",
        "feasibility.ground",
    }
)


def registered_names() -> Dict[str, str]:
    """Every name the observability registry knows, mapped to its kind.

    Kinds: ``"memo"`` (registered :class:`Memo` tables), ``"external"``
    (externally managed caches), ``"exempt"`` (cache objects declared
    outside :func:`reset_all_caches`), ``"counter"`` (declared or
    bumped event counters) and ``"phase"`` (accumulated phase timers).
    The PERF.md counter-namespace table is tested against this, so a
    new prefix cannot ship undocumented.
    """
    names: Dict[str, str] = {}
    for name, kind in _tracked_objects.values():
        # exempt registrations carry their reason in the display name
        names[name.split(" (", 1)[0]] = kind
    names.update({name: "memo" for name in _memos})
    names.update({name: "external" for name in _external})
    names.update({name: "counter" for name in _counters})
    names.update({name: "phase" for name in _phases})
    return names


def snapshot() -> Dict:
    """One JSON-able dict of counters, phases and per-cache statistics."""
    caches = {name: table.stats() for name, table in _memos.items()}
    for name, (stats, _clear) in _external.items():
        caches[name] = stats()
    for name, agg in _foreign.items():
        merged = dict(
            caches.get(name, {"hits": 0, "misses": 0, "size": 0})
        )
        for k in ("hits", "misses", "size"):
            merged[k] = merged.get(k, 0) + agg[k]
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = (merged["hits"] / total) if total else 0.0
        caches[name] = merged
    return {
        "counters": dict(sorted(_counters.items())),
        "phases": {k: round(v, 6) for k, v in sorted(_phases.items())},
        "caches": {k: caches[k] for k in sorted(caches)},
        "total_ops": total_ops(),
    }


# epoch bumps and bounded-memo evictions are this module's own events;
# declared so they appear in snapshots (and the namespace table) at zero
declare("perf.epoch_bumps")
declare("perf.memo_trims")
