"""Observability layer: counters, phase timers, cache registry.

See :mod:`repro.perf.counters` for the implementation.  Typical uses::

    from repro import perf

    perf.bump("fm.fallback_drop")
    with perf.phase("arraydf"):
        ...
    perf.reset_all_caches()   # cold-path benchmarking
    perf.snapshot()           # --profile JSON
"""

from repro.perf.counters import (
    MISS,
    Memo,
    absorb_snapshot,
    analysis_context,
    bump,
    bump_epoch,
    bytecode_enabled,
    counter,
    current_context,
    declare,
    dep_screen_enabled,
    enforce_memo_caps,
    epoch,
    exempt_cache,
    memo_caps,
    memo_table,
    on_reset,
    packed_kernel_enabled,
    phase,
    pred_oracle_enabled,
    register_cache,
    registered_names,
    reset_all_caches,
    reset_counters,
    set_bytecode,
    set_dep_screen,
    set_memo_cap,
    set_packed_kernel,
    set_pred_oracle,
    set_warm_fleet,
    snapshot,
    snapshot_delta,
    snapshot_max,
    total_ops,
    track_cache_object,
    tracked_cache,
    warm_fleet_enabled,
)

__all__ = [
    "MISS",
    "Memo",
    "absorb_snapshot",
    "analysis_context",
    "bump",
    "bump_epoch",
    "bytecode_enabled",
    "counter",
    "current_context",
    "declare",
    "dep_screen_enabled",
    "enforce_memo_caps",
    "epoch",
    "exempt_cache",
    "memo_caps",
    "memo_table",
    "on_reset",
    "packed_kernel_enabled",
    "phase",
    "pred_oracle_enabled",
    "register_cache",
    "registered_names",
    "reset_all_caches",
    "reset_counters",
    "set_bytecode",
    "set_dep_screen",
    "set_memo_cap",
    "set_packed_kernel",
    "set_pred_oracle",
    "set_warm_fleet",
    "snapshot",
    "snapshot_delta",
    "snapshot_max",
    "total_ops",
    "track_cache_object",
    "tracked_cache",
    "warm_fleet_enabled",
]
