"""Speedup curves comparing compiled versions of the same program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.arraydf.options import AnalysisOptions
from repro.codegen.plan import build_plan
from repro.lang.astnodes import Program
from repro.machine.costmodel import MachineModel
from repro.machine.simulate import MachineResult, simulate
from repro.partests.driver import analyze_program

Number = Union[int, float]

DEFAULT_PROCESSORS = (1, 2, 4, 8)


@dataclass
class SpeedupCurve:
    """Speedup over the 1-processor serial program, per processor count."""

    name: str
    points: Dict[int, float] = field(default_factory=dict)

    def at(self, processors: int) -> float:
        return self.points[processors]

    def best(self) -> float:
        return max(self.points.values())


def curve_from_result(
    name: str,
    result: MachineResult,
    serial_steps: float,
    model: MachineModel,
    processors: Sequence[int] = DEFAULT_PROCESSORS,
) -> SpeedupCurve:
    curve = SpeedupCurve(name)
    for p in processors:
        t = result.time(p, model)
        curve.points[p] = serial_steps / t if t > 0 else float("inf")
    return curve


def speedup_comparison(
    program: Program,
    inputs: Sequence[Number] = (),
    processors: Sequence[int] = DEFAULT_PROCESSORS,
    model: Optional[MachineModel] = None,
    configurations: Optional[Dict[str, AnalysisOptions]] = None,
    max_steps: int = 10_000_000,
) -> Dict[str, SpeedupCurve]:
    """Simulated speedups of base-compiled vs predicated-compiled code.

    The reference time is the uninstrumented serial execution, so both
    curves include their own parallelization overheads — the honest
    comparison the paper's speedup figures make.
    """
    model = model or MachineModel()
    configurations = configurations or {
        "base": AnalysisOptions.base(),
        "predicated": AnalysisOptions.predicated(),
    }
    curves: Dict[str, SpeedupCurve] = {}
    serial_steps: Optional[float] = None
    for name, opts in configurations.items():
        plan = build_plan(analyze_program(program, opts))
        result = simulate(program, plan, inputs, max_steps=max_steps)
        if serial_steps is None:
            serial_steps = result.serial_steps
        curves[name] = curve_from_result(
            name, result, serial_steps, model, processors
        )
    return curves
