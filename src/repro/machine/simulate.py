"""Plan-aware execution-cost simulation.

One interpreter run (with the plan's run-time tests evaluated in place)
records **every** dynamic instance of a plan-parallelizable loop, along
with its parent instance, serial work and iteration count.  Execution
time for any processor count is then computed in closed form:

* a *profitability threshold* models the minimum-granularity check real
  systems apply — instances below it run serially;
* per nest, the outermost profitable instance is chosen (one level of
  parallelism, as SUIF exploits); its descendants run serially inside
  it, and unprofitable ancestors fall through to profitable children;
* chosen instances cost ``work/P`` plus fork/scheduling overheads; every
  evaluated run-time test costs its predicate atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.codegen.plan import ParallelPlan
from repro.lang.astnodes import Program
from repro.machine.costmodel import MachineModel
from repro.runtime.interp import Interpreter

Number = Union[int, float]


@dataclass
class ParallelInstance:
    """One dynamic execution of a parallelizable (or tested) loop."""

    label: str
    serial_work: float
    iterations: int
    test_atoms: int = 0
    parent: int = -1  # index of the enclosing recorded instance, -1 = root


@dataclass
class MachineResult:
    """Cost-simulation output for one (program, plan, input) triple."""

    serial_steps: float
    instances: List[ParallelInstance] = field(default_factory=list)
    failed_test_atoms: int = 0  # tests evaluated false → serial version

    def chosen(self, model: MachineModel) -> List[int]:
        """Outermost profitable instance per nest (greedy selection)."""
        selected: List[int] = []
        chosen_set: set = set()
        for i, inst in enumerate(self.instances):
            # an instance is blocked if any ancestor was chosen
            p = inst.parent
            blocked = False
            while p != -1:
                if p in chosen_set:
                    blocked = True
                    break
                p = self.instances[p].parent
            if blocked:
                continue
            if inst.serial_work >= model.profit_threshold:
                selected.append(i)
                chosen_set.add(i)
        return selected

    def time(self, processors: int, model: MachineModel) -> float:
        """Execution time on *processors* under *model*."""
        total = self.serial_steps
        for i in self.chosen(model):
            inst = self.instances[i]
            total -= inst.serial_work
            total += model.parallel_time(
                inst.serial_work, inst.iterations, processors
            )
        # every evaluated run-time test costs its atoms, parallel or not
        for inst in self.instances:
            total += model.test_time(inst.test_atoms)
        total += model.test_time(self.failed_test_atoms)
        return total

    def speedup(self, processors: int, model: MachineModel) -> float:
        base = self.serial_steps
        t = self.time(processors, model)
        return base / t if t > 0 else float("inf")


class _CostHook:
    """Loop hook recording parallelizable instances at every depth."""

    def __init__(self, plan: ParallelPlan, interp_ref) -> None:
        self.plan = plan
        self.interp = interp_ref  # assigned after Interpreter creation
        self.stack: List[Optional[dict]] = []
        self.open_parents: List[int] = []  # indices of open recorded insts
        self.instances: List[ParallelInstance] = []
        self.failed_test_atoms = 0

    def enter_loop(self, stmt, frame, ran_parallel):
        lp = self.plan.plan_for(stmt)
        rec: Optional[dict] = None
        if lp is not None and lp.parallelizable:
            atoms = lp.runtime_cost if lp.mode == "two_version" else 0
            if ran_parallel:
                rec = {
                    "label": lp.label,
                    "start": self.interp[0].steps,
                    "iters": 0,
                    "atoms": atoms,
                    "parent": self.open_parents[-1]
                    if self.open_parents
                    else -1,
                    "index": None,
                }
            else:
                # test evaluated false: pay the test, run serial version
                self.failed_test_atoms += atoms
        self.stack.append(rec)
        if rec is not None:
            # reserve the slot now so children link to the right parent
            rec["index"] = len(self.instances)
            self.instances.append(
                ParallelInstance(
                    label=rec["label"],
                    serial_work=0.0,
                    iterations=0,
                    test_atoms=rec["atoms"],
                    parent=rec["parent"],
                )
            )
            self.open_parents.append(rec["index"])
        return len(self.stack) - 1

    def iter_start(self, token, ivalue):
        rec = self.stack[token]
        if rec is not None:
            rec["iters"] += 1

    def exit_loop(self, token):
        rec = self.stack.pop()
        if rec is None:
            return
        self.open_parents.pop()
        inst = self.instances[rec["index"]]
        inst.serial_work = float(self.interp[0].steps - rec["start"])
        inst.iterations = rec["iters"]


def simulate(
    program: Program,
    plan: ParallelPlan,
    inputs: Sequence[Number] = (),
    max_steps: int = 10_000_000,
) -> MachineResult:
    """Interpret once under *plan*, recording parallel-instance costs."""
    interp_ref: list = [None]
    hook = _CostHook(plan, interp_ref)
    interp = Interpreter(
        program, inputs, plan=plan, loop_hook=hook, max_steps=max_steps
    )
    interp_ref[0] = interp
    result = interp.run()
    return MachineResult(
        serial_steps=float(result.steps),
        instances=hook.instances,
        failed_test_atoms=hook.failed_test_atoms,
    )
