"""Machine cost parameters.

Unit of time: one interpreter step (≈ one executed statement).  The
defaults model a late-90s bus-based SMP in the spirit of the paper's
AlphaServer 8400: forking a parallel region costs hundreds of statement
times, per-iteration scheduling a couple, and a derived run-time test a
handful per predicate atom (the paper's "low-cost" property — compare
with an inspector, which costs on the order of the loop body itself).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated multiprocessor."""

    fork_overhead: float = 200.0  # per parallel loop instance
    sched_per_iteration: float = 0.1  # static chunked scheduling cost
    test_cost_per_atom: float = 4.0  # run-time predicate evaluation
    imbalance_factor: float = 0.03  # fractional load imbalance per proc
    profit_threshold: float = 600.0  # min serial work worth forking

    def parallel_time(
        self, serial_work: float, iterations: int, processors: int
    ) -> float:
        """Execution time of one parallel loop instance on P processors."""
        if processors <= 1:
            return serial_work
        if iterations <= 0:
            return self.fork_overhead
        p_eff = min(processors, iterations)
        chunk = serial_work / p_eff
        imbalance = chunk * self.imbalance_factor * (p_eff - 1)
        return (
            chunk
            + imbalance
            + self.fork_overhead
            + self.sched_per_iteration * (iterations / p_eff)
        )

    def test_time(self, atoms: int) -> float:
        return self.test_cost_per_atom * atoms
