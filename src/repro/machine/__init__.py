"""Deterministic multiprocessor execution-cost simulator.

Substitute for the paper's 8-processor DEC AlphaServer runs: one
instrumented interpretation records, for every dynamic instance of a
parallelized loop, its serial work and iteration count; closed-form
accounting then yields execution time for any processor count —
``work/P`` plus fork/join and scheduling overheads, plus the cost of
evaluating derived run-time tests.  Speedup *shape* (who improves, where
curves saturate) depends only on these quantities, which is why the
substitution preserves the paper's comparisons (see DESIGN.md §2).
"""

from repro.machine.costmodel import MachineModel
from repro.machine.simulate import MachineResult, simulate
from repro.machine.speedup import SpeedupCurve, speedup_comparison

__all__ = [
    "MachineModel",
    "MachineResult",
    "simulate",
    "SpeedupCurve",
    "speedup_comparison",
]
