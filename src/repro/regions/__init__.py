"""Array region representation and operations.

An :class:`ArrayRegion` describes a set of elements of one array as a
system of integer linear inequalities over the region's *dimension
variables* (``__d0``, ``__d1``, …), loop indices and symbolic parameters —
the same representation SUIF and PIPS use.  A :class:`SummarySet` is a
finite union of such regions, per array, and provides the union /
intersection / subtraction / projection operations array data-flow
analysis composes.
"""

from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.regions.operations import (
    hull_join,
    intersect_regions,
    region_contains,
)
from repro.regions.subtract import subtract_region, subtract_summary
from repro.regions.project import project_over_loop, project_vars

__all__ = [
    "ArrayRegion",
    "SummarySet",
    "hull_join",
    "intersect_regions",
    "region_contains",
    "subtract_region",
    "subtract_summary",
    "project_over_loop",
    "project_vars",
]
