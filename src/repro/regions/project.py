"""Projection of regions across loop iteration spaces.

Converting a loop-body summary (parameterized by the index ``i``) into a
loop summary means computing ``⋃_{lo <= i <= hi} region(i)`` — realized
exactly (over the rationals) by conjoining the iteration-space
constraints and Fourier–Motzkin-eliminating ``i``.

For **may** information (R, E) this union-projection is the right
operation.  For **must** information (W) the union over iterations is
also correct — every iteration's writes happen — *provided the loop
executes*; the caller guards loop summaries with the non-empty-iteration
condition where it matters.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion


def project_vars(region: ArrayRegion, variables: Iterable[str]) -> ArrayRegion:
    """Eliminate *variables* from the region's system (sound superset)."""
    return ArrayRegion(
        region.array,
        region.rank,
        eliminate_all(region.system, variables),
    )


def project_over_loop(
    region: ArrayRegion,
    index: str,
    iteration_space: LinearSystem,
) -> ArrayRegion:
    """Union of ``region(i)`` over the iteration space, by elimination."""
    conjoined = region.system & iteration_space
    return ArrayRegion(
        region.array,
        region.rank,
        eliminate_all(conjoined, [index]),
    )


def project_summary_over_loop(
    regions: Iterable[ArrayRegion],
    index: str,
    iteration_space: LinearSystem,
) -> List[ArrayRegion]:
    out: List[ArrayRegion] = []
    for r in regions:
        projected = project_over_loop(r, index, iteration_space)
        if not projected.is_empty():
            out.append(projected)
    return out


# ----------------------------------------------------------------------
# must (under-approximating) projection
# ----------------------------------------------------------------------
#
# Fourier–Motzkin projection over-approximates the union over *integer*
# iterations: ``d == 2*i`` with ``1 <= i <= n`` projects to
# ``2 <= d <= 2n`` which wrongly includes odd elements.  Using such a
# projection as a *must-write* would fabricate coverage, so must-writes
# are only projected when the elimination is provably exact over the
# integers.  A sufficient criterion covering the Fortran-benchmark
# patterns:
#
#   every constraint mentioning the index has coefficient ±1 on it and
#   integer coefficients elsewhere.
#
# Then either (a) an equality ``i == g(d, params)`` makes elimination an
# exact integer substitution, or (b) all bounds are integer-valued
# ``A_j <= i <= B_k`` whose pairwise combination ``A_j <= B_k`` implies
# an integer witness exists in the interval.


def exact_for_integers(system: LinearSystem, index: str) -> bool:
    """Is FM elimination of *index* exact over the integer points?"""
    for c in system:
        a = c.expr.coeff(index)
        if a == 0:
            continue
        if abs(a) != 1:
            return False
        if not c.expr.is_integral():
            return False
    return True


def must_project_over_loop(
    region: ArrayRegion,
    index: str,
    iteration_space: LinearSystem,
):
    """Exact union over iterations, or ``None`` when exactness fails.

    Callers treat ``None`` as "no must-write information survives the
    loop" (the sound default).
    """
    conjoined = region.system & iteration_space
    if not exact_for_integers(conjoined, index):
        return None
    return ArrayRegion(
        region.array,
        region.rank,
        eliminate_all(conjoined, [index]),
    )
