"""Interprocedural summary translation (the ``Reshape`` operation).

Translating a callee's array summaries to a call site involves:

* binding formal scalar parameters to the actual argument expressions
  (affine actuals substitute exactly; non-affine actuals become fresh
  unconstrained symbols);
* renaming callee-local symbols to fresh names (capture avoidance);
* mapping formal arrays onto actual arrays.

Array mapping implements three strategies, in order:

1. **direct** — same rank and provably equal leading extents (the last
   formal extent may be assumed-size ``*``): rename the array, keep the
   dimension variables;
2. **linearize** — rank change with *constant* extents on both sides:
   exact translation through the column-major linear offset equation,
   eliminating the auxiliary offset variable;
3. **optimistic/default pair** — rank change with *symbolic* extents
   (the linearization equation would be non-linear).  Following the
   paper: when the callee provably covers its whole declared space, the
   caller-side value is "whole actual array" **guarded by the extracted
   size/divisibility predicate** (e.g. ``m == n1*n2`` or
   ``mod(m, n1) == 0``), paired with a conservative default.

Must-summaries default to ∅ (no coverage claimed), may-summaries default
to the whole actual array (any element may be touched).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.ir.exprtools import to_affine
from repro.ir.symboltable import SymbolTable
from repro.lang.astnodes import ASSUMED, Call, Expr, VarRef
from repro.lang.prettyprint import expr_str
from repro.linalg.constraint import Constraint
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.system import LinearSystem
from repro.predicates.atoms import DivAtom, LinAtom, OpaqueAtom
from repro.predicates.formula import Predicate, TRUE, p_atom
from repro.regions.region import ArrayRegion
from repro.regions.summary import SummarySet
from repro.symbolic.affine import AffineExpr
from repro.symbolic.terms import FreshNameSource, dim_var

GuardedSummary = Tuple[Predicate, SummarySet]


class CallContext:
    """Everything needed to translate one call site."""

    def __init__(
        self,
        call: Call,
        caller_symtab: SymbolTable,
        callee_symtab: SymbolTable,
        fresh: FreshNameSource,
    ) -> None:
        self.call = call
        self.caller = caller_symtab
        self.callee = callee_symtab
        self.fresh = fresh
        callee_unit = callee_symtab.unit
        self.formal_of: Dict[str, Expr] = dict(
            zip(callee_unit.params, call.args)
        )

    # -- scalars -----------------------------------------------------------
    def scalar_bindings(self) -> Dict[str, AffineExpr]:
        """Substitution for formal scalars and callee locals.

        Formal scalars bind to the affine value of the actual argument
        (or a fresh symbol when non-affine).  Callee locals/symbolics are
        renamed to fresh caller-side symbols.
        """
        bindings: Dict[str, AffineExpr] = {}
        for formal, actual in self.formal_of.items():
            if self.callee.is_array(formal):
                continue
            affine = to_affine(actual)
            if affine is None:
                affine = AffineExpr.var(self.fresh.fresh(formal))
            bindings[formal] = affine
        return bindings

    def local_renames(self, summary_vars) -> Dict[str, AffineExpr]:
        """Fresh symbols for callee names not bound by parameters."""
        out: Dict[str, AffineExpr] = {}
        for v in sorted(summary_vars):
            if v.startswith("__"):
                continue  # dimension or generated variables pass through
            if v in self.formal_of:
                continue
            out[v] = AffineExpr.var(self.fresh.fresh(v))
        return out

    # -- arrays ---------------------------------------------------------
    def actual_array_for(self, formal: str) -> Optional[str]:
        """The caller array a whole-array actual names, else ``None``."""
        actual = self.formal_of.get(formal)
        if isinstance(actual, VarRef) and self.caller.is_array(actual.name):
            return actual.name
        return None


def _const_extents(
    symtab: SymbolTable, array: str
) -> Optional[List[int]]:
    """All extents as ints, or ``None`` (symbolic/assumed present)."""
    out: List[int] = []
    for e in symtab.affine_extents(array):
        if e is None or not e.is_constant() or e.constant.denominator != 1:
            return None
        out.append(int(e.constant))
    return out


def _extents_equal(
    callee: SymbolTable, formal: str, caller: SymbolTable, actual: str
) -> bool:
    """Provably matching layout for a direct rename.

    All formal extents except possibly the last must equal the caller's;
    the final formal extent may be assumed-size.
    """
    fe = callee.extents(formal)
    ae = caller.extents(actual)
    if len(fe) != len(ae):
        return False
    for k, (f, a) in enumerate(zip(fe, ae)):
        last = k == len(fe) - 1
        if f == ASSUMED:
            return last
        if a == ASSUMED:
            return False
        fa, aa = to_affine(f), to_affine(a)
        if fa is None or aa is None or fa != aa:
            if not last:
                return False
            # unequal final extents: direct rename is still layout-safe
            # for reads if the formal is not larger; be conservative and
            # reject, letting linearization handle it
            return False
    return True


def _linear_offset(extents: Sequence[int], dvs: Sequence[str]) -> AffineExpr:
    """Column-major zero-based offset of a point (1-based dims)."""
    total = AffineExpr.ZERO
    stride = 1
    for k, dv in enumerate(dvs):
        total = total + (AffineExpr.var(dv) - 1) * stride
        if k < len(extents):
            stride *= extents[k]
    return total


_RESHAPE = perf.memo_table("region.reshape", cap=16384)


def _translate_region_linear(
    region: ArrayRegion,
    actual: str,
    callee_ext: List[int],
    caller_ext: List[int],
) -> ArrayRegion:
    """Exact rank-changing translation with constant extents (memoized).

    Equates the callee-side and caller-side linear offsets through an
    auxiliary variable and eliminates the callee dimensions.  The
    callee-dimension temporaries use fixed reserved names (``__rs{k}``)
    rather than fresh symbols: they are always eliminated below, so they
    can never leak, and fixed names make the translation a pure function
    of its arguments — cacheable, and independent of call order.
    """
    key = (region, actual, tuple(callee_ext), tuple(caller_ext))
    cached = _RESHAPE.data.get(key)
    if cached is not None:
        _RESHAPE.hits += 1
        return cached
    _RESHAPE.misses += 1
    callee_rank = region.rank
    caller_rank = len(caller_ext)
    # rename callee dims to reserved temporaries (always eliminated)
    tmp = {dim_var(k): f"__rs{k}" for k in range(callee_rank)}
    sys = region.system.rename(tmp)
    callee_dvs = [tmp[dim_var(k)] for k in range(callee_rank)]
    caller_dvs = [dim_var(k) for k in range(caller_rank)]

    offset_callee = _linear_offset(callee_ext, callee_dvs)
    offset_caller = _linear_offset(caller_ext, caller_dvs)
    sys = sys & LinearSystem([Constraint.eq(offset_callee, offset_caller)])
    # bound both coordinate systems by their declared boxes
    box = []
    for dv, ext in zip(callee_dvs, callee_ext):
        box.append(Constraint.ge(AffineExpr.var(dv), AffineExpr.const(1)))
        box.append(Constraint.le(AffineExpr.var(dv), AffineExpr.const(ext)))
    for dv, ext in zip(caller_dvs, caller_ext):
        box.append(Constraint.ge(AffineExpr.var(dv), AffineExpr.const(1)))
        box.append(Constraint.le(AffineExpr.var(dv), AffineExpr.const(ext)))
    sys = sys & LinearSystem(box)
    sys = eliminate_all(sys, callee_dvs)
    result = ArrayRegion(actual, caller_rank, sys)
    _RESHAPE.data[key] = result
    return result


def _whole_caller_array(caller: SymbolTable, actual: str) -> ArrayRegion:
    return ArrayRegion.whole(
        actual, caller.rank(actual), caller.affine_extents(actual)
    )


def _covers_whole_formal(
    regions: Sequence[ArrayRegion], callee: SymbolTable, formal: str
) -> bool:
    """Does the summary provably cover the formal's declared space?

    Assumed-size formals are treated as 'whole' when the final dimension
    is unbounded above in the covering region.
    """
    extents = callee.affine_extents(formal)
    whole = ArrayRegion.whole(formal, callee.rank(formal), extents)
    from repro.regions.subtract import subtract_summary

    residue = subtract_summary([whole], list(regions))
    return all(r.is_empty() for r in residue)


def _size_expr(symtab: SymbolTable, array: str) -> Optional[str]:
    """Source text of the total size, for opaque size predicates."""
    parts = []
    for e in symtab.extents(array):
        if e == ASSUMED:
            return None
        parts.append(f"({expr_str(e)})")
    return "*".join(parts)


def translate_array_summary(
    regions: Sequence[ArrayRegion],
    formal: str,
    ctx: CallContext,
    must: bool,
    bindings=None,
) -> List[Tuple[Predicate, Tuple[ArrayRegion, ...]]]:
    """Translate one formal array's regions to the caller side.

    *regions* are in the **callee** namespace; *bindings* map formal
    scalars (and renamed locals) to caller-side expressions and are
    applied per strategy — in particular, the whole-coverage check of
    the optimistic path runs *before* substitution, against the formal's
    own declared extents.

    Returns guarded alternatives ordered most-precise first; the last
    entry is always the unguarded (TRUE) default.
    """
    bindings = bindings or {}
    covers_whole = _covers_whole_formal(regions, ctx.callee, formal)
    regions = [r.substitute(bindings) for r in regions]
    actual = ctx.actual_array_for(formal)
    if actual is None:
        # array element or expression passed: unsupported aliasing shape
        name = (
            ctx.formal_of[formal].name
            if isinstance(ctx.formal_of[formal], VarRef)
            else None
        )
        if name is not None and ctx.caller.is_scalar(name):
            # scalar passed where array expected: treat as that scalar —
            # model as rank-0 unsupported; conservative fallback below
            pass
        if must:
            return [(TRUE, ())]
        if name is not None and ctx.caller.is_array(name):
            return [(TRUE, (_whole_caller_array(ctx.caller, name),))]
        return [(TRUE, ())]

    callee_rank = ctx.callee.rank(formal)
    caller_rank = ctx.caller.rank(actual)

    # 1. direct rename
    if callee_rank == caller_rank and _extents_equal(
        ctx.callee, formal, ctx.caller, actual
    ):
        return [(TRUE, tuple(r.rename_array(actual) for r in regions))]

    # 2. exact linearization with constant extents
    callee_ext = _const_extents(ctx.callee, formal)
    caller_ext = _const_extents(ctx.caller, actual)
    if callee_ext is not None and caller_ext is not None:
        translated = tuple(
            _translate_region_linear(r, actual, callee_ext, caller_ext)
            for r in regions
        )
        return [(TRUE, translated)]

    # 3. symbolic extents: optimistic whole-array + default
    default: Tuple[Predicate, Tuple[ArrayRegion, ...]]
    if must:
        default = (TRUE, ())
    else:
        default = (TRUE, (_whole_caller_array(ctx.caller, actual),))

    if covers_whole:
        pred = _size_match_predicate(ctx, formal, actual)
        if pred is not None:
            whole = _whole_caller_array(ctx.caller, actual)
            if pred.is_true():
                return [(pred, (whole,))]
            return [(pred, (whole,)), default]
    return [default]


def _size_match_predicate(
    ctx: CallContext, formal: str, actual: str
) -> Optional[Predicate]:
    """The extracted predicate under which callee coverage of its whole
    formal space equals the whole actual array.

    * both total sizes expressible → affine equality or opaque product
      equality (run-time evaluable);
    * assumed-size 1-D formal written up to some bound B → caller-side
      size divisibility/size-equality handled by the caller's analysis;
      here we require declared sizes on both sides.
    """
    callee_size = _size_expr(ctx.callee, formal)
    caller_size = _size_expr(ctx.caller, actual)
    if callee_size is None or caller_size is None:
        return None
    # substitute actual expressions for formal scalar names in the text
    bindings = {
        f: expr_str(a)
        for f, a in ctx.formal_of.items()
        if not ctx.callee.is_array(f)
    }
    text = callee_size
    for f, rep in bindings.items():
        text = _replace_ident(text, f, rep)
    if text == caller_size:
        return TRUE
    # try the affine route: sizes as affine expressions
    callee_aff = _total_affine_size(ctx, formal)
    caller_aff = _caller_affine_size(ctx, actual)
    if callee_aff is not None and caller_aff is not None:
        return p_atom(LinAtom.eq(callee_aff, caller_aff))
    reads = _idents_in(text) | _idents_in(caller_size)
    return p_atom(OpaqueAtom(f"{text} == {caller_size}", tuple(reads)))


def _total_affine_size(ctx: CallContext, formal: str) -> Optional[AffineExpr]:
    total = AffineExpr.const(1)
    bindings = ctx.scalar_bindings()
    for e in ctx.callee.affine_extents(formal):
        if e is None:
            return None
        e = e.substitute(bindings)
        if total.is_constant():
            if e.is_constant():
                total = AffineExpr.const(total.constant * e.constant)
            else:
                total = e * total.constant
        elif e.is_constant():
            total = total * e.constant
        else:
            return None  # symbolic × symbolic: non-linear
    return total


def _caller_affine_size(ctx: CallContext, actual: str) -> Optional[AffineExpr]:
    total = AffineExpr.const(1)
    for e in ctx.caller.affine_extents(actual):
        if e is None:
            return None
        if total.is_constant():
            if e.is_constant():
                total = AffineExpr.const(total.constant * e.constant)
            else:
                total = e * total.constant
        elif e.is_constant():
            total = total * e.constant
        else:
            return None
    return total


def _replace_ident(text: str, ident: str, replacement: str) -> str:
    """Whole-identifier textual replacement."""
    import re

    return re.sub(rf"\b{re.escape(ident)}\b", replacement, text)


def _idents_in(text: str) -> set:
    import re

    return set(re.findall(r"[a-z_][a-z0-9_]*", text))


def translate_summary_set(
    summary: SummarySet,
    ctx: CallContext,
    must: bool,
) -> List[GuardedSummary]:
    """Translate a whole summary set to the caller side.

    Combines per-array alternatives; to keep the alternative count
    linear, at most one array contributes a guarded (non-default)
    value — the first one found — and the rest use their defaults.
    """
    bindings = ctx.scalar_bindings()
    renames = ctx.local_renames(
        {
            v
            for r in summary.all_regions()
            for v in r.parameters()
        }
    )
    bindings.update(renames)

    base: Dict[str, Tuple[ArrayRegion, ...]] = {}
    guarded_extra: Optional[Tuple[Predicate, str, Tuple[ArrayRegion, ...]]] = None

    for formal in summary.arrays():
        if formal not in ctx.formal_of or not ctx.callee.is_array(formal):
            # accesses to callee-local arrays never escape; skip them
            continue
        regions = list(summary.regions(formal))
        alts = translate_array_summary(regions, formal, ctx, must, bindings)
        pred0, regions0 = alts[0]
        if pred0.is_true():
            base[_first_array(regions0, formal)] = regions0
        elif guarded_extra is None:
            guarded_extra = (pred0, formal, regions0)
            # default for this array goes into base
            dpred, dregions = alts[-1]
            if dregions:
                base[_first_array(dregions, formal)] = dregions
        else:
            dpred, dregions = alts[-1]
            if dregions:
                base[_first_array(dregions, formal)] = dregions

    default_set = SummarySet(
        {k: v for k, v in base.items() if v}
    )
    if guarded_extra is None:
        return [(TRUE, default_set)]
    pred, formal, regions0 = guarded_extra
    optimistic: Dict[str, Tuple[ArrayRegion, ...]] = dict(base)
    optimistic[_first_array(regions0, formal)] = regions0
    return [
        (pred, SummarySet({k: v for k, v in optimistic.items() if v})),
        (TRUE, default_set),
    ]


def _first_array(regions: Tuple[ArrayRegion, ...], fallback: str) -> str:
    return regions[0].array if regions else fallback
