"""Exact region subtraction (producing a union of convex pieces).

For convex ``A`` and ``B`` over integer points::

    A − B = ⋃_{c ∈ B}  A ∧ ¬c

where ``¬(e <= 0)`` is the integer complement ``e >= 1`` and an equality
splits into its two strict sides.  Each piece is convex; empty pieces are
dropped.  The operation is exact over the integers (up to the rational
feasibility filter, which may *keep* an integer-empty piece — sound,
since subtraction results are used as over-approximations of what
*remains*, e.g. still-exposed reads).
"""

from __future__ import annotations

from typing import List

from repro import perf
from repro.linalg.constraint import Constraint, Rel
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion

_SUBTRACT = perf.memo_table("region.subtract", cap=16384)


def _complement_pieces(constraint: Constraint) -> List[Constraint]:
    """The constraints whose disjunction is ¬constraint (integer domain)."""
    if constraint.rel is Rel.LE:
        return [constraint.negate()]
    # ¬(e == 0): e <= -1 or e >= 1
    return [
        Constraint(constraint.expr + 1, Rel.LE),
        Constraint(-constraint.expr + 1, Rel.LE),
    ]


def subtract_region(a: ArrayRegion, b: ArrayRegion) -> List[ArrayRegion]:
    """``a − b`` as a list of disjoint convex regions (memoized).

    Regions of different arrays don't interact: returns ``[a]``.
    Regions are interned, so the memo key hashes in O(1); a fresh list
    is returned each call so callers may extend/consume it freely.
    """
    key = (a, b)
    cached = _SUBTRACT.data.get(key)
    if cached is not None:
        _SUBTRACT.hits += 1
        return list(cached)
    _SUBTRACT.misses += 1
    result = _subtract_region_impl(a, b)
    _SUBTRACT.data[key] = tuple(result)
    return result


def _subtract_region_impl(a: ArrayRegion, b: ArrayRegion) -> List[ArrayRegion]:
    """The unmemoized subtraction (exposed for cache-correctness tests)."""
    if a.array != b.array or a.rank != b.rank:
        return [a]
    if b.system.is_universe():
        return []
    pieces: List[ArrayRegion] = []
    # carve A progressively: piece_k = A ∧ c_1 ∧ … ∧ c_{k-1} ∧ ¬c_k keeps
    # the pieces disjoint
    prefix = LinearSystem()
    for c in b.system:
        for neg in _complement_pieces(c):
            piece = ArrayRegion(a.array, a.rank, a.system & prefix & LinearSystem([neg]))
            if not piece.is_empty():
                pieces.append(piece)
        prefix = prefix & LinearSystem([c])
    return pieces


def subtract_summary(
    regions: List[ArrayRegion], writes: List[ArrayRegion], budget: int = 24
) -> List[ArrayRegion]:
    """Subtract every write region from every region in *regions*.

    Used by the exposed-read computation ``E2 − W1``.  If the piece count
    exceeds *budget* the remaining subtractions are skipped for the
    affected region (keeping the not-yet-subtracted region — a sound
    over-approximation of what stays exposed).
    """
    current = list(regions)
    for w in writes:
        if len(w.system) > 2 * budget:
            continue  # complementing a huge write is never profitable
        next_pieces: List[ArrayRegion] = []
        for r in current:
            if len(next_pieces) > budget or len(r.system) > 2 * budget:
                next_pieces.append(r)
                continue
            next_pieces.extend(subtract_region(r, w))
        current = next_pieces
        if len(current) > budget:
            break
    return current
