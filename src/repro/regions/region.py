"""A single convex array region.

``ArrayRegion("a", 2, system)`` describes the set of elements
``a(__d0, __d1)`` whose dimension variables satisfy *system* (which may
also mention loop indices and symbolic parameters; those are free
variables parameterizing the region).

Regions are immutable, **interned** value objects: structurally equal
regions are pointer-equal, so they serve as O(1) memo keys for the region
algebra (subtraction, coalescing, projection).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from repro import perf
from repro.linalg.constraint import Constraint
from repro.linalg.feasibility import is_feasible
from repro.linalg.implication import system_implies
from repro.linalg.system import LinearSystem
from repro.symbolic.affine import AffineExpr
from repro.symbolic.terms import dim_var, is_dim_var, iter_dim_vars

_INTERN = perf.memo_table("region.intern")


class ArrayRegion:
    """An immutable, interned convex region of one array."""

    __slots__ = ("array", "rank", "system", "_hash", "_empty")

    def __new__(cls, array: str, rank: int, system: LinearSystem) -> "ArrayRegion":
        key = (array, rank, system)
        self = _INTERN.data.get(key)
        if self is not None:
            _INTERN.hits += 1
            return self
        _INTERN.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "rank", rank)
        object.__setattr__(self, "system", system)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_empty", None)
        _INTERN.data[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError("ArrayRegion is immutable")

    def __reduce__(self):
        # re-intern on unpickle (canonical identity in every process)
        return (ArrayRegion, (self.array, self.rank, self.system))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_subscripts(
        array: str, subscripts: Iterable[Optional[AffineExpr]]
    ) -> "ArrayRegion":
        """The single-element region ``array(e0, e1, …)``.

        A ``None`` subscript (non-affine) leaves that dimension
        unconstrained — the sound over-approximation of an unanalyzable
        subscript.
        """
        constraints = []
        subs = list(subscripts)
        for k, e in enumerate(subs):
            if e is not None:
                constraints.append(
                    Constraint.eq(AffineExpr.var(dim_var(k)), e)
                )
        return ArrayRegion(array, len(subs), LinearSystem(constraints))

    @staticmethod
    def whole(array: str, rank: int, extents=None) -> "ArrayRegion":
        """The region covering the declared array.

        *extents* is an optional list of per-dimension affine extents
        (1-based Fortran arrays: ``1 <= __dk <= extent``); ``None``
        entries leave the dimension unbounded.
        """
        constraints = []
        if extents is not None:
            for k, ext in enumerate(extents):
                dv = AffineExpr.var(dim_var(k))
                constraints.append(Constraint.ge(dv, AffineExpr.const(1)))
                if ext is not None:
                    constraints.append(Constraint.le(dv, ext))
        return ArrayRegion(array, rank, LinearSystem(constraints))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Proven-empty test (conservative: False = maybe non-empty)."""
        cached = self._empty
        if cached is None:
            cached = not is_feasible(self.system)
            object.__setattr__(self, "_empty", cached)
        return cached

    def dim_vars(self) -> Tuple[str, ...]:
        return tuple(iter_dim_vars(self.rank))

    def parameters(self) -> FrozenSet[str]:
        """Free non-dimension variables (loop indices, symbolics)."""
        return frozenset(
            v for v in self.system.variables() if not is_dim_var(v)
        )

    def contains(self, other: "ArrayRegion") -> bool:
        """Proven containment ``other ⊆ self`` (same array required)."""
        if self.array != other.array:
            return False
        return system_implies(other.system, self.system)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def conjoin(self, extra: LinearSystem) -> "ArrayRegion":
        return ArrayRegion(self.array, self.rank, self.system & extra)

    def substitute(self, bindings: Mapping[str, AffineExpr]) -> "ArrayRegion":
        return ArrayRegion(self.array, self.rank, self.system.substitute(bindings))

    def rename(self, mapping: Mapping[str, str]) -> "ArrayRegion":
        return ArrayRegion(self.array, self.rank, self.system.rename(mapping))

    def rename_array(self, new_name: str) -> "ArrayRegion":
        return ArrayRegion(new_name, self.rank, self.system)

    def contains_point(self, point, env: Mapping[str, int]) -> bool:
        """Membership of a concrete element under parameter values *env*.

        *point* gives the subscript value for each dimension in order
        (Fortran-style values, verbatim — no index-base shifting).
        """
        full = dict(env)
        for k, v in enumerate(point):
            full[dim_var(k)] = v
        return self.system.evaluate(full)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, ArrayRegion):
            return NotImplemented
        # distinct-but-equal instances only exist across a cache reset
        return (
            self.array == other.array
            and self.rank == other.rank
            and self.system == other.system
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"ArrayRegion({self.array}[{self.rank}], {self.system})"

    def __str__(self):
        return f"{self.array}{{{self.system}}}"
