"""Binary operations on single regions: intersection, containment, hull.

Subtraction (the non-convex one) lives in
:mod:`repro.regions.subtract`; projection in
:mod:`repro.regions.project`.
"""

from __future__ import annotations

from typing import Optional

from repro import perf
from repro.linalg.implication import entails, system_implies
from repro.linalg.system import LinearSystem
from repro.regions.region import ArrayRegion

_COALESCE = perf.memo_table("region.coalesce", cap=16384)


def intersect_regions(a: ArrayRegion, b: ArrayRegion) -> Optional[ArrayRegion]:
    """Exact intersection; ``None`` for regions of different arrays."""
    if a.array != b.array or a.rank != b.rank:
        return None
    return ArrayRegion(a.array, a.rank, a.system & b.system)


def region_contains(outer: ArrayRegion, inner: ArrayRegion) -> bool:
    """Proven ``inner ⊆ outer``; ``False`` means *could not prove*."""
    return outer.contains(inner)


def hull_join(a: ArrayRegion, b: ArrayRegion) -> ArrayRegion:
    """A convex over-approximation of ``a ∪ b``.

    Keeps exactly the constraints of one operand entailed by the other
    (the "constraint hull").  This is the widening applied when a
    summary set exceeds its region budget; it is sound (a superset of
    the union) but may lose precision.
    """
    if a.array != b.array or a.rank != b.rank:
        raise ValueError("hull_join requires regions of the same array")
    kept = [c for c in a.system if entails(b.system, c)]
    kept += [c for c in b.system if entails(a.system, c)]
    return ArrayRegion(a.array, a.rank, LinearSystem(kept))


# systems larger than this skip the exact hull-merge attempt — the
# quadratic subtraction check dominates analysis time on big regions
COALESCE_LIMIT = 6


def try_coalesce(a: ArrayRegion, b: ArrayRegion) -> Optional[ArrayRegion]:
    """Merge two regions exactly when one contains the other, or when
    their constraint hull is proven equal to the union (memoized).

    The second case covers the ubiquitous adjacent-interval pattern
    (e.g. ``1 <= d <= k`` ∪ ``k+1 <= d <= n``): the hull is exact iff
    ``hull − a − b`` is empty, which we check with the exact subtractor.
    Returns ``None`` when no exact merge is found.  Regions with large
    constraint systems only attempt the cheap containment merges.
    """
    key = (a, b)
    cached = _COALESCE.data.get(key, perf.MISS)
    if cached is not perf.MISS:
        _COALESCE.hits += 1
        return cached
    _COALESCE.misses += 1
    result = _try_coalesce_impl(a, b)
    _COALESCE.data[key] = result
    return result


def _try_coalesce_impl(a: ArrayRegion, b: ArrayRegion) -> Optional[ArrayRegion]:
    if a.array != b.array or a.rank != b.rank:
        return None
    if len(a.system) > COALESCE_LIMIT or len(b.system) > COALESCE_LIMIT:
        # even the containment checks are FM-heavy on large systems;
        # only a syntactic subset test is worth it here
        if set(b.system).issuperset(a.system):
            return a  # b has more constraints: b ⊆ a
        if set(a.system).issuperset(b.system):
            return b
        return None
    if a.contains(b):
        return a
    if b.contains(a):
        return b
    hull = hull_join(a, b)
    from repro.regions.subtract import subtract_region

    residue = subtract_region(hull, a)
    residue = [
        r for piece in residue for r in subtract_region(piece, b)
    ]
    if all(r.is_empty() for r in residue):
        return hull
    return None
