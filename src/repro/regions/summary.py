"""Summary sets: finite unions of convex regions, per array.

A :class:`SummarySet` is the value the array data-flow analysis
manipulates — one list of convex regions per array name.  May-summaries
(R, W, E) tolerate over-approximation; must-summaries (definitely
written) tolerate only under-approximation, and the operations that
differ are provided in both flavours (``union``/``intersect_pairwise``,
``project_may``/``project_must``).

Sets are immutable; a per-array region budget triggers exact coalescing
first and hull widening as a last resort (may-summaries only — the
must widening is *dropping* regions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.linalg.system import LinearSystem
from repro.regions.operations import hull_join, intersect_regions, try_coalesce
from repro.regions.project import (
    must_project_over_loop,
    project_over_loop,
)
from repro import perf
from repro.regions.region import ArrayRegion
from repro.regions.subtract import subtract_summary

REGION_BUDGET = 12

#: may-union results keyed by the (value-hashable) operand pair and
#: budget; warm re-analyses replay identical union chains, and the
#: regions inside are interned so re-returning a cached set is safe
_UNION = perf.memo_table("summary.union", cap=16384)


class SummarySet:
    """An immutable map ``array name → tuple of convex regions``."""

    __slots__ = ("_data", "_hash")

    def __init__(
        self, data: Optional[Mapping[str, Iterable[ArrayRegion]]] = None
    ) -> None:
        clean: Dict[str, Tuple[ArrayRegion, ...]] = {}
        if data:
            for name, regions in data.items():
                kept = tuple(r for r in regions if not r.is_empty())
                if kept:
                    clean[name] = kept
        object.__setattr__(self, "_data", clean)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("SummarySet is immutable")

    def __reduce__(self):
        return (SummarySet, (self._data,))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "SummarySet":
        return _EMPTY

    @staticmethod
    def of(*regions: ArrayRegion) -> "SummarySet":
        data: Dict[str, List[ArrayRegion]] = {}
        for r in regions:
            data.setdefault(r.array, []).append(r)
        return SummarySet(data)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arrays(self) -> Tuple[str, ...]:
        return tuple(sorted(self._data))

    def regions(self, array: str) -> Tuple[ArrayRegion, ...]:
        return self._data.get(array, ())

    def all_regions(self) -> Iterator[ArrayRegion]:
        for name in sorted(self._data):
            yield from self._data[name]

    def is_empty(self) -> bool:
        return not self._data

    def region_count(self) -> int:
        return sum(len(v) for v in self._data.values())

    def restricted_to(self, array: str) -> "SummarySet":
        if array not in self._data:
            return _EMPTY
        return SummarySet({array: self._data[array]})

    def covers(self, other: "SummarySet") -> bool:
        """Proven ``other ⊆ self``: every region of *other* must be
        contained in a single region of self (sufficient condition) or
        have an empty residue after exact subtraction."""
        for name in other.arrays():
            mine = self.regions(name)
            for r in other.regions(name):
                if any(m.contains(r) for m in mine):
                    continue
                residue = subtract_summary([r], list(mine))
                if any(not p.is_empty() for p in residue):
                    return False
        return True

    # ------------------------------------------------------------------
    # lattice operations
    # ------------------------------------------------------------------
    def union(self, other: "SummarySet", budget: int = REGION_BUDGET) -> "SummarySet":
        """May-union with exact coalescing and hull widening at budget
        (memoized; the operation is pure over interned regions)."""
        if not other._data and all(
            len(v) <= budget for v in self._data.values()
        ):
            return self
        if not self._data and all(
            len(v) <= budget for v in other._data.values()
        ):
            return other
        key = (self, other, budget)
        cached = _UNION.data.get(key)
        if cached is not None:
            _UNION.hits += 1
            return cached
        _UNION.misses += 1
        data: Dict[str, List[ArrayRegion]] = {
            k: list(v) for k, v in self._data.items()
        }
        for name, regions in other._data.items():
            data.setdefault(name, [])
            for r in regions:
                data[name] = _insert_region(data[name], r)
        for name in list(data):
            if len(data[name]) > budget:
                data[name] = _widen(data[name], budget)
        result = SummarySet(data)
        _UNION.data[key] = result
        return result

    def intersect_pairwise(self, other: "SummarySet") -> "SummarySet":
        """Exact intersection of two unions (pairwise distribution).

        Used for the must-write meet at control-flow joins:
        ``(A ∪ B) ∩ (C ∪ D) = AC ∪ AD ∪ BC ∪ BD``.
        """
        data: Dict[str, List[ArrayRegion]] = {}
        for name in self.arrays():
            if name not in other._data:
                continue
            pieces: List[ArrayRegion] = []
            for a in self.regions(name):
                for b in other.regions(name):
                    x = intersect_regions(a, b)
                    if x is not None and not x.is_empty():
                        pieces = _insert_region(pieces, x)
            if pieces:
                data[name] = pieces
        return SummarySet(data)

    def subtract(self, writes: "SummarySet") -> "SummarySet":
        """Exact subtraction (piece-wise); used for ``E2 − M1``."""
        data: Dict[str, List[ArrayRegion]] = {}
        for name in self.arrays():
            pieces = subtract_summary(
                list(self.regions(name)), list(writes.regions(name))
            )
            pieces = [p for p in pieces if not p.is_empty()]
            if pieces:
                data[name] = pieces
        return SummarySet(data)

    def intersect_nonempty(self, other: "SummarySet") -> bool:
        """Could the two summaries overlap?  (Conservative: ``True`` on
        any feasible pairwise intersection.)"""
        for name in self.arrays():
            for a in self.regions(name):
                for b in other.regions(name):
                    x = intersect_regions(a, b)
                    if x is not None and not x.is_empty():
                        return True
        return False

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def conjoin_all(self, extra: LinearSystem) -> "SummarySet":
        """Conjoin constraints into every region (predicate embedding)."""
        return SummarySet(
            {
                name: [r.conjoin(extra) for r in regions]
                for name, regions in self._data.items()
            }
        )

    def substitute(self, bindings) -> "SummarySet":
        return SummarySet(
            {
                name: [r.substitute(bindings) for r in regions]
                for name, regions in self._data.items()
            }
        )

    def rename_vars(self, mapping: Mapping[str, str]) -> "SummarySet":
        return SummarySet(
            {
                name: [r.rename(mapping) for r in regions]
                for name, regions in self._data.items()
            }
        )

    def project_may(
        self, index: str, iteration_space: LinearSystem
    ) -> "SummarySet":
        """Over-approximating projection across a loop (R, W, E)."""
        return SummarySet(
            {
                name: [
                    project_over_loop(r, index, iteration_space)
                    for r in regions
                ]
                for name, regions in self._data.items()
            }
        )

    def project_must(
        self, index: str, iteration_space: LinearSystem
    ) -> "SummarySet":
        """Under-approximating projection: regions whose elimination is
        not provably integer-exact are dropped."""
        data: Dict[str, List[ArrayRegion]] = {}
        for name, regions in self._data.items():
            kept: List[ArrayRegion] = []
            for r in regions:
                projected = must_project_over_loop(r, index, iteration_space)
                if projected is not None and not projected.is_empty():
                    kept.append(projected)
            if kept:
                data[name] = kept
        return SummarySet(data)

    def drop_arrays(self, names: Iterable[str]) -> "SummarySet":
        names = set(names)
        return SummarySet(
            {k: v for k, v in self._data.items() if k not in names}
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, SummarySet):
            return NotImplemented
        if hash(self) != hash(other):
            return False
        if set(self._data) != set(other._data):
            return False
        return all(
            set(self._data[k]) == set(other._data[k]) for k in self._data
        )

    def __hash__(self):
        cached = self._hash
        if cached is None:
            cached = hash(
                tuple(
                    (k, frozenset(v))
                    for k, v in sorted(self._data.items())
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self):
        if not self._data:
            return "SummarySet(∅)"
        parts = [
            f"{name}: {len(regions)} region(s)"
            for name, regions in sorted(self._data.items())
        ]
        return f"SummarySet({'; '.join(parts)})"

    def __str__(self):
        if not self._data:
            return "∅"
        parts = []
        for name in sorted(self._data):
            for r in self._data[name]:
                parts.append(str(r))
        return " ∪ ".join(parts)


_EMPTY = SummarySet()


def _insert_region(
    regions: List[ArrayRegion], new: ArrayRegion
) -> List[ArrayRegion]:
    """Insert with exact coalescing against existing regions."""
    if new.is_empty():
        return regions
    out: List[ArrayRegion] = []
    current = new
    for r in regions:
        merged = try_coalesce(r, current)
        if merged is not None:
            current = merged
        else:
            out.append(r)
    out.append(current)
    return out


def _widen(regions: List[ArrayRegion], budget: int) -> List[ArrayRegion]:
    """Hull-join smallest-system regions until within budget (may only).

    Large systems use the syntactic constraint intersection instead of
    the semantic hull — weaker but sound, and O(n) instead of FM-heavy.
    """
    from repro.regions.operations import COALESCE_LIMIT

    out = list(regions)
    while len(out) > budget:
        out.sort(key=lambda r: len(r.system))
        a = out.pop(0)
        b = out.pop(0)
        if len(a.system) > COALESCE_LIMIT or len(b.system) > COALESCE_LIMIT:
            common = set(a.system) & set(b.system)
            merged = ArrayRegion(a.array, a.rank, LinearSystem(common))
        else:
            merged = hull_join(a, b)
        out.append(merged)
    return out
