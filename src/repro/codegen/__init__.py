"""Parallel code generation.

Two artifacts are produced from a
:class:`~repro.partests.driver.ProgramResult`:

* a :class:`~repro.codegen.plan.ParallelPlan` — the machine-facing
  schedule (which loops run parallel, under which run-time predicate,
  with which privatized storage) consumed by the interpreter and the
  multiprocessor cost simulator;
* a transformed AST (:mod:`repro.codegen.twoversion`) where each
  run-time-tested loop becomes the paper's two-version form::

      if (<derived predicate>) then
        <parallel version>
      else
        <original serial version>
      endif
"""

from repro.codegen.plan import LoopPlan, ParallelPlan, build_plan
from repro.codegen.twoversion import transform_program
from repro.codegen.report import format_report

__all__ = [
    "LoopPlan",
    "ParallelPlan",
    "build_plan",
    "transform_program",
    "format_report",
]
