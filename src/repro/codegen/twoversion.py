"""Source-to-source two-version loop generation.

Run-time-tested loops are rewritten into the paper's guarded form —
an ``if`` on the derived predicate selecting between a parallel version
and the original serial loop.  Parallel loops keep their body and gain a
comment-visible label suffix so the output is inspectable.

The transform preserves semantics by construction (both versions carry
identical bodies); ``tests/codegen`` verifies this by interpreting the
original and transformed programs on random inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.codegen.plan import ParallelPlan
from repro.lang.astnodes import (
    DoLoop,
    Expr,
    If,
    Program,
    Stmt,
    Subroutine,
    assign_nids,
)
from repro.lang.builder import clone_body, clone_stmt
from repro.lang.errors import ParseError
from repro.lang.parser import _Parser
from repro.lang.lexer import tokenize
from repro.partests.runtime_tests import render_predicate
from repro.predicates.formula import Predicate


def parse_condition(text: str) -> Expr:
    """Parse a rendered predicate back into an AST expression."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    return expr


def predicate_to_expr(pred: Predicate) -> Expr:
    """Predicate → AST condition via the renderer/parser round trip."""
    return parse_condition(render_predicate(pred))


def transform_program(program: Program, plan: ParallelPlan) -> Program:
    """Clone *program*, rewriting run-time-tested loops two-version.

    The returned program has fresh statement identities and renumbered
    nids; the original is untouched.
    """
    new_units: Dict[str, Subroutine] = {}
    for name, unit in program.units.items():
        new_units[name] = Subroutine(
            name=unit.name,
            params=list(unit.params),
            decls=dict(unit.decls),
            body=_transform_body(unit.body, plan),
            is_main=unit.is_main,
        )
    out = Program(program.name, new_units, program.main)
    assign_nids(out, relabel=False)
    return out


def _transform_body(body: List[Stmt], plan: ParallelPlan) -> List[Stmt]:
    out: List[Stmt] = []
    for stmt in body:
        out.append(_transform_stmt(stmt, plan))
    return out


def _transform_stmt(stmt: Stmt, plan: ParallelPlan) -> Stmt:
    if isinstance(stmt, DoLoop):
        lp = plan.plan_for(stmt)
        inner_body = _transform_body(stmt.body, plan)
        loop = DoLoop(stmt.var, stmt.lo, stmt.hi, stmt.step, inner_body)
        loop.line = stmt.line
        loop.label = stmt.label
        if lp is not None and lp.mode == "two_version" and lp.runtime_pred is not None:
            try:
                cond = predicate_to_expr(lp.runtime_pred)
            except (ParseError, TypeError):
                return loop  # unrenderable predicate: keep serial form
            par = clone_stmt(loop)
            par.label = f"{stmt.label}_par"
            seq = clone_stmt(loop)
            seq.label = f"{stmt.label}_seq"
            guard = If(cond, [par], [seq])
            guard.line = stmt.line
            return guard
        if lp is not None and lp.mode == "parallel":
            loop.label = f"{stmt.label}_par"
        return loop
    if isinstance(stmt, If):
        new = If(
            stmt.cond,
            _transform_body(stmt.then_body, plan),
            _transform_body(stmt.else_body, plan),
        )
        new.line = stmt.line
        return new
    return clone_stmt(stmt)
