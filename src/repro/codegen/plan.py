"""The parallel execution plan.

A :class:`ParallelPlan` maps loops (by their stable ``nid``) to how the
generated code would execute them.  The interpreter and the machine
simulator consume this instead of a rewritten AST, keeping dynamic
measurements (ELPD, speedups) decoupled from source-to-source rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang.astnodes import DoLoop, Program
from repro.partests.driver import LoopResult, ProgramResult
from repro.predicates.formula import Predicate


@dataclass
class LoopPlan:
    """Execution schedule for one loop."""

    label: str
    nid: int
    mode: str  # "parallel" | "two_version" | "serial"
    runtime_pred: Optional[Predicate] = None
    runtime_cost: int = 0
    private_arrays: List[str] = field(default_factory=list)
    private_scalars: List[str] = field(default_factory=list)
    reduction_scalars: List[str] = field(default_factory=list)
    enclosed: bool = False

    @property
    def parallelizable(self) -> bool:
        return self.mode in ("parallel", "two_version")


@dataclass
class ParallelPlan:
    """Per-loop schedules for a whole program."""

    program: Program
    loops: Dict[int, LoopPlan] = field(default_factory=dict)

    def plan_for(self, loop: DoLoop) -> Optional[LoopPlan]:
        return self.loops.get(loop.nid)

    def parallel_count(self) -> int:
        return sum(1 for p in self.loops.values() if p.parallelizable)

    def two_version_count(self) -> int:
        return sum(1 for p in self.loops.values() if p.mode == "two_version")

    def outer_parallel_labels(self) -> List[str]:
        return sorted(
            p.label
            for p in self.loops.values()
            if p.parallelizable and not p.enclosed
        )


def build_plan(result: ProgramResult) -> ParallelPlan:
    """Lower driver decisions into an execution plan.

    Only the outermost parallelized loop of each nest actually runs in
    parallel ("SUIF only exploits a single level of parallelism");
    enclosed loops keep their decision for reporting but execute
    serially.
    """
    plan = ParallelPlan(result.program)
    for lr in result.loops:
        plan.loops[lr.loop.nid] = _lower(lr)
    return plan


def _lower(lr: LoopResult) -> LoopPlan:
    if lr.status in ("parallel", "parallel_private"):
        mode = "parallel"
    elif lr.status == "runtime":
        mode = "two_version"
    else:
        mode = "serial"
    return LoopPlan(
        label=lr.label,
        nid=lr.loop.nid,
        mode=mode,
        runtime_pred=lr.condition if lr.status == "runtime" else None,
        runtime_cost=lr.runtime_cost,
        private_arrays=list(lr.private_arrays),
        private_scalars=list(lr.private_scalars),
        reduction_scalars=list(lr.reduction_scalars),
        enclosed=lr.enclosed,
    )
