"""Human-readable compiler report (what `-listing` style output shows)."""

from __future__ import annotations

from typing import List

from repro.partests.driver import ProgramResult

_STATUS_TAGS = {
    "parallel": "PARALLEL",
    "parallel_private": "PARALLEL (privatized)",
    "runtime": "PARALLEL under run-time test",
    "serial": "serial",
    "not_candidate": "not a candidate",
}


def format_report(result: ProgramResult, title: str = "") -> str:
    """A per-loop listing of the parallelization decisions."""
    lines: List[str] = []
    header = title or result.program.name
    lines.append(f"=== {header} ===")
    lines.append(
        f"loops: {result.total_loops}  candidates: {result.candidate_loops}  "
        f"parallelized: {result.parallelized}  "
        f"(run-time tested: {result.runtime_tested})  "
        f"analysis: {result.analysis_seconds * 1000:.1f} ms"
    )
    for l in result.loops:
        tag = _STATUS_TAGS.get(l.status, l.status)
        extras = []
        if l.private_arrays:
            extras.append(f"private: {', '.join(l.private_arrays)}")
        if l.reduction_scalars:
            extras.append(f"reductions: {', '.join(l.reduction_scalars)}")
        if l.runtime_test:
            extras.append(f"test: {l.runtime_test}")
        if l.enclosed:
            extras.append("enclosed")
        if l.reason:
            extras.append(l.reason)
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        lines.append(f"  {l.label:<24} {tag}{suffix}")
        # "derivation of regions in privatizable arrays requiring
        # initialization" — the copy-in regions per privatized array
        if l.verdict is not None:
            for name in l.private_arrays:
                av = l.verdict.array_verdicts.get(name)
                if av is not None and av.copy_in and not av.copy_in.is_empty():
                    lines.append(
                        f"      copy-in {name}: {av.copy_in}"
                    )
    return "\n".join(lines)
