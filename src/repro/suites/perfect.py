"""Perfect-Club-calibrated synthetic programs (11).

Outer-loop predicated wins: ``adm`` (conditional correlation, speedup
improver) and ``trfd`` (reshape size predicate, speedup improver).
"""

from __future__ import annotations

from typing import List

from repro.suites.compose import BenchmarkProgram, compose
from repro.suites import patterns as P


def programs() -> List[BenchmarkProgram]:
    return [
        compose(
            "adm",
            "perfect",
            [
                P.cond_cover("a1", n=44, flag_value=9),
                P.work_array("a2", n=8),
                P.recurrence("a3", n=16),
                P.io_loop("a4"),
            ],
            speedup_candidate=True,
            notes="air-quality model: conditionally recomputed columns",
        ),
        compose(
            "arc2d",
            "perfect",
            [
                P.stencil("b1", n=22),
                P.stencil("b2", n=18),
                P.init2d("b3", n=10),
                P.work_array("b4", n=9),
                P.recurrence("b5", n=14),
                P.wavefront("b6", n=9),
            ],
            notes="implicit CFD stencils",
        ),
        compose(
            "bdna",
            "perfect",
            [
                P.data_dependent("c1", n=16),
                P.nonaffine("c2", n=14),
                P.reduction("c3", n=22),
                P.recurrence("c4", n=14),
                P.stencil("c5", n=14),
                P.wavefront("c6", n=9),
            ],
            notes="molecular dynamics with neighbor lists",
        ),
        compose(
            "dyfesm",
            "perfect",
            [
                P.call_row("d1", n=9),
                P.work_array("d2", n=8),
                P.reduction("d3", n=18),
                P.recurrence("d4", n=12),
                P.nonaffine("d5", n=10),
            ],
            notes="finite elements: element-wise assembly",
        ),
        compose(
            "flo52",
            "perfect",
            [
                P.stencil("e1", n=20),
                P.triangular("e2", n=10),
                P.init2d("e3", n=9),
                P.recurrence("e4", n=14),
                P.io_loop("e5"),
                P.wavefront("e6", n=9),
            ],
            notes="transonic flow multigrid",
        ),
        compose(
            "mdg",
            "perfect",
            [
                P.scalar_recurrence("f1", n=12),
                P.reduction("f2", n=20),
                P.reduction("f3", n=18),
                P.nonaffine("f4", n=12),
                P.stencil("f5", n=14),
            ],
            notes="molecular dynamics of water",
        ),
        compose(
            "ocean",
            "perfect",
            [
                P.work_array("g1", n=9),
                P.work_array("g2", n=8),
                P.stencil("g3", n=18),
                P.recurrence("g4", n=12),
                P.data_dependent("g5", n=12),
                P.wavefront("g6", n=9),
            ],
            notes="ocean circulation: privatizable scratch planes",
        ),
        compose(
            "qcd",
            "perfect",
            [
                P.nonaffine("h1", n=16),
                P.nonaffine("h2", n=12),
                P.recurrence("h3", n=12),
                P.reduction("h4", n=16),
                P.io_loop("h5"),
            ],
            notes="lattice gauge: table-driven site updates",
        ),
        compose(
            "spec77",
            "perfect",
            [
                P.stencil("i1", n=18),
                P.init2d("i2", n=9),
                P.call_row("i3", n=8),
                P.recurrence("i4", n=12),
                P.recurrence("i5", n=10),
            ],
            notes="spectral weather model",
        ),
        compose(
            "track",
            "perfect",
            [
                P.data_dependent("j1", n=14),
                P.nonaffine("j2", n=12),
                P.scalar_recurrence("j3", n=10),
                P.stencil("j4", n=14),
                P.reduction("j5", n=14),
            ],
            notes="missile tracking: irregular observations",
        ),
        compose(
            "trfd",
            "perfect",
            [
                P.reshape_size("k1", p_value=30, q_value=40, reps=12),
                P.work_array("k2", n=8),
                P.recurrence("k3", n=12),
            ],
            speedup_candidate=True,
            notes="two-electron integrals: reshaped buffer across calls",
        ),
    ]
