"""The paper's "one additional program" — a mixed kernel with no new
outer-loop predicated win (keeping the outer-win program count at 9)."""

from __future__ import annotations

from typing import List

from repro.suites.compose import BenchmarkProgram, compose
from repro.suites import patterns as P


def programs() -> List[BenchmarkProgram]:
    return [
        compose(
            "ms2d",
            "extra",
            [
                P.stencil("x1", n=20),
                P.work_array("x2", n=9),
                P.reduction("x3", n=18),
                P.recurrence("x4", n=14),
                P.nonaffine("x5", n=12),
                P.io_loop("x6"),
            ],
            notes="2-D membrane solver (the additional program)",
        ),
    ]
