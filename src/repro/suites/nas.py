"""NAS-sample-calibrated synthetic programs (8).

Outer-loop predicated wins: ``appbt`` (reshape size predicate — also a
speedup improver), ``cgm`` (offset run-time test), ``fftpde``
(embedding of an index guard).
"""

from __future__ import annotations

from typing import List

from repro.suites.compose import BenchmarkProgram, compose
from repro.suites import patterns as P


def programs() -> List[BenchmarkProgram]:
    return [
        compose(
            "appbt",
            "nas",
            [
                P.reshape_size("a1", p_value=40, q_value=50, reps=16),
                P.init2d("a2", n=8),
                P.recurrence("a3", n=18),
            ],
            speedup_candidate=True,
            notes="block-tridiagonal: whole-array reshape across calls",
        ),
        compose(
            "appsp",
            "nas",
            [
                P.work_array("b1", n=10),
                P.stencil("b2", n=20),
                P.triangular("b3", n=10),
                P.recurrence("b4", n=16),
                P.io_loop("b5"),
                P.wavefront("b6", n=9),
            ],
            notes="scalar-pentadiagonal solver",
        ),
        compose(
            "buk",
            "nas",
            [
                P.nonaffine("c1", n=20),
                P.nonaffine("c2", n=16),
                P.data_dependent("c3", n=14),
                P.reduction("c4", n=20),
                P.stencil("c5", n=14),
                P.wavefront("c6", n=9),
            ],
            notes="bucket sort: indirection throughout",
        ),
        compose(
            "cgm",
            "nas",
            [
                P.offset_runtime("d1", n=30, k_value=0),
                P.reduction("d2", n=400),
                P.reduction("d3", n=20),
                P.recurrence("d4", n=14),
                P.nonaffine("d5", n=12),
                P.outer_offset("d6", n=20, k_value=2, reps=3),
            ],
            notes="conjugate gradient: aligned update (k = 0 at run time)",
        ),
        compose(
            "embar",
            "nas",
            [
                P.reduction("e1", n=26),
                P.reduction("e2", n=22),
                P.stencil("e3", n=16),
                P.io_loop("e4"),
                P.scalar_recurrence("e5", n=12),
                P.wavefront("e6", n=9),
            ],
            notes="embarrassingly parallel kernels plus a serial tail",
        ),
        compose(
            "fftpde",
            "nas",
            [
                P.index_guard("f1", n=16, reps=4),
                P.init2d("f2", n=9),
                P.call_row("f3", n=8),
                P.recurrence("f4", n=14),
            ],
            notes="FFT butterflies: guarded first element",
        ),
        compose(
            "mgrid2",
            "nas",
            [
                P.stencil("g1", n=22),
                P.triangular("g2", n=9),
                P.work_array("g3", n=9),
                P.recurrence("g4", n=14),
                P.nonaffine("g5", n=10),
                P.wavefront("g6", n=9),
            ],
            notes="NAS multigrid sample",
        ),
        compose(
            "applu2",
            "nas",
            [
                P.call_row("h1", n=9),
                P.work_array("h2", n=8),
                P.recurrence("h3", n=16),
                P.recurrence("h4", n=12),
                P.io_loop("h5"),
                P.wavefront("h6", n=9),
            ],
            notes="LU sample: serial sweeps",
        ),
    ]
