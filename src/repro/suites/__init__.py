"""Synthetic benchmark suites.

The paper evaluates three real suites (Specfp95, NAS benchmarks,
Perfect Club) plus one additional program — sources we cannot ship.
This package substitutes thirty synthetic programs written in the mini
language, each composed from *loop patterns* whose parallelization
behaviour under the base analysis, the predicated analysis and the ELPD
dynamic oracle is known by construction (see
:mod:`repro.suites.patterns`).  Program mixtures are calibrated so the
aggregate statistics reproduce the paper's shape:

* the base analysis parallelizes roughly half the candidate loops;
* ELPD finds a substantial fraction of the remainder inherently
  parallel on the test inputs;
* the predicated analysis recovers **more than 40%** of those, split
  between compile-time proofs and derived run-time tests;
* nine programs gain additional *outer* parallel loops, five of which
  translate into improved simulated speedups.

Every program records per-loop ground-truth expectations, which the
test suite checks against the actual driver/ELPD outputs — the
calibration is verified, not asserted.
"""

from repro.suites.registry import (
    BenchmarkProgram,
    all_programs,
    by_suite,
    get_program,
    SUITE_NAMES,
)

__all__ = [
    "BenchmarkProgram",
    "all_programs",
    "by_suite",
    "get_program",
    "SUITE_NAMES",
]
