"""Loop-pattern library for the synthetic benchmark suites.

Each pattern builder emits a code fragment plus per-loop
:class:`LoopExpectation` ground truth — what the base analysis, the
predicated analysis and the ELPD oracle should each conclude.  Builders
take a unique suffix ``u`` so multiple instances coexist in one program
without aliasing.

Categories follow the loop classification the paper inherits from
So/Moon/Hall:

``plain``            unconditionally analyzable (base gets it);
``reduction``        scalar reduction;
``privatizable``     needs array privatization (base gets it);
``conditional-def``  conditional definitions needing predicate
                     correlation (Figure 1(a));
``boundary``         zero-trip / bound-correlation conditions
                     (Figure 1(b,d));
``offset-symbolic``  symbolic offset/stride needing a run-time test;
``reshape``          interprocedural reshape with a size predicate;
``nonaffine``        subscripted subscripts — beyond static analysis;
``recurrence``       genuine loop-carried flow;
``io``               not a candidate (I/O in body).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


@dataclass(frozen=True)
class LoopExpectation:
    """Ground truth for one loop (in source order within its unit)."""

    base: str  # expected base-analysis status
    predicated: str  # expected predicated-analysis status
    elpd: str  # expected dynamic classification on the chosen input
    category: str
    mechanism: str = ""  # embedding | extraction | correlation | reshape | ""
    outer_win: bool = False  # a new *outer* parallel loop vs base


@dataclass
class PatternInstance:
    """One pattern's contribution to a composed program."""

    decls: List[str] = field(default_factory=list)
    read_vars: List[str] = field(default_factory=list)
    inputs: List[Number] = field(default_factory=list)
    main_lines: List[str] = field(default_factory=list)
    subroutines: List[str] = field(default_factory=list)
    main_expect: List[LoopExpectation] = field(default_factory=list)
    sub_expect: List[LoopExpectation] = field(default_factory=list)
    setup_lines: List[str] = field(default_factory=list)
    setup_expect: List[LoopExpectation] = field(default_factory=list)


# ----------------------------------------------------------------------
# base-parallelizable patterns
# ----------------------------------------------------------------------


def stencil(u: str, n: int = 40) -> PatternInstance:
    """1-D stencil: parallel under the base analysis."""
    a, b = f"sa{u}", f"sb{u}"
    return PatternInstance(
        decls=[f"real {a}({n + 2}), {b}({n + 2})"],
        main_lines=[
            f"do i = 2, {n}",
            f"  {a}(i) = {b}(i - 1) + {b}(i + 1)",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain")
        ],
    )


def init2d(u: str, n: int = 12) -> PatternInstance:
    """Nested 2-D initialization: both levels parallel (inner enclosed)."""
    g = f"g{u}"
    return PatternInstance(
        decls=[f"real {g}({n}, {n})"],
        main_lines=[
            f"do j = 1, {n}",
            f"  do i = 1, {n}",
            f"    {g}(i, j) = i * 1.0 + j",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )


def triangular(u: str, n: int = 12) -> PatternInstance:
    """Triangular nest: projection over a parametric inner bound."""
    t = f"tr{u}"
    return PatternInstance(
        decls=[f"real {t}({n}, {n})"],
        main_lines=[
            f"do j = 1, {n}",
            "  do i = 1, j",
            f"    {t}(i, j) = i * 2.0",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )


def reduction(u: str, n: int = 40) -> PatternInstance:
    """Scalar sum reduction: recognized and privatized by both."""
    a, s = f"ra{u}", f"rs{u}"
    return PatternInstance(
        decls=[f"real {a}({n})"],
        setup_lines=[f"{s} = 0.0"],
        main_lines=[
            f"do i = 1, {n}",
            f"  {s} = {s} + {a}(i)",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "parallel_private", "parallel_private", "independent", "reduction"
            )
        ],
    )


def work_array(u: str, n: int = 10) -> PatternInstance:
    """Privatizable work array: the classic base-analysis privatization."""
    a, w = f"wa{u}", f"ww{u}"
    return PatternInstance(
        decls=[f"real {a}({n}, {n}), {w}({n})"],
        main_lines=[
            f"do j = 1, {n}",
            f"  do i = 1, {n}",
            f"    {w}(i) = {a}(i, j) * 2.0",
            "  enddo",
            f"  do i = 1, {n}",
            f"    {a}(i, j) = {w}(i) + 1.0",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "parallel_private", "parallel_private", "privatizable",
                "privatizable",
            ),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )


def call_row(u: str, n: int = 10) -> PatternInstance:
    """Interprocedural row update: parallel for both (with summaries)."""
    a, sub = f"ca{u}", f"crow{u}"
    return PatternInstance(
        decls=[f"real {a}({n}, {n})"],
        main_lines=[
            f"do j = 1, {n}",
            f"  call {sub}({a}, j)",
            "enddo",
        ],
        subroutines=[
            f"subroutine {sub}(x, j)\n"
            f"  real x({n}, {n})\n"
            f"  integer j\n"
            f"  do i = 1, {n}\n"
            f"    x(i, j) = i * 1.0 + j\n"
            f"  enddo\n"
            f"end"
        ],
        main_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain")
        ],
        sub_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain")
        ],
    )


# ----------------------------------------------------------------------
# inherently serial patterns
# ----------------------------------------------------------------------


def recurrence(u: str, n: int = 40) -> PatternInstance:
    """First-order linear recurrence: serial everywhere."""
    a = f"qa{u}"
    return PatternInstance(
        decls=[f"real {a}({n + 1})"],
        setup_lines=[f"{a}(1) = 1.0"],
        main_lines=[
            f"do i = 2, {n}",
            f"  {a}(i) = {a}(i - 1) * 0.5 + 1.0",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("serial", "serial", "dependent", "recurrence")
        ],
    )


def wavefront(u: str, n: int = 10) -> PatternInstance:
    """2-D wavefront recurrence: both loop levels genuinely serial."""
    a = f"va{u}"
    return PatternInstance(
        decls=[f"real {a}({n}, {n})"],
        setup_lines=[f"{a}(1, 1) = 1.0"],
        main_lines=[
            f"do j = 2, {n}",
            f"  do i = 2, {n}",
            f"    {a}(i, j) = {a}(i - 1, j) + {a}(i, j - 1)",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("serial", "serial", "dependent", "recurrence"),
            LoopExpectation("serial", "serial", "dependent", "recurrence"),
        ],
    )


def scalar_recurrence(u: str, n: int = 30) -> PatternInstance:
    """Scalar carried state that is not a reduction: serial."""
    a, s = f"pa{u}", f"ps{u}"
    return PatternInstance(
        decls=[f"real {a}({n})"],
        setup_lines=[f"{s} = 1.0"],
        main_lines=[
            f"do i = 1, {n}",
            f"  {s} = {s} * 0.9 + {a}(i)",
            f"  {a}(i) = {s}",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("serial", "serial", "dependent", "recurrence")
        ],
    )


def io_loop(u: str, n: int = 5) -> PatternInstance:
    """I/O in the body: not a candidate for either analysis."""
    a = f"ioa{u}"
    return PatternInstance(
        decls=[f"real {a}({n})"],
        main_lines=[
            f"do i = 1, {n}",
            f"  print {a}(i)",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "not_candidate", "not_candidate", "independent", "io"
            )
        ],
    )


def nonaffine(u: str, n: int = 20) -> PatternInstance:
    """Subscripted subscript (gather/scatter): static analyses give up.

    The index array is filled with the identity permutation, so ELPD
    sees an independent loop — the "inherently parallel loop the
    compiler misses" bucket that even predicated analysis cannot reach.
    """
    a, idx = f"na{u}", f"nx{u}"
    return PatternInstance(
        decls=[f"real {a}({n})", f"integer {idx}({n})"],
        setup_lines=[
            f"do i = 1, {n}",
            f"  {idx}(i) = i",
            "enddo",
        ],
        setup_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain")
        ],
        main_lines=[
            f"do i = 1, {n}",
            f"  {a}({idx}(i)) = i * 1.0",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("serial", "serial", "independent", "nonaffine")
        ],
    )


def data_dependent(u: str, n: int = 20) -> PatternInstance:
    """Gather whose index array creates real flow on this input."""
    a, idx = f"da{u}", f"dx{u}"
    return PatternInstance(
        decls=[f"real {a}({n})", f"integer {idx}({n})"],
        setup_lines=[
            f"do i = 1, {n}",
            f"  {idx}(i) = max(i - 1, 1)",
            "enddo",
            f"{a}(1) = 1.0",
        ],
        setup_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain")
        ],
        main_lines=[
            f"do i = 2, {n}",
            f"  {a}(i) = {a}({idx}(i)) + 1.0",
            "enddo",
        ],
        main_expect=[
            LoopExpectation("serial", "serial", "dependent", "nonaffine")
        ],
    )


# ----------------------------------------------------------------------
# predicated compile-time wins
# ----------------------------------------------------------------------


def cond_cover(u: str, n: int = 10, flag_value: int = 9) -> PatternInstance:
    """Figure 1(a): conditional def and use under the same condition.

    The base analysis loses the must-write under the conditional and
    reports a carried flow; the predicated analysis correlates the two
    branches and privatizes at compile time.
    """
    h, b, x = f"ch{u}", f"cb{u}", f"cx{u}"
    return PatternInstance(
        decls=[f"real {h}({n}), {b}({n}, {n})"],
        read_vars=[x],
        inputs=[flag_value],
        main_lines=[
            f"do i = 1, {n}",
            f"  if ({x} > 5) then",
            f"    do j = 1, {n}",
            f"      {h}(j) = {b}(j, i)",
            "    enddo",
            "  endif",
            f"  if ({x} > 5) then",
            f"    do j = 1, {n}",
            f"      {b}(j, i) = {h}(j) + 1.0",
            "    enddo",
            "  endif",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "parallel_private",
                "privatizable" if flag_value > 5 else "independent",
                "conditional-def",
                mechanism="correlation",
                outer_win=True,
            ),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )


def guard_zero_trip(u: str, n: int = 12, d_value: int = 8) -> PatternInstance:
    """Figure 1(b/d) flavour: a write loop that may not execute.

    Writes cover ``h(1..d-1)`` only when ``d >= 2``; reads cover
    ``h(1..n)``.  The base analysis has no must-write (the guard kills
    it) and reports flow into the exposed reads; the predicated
    analysis tracks the guarded exposure pieces and proves privatization
    (with copy-in of the uncovered boundary region) at compile time.
    """
    h, b, d = f"zh{u}", f"zb{u}", f"zd{u}"
    return PatternInstance(
        decls=[f"real {h}({n}), {b}({n}, {n})"],
        read_vars=[d],
        inputs=[d_value],
        main_lines=[
            f"do i = 1, {n}",
            f"  if ({d} >= 2) then",
            f"    do j = 1, {d} - 1",
            f"      {h}(j) = {b}(j, i) * 0.5",
            "    enddo",
            "  endif",
            f"  do j = 1, {n}",
            f"    {b}(j, i) = {h}(j) + 1.0",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "parallel_private",
                "privatizable" if d_value >= 2 else "independent",
                "boundary",
                mechanism="extraction",
                outer_win=True,
            ),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )


def index_guard(u: str, n: int = 16, reps: int = 4) -> PatternInstance:
    """Predicate embedding: an index-dependent guard (``i >= 2``) bounds
    the writes away from the element every iteration reads (``a(1)``).

    The base analysis sees a may-write of the whole row conflicting with
    the exposed read of ``a(1)``; embedding the guard into the region
    systems separates them, parallelizing both levels."""
    a = f"ea{u}"
    return PatternInstance(
        decls=[f"real {a}({n})"],
        setup_lines=[f"{a}(1) = 2.0"],
        main_lines=[
            f"do r = 1, {reps}",
            f"  do i = 1, {n}",
            "    if (i >= 2) then",
            f"      {a}(i) = {a}(1) + i * 1.0 + r",
            "    endif",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "parallel_private",
                "privatizable",
                "conditional-def",
                mechanism="embedding",
                outer_win=True,
            ),
            LoopExpectation(
                "serial",
                "parallel",
                "independent",
                "conditional-def",
                mechanism="embedding",
            ),
        ],
    )


# ----------------------------------------------------------------------
# run-time test patterns
# ----------------------------------------------------------------------


def offset_runtime(u: str, n: int = 30, k_value: int = 40) -> PatternInstance:
    """Symbolic offset ``a(i+k) = f(a(i))``: the classic extraction-
    derived run-time independence test (parallel iff k outside
    (0, n))."""
    a, k = f"oa{u}", f"ok{u}"
    size = 2 * n + abs(k_value) + 4
    elpd = "independent" if (k_value <= 0 or k_value >= n) else "dependent"
    return PatternInstance(
        decls=[f"real {a}({size})"],
        read_vars=[k],
        inputs=[k_value],
        main_lines=[
            f"do i = 1, {n}",
            f"  {a}(i + {k}) = {a}(i) + 1.0",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "runtime",
                elpd,
                "offset-symbolic",
                mechanism="extraction",
                outer_win=True,
            )
        ],
    )


def outer_offset(u: str, n: int = 24, k_value: int = 6, reps: int = 4) -> PatternInstance:
    """Repeat loop around an offset sweep: run-time privatization test
    on the *outer* loop (parallel with copy-in when k >= 1)."""
    a, k = f"ua{u}", f"uk{u}"
    size = n + max(k_value, 0) + 4
    return PatternInstance(
        decls=[f"real {a}({size})"],
        read_vars=[k],
        inputs=[k_value],
        main_lines=[
            f"do r = 1, {reps}",
            f"  do i = 1, {n}",
            f"    {a}(i + {k}) = {a}(i) + 1.0",
            "  enddo",
            "enddo",
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "runtime",
                "privatizable" if k_value >= 1 else "independent",
                "offset-symbolic",
                mechanism="extraction",
                outer_win=True,
            ),
            LoopExpectation(
                "serial",
                "runtime",
                "dependent" if 0 < k_value < n else "independent",
                "offset-symbolic",
                mechanism="extraction",
            ),
        ],
    )


def reshape_size(u: str, p_value: int = 10, q_value: int = 8, reps: int = 3) -> PatternInstance:
    """Interprocedural reshape: the callee fills its whole symbolic
    (p × q) formal; the caller loop is parallel under the extracted
    size predicate ``p*q == len(a)`` — a run-time test the base
    analysis cannot derive."""
    total = p_value * q_value
    a, b, p, q, sub = f"fa{u}", f"fb{u}", f"fp{u}", f"fq{u}", f"fill{u}"
    return PatternInstance(
        decls=[f"real {a}({total}), {b}({total})"],
        read_vars=[p, q],
        inputs=[p_value, q_value],
        main_lines=[
            f"do r = 1, {reps}",
            f"  call {sub}({a}, {p}, {q})",
            f"  do i = 1, {total}",
            f"    {b}(i) = {a}(i) + 1.0",
            "  enddo",
            "enddo",
        ],
        subroutines=[
            f"subroutine {sub}(x, p, q)\n"
            f"  integer p, q\n"
            f"  real x(p, q)\n"
            f"  do j = 1, q\n"
            f"    do i = 1, p\n"
            f"      x(i, j) = i * 1.0 + j\n"
            f"    enddo\n"
            f"  enddo\n"
            f"end"
        ],
        main_expect=[
            LoopExpectation(
                "serial",
                "runtime",
                "privatizable",
                "reshape",
                mechanism="reshape",
                outer_win=True,
            ),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
        sub_expect=[
            LoopExpectation("parallel", "parallel", "independent", "plain"),
            LoopExpectation("parallel", "parallel", "independent", "plain"),
        ],
    )
