"""Registry of all benchmark programs."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro import perf
from repro.suites.compose import BenchmarkProgram

SUITE_NAMES = ("specfp95", "nas", "perfect", "extra")


@lru_cache(maxsize=1)
def all_programs() -> List[BenchmarkProgram]:
    """Every benchmark program, suite order then definition order."""
    from repro.suites import extra, nas, perfect, specfp

    out: List[BenchmarkProgram] = []
    out.extend(specfp.programs())
    out.extend(nas.programs())
    out.extend(perfect.programs())
    out.extend(extra.programs())
    names = [p.name for p in out]
    assert len(names) == len(set(names)), "duplicate program names"
    return out


perf.exempt_cache(
    all_programs,
    "suites.all_programs",
    "static benchmark-program definitions; clearing only re-parses "
    "identical source text",
)


def by_suite(suite: str) -> List[BenchmarkProgram]:
    if suite not in SUITE_NAMES:
        raise KeyError(f"unknown suite {suite!r}; choose from {SUITE_NAMES}")
    return [p for p in all_programs() if p.suite == suite]


def get_program(name: str) -> BenchmarkProgram:
    for p in all_programs():
        if p.name == name:
            return p
    raise KeyError(f"unknown program {name!r}")
