"""Composition of pattern instances into benchmark programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.astnodes import Program, Subroutine, loops_of
from repro.lang.parser import parse_program
from repro.suites.patterns import LoopExpectation, PatternInstance

Number = Union[int, float]


@dataclass
class BenchmarkProgram:
    """One synthetic benchmark: source, inputs and per-loop ground truth."""

    name: str
    suite: str
    source: str
    inputs: List[Number]
    expectations: Dict[str, LoopExpectation]
    speedup_candidate: bool = False
    notes: str = ""
    _parsed: Optional[Program] = field(default=None, repr=False)

    @property
    def program(self) -> Program:
        if self._parsed is None:
            self._parsed = parse_program(self.source)
        return self._parsed

    def fresh_program(self) -> Program:
        """A newly parsed AST (callers that mutate should use this)."""
        return parse_program(self.source)

    @property
    def loop_count(self) -> int:
        return len(self.expectations)

    def outer_win_labels(self) -> List[str]:
        return sorted(
            label
            for label, e in self.expectations.items()
            if e.outer_win
        )


def compose(
    name: str,
    suite: str,
    instances: Sequence[PatternInstance],
    speedup_candidate: bool = False,
    notes: str = "",
) -> BenchmarkProgram:
    """Assemble pattern instances into one program.

    Per instance, setup lines precede main lines; declarations and read
    statements are hoisted to the top.  After parsing, the main unit's
    loops (pre-order — identical to label numbering) are zipped with
    the concatenated ``setup_expect + main_expect`` lists, and each
    subroutine's loops with its ``sub_expect`` entries, giving the
    label → expectation map the test- and experiment-harnesses check.
    """
    decls: List[str] = []
    read_vars: List[str] = []
    inputs: List[Number] = []
    body: List[str] = []
    subroutines: List[str] = []
    main_expect: List[LoopExpectation] = []
    sub_expect: List[LoopExpectation] = []

    for inst in instances:
        decls.extend(inst.decls)
        read_vars.extend(inst.read_vars)
        inputs.extend(inst.inputs)
        body.extend(inst.setup_lines)
        body.extend(inst.main_lines)
        subroutines.extend(inst.subroutines)
        main_expect.extend(inst.setup_expect)
        main_expect.extend(inst.main_expect)
        sub_expect.extend(inst.sub_expect)

    lines: List[str] = [f"program {name}"]
    for d in decls:
        lines.append(f"  {d}")
    if read_vars:
        lines.append(f"  read {', '.join(read_vars)}")
    lines.extend(f"  {l}" for l in body)
    lines.append("end")
    source = "\n".join(lines) + "\n"
    if subroutines:
        source += "\n" + "\n\n".join(subroutines) + "\n"

    program = parse_program(source)
    expectations: Dict[str, LoopExpectation] = {}

    main_loops = loops_of(program.main_unit)
    if len(main_loops) != len(main_expect):
        raise ValueError(
            f"{name}: {len(main_loops)} main loops but "
            f"{len(main_expect)} expectations"
        )
    for loop, exp in zip(main_loops, main_expect):
        expectations[loop.label] = exp

    sub_units = [
        u for uname, u in program.units.items() if uname != program.main
    ]
    sub_loops = [l for u in sub_units for l in loops_of(u)]
    if len(sub_loops) != len(sub_expect):
        raise ValueError(
            f"{name}: {len(sub_loops)} subroutine loops but "
            f"{len(sub_expect)} expectations"
        )
    for loop, exp in zip(sub_loops, sub_expect):
        expectations[loop.label] = exp

    return BenchmarkProgram(
        name=name,
        suite=suite,
        source=source,
        inputs=inputs,
        expectations=expectations,
        speedup_candidate=speedup_candidate,
        notes=notes,
        _parsed=program,
    )
