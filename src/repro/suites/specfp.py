"""Specfp95-calibrated synthetic programs (10).

Predicated-analysis *outer-loop* wins live in ``tomcatv`` (conditional
correlation), ``su2cor`` (symbolic-offset run-time test), ``apsi``
(zero-trip boundary) and ``wave5`` (outer offset privatization test);
``tomcatv`` and ``su2cor`` are sized so the win dominates execution and
the simulated speedup improves (the paper's 5-programs-improve claim).
"""

from __future__ import annotations

from typing import List

from repro.suites.compose import BenchmarkProgram, compose
from repro.suites import patterns as P


def programs() -> List[BenchmarkProgram]:
    return [
        compose(
            "tomcatv",
            "specfp95",
            [
                P.cond_cover("t1", n=40, flag_value=9),
                P.stencil("t2", n=16),
                P.init2d("t3", n=8),
                P.recurrence("t4", n=24),
                P.io_loop("t5"),
            ],
            speedup_candidate=True,
            notes="mesh generation: conditionally reused work rows",
        ),
        compose(
            "swim",
            "specfp95",
            [
                P.stencil("s1", n=24),
                P.stencil("s2", n=24),
                P.init2d("s3", n=10),
                P.work_array("s4", n=10),
                P.recurrence("s5", n=20),
                P.nonaffine("s6", n=16),
                P.wavefront("s7", n=9),
            ],
            notes="shallow-water stencils",
        ),
        compose(
            "su2cor",
            "specfp95",
            [
                P.offset_runtime("u1", n=600, k_value=700),
                P.offset_runtime("u6", n=40, k_value=0),
                P.reduction("u2", n=30),
                P.triangular("u3", n=10),
                P.recurrence("u4", n=20),
                P.io_loop("u5"),
            ],
            speedup_candidate=True,
            notes="quark propagator: symbolic displacement sweep",
        ),
        compose(
            "hydro2d",
            "specfp95",
            [
                P.work_array("h1", n=10),
                P.stencil("h2", n=20),
                P.init2d("h3", n=9),
                P.data_dependent("h4", n=16),
                P.recurrence("h5", n=18),
                P.wavefront("h6", n=9),
            ],
            notes="hydrodynamics: privatizable fluxes",
        ),
        compose(
            "mgrid",
            "specfp95",
            [
                P.stencil("m1", n=24),
                P.stencil("m2", n=12),
                P.triangular("m3", n=10),
                P.reduction("m4", n=24),
                P.nonaffine("m5", n=14),
                P.recurrence("m6", n=16),
                P.wavefront("m7", n=9),
            ],
            notes="multigrid relaxation",
        ),
        compose(
            "applu",
            "specfp95",
            [
                P.work_array("l1", n=9),
                P.call_row("l2", n=9),
                P.recurrence("l3", n=20),
                P.recurrence("l4", n=14),
                P.io_loop("l5"),
                P.wavefront("l6", n=9),
            ],
            notes="SSOR solver: pipelined sweeps stay serial",
        ),
        compose(
            "turb3d",
            "specfp95",
            [
                P.init2d("b1", n=10),
                P.call_row("b2", n=8),
                P.reduction("b3", n=20),
                P.nonaffine("b4", n=12),
                P.recurrence("b5", n=16),
                P.wavefront("b6", n=9),
            ],
            notes="turbulence: interprocedural plane updates",
        ),
        compose(
            "apsi",
            "specfp95",
            [
                P.guard_zero_trip("p1", n=12, d_value=8),
                P.stencil("p2", n=18),
                P.reduction("p3", n=16),
                P.recurrence("p4", n=14),
                P.nonaffine("p5", n=10),
                P.offset_runtime("p6", n=20, k_value=25),
            ],
            notes="pollution model: zero-trip boundary guards",
        ),
        compose(
            "fpppp",
            "specfp95",
            [
                P.reduction("f1", n=20),
                P.reduction("f2", n=18),
                P.recurrence("f3", n=16),
                P.recurrence("f4", n=12),
                P.scalar_recurrence("f5", n=14),
                P.io_loop("f6"),
            ],
            notes="integrals: serial inner structure",
        ),
        compose(
            "wave5",
            "specfp95",
            [
                P.outer_offset("w1", n=24, k_value=6, reps=4),
                P.stencil("w2", n=400),
                P.work_array("w3", n=8),
                P.recurrence("w4", n=12),
            ],
            notes="particle push: shifted deposit, small granularity",
        ),
    ]
