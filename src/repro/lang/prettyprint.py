"""AST → source-text pretty printer.

``pretty(program)`` produces text that re-parses to an equivalent program
(round-trip property tested in ``tests/lang/test_prettyprint.py``).  The
two-version code generator uses this to emit transformed programs.
"""

from __future__ import annotations

from typing import List, Union

from repro.lang.astnodes import (
    ASSUMED,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    DoLoop,
    Expr,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Return,
    Stmt,
    Subroutine,
    UnOp,
    VarRef,
)

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "==": 4,
    "!=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "**": 8,
}


def expr_str(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Num):
        v = expr.value
        if isinstance(v, float) and v == int(v):
            return f"{v:.1f}"
        return str(v)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        subs = ", ".join(expr_str(s) for s in expr.subscripts)
        return f"{expr.name}({subs})"
    if isinstance(expr, Intrinsic):
        args = ", ".join(expr_str(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnOp):
        if expr.op == "not":
            inner = expr_str(expr.operand, 3)
            return f"not {inner}"
        inner = expr_str(expr.operand, 7)
        return f"-{inner}"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = expr_str(expr.left, prec)
        # +1 on the right side keeps left-associativity explicit for - /
        right = expr_str(expr.right, prec + (0 if expr.op in ("and", "or") else 1))
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    # _StringArg from print statements
    text = getattr(expr, "text", None)
    if text is not None:
        return f"'{text}'"
    raise TypeError(f"unknown expression {expr!r}")


def _decl_str(decl: Decl) -> str:
    if not decl.is_array:
        return decl.name
    dims = ", ".join(
        "*" if d == ASSUMED else expr_str(d) for d in decl.dims
    )
    return f"{decl.name}({dims})"


def _stmt_lines(stmt: Stmt, indent: int, out: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        out.append(f"{pad}{expr_str(stmt.target)} = {expr_str(stmt.value)}")
    elif isinstance(stmt, DoLoop):
        header = f"{pad}do {stmt.var} = {expr_str(stmt.lo)}, {expr_str(stmt.hi)}"
        if stmt.step is not None:
            header += f", {expr_str(stmt.step)}"
        out.append(header)
        for s in stmt.body:
            _stmt_lines(s, indent + 1, out)
        out.append(f"{pad}enddo")
    elif isinstance(stmt, If):
        out.append(f"{pad}if ({expr_str(stmt.cond)}) then")
        for s in stmt.then_body:
            _stmt_lines(s, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}else")
            for s in stmt.else_body:
                _stmt_lines(s, indent + 1, out)
        out.append(f"{pad}endif")
    elif isinstance(stmt, Call):
        args = ", ".join(expr_str(a) for a in stmt.args)
        out.append(f"{pad}call {stmt.name}({args})")
    elif isinstance(stmt, ReadStmt):
        out.append(f"{pad}read {', '.join(stmt.names)}")
    elif isinstance(stmt, PrintStmt):
        args = ", ".join(expr_str(a) for a in stmt.args)
        out.append(f"{pad}print {args}" if args else f"{pad}print")
    elif isinstance(stmt, Return):
        out.append(f"{pad}return")
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def unit_str(unit: Subroutine) -> str:
    lines: List[str] = []
    if unit.is_main:
        lines.append(f"program {unit.name}")
    else:
        lines.append(f"subroutine {unit.name}({', '.join(unit.params)})")
    by_type = {"integer": [], "real": []}
    for decl in unit.decls.values():
        by_type[decl.typ].append(_decl_str(decl))
    for typ in ("integer", "real"):
        if by_type[typ]:
            lines.append(f"  {typ} {', '.join(by_type[typ])}")
    for s in unit.body:
        _stmt_lines(s, 1, lines)
    lines.append("end")
    return "\n".join(lines)


def pretty(program: Program) -> str:
    """Render the whole program, main unit first."""
    units = [program.main_unit] + [
        u for name, u in program.units.items() if name != program.main
    ]
    return "\n\n".join(unit_str(u) for u in units) + "\n"
