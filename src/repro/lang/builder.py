"""Programmatic AST construction helpers.

Used by the code generator (to synthesize two-version loops) and by tests
that build ASTs directly.  For whole benchmark programs prefer source text
through :func:`repro.lang.parser.parse_program` — it is more readable and
exercises the front end.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    ReadStmt,
    Return,
    Stmt,
    UnOp,
    VarRef,
)

ExprLike = Union[Expr, int, float, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce ints/floats to literals and strings to variable references."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Num(value)
    if isinstance(value, str):
        return VarRef(value)
    return value


def var(name: str) -> VarRef:
    return VarRef(name)


def num(value: Union[int, float]) -> Num:
    return Num(value)


def aref(name: str, *subscripts: ExprLike) -> ArrayRef:
    return ArrayRef(name, tuple(as_expr(s) for s in subscripts))


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    return BinOp(op, as_expr(left), as_expr(right))


def add(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("+", a, b)


def sub(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("-", a, b)


def mul(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("*", a, b)


def div(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("/", a, b)


def neg(a: ExprLike) -> UnOp:
    return UnOp("-", as_expr(a))


def lnot(a: ExprLike) -> UnOp:
    return UnOp("not", as_expr(a))


def land(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("and", a, b)


def lor(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("or", a, b)


def lt(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("<", a, b)


def le(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("<=", a, b)


def gt(a: ExprLike, b: ExprLike) -> BinOp:
    return binop(">", a, b)


def ge(a: ExprLike, b: ExprLike) -> BinOp:
    return binop(">=", a, b)


def eq(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("==", a, b)


def ne(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("!=", a, b)


def mod(a: ExprLike, b: ExprLike) -> Intrinsic:
    return Intrinsic("mod", (as_expr(a), as_expr(b)))


def assign(target: Union[VarRef, ArrayRef, str], value: ExprLike, line: int = 0) -> Assign:
    if isinstance(target, str):
        target = VarRef(target)
    stmt = Assign(target, as_expr(value))
    stmt.line = line
    return stmt


def do(
    index: str,
    lo: ExprLike,
    hi: ExprLike,
    body: Sequence[Stmt],
    step: Optional[ExprLike] = None,
    line: int = 0,
) -> DoLoop:
    stmt = DoLoop(
        index,
        as_expr(lo),
        as_expr(hi),
        as_expr(step) if step is not None else None,
        list(body),
    )
    stmt.line = line
    return stmt


def if_(
    cond: ExprLike,
    then_body: Sequence[Stmt],
    else_body: Sequence[Stmt] = (),
    line: int = 0,
) -> If:
    stmt = If(as_expr(cond), list(then_body), list(else_body))
    stmt.line = line
    return stmt


def call(name: str, *args: ExprLike, line: int = 0) -> Call:
    stmt = Call(name, [as_expr(a) for a in args])
    stmt.line = line
    return stmt


def read(*names: str, line: int = 0) -> ReadStmt:
    stmt = ReadStmt(list(names))
    stmt.line = line
    return stmt


def ret(line: int = 0) -> Return:
    stmt = Return()
    stmt.line = line
    return stmt


def clone_stmt(stmt: Stmt) -> Stmt:
    """Deep-copy a statement tree (fresh identity, nids reset to -1).

    Expressions are immutable and shared; only statement nodes are copied.
    """
    if isinstance(stmt, Assign):
        new: Stmt = Assign(stmt.target, stmt.value)
    elif isinstance(stmt, DoLoop):
        new = DoLoop(
            stmt.var,
            stmt.lo,
            stmt.hi,
            stmt.step,
            [clone_stmt(s) for s in stmt.body],
            label=stmt.label,
        )
    elif isinstance(stmt, If):
        new = If(
            stmt.cond,
            [clone_stmt(s) for s in stmt.then_body],
            [clone_stmt(s) for s in stmt.else_body],
        )
    elif isinstance(stmt, Call):
        new = Call(stmt.name, list(stmt.args))
    elif isinstance(stmt, ReadStmt):
        new = ReadStmt(list(stmt.names))
    elif isinstance(stmt, PrintStmt):
        new = PrintStmt(list(stmt.args))
    elif isinstance(stmt, Return):
        new = Return()
    else:
        raise TypeError(f"unknown statement {stmt!r}")
    new.line = stmt.line
    return new


def clone_body(body: Iterable[Stmt]) -> List[Stmt]:
    return [clone_stmt(s) for s in body]
