"""Mini-Fortran front end.

The analysis substrate SUIF provided was a Fortran-77 front end producing
a structured intermediate form.  This package implements the equivalent:
a small Fortran-flavoured language with

* ``program``/``subroutine`` units, non-recursive ``call``;
* ``do`` loops with affine (or symbolic) bounds and optional step;
* structured ``if``/``else``;
* multi-dimensional arrays with declared or assumed (``*``) extents;
* ``read`` statements modelling run-time inputs (symbolic unknowns to the
  compiler, concrete values to the interpreter);
* arithmetic with the intrinsics ``mod``, ``min``, ``max``, ``abs``.

GOTO and recursion are intentionally absent (see DESIGN.md §7).
"""

from repro.lang.astnodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    DoLoop,
    If,
    Intrinsic,
    Num,
    PrintStmt,
    Program,
    ReadStmt,
    Subroutine,
    UnOp,
    VarRef,
)
from repro.lang.errors import LangError, LexError, ParseError, SemanticError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.prettyprint import pretty

__all__ = [
    "parse_program",
    "tokenize",
    "pretty",
    "Program",
    "Subroutine",
    "Decl",
    "Assign",
    "DoLoop",
    "If",
    "Call",
    "ReadStmt",
    "PrintStmt",
    "Num",
    "VarRef",
    "ArrayRef",
    "BinOp",
    "UnOp",
    "Intrinsic",
    "LangError",
    "LexError",
    "ParseError",
    "SemanticError",
]
